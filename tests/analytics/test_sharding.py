"""Tests for the sharded counter."""

from __future__ import annotations

import pytest

from repro.analytics.sharding import ShardedCounter
from repro.core.morris import MorrisCounter
from repro.core.simplified_ny import SimplifiedNYCounter
from repro.errors import ParameterError


def _sharded(n_shards: int = 4, seed: int = 0) -> ShardedCounter:
    return ShardedCounter(
        lambda rng: SimplifiedNYCounter(1024, mergeable=True, rng=rng),
        n_shards=n_shards,
        seed=seed,
    )


class TestIngest:
    def test_explicit_routing(self):
        sharded = _sharded()
        sharded.add(1000, shard=2)
        assert sharded.shards[2].n_increments == 1000
        assert sharded.shards[0].n_increments == 0

    def test_random_routing_spreads(self):
        sharded = _sharded()
        for _ in range(400):
            sharded.increment()
        loads = [s.n_increments for s in sharded.shards]
        assert sum(loads) == 400
        assert all(load > 40 for load in loads)

    def test_bad_shard_rejected(self):
        with pytest.raises(ParameterError):
            _sharded().add(10, shard=9)
        with pytest.raises(ParameterError):
            _sharded().add(-1, shard=0)

    def test_n_shards_validated(self):
        with pytest.raises(ParameterError):
            ShardedCounter(lambda rng: MorrisCounter(0.5, rng=rng), 0)


class TestAggregation:
    def test_estimate_near_truth(self):
        sharded = _sharded(n_shards=6, seed=1)
        for shard in range(6):
            sharded.add(20_000, shard=shard)
        total = sharded.n_increments
        assert total == 120_000
        assert abs(sharded.estimate() - total) / total < 0.2

    def test_estimate_is_non_destructive(self):
        sharded = _sharded(seed=2)
        sharded.add(5000, shard=0)
        before = [(s.y, s.t) for s in sharded.shards]
        sharded.estimate()
        after = [(s.y, s.t) for s in sharded.shards]
        assert before == after

    def test_collapse_returns_single_counter(self):
        sharded = _sharded(seed=3)
        for shard in range(4):
            sharded.add(10_000, shard=shard)
        merged = sharded.collapse()
        assert merged.n_increments == 40_000
        assert abs(merged.estimate() - 40_000) / 40_000 < 0.25

    def test_total_state_bits(self):
        sharded = _sharded(seed=4)
        sharded.add(1000, shard=0)
        assert sharded.total_state_bits() > 0

    def test_works_with_morris(self):
        sharded = ShardedCounter(
            lambda rng: MorrisCounter(0.01, rng=rng), n_shards=3, seed=5
        )
        for shard in range(3):
            sharded.add(30_000, shard=shard)
        assert abs(sharded.estimate() - 90_000) / 90_000 < 0.2


class TestWindowReset:
    def test_reset_empties_shards(self):
        sharded = _sharded(seed=6)
        for shard in range(4):
            sharded.add(5000, shard=shard)
        archived = sharded.collapse()
        sharded.reset()
        assert sharded.n_increments == 0
        assert all(s.n_increments == 0 for s in sharded.shards)
        assert sharded.n_shards == 4
        # The archived window is untouched by the reset.
        assert archived.n_increments == 20_000

    def test_new_window_counts_independently(self):
        sharded = _sharded(seed=7)
        sharded.add(10_000, shard=0)
        sharded.reset()
        sharded.add(30_000, shard=1)
        assert abs(sharded.estimate() - 30_000) / 30_000 < 0.25

    def test_windows_use_fresh_streams(self):
        """Same per-window traffic, yet successive windows draw from
        unrelated streams — estimates differ across windows."""
        sharded = _sharded(seed=8)
        sharded.add(100_000, shard=0)
        first = sharded.estimate()
        sharded.reset()
        sharded.add(100_000, shard=0)
        assert sharded.estimate() != first

    def test_reset_is_deterministic(self):
        def run():
            sharded = _sharded(seed=9)
            sharded.add(20_000, shard=2)
            sharded.reset()
            sharded.add(20_000, shard=2)
            return sharded.estimate()

        assert run() == run()
