"""Tests for the bank's flattened batch-consume paths.

``consume_counts`` must be bit-identical to calling ``record`` once per
pair in the same order; ``consume_batch`` must be bit-identical to the
coalescing-buffer flush holding the same batch, whether the aggregation
ran through numpy or the pure-python fallback.
"""

from __future__ import annotations

import pytest

import repro.analytics.counter_bank as counter_bank_module
from repro.analytics.counter_bank import CounterBank
from repro.core.factory import make_counter
from repro.errors import ParameterError


def _bank(seed: int = 11, track_truth: bool = True) -> CounterBank:
    return CounterBank(
        lambda rng: make_counter("simplified_ny", resolution=1024, rng=rng),
        seed=seed,
        track_truth=track_truth,
    )


_PAIRS = [
    ("a", 3),
    ("b", 700),
    ("a", 41),
    ("c", 0),
    ("d", 1),
    ("b", 5),
    ("a", 1200),
]


def _assert_same_bank(left: CounterBank, right: CounterBank) -> None:
    assert sorted(left.keys()) == sorted(right.keys())
    for key in left.keys():
        assert left.estimate(key) == right.estimate(key)
        assert left.truth(key) == right.truth(key)
    assert left.total_state_bits() == right.total_state_bits()


class TestConsumeCounts:
    def test_bit_identical_to_record_loop(self):
        looped, flattened = _bank(), _bank()
        for key, count in _PAIRS:
            looped.record(key, count)
        applied = flattened.consume_counts(_PAIRS)
        assert applied == sum(count for _, count in _PAIRS)
        _assert_same_bank(looped, flattened)

    def test_per_unit_matches_record_per_unit(self):
        looped, flattened = _bank(), _bank()
        for key, count in _PAIRS:
            looped.record_per_unit(key, count)
        flattened.consume_counts(_PAIRS, per_unit=True)
        _assert_same_bank(looped, flattened)

    def test_zero_counts_do_not_materialize(self):
        bank = _bank()
        assert bank.consume_counts([("z", 0)]) == 0
        assert "z" not in bank

    def test_negative_count_rejected(self):
        with pytest.raises(ParameterError):
            _bank().consume_counts([("a", 1), ("b", -2)])

    def test_untracked_truth(self):
        bank = _bank(track_truth=False)
        assert bank.consume_counts([("a", 10), ("a", 5)]) == 15
        with pytest.raises(ParameterError):
            bank.truth("a")


class TestConsumeBatch:
    def _batch(self, copies: int = 20):
        keys, counts = [], []
        for i in range(copies):
            for key, count in _PAIRS:
                keys.append(key)
                counts.append(count + i)
        return keys, counts

    def test_matches_coalesced_flush(self):
        keys, counts = self._batch()
        assert len(keys) >= 64  # large enough for the numpy path
        batched, flushed = _bank(), _bank()
        applied = batched.consume_batch(keys, counts)
        aggregated: dict[str, int] = {}
        for key, count in zip(keys, counts):
            aggregated[key] = aggregated.get(key, 0) + count
        assert applied == flushed.consume_counts(sorted(aggregated.items()))
        _assert_same_bank(batched, flushed)

    def test_numpy_and_fallback_agree(self, monkeypatch):
        keys, counts = self._batch()
        default = _bank()
        default.consume_batch(keys, counts)
        monkeypatch.setattr(counter_bank_module, "_np", None)
        fallback = _bank()
        fallback.consume_batch(keys, counts)
        _assert_same_bank(default, fallback)

    def test_small_batches(self):
        bank = _bank()
        assert bank.consume_batch([], []) == 0
        assert bank.consume_batch(["a", "a", "b"], [1, 2, 3]) == 6
        assert bank.truth("a") == 3
        assert bank.truth("b") == 3

    def test_validation(self):
        bank = _bank()
        with pytest.raises(ParameterError):
            bank.consume_batch(["a", "b"], [1])
        with pytest.raises(ParameterError):
            bank.consume_batch(["a", "b"], [1, -1])
        keys, counts = self._batch()
        counts[-1] = -5
        with pytest.raises(ParameterError):
            bank.consume_batch(keys, counts)  # numpy path validates too


class TestRecordPerUnit:
    def test_tracks_truth_and_skips_zero(self):
        bank = _bank()
        bank.record_per_unit("k", 12)
        bank.record_per_unit("k")
        bank.record_per_unit("z", 0)
        assert bank.truth("k") == 13
        assert "z" not in bank
        with pytest.raises(ParameterError):
            bank.record_per_unit("k", -1)
