"""Tests for the many-counter analytics bank."""

from __future__ import annotations

import pytest

from repro.analytics.counter_bank import CounterBank
from repro.core.morris import MorrisCounter
from repro.core.nelson_yu import NelsonYuCounter
from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import zipf_workload


def _morris_bank(seed: int = 0, track_truth: bool = True) -> CounterBank:
    return CounterBank(
        lambda rng: MorrisCounter(0.01, rng=rng),
        seed=seed,
        track_truth=track_truth,
    )


class TestRecording:
    def test_lazy_creation(self):
        bank = _morris_bank()
        assert len(bank) == 0
        bank.record("a")
        bank.record("b", 5)
        assert len(bank) == 2
        assert "a" in bank and "c" not in bank

    def test_truth_tracking(self):
        bank = _morris_bank()
        bank.record("page", 100)
        bank.record("page", 50)
        assert bank.truth("page") == 150
        assert bank.truth("unseen") == 0

    def test_estimates_track_truth(self):
        bank = _morris_bank()
        bank.record("x", 10_000)
        assert abs(bank.estimate("x") - 10_000) / 10_000 < 0.5

    def test_unseen_estimate_is_zero(self):
        assert _morris_bank().estimate("nope") == 0.0

    def test_negative_count_rejected(self):
        with pytest.raises(ParameterError):
            _morris_bank().record("k", -1)

    def test_consume_events(self):
        bank = _morris_bank()
        events = zipf_workload(BitBudgetedRandom(1), 20, 500)
        assert bank.consume(events) == 500

    def test_consume_weighted_events(self):
        from repro.stream.workload import KeyedEvent

        bank = _morris_bank()
        events = [KeyedEvent("a", 100), KeyedEvent("b"), KeyedEvent("a", 7)]
        assert bank.consume(events) == 108
        assert bank.truth("a") == 107
        assert bank.truth("b") == 1

    def test_zero_count_does_not_materialize(self):
        from repro.stream.workload import KeyedEvent

        bank = _morris_bank()
        assert bank.consume([KeyedEvent("x", 0)]) == 0
        bank.record("y", 0)
        assert len(bank) == 0
        assert bank.total_state_bits() == 0
        assert bank.top_keys(5) == []

    def test_negative_event_count_rejected(self):
        from repro.stream.workload import KeyedEvent

        with pytest.raises(ParameterError):
            KeyedEvent("a", -1)


class TestDeterminism:
    def test_same_seed_same_estimates(self):
        banks = [_morris_bank(seed=7) for _ in range(2)]
        for bank in banks:
            for _ in range(3):
                bank.record("k", 1000)
        assert banks[0].estimate("k") == banks[1].estimate("k")

    def test_per_key_streams_differ(self):
        bank = _morris_bank(seed=7)
        bank.record("a", 50_000)
        bank.record("b", 50_000)
        # With independent streams, identical estimates are vanishingly
        # unlikely at this a and count.
        assert bank.estimate("a") != bank.estimate("b")


class TestReporting:
    def test_top_keys(self):
        bank = _morris_bank()
        bank.record("big", 50_000)
        bank.record("small", 10)
        top = bank.top_keys(1)
        assert top[0][0] == "big"

    def test_top_keys_matches_full_sort(self):
        """The heap-based top-k agrees with a full sort, ties included."""
        bank = CounterBank(lambda rng: NelsonYuCounter(0.25, 10, rng=rng))
        for i in range(40):
            bank.record(f"key-{i:02d}", 1 + i % 5)  # deliberate ties
        full = sorted(
            ((key, bank.estimate(key)) for key in bank.keys()),
            key=lambda pair: (-pair[1], pair[0]),
        )
        for k in (0, 1, 7, 40, 100):
            assert bank.top_keys(k) == full[:k]

    def test_error_report_aggregates(self):
        bank = _morris_bank()
        for key, count in [("a", 5000), ("b", 20_000), ("c", 100)]:
            bank.record(key, count)
        report = bank.error_report()
        assert report.n_keys == 3
        assert report.total_events == 25_100
        assert report.max_relative_error >= report.mean_relative_error

    def test_memory_accounting(self):
        bank = _morris_bank()
        bank.record("a", 100_000)
        bank.record("b", 100_000)
        assert bank.total_state_bits() < bank.total_exact_bits() * 2

    def test_track_truth_false_blocks_reports(self):
        bank = _morris_bank(track_truth=False)
        bank.record("a", 10)
        with pytest.raises(ParameterError):
            bank.truth("a")
        with pytest.raises(ParameterError):
            bank.error_report()


class TestWithNelsonYu:
    def test_bank_of_ny_counters(self):
        bank = CounterBank(
            lambda rng: NelsonYuCounter(0.25, 10, rng=rng), seed=1
        )
        events = zipf_workload(BitBudgetedRandom(2), 30, 2000)
        bank.consume(events)
        report = bank.error_report()
        # Epoch-0 exactness: these small counts are exact.
        assert report.max_relative_error == 0.0
