"""Tests for bank error reports."""

from __future__ import annotations

import pytest

from repro.analytics.report import BankErrorReport, KeyError_
from repro.errors import ParameterError


def _entries() -> list[KeyError_]:
    return [
        KeyError_("a", truth=100, estimate=110.0),
        KeyError_("b", truth=200, estimate=200.0),
        KeyError_("c", truth=50, estimate=40.0),
    ]


class TestKeyError:
    def test_relative_error(self):
        assert KeyError_("k", 100, 110.0).relative_error == pytest.approx(0.1)

    def test_zero_truth(self):
        assert KeyError_("k", 0, 0.0).relative_error == 0.0


class TestBankErrorReport:
    def test_aggregation(self):
        report = BankErrorReport.from_entries(_entries(), total_state_bits=99)
        assert report.n_keys == 3
        assert report.total_events == 350
        assert report.max_relative_error == pytest.approx(0.2)
        assert report.worst_key == "c"
        assert report.mean_relative_error == pytest.approx(0.1)
        assert report.total_state_bits == 99

    def test_fraction_within(self):
        report = BankErrorReport.from_entries(_entries(), total_state_bits=0)
        assert report.fraction_within(_entries(), 0.15) == pytest.approx(2 / 3)
        assert report.fraction_within(_entries(), 0.5) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            BankErrorReport.from_entries([], total_state_bits=0)

    def test_str_contains_worst_key(self):
        report = BankErrorReport.from_entries(_entries(), total_state_bits=0)
        assert "c" in str(report)
