"""Tests for the command-line interfaces (repro.cli + bench scripts)."""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import urllib.request

import pytest

from repro.cli import build_parser, main

_REPO = pathlib.Path(__file__).resolve().parents[1]
_BENCH_CLUSTER = _REPO / "benchmarks" / "bench_cluster.py"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    def test_figure1_defaults(self):
        args = build_parser().parse_args(["figure1"])
        assert args.trials == 1000
        assert args.bits == 17


class TestCommands:
    def test_count_nelson_yu(self, capsys):
        assert main(["count", "--algorithm", "nelson_yu", "--n", "50000"]) == 0
        out = capsys.readouterr().out
        assert "nelson_yu" in out
        assert "rel.err" in out

    def test_count_morris_with_explicit_a(self, capsys):
        assert (
            main(
                [
                    "count",
                    "--algorithm",
                    "morris",
                    "--n",
                    "10000",
                    "--a",
                    "0.01",
                ]
            )
            == 0
        )
        assert "morris" in capsys.readouterr().out

    def test_count_all_registry_algorithms(self, capsys):
        for algorithm in (
            "morris",
            "morris_plus",
            "nelson_yu",
            "simplified_ny",
            "csuros",
            "saturating",
            "exact",
        ):
            assert (
                main(["count", "--algorithm", algorithm, "--n", "5000"]) == 0
            ), algorithm

    def test_figure1_small(self, capsys):
        assert main(["figure1", "--trials", "40"]) == 0
        out = capsys.readouterr().out
        assert "KS distance" in out
        assert "% of runs" in out

    def test_appendix_a(self, capsys):
        assert main(["appendix-a"]) == 0
        assert "vanilla" in capsys.readouterr().out

    def test_space_delta(self, capsys):
        assert main(["space", "--sweep", "delta", "--trials", "3"]) == 0
        assert "NelsonYu" in capsys.readouterr().out

    def test_space_n(self, capsys):
        assert main(["space", "--sweep", "n", "--trials", "3"]) == 0
        assert "exact counter bits" in capsys.readouterr().out

    def test_floor(self, capsys):
        assert main(["floor"]) == 0
        assert "a=1 miss" in capsys.readouterr().out

    def test_lowerbound(self, capsys):
        assert main(["lowerbound", "--t", "1024"]) == 0
        out = capsys.readouterr().out
        assert "broken" in out
        assert "predicted min bits" in out

    def test_merge_morris(self, capsys):
        assert main(["merge", "--family", "morris", "--trials", "300"]) == 0
        assert "chi^2" in capsys.readouterr().out

    def test_tradeoff(self, capsys):
        assert main(["tradeoff", "--trials", "20"]) == 0
        assert "bits" in capsys.readouterr().out

    def test_bank(self, capsys):
        assert main(["bank", "--counters", "30"]) == 0
        assert "bits/ctr" in capsys.readouterr().out

    def test_ablation_transition(self, capsys):
        assert main(["ablation", "--which", "transition"]) == 0
        assert "8/a" in capsys.readouterr().out

    def test_ablation_chernoff(self, capsys):
        assert main(["ablation", "--which", "chernoff", "--trials", "30"]) == 0
        assert "epoch dispersion" in capsys.readouterr().out

    def test_ablation_rounding(self, capsys):
        assert main(["ablation", "--which", "rounding", "--trials", "30"]) == 0
        assert "dyadic" in capsys.readouterr().out

    def test_cluster(self, capsys):
        assert (
            main(
                [
                    "cluster",
                    "--nodes",
                    "3",
                    "--events",
                    "5000",
                    "--keys",
                    "100",
                    "--checkpoint-every",
                    "2000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "node-2" in out
        assert "events/s" in out
        assert "global error" in out

    def test_cluster_with_kill(self, capsys):
        assert (
            main(
                [
                    "cluster",
                    "--nodes",
                    "2",
                    "--events",
                    "4000",
                    "--keys",
                    "50",
                    "--checkpoint-every",
                    "1000",
                    "--kill",
                    "1@2000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "1 node recoveries" in out

    def test_cluster_bad_kill_spec(self):
        with pytest.raises(SystemExit):
            main(["cluster", "--events", "100", "--kill", "nonsense"])

    def test_cluster_gossip_aggregation(self, capsys):
        assert (
            main(
                [
                    "cluster",
                    "--nodes",
                    "3",
                    "--events",
                    "5000",
                    "--keys",
                    "100",
                    "--algorithm",
                    "exact",
                    "--checkpoint-every",
                    "2000",
                    "--aggregation",
                    "gossip",
                    "--gossip-fanout",
                    "2",
                    "--gossip-every",
                    "1500",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "push-pull rounds" in out
        assert "max staleness" in out
        assert "gossip aggregation: fanout 2" in out

    def test_cluster_gossip_every_requires_gossip_aggregation(self):
        with pytest.raises(SystemExit):
            main(["cluster", "--events", "100", "--gossip-every", "50"])

    def test_cluster_gossip_fanout_requires_gossip_aggregation(self):
        with pytest.raises(SystemExit):
            main(["cluster", "--events", "100", "--gossip-fanout", "3"])

    def test_cluster_file_storage(self, capsys, tmp_path):
        assert (
            main(
                [
                    "cluster",
                    "--nodes",
                    "2",
                    "--events",
                    "4000",
                    "--keys",
                    "50",
                    "--checkpoint-every",
                    "1000",
                    "--storage",
                    "file",
                    "--storage-dir",
                    str(tmp_path),
                    "--wal-segment",
                    "500",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "bytes retained" in out
        assert "recover_cluster" in out
        assert (tmp_path / "manifest.json").exists()
        assert list(tmp_path.glob("checkpoints/node-*.ckpt"))

    def test_cluster_file_storage_requires_dir(self):
        with pytest.raises(SystemExit):
            main(["cluster", "--events", "100", "--storage", "file"])

    def test_cluster_storage_dir_requires_file_backend(self):
        with pytest.raises(SystemExit):
            main(
                ["cluster", "--events", "100", "--storage-dir", "/tmp/x"]
            )

    def test_cluster_storage_overwrite_requires_file_backend(self):
        with pytest.raises(SystemExit):
            main(["cluster", "--events", "100", "--storage-overwrite"])

    def test_cluster_parallel_ingest(self, capsys):
        assert (
            main(
                [
                    "cluster",
                    "--nodes",
                    "3",
                    "--events",
                    "6000",
                    "--keys",
                    "100",
                    "--checkpoint-every",
                    "2000",
                    "--workers",
                    "3",
                    "--batch",
                    "32",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "parallel ingest: 3 workers, delivery batch 32" in out
        assert "events/s" in out

    def test_cluster_rejects_zero_workers(self):
        with pytest.raises(SystemExit):
            main(["cluster", "--events", "100", "--workers", "0"])

    def test_cluster_plan_process(self, capsys):
        assert (
            main(
                [
                    "cluster",
                    "--plan",
                    "process",
                    "--nodes",
                    "2",
                    "--events",
                    "3000",
                    "--keys",
                    "100",
                    "--checkpoint-every",
                    "1500",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "process plan: one worker process per node" in out
        assert "events/s" in out

    def test_cluster_plan_serial_explicit(self, capsys):
        assert (
            main(
                [
                    "cluster",
                    "--plan",
                    "serial",
                    "--events",
                    "2000",
                    "--keys",
                    "100",
                ]
            )
            == 0
        )
        assert "events/s" in capsys.readouterr().out

    def test_cluster_unknown_plan_exits_2_listing_names(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["cluster", "--plan", "threads", "--events", "100"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        for name in ("auto", "serial", "parallel", "process"):
            assert name in err

    def test_cluster_plan_process_rejects_workers(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "cluster",
                    "--plan",
                    "process",
                    "--workers",
                    "4",
                    "--events",
                    "100",
                ]
            )

    def test_cluster_serve_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["cluster", "serve"])
        assert excinfo.value.code == 2

    def test_cluster_serve_round_trip(self, capsys, tmp_path):
        assert (
            main(
                [
                    "cluster",
                    "serve",
                    "up",
                    "--dir",
                    str(tmp_path),
                    "--nodes",
                    "2",
                    "--timeout",
                    "30",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 workers up" in out
        try:
            assert main(["cluster", "serve", "ps", "--dir", str(tmp_path)]) == 0
            assert capsys.readouterr().out.count("running") == 2
            assert (
                main(["cluster", "serve", "status", "--dir", str(tmp_path)])
                == 0
            )
            assert capsys.readouterr().out.count("running") == 2
        finally:
            assert (
                main(["cluster", "serve", "down", "--dir", str(tmp_path)])
                == 0
            )
        assert capsys.readouterr().out.count("stopped") == 2
        with pytest.raises(SystemExit, match="no fleet"):
            main(["cluster", "serve", "ps", "--dir", str(tmp_path)])

    def test_cluster_serve_http_rejects_bad_port(self):
        with pytest.raises(
            SystemExit, match="--serve-http expects a port"
        ):
            main(
                ["cluster", "--events", "100", "--serve-http", "99999"]
            )

    def test_cluster_serve_http_round_trip(self):
        """--serve-http serves the finished run until SIGTERM."""
        env = dict(os.environ)
        src = str(_REPO / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "cluster",
                "--events",
                "2000",
                "--keys",
                "50",
                "--aggregation",
                "gossip",
                "--serve-http",
                "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            url = None
            for line in process.stdout:
                if line.startswith("serving: "):
                    url = line.split()[1]
                    break
            assert url, "server never announced its URL"
            with urllib.request.urlopen(
                url + "/healthz", timeout=10
            ) as reply:
                assert json.loads(reply.read())["status"] == "ok"
            with urllib.request.urlopen(
                url + "/v1/topk?k=3", timeout=10
            ) as reply:
                assert json.loads(reply.read())["k"] == 3
        finally:
            process.send_signal(signal.SIGTERM)
            remainder = process.stdout.read()
            assert process.wait(timeout=30) == 0
        assert "serving stopped" in remainder

    def test_cluster_serve_query_requires_subcommand(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["cluster", "serve", "query"])
        assert excinfo.value.code == 2

    def test_cluster_serve_query_up_without_fleet_is_loud(
        self, tmp_path
    ):
        with pytest.raises(SystemExit, match="no fleet"):
            main(
                ["cluster", "serve", "query", "up", "--dir", str(tmp_path)]
            )

    def test_cluster_serve_query_status_without_daemon_is_loud(
        self, tmp_path
    ):
        with pytest.raises(SystemExit, match="no query daemon"):
            main(
                [
                    "cluster",
                    "serve",
                    "query",
                    "status",
                    "--dir",
                    str(tmp_path),
                ]
            )

    def test_cluster_serve_query_round_trip(self, capsys, tmp_path):
        """Fleet up → query daemon up → HTTP reads → down → down."""
        assert (
            main(
                [
                    "cluster",
                    "serve",
                    "up",
                    "--dir",
                    str(tmp_path),
                    "--nodes",
                    "2",
                    "--timeout",
                    "30",
                ]
            )
            == 0
        )
        capsys.readouterr()
        try:
            assert (
                main(
                    [
                        "cluster",
                        "serve",
                        "query",
                        "up",
                        "--dir",
                        str(tmp_path),
                        "--timeout",
                        "30",
                    ]
                )
                == 0
            )
            out = capsys.readouterr().out
            assert "query daemon: pid" in out
            url = next(
                token
                for token in out.split()
                if token.startswith("http://")
            )
            with urllib.request.urlopen(
                url + "/healthz", timeout=10
            ) as reply:
                payload = json.loads(reply.read())
            assert payload["status"] == "ok"
            assert payload["replicas"] == [0, 1]
            with urllib.request.urlopen(
                url + "/v1/view", timeout=10
            ) as reply:
                view = json.loads(reply.read())
            assert view["staleness"]["consistency"] == "replica"
            assert (
                main(
                    [
                        "cluster",
                        "serve",
                        "query",
                        "status",
                        "--dir",
                        str(tmp_path),
                    ]
                )
                == 0
            )
            assert "running" in capsys.readouterr().out
        finally:
            assert (
                main(
                    [
                        "cluster",
                        "serve",
                        "query",
                        "down",
                        "--dir",
                        str(tmp_path),
                    ]
                )
                == 0
            )
            assert "query daemon:" in capsys.readouterr().out
            assert (
                main(["cluster", "serve", "down", "--dir", str(tmp_path)])
                == 0
            )

    def test_cluster_wal_fsync_requires_file_backend(self):
        with pytest.raises(SystemExit):
            main(["cluster", "--events", "100", "--wal-fsync", "8"])

    def test_cluster_metrics_out_writes_strict_json(
        self, capsys, tmp_path
    ):
        metrics_path = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "cluster",
                    "--nodes",
                    "2",
                    "--events",
                    "3000",
                    "--keys",
                    "50",
                    "--checkpoint-every",
                    "1000",
                    "--metrics-out",
                    str(metrics_path),
                ]
            )
            == 0
        )
        assert "telemetry snapshot" in capsys.readouterr().out
        snapshot = json.loads(metrics_path.read_text(encoding="utf-8"))
        assert set(snapshot) == {
            "counters",
            "gauges",
            "histograms",
            "stages",
        }
        delivered = sum(
            value
            for series, value in snapshot["counters"].items()
            if series.startswith("events_delivered_total")
        )
        assert delivered == 3000
        # Strict JSON: a re-dump with allow_nan=False must round-trip.
        json.dumps(snapshot, sort_keys=True, allow_nan=False)

    def test_cluster_metrics_out_prom_renders_prometheus(self, tmp_path):
        metrics_path = tmp_path / "metrics.prom"
        assert (
            main(
                [
                    "cluster",
                    "--nodes",
                    "2",
                    "--events",
                    "2000",
                    "--keys",
                    "50",
                    "--metrics-out",
                    str(metrics_path),
                ]
            )
            == 0
        )
        text = metrics_path.read_text(encoding="utf-8")
        assert "# TYPE events_delivered_total counter" in text
        assert 'events_delivered_total{node="0"}' in text

    def test_cluster_trace_out_writes_jsonl(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "cluster",
                    "--nodes",
                    "2",
                    "--events",
                    "3000",
                    "--keys",
                    "50",
                    "--checkpoint-every",
                    "1000",
                    "--kill",
                    "1@1500",
                    "--trace-out",
                    str(trace_path),
                ]
            )
            == 0
        )
        assert "structured trace" in capsys.readouterr().out
        records = [
            json.loads(line)
            for line in trace_path.read_text(
                encoding="utf-8"
            ).splitlines()
        ]
        kinds = {record["type"] for record in records}
        assert {
            "event_delivered",
            "checkpoint_fence",
            "crash",
            "recover",
        } <= kinds
        assert all("position" in record for record in records)

    def test_cluster_no_telemetry_still_runs(self, capsys):
        assert (
            main(
                [
                    "cluster",
                    "--nodes",
                    "2",
                    "--events",
                    "2000",
                    "--keys",
                    "50",
                    "--no-telemetry",
                ]
            )
            == 0
        )
        assert "events/s" in capsys.readouterr().out

    def test_cluster_no_telemetry_refuses_metrics_out(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "cluster",
                    "--events",
                    "100",
                    "--no-telemetry",
                    "--metrics-out",
                    "/tmp/metrics.json",
                ]
            )

    def test_cluster_no_telemetry_refuses_trace_out(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "cluster",
                    "--events",
                    "100",
                    "--no-telemetry",
                    "--trace-out",
                    "/tmp/trace.jsonl",
                ]
            )

    def test_cluster_refuses_existing_storage_dir(self, tmp_path):
        args = [
            "cluster",
            "--nodes",
            "2",
            "--events",
            "2000",
            "--keys",
            "50",
            "--storage",
            "file",
            "--storage-dir",
            str(tmp_path),
        ]
        assert main(args) == 0
        with pytest.raises(SystemExit):
            main(args)  # same dir again: refused without overwrite
        assert main([*args, "--storage-overwrite"]) == 0


class TestBenchClusterScenarioRegistry:
    """The bench script's --scenario flag is a real argparse choice:
    an unknown scenario exits 2 with the valid names listed, never a
    traceback."""

    def _run(self, *args: str) -> subprocess.CompletedProcess:
        env = dict(os.environ)
        src = str(_REPO / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src
        )
        return subprocess.run(
            [sys.executable, str(_BENCH_CLUSTER), *args],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )

    def test_unknown_scenario_is_a_clean_error(self):
        completed = self._run("--scenario", "bogus")
        assert completed.returncode == 2
        assert "invalid choice: 'bogus'" in completed.stderr
        for scenario in (
            "scaling", "elastic", "durability", "throughput", "gossip",
            "serving",
        ):
            assert scenario in completed.stderr
        assert "Traceback" not in completed.stderr

    def test_missing_scenario_value_is_a_clean_error(self):
        completed = self._run("--scenario")
        assert completed.returncode == 2
        assert "expected one argument" in completed.stderr
        assert "Traceback" not in completed.stderr

    def test_help_lists_scenarios(self):
        completed = self._run("--help")
        assert completed.returncode == 0
        for scenario in (
            "scaling", "elastic", "durability", "throughput", "gossip"
        ):
            assert scenario in completed.stdout
