"""Tests for the running space tracker."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.memory.tracker import SpaceTracker


class TestSpaceTracker:
    def test_initial_state(self):
        tracker = SpaceTracker()
        assert tracker.current_bits == 0
        assert tracker.max_bits == 0
        assert tracker.observations == 0

    def test_tracks_maximum(self):
        tracker = SpaceTracker()
        for bits in (3, 9, 5, 12, 7):
            tracker.observe(bits)
        assert tracker.max_bits == 12
        assert tracker.current_bits == 7
        assert tracker.observations == 5

    def test_reset(self):
        tracker = SpaceTracker()
        tracker.observe(10)
        tracker.reset()
        assert tracker.max_bits == 0
        assert tracker.observations == 0

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            SpaceTracker().observe(-1)
