"""Tests for the bit-cost model."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.memory.model import (
    SpaceModel,
    fields_bits,
    uint_bits,
    uint_capacity_bits,
)


class TestUintBits:
    def test_zero_takes_one_bit(self):
        assert uint_bits(0) == 1

    def test_powers_of_two(self):
        assert uint_bits(1) == 1
        assert uint_bits(2) == 2
        assert uint_bits(255) == 8
        assert uint_bits(256) == 9

    def test_matches_formula(self):
        for v in range(1, 2000):
            assert uint_bits(v) == v.bit_length()

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            uint_bits(-1)


class TestCapacityBits:
    def test_capacity(self):
        assert uint_capacity_bits(0) == 1
        assert uint_capacity_bits(7) == 3
        assert uint_capacity_bits(8) == 4

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            uint_capacity_bits(-1)


class TestFieldsBits:
    def test_sums_fields(self):
        assert fields_bits(3, 0, 255) == 2 + 1 + 8


class TestSpaceModel:
    def test_two_conventions_exist(self):
        assert SpaceModel.AUTOMATON is not SpaceModel.WORD_RAM
        assert SpaceModel("automaton") is SpaceModel.AUTOMATON
