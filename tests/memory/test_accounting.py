"""Tests for cross-trial space histograms."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.memory.accounting import SpaceHistogram


class TestSpaceHistogram:
    def test_summary(self):
        histogram = SpaceHistogram()
        for bits in (10, 10, 11, 12, 10):
            histogram.add(bits)
        summary = histogram.summary()
        assert summary.trials == 5
        assert summary.min_bits == 10
        assert summary.max_bits == 12
        assert summary.p50_bits == 10
        assert summary.mean_bits == pytest.approx(53 / 5)

    def test_quantiles(self):
        histogram = SpaceHistogram()
        for bits in range(1, 101):
            histogram.add(bits)
        assert histogram.quantile(0.5) == 50
        assert histogram.quantile(0.99) == 99
        assert histogram.quantile(1.0) == 100
        assert histogram.quantile(0.0) <= 1

    def test_tail_fraction(self):
        histogram = SpaceHistogram()
        for bits in (8, 8, 8, 9, 12):
            histogram.add(bits)
        assert histogram.tail_fraction(8) == pytest.approx(2 / 5)
        assert histogram.tail_fraction(12) == 0.0

    def test_empty_errors(self):
        with pytest.raises(ParameterError):
            SpaceHistogram().summary()
        with pytest.raises(ParameterError):
            SpaceHistogram().quantile(0.5)
        with pytest.raises(ParameterError):
            SpaceHistogram().tail_fraction(4)

    def test_bad_inputs(self):
        histogram = SpaceHistogram()
        with pytest.raises(ParameterError):
            histogram.add(-1)
        histogram.add(4)
        with pytest.raises(ParameterError):
            histogram.quantile(1.5)

    def test_string_rendering(self):
        histogram = SpaceHistogram()
        histogram.add(17)
        assert "17b" in str(histogram.summary())
