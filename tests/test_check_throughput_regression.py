"""The throughput regression gate: skip, pass, and fail behavior."""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

_SCRIPT = (
    pathlib.Path(__file__).resolve().parents[1]
    / "scripts"
    / "check_throughput_regression.py"
)
_spec = importlib.util.spec_from_file_location(
    "check_throughput_regression", _SCRIPT
)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def _fresh_payload(speedup: float, events: int = 20_000, cpus: int = 8):
    return {
        "benchmark": "cluster_throughput",
        "cpus": cpus,
        "workload": {"kind": "weighted_zipf", "events": events},
        "skip_ahead_speedup": speedup,
    }


def _trajectory(speedup: float = 10.0, smoke: float = 8.0):
    return {
        "benchmark": "cluster_throughput_trajectory",
        "rows": [
            {
                "date": "2026-08-08",
                "cpus": 8,
                "skip_ahead_speedup": speedup,
                "skip_ahead_speedup_smoke": smoke,
            }
        ],
    }


@pytest.fixture
def paths(tmp_path, monkeypatch):
    fresh = tmp_path / "BENCH_cluster_throughput.json"
    trajectory = tmp_path / "BENCH_cluster_throughput_trajectory.json"
    monkeypatch.setattr(gate, "FRESH", fresh)
    monkeypatch.setattr(gate, "TRAJECTORY", trajectory)
    return fresh, trajectory


def _write(path, payload) -> None:
    path.write_text(json.dumps(payload), encoding="utf-8")


class TestSkips:
    def test_no_trajectory_is_a_bootstrap_skip(self, paths):
        fresh, _ = paths
        _write(fresh, _fresh_payload(9.0))
        assert gate.main([]) == 0

    def test_empty_trajectory_rows_skip(self, paths):
        fresh, trajectory = paths
        _write(fresh, _fresh_payload(9.0))
        _write(trajectory, {"rows": []})
        assert gate.main([]) == 0

    def test_single_core_runner_still_gates(self, paths):
        # The speedup is a serial-vs-serial ratio on one machine, so a
        # starved runner is no excuse: a real regression must fail even
        # at cpus=1.
        fresh, trajectory = paths
        _write(fresh, _fresh_payload(0.5, cpus=1))
        _write(trajectory, _trajectory())
        assert gate.main([]) == 1

    def test_missing_fresh_artifact_fails(self, paths):
        _, trajectory = paths
        _write(trajectory, _trajectory())
        assert gate.main([]) == 1


class TestGate:
    def test_smoke_within_tolerance_passes(self, paths):
        fresh, trajectory = paths
        # Smoke runs compare against the smoke-size reference (8.0);
        # 7.0 is within the 20% floor of 6.4.
        _write(fresh, _fresh_payload(7.0))
        _write(trajectory, _trajectory(speedup=10.0, smoke=8.0))
        assert gate.main([]) == 0

    def test_smoke_regression_fails(self, paths):
        fresh, trajectory = paths
        _write(fresh, _fresh_payload(6.0))
        _write(trajectory, _trajectory(speedup=10.0, smoke=8.0))
        assert gate.main([]) == 1

    def test_full_run_compares_against_full_baseline(self, paths):
        fresh, trajectory = paths
        # 8.5 would fail the smoke floor only if compared to the wrong
        # key; against the full-size 10.0 baseline it passes (floor 8.0).
        _write(
            fresh, _fresh_payload(8.5, events=gate.FULL_RUN_EVENTS)
        )
        _write(trajectory, _trajectory(speedup=10.0, smoke=9.9))
        assert gate.main([]) == 0

    def test_full_run_regression_fails(self, paths):
        fresh, trajectory = paths
        _write(
            fresh, _fresh_payload(7.0, events=gate.FULL_RUN_EVENTS)
        )
        _write(trajectory, _trajectory(speedup=10.0))
        assert gate.main([]) == 1

    def test_max_regression_flag_widens_the_floor(self, paths):
        fresh, trajectory = paths
        _write(fresh, _fresh_payload(5.0))
        _write(trajectory, _trajectory(smoke=8.0))
        assert gate.main([]) == 1
        assert gate.main(["--max-regression", "0.5"]) == 0

    def test_latest_row_is_the_reference(self, paths):
        fresh, trajectory = paths
        doc = _trajectory(smoke=20.0)
        doc["rows"].append(dict(doc["rows"][0], skip_ahead_speedup_smoke=8.0))
        _write(fresh, _fresh_payload(7.0))
        _write(trajectory, doc)
        assert gate.main([]) == 0
