"""Tests for approximate reservoir sampling."""

from __future__ import annotations

import math
from collections import Counter

import pytest

from repro.applications.reservoir import ApproximateReservoir
from repro.core.deterministic import ExactCounter
from repro.core.morris_plus import MorrisPlusCounter
from repro.errors import ParameterError


class TestWithExactCounter:
    """With an exact position counter this is classical reservoir
    sampling, so inclusion must be exactly uniform."""

    def test_fills_then_samples(self):
        reservoir = ApproximateReservoir(
            5, lambda rng: ExactCounter(rng=rng), seed=0
        )
        reservoir.consume(range(5))
        assert sorted(reservoir.sample) == [0, 1, 2, 3, 4]

    def test_inclusion_uniformity(self):
        k, n, trials = 4, 40, 3000
        counts: Counter[int] = Counter()
        for seed in range(trials):
            reservoir = ApproximateReservoir(
                k, lambda rng: ExactCounter(rng=rng), seed=seed
            )
            reservoir.consume(range(n))
            counts.update(reservoir.sample)
        expected = trials * k / n
        for item in range(n):
            assert abs(counts[item] - expected) < 7 * math.sqrt(expected), item


class TestWithApproximateCounter:
    def test_near_uniform_with_morris(self):
        """With a (1±ε) position counter inclusion is near-uniform."""
        k, n, trials = 4, 60, 3000
        counts: Counter[int] = Counter()
        for seed in range(trials):
            reservoir = ApproximateReservoir(
                k,
                lambda rng: MorrisPlusCounter.for_optimal(0.05, 0.01, rng=rng),
                seed=seed,
            )
            reservoir.consume(range(n))
            counts.update(reservoir.sample)
        expected = trials * k / n
        for item in range(n):
            # Allow ε-scale systematic deviation plus sampling noise.
            assert abs(counts[item] - expected) < 0.3 * expected + 7 * math.sqrt(
                expected
            ), item

    def test_position_counter_memory_small(self):
        reservoir = ApproximateReservoir(
            8,
            lambda rng: MorrisPlusCounter.for_optimal(0.1, 0.01, rng=rng),
            seed=1,
        )
        reservoir.consume(range(50_000))
        # log2(50000) ~ 16 bits exact; the Morris+ counter should be well
        # under twice that despite the deterministic prefix.
        assert reservoir.position_counter.state_bits() < 32


class TestInterface:
    def test_sample_never_exceeds_k(self):
        reservoir = ApproximateReservoir(
            3, lambda rng: ExactCounter(rng=rng), seed=2
        )
        reservoir.consume(range(100))
        assert len(reservoir.sample) == 3

    def test_validation(self):
        with pytest.raises(ParameterError):
            ApproximateReservoir(0, lambda rng: ExactCounter(rng=rng))
