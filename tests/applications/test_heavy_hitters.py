"""Tests for heavy hitters (SpaceSaving exact + approximate cells)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.applications.heavy_hitters import ApproxSpaceSaving, SpaceSaving
from repro.core.morris_plus import MorrisPlusCounter
from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import zipf_workload


def _stream(seed: int, n_keys: int = 100, n_events: int = 8000) -> list[str]:
    return [
        e.key
        for e in zipf_workload(
            BitBudgetedRandom(seed), n_keys, n_events, exponent=1.3
        )
    ]


class TestExactSpaceSaving:
    def test_overestimate_bounded(self):
        """SpaceSaving invariant: estimate - truth <= m/k."""
        stream = _stream(1)
        truth = Counter(stream)
        summary = SpaceSaving(k=20)
        summary.consume(stream)
        bound = len(stream) / 20
        for item, count in truth.items():
            estimate = summary.estimate(item)
            if estimate:
                assert count <= estimate <= count + bound

    def test_finds_true_heavy_hitters(self):
        stream = _stream(2)
        truth = Counter(stream)
        summary = SpaceSaving(k=25)
        summary.consume(stream)
        phi = 0.05
        reported = {item for item, _ in summary.heavy_hitters(phi)}
        for item, count in truth.items():
            if count > (phi + 1 / 25) * len(stream):
                assert item in reported, item

    def test_validation(self):
        with pytest.raises(ParameterError):
            SpaceSaving(0)
        with pytest.raises(ParameterError):
            SpaceSaving(3).heavy_hitters(0.0)


class TestApproxSpaceSaving:
    def _approx(self, k: int = 25, seed: int = 0) -> ApproxSpaceSaving:
        return ApproxSpaceSaving(
            k,
            lambda rng: MorrisPlusCounter.for_optimal(0.05, 0.01, rng=rng),
            seed=seed,
        )

    def test_finds_top_keys(self):
        stream = _stream(3)
        truth = Counter(stream)
        summary = self._approx()
        summary.consume(stream)
        top_truth = [item for item, _ in truth.most_common(3)]
        reported = {item for item, _ in summary.heavy_hitters(0.03)}
        for item in top_truth:
            assert item in reported, item

    def test_estimates_near_truth_for_heavies(self):
        stream = _stream(4)
        truth = Counter(stream)
        summary = self._approx()
        summary.consume(stream)
        m, k = len(stream), 25
        for item, count in truth.most_common(3):
            estimate = summary.estimate(item)
            assert estimate > 0
            # (1±ε) on the SpaceSaving value, which overestimates by <= m/k.
            assert count * 0.85 <= estimate <= (count + m / k) * 1.15

    def test_cell_count_bounded(self):
        stream = _stream(5)
        summary = self._approx(k=10)
        summary.consume(stream)
        assert len(summary._cells) <= 10

    def test_total_state_bits_reported(self):
        stream = _stream(6, n_events=2000)
        summary = self._approx(k=10)
        summary.consume(stream)
        assert summary.total_state_bits() > 0

    def test_validation(self):
        with pytest.raises(ParameterError):
            ApproxSpaceSaving(0, lambda rng: None)
        with pytest.raises(ParameterError):
            self._approx().heavy_hitters(1.0)
