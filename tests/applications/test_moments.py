"""Tests for frequency-moment estimation."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.applications.moments import FrequencyMomentEstimator
from repro.core.deterministic import ExactCounter
from repro.core.morris_plus import MorrisPlusCounter
from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import zipf_workload


def _stream(seed: int, n_keys: int, n_events: int) -> list[str]:
    return [
        e.key
        for e in zipf_workload(BitBudgetedRandom(seed), n_keys, n_events)
    ]


class TestExactMoment:
    def test_p_one_is_stream_length(self):
        freqs = {"a": 3, "b": 7}
        assert FrequencyMomentEstimator.exact_moment(freqs, 1.0) == 10.0

    def test_fractional_p(self):
        freqs = {"a": 4, "b": 9}
        assert FrequencyMomentEstimator.exact_moment(freqs, 0.5) == 5.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            FrequencyMomentEstimator.exact_moment({}, 1.5)


class TestEstimatorWithExactCounters:
    """With exact tail counters the only noise is position sampling."""

    def test_p1_unbiased(self):
        stream = _stream(1, 30, 3000)
        estimator = FrequencyMomentEstimator(
            1.0, 40, lambda rng: ExactCounter(rng=rng), seed=5
        )
        estimator.consume(stream)
        # For p = 1, each basic estimate is m*(r - (r-1)) = m exactly.
        assert estimator.estimate() == pytest.approx(len(stream))

    def test_p_half_close_to_truth(self):
        stream = _stream(2, 40, 4000)
        truth = FrequencyMomentEstimator.exact_moment(
            Counter(stream), 0.5
        )
        estimator = FrequencyMomentEstimator(
            0.5, 120, lambda rng: ExactCounter(rng=rng), seed=7
        )
        estimator.consume(stream)
        assert abs(estimator.estimate() - truth) / truth < 0.35


class TestEstimatorWithApproxCounters:
    def test_p_half_with_morris_plus(self):
        """The paper's use case: approximate counters as the subroutine."""
        stream = _stream(3, 40, 4000)
        truth = FrequencyMomentEstimator.exact_moment(Counter(stream), 0.5)
        estimator = FrequencyMomentEstimator(
            0.5,
            120,
            lambda rng: MorrisPlusCounter.for_optimal(0.1, 0.01, rng=rng),
            seed=11,
        )
        estimator.consume(stream)
        assert abs(estimator.estimate() - truth) / truth < 0.4


class TestInterface:
    def test_validation(self):
        with pytest.raises(ParameterError):
            FrequencyMomentEstimator(
                0.0, 5, lambda rng: ExactCounter(rng=rng)
            )
        with pytest.raises(ParameterError):
            FrequencyMomentEstimator(
                0.5, 0, lambda rng: ExactCounter(rng=rng)
            )

    def test_estimate_before_items_rejected(self):
        estimator = FrequencyMomentEstimator(
            0.5, 3, lambda rng: ExactCounter(rng=rng)
        )
        with pytest.raises(ParameterError):
            estimator.estimate()

    def test_stream_length_tracked(self):
        estimator = FrequencyMomentEstimator(
            1.0, 2, lambda rng: ExactCounter(rng=rng)
        )
        estimator.consume(["a", "b", "a"])
        assert estimator.stream_length == 3
