"""Tests for inversion counting (Fenwick substrate + approx tally)."""

from __future__ import annotations

import pytest

from repro.applications.inversions import (
    ApproxInversionCounter,
    FenwickTree,
    InversionCounter,
)
from repro.core.morris_plus import MorrisPlusCounter
from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom


def _brute_force_inversions(values: list[int]) -> int:
    return sum(
        1
        for i in range(len(values))
        for j in range(i + 1, len(values))
        if values[i] > values[j]
    )


class TestFenwickTree:
    def test_prefix_sums(self):
        tree = FenwickTree(10)
        for index in (2, 2, 5, 9):
            tree.add(index)
        assert tree.prefix_sum(1) == 0
        assert tree.prefix_sum(2) == 2
        assert tree.prefix_sum(5) == 3
        assert tree.prefix_sum(9) == 4
        assert tree.total() == 4

    def test_matches_naive_on_random_ops(self):
        rng = BitBudgetedRandom(3)
        size = 64
        tree = FenwickTree(size)
        naive = [0] * size
        for _ in range(500):
            index = rng.randint_below(size)
            amount = rng.randint(1, 3)
            tree.add(index, amount)
            naive[index] += amount
            probe = rng.randint_below(size)
            assert tree.prefix_sum(probe) == sum(naive[: probe + 1])

    def test_validation(self):
        with pytest.raises(ParameterError):
            FenwickTree(0)
        tree = FenwickTree(4)
        with pytest.raises(ParameterError):
            tree.add(4)
        with pytest.raises(ParameterError):
            tree.prefix_sum(4)


class TestExactInversions:
    def test_sorted_has_none(self):
        counter = InversionCounter(10)
        assert counter.consume(range(10)) == 0

    def test_reversed_has_max(self):
        n = 10
        counter = InversionCounter(n)
        assert counter.consume(reversed(range(n))) == n * (n - 1) // 2

    def test_matches_brute_force(self):
        rng = BitBudgetedRandom(5)
        for trial in range(20):
            values = list(range(30))
            rng.shuffle(values)
            counter = InversionCounter(30)
            assert counter.consume(values) == _brute_force_inversions(values)


class TestApproxInversions:
    def test_tracks_exact_closely(self):
        rng = BitBudgetedRandom(7)
        values = list(range(400))
        rng.shuffle(values)
        approx = ApproxInversionCounter(
            400,
            lambda r: MorrisPlusCounter.for_optimal(0.05, 0.01, rng=r),
            seed=1,
        )
        estimate = approx.consume(values)
        exact = approx.exact()
        assert exact == _inversions_check(values)
        assert abs(estimate - exact) / exact < 0.15

    def test_tally_memory_sublinear(self):
        rng = BitBudgetedRandom(9)
        values = list(range(1000))
        rng.shuffle(values)
        approx = ApproxInversionCounter(
            1000,
            lambda r: MorrisPlusCounter.for_optimal(0.1, 0.01, rng=r),
            seed=2,
        )
        approx.consume(values)
        # The Morris X register grows like log2((1/a) log(aN)) — for
        # these parameters ~14 bits, versus an exact tally's 18 and
        # growing only doubly-logarithmically from here.
        assert approx.tally_counter.morris.state_bits() <= 15


def _inversions_check(values: list[int]) -> int:
    counter = InversionCounter(len(values))
    return counter.consume(values)
