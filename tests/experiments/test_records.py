"""Tests for tables and summaries."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.records import TextTable, summarize


class TestTextTable:
    def test_renders_aligned(self):
        table = TextTable(["name", "value"])
        table.add_row("alpha", 1.5)
        table.add_row("b", 22)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0].startswith("name")
        assert "-----" in lines[1]
        assert "alpha" in lines[2]
        assert "22" in lines[3]

    def test_cell_count_checked(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ExperimentError):
            table.add_row(1)

    def test_empty_headers_rejected(self):
        with pytest.raises(ExperimentError):
            TextTable([])

    def test_float_formatting(self):
        table = TextTable(["x"])
        table.add_row(0.000123456789)
        assert "0.000123457" in table.render()


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.n == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.max == 4.0
        assert summary.p50 in (2.0, 3.0)

    def test_quantiles_ordered(self):
        summary = summarize(list(range(1000)))
        assert summary.p50 <= summary.p90 <= summary.p99 <= summary.max

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            summarize([])
