"""Tests for the experiment harnesses (reduced scale).

These check that each experiment produces results with the paper's
qualitative shape, at trial counts small enough for CI.  Full-size runs
live in the benchmarks and EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.appendix_a import AppendixAConfig, run_appendix_a
from repro.experiments.config import ExperimentContext
from repro.experiments.figure1 import Figure1Config, run_figure1
from repro.experiments.flajolet_floor import FloorConfig, run_flajolet_floor
from repro.experiments.lower_bound_exp import (
    LowerBoundConfig,
    run_lower_bound,
    run_survival_threshold,
)
from repro.experiments.merge_exp import (
    MergeConfig,
    run_morris_merge,
    run_nelson_yu_merge,
    run_simplified_merge,
)
from repro.experiments.space_scaling import (
    DeltaSweepConfig,
    FailureCheckConfig,
    NSweepConfig,
    run_delta_sweep,
    run_failure_check,
    run_n_sweep,
)
from repro.experiments.throughput import ThroughputConfig, run_throughput
from repro.experiments.tradeoff import TradeoffConfig, run_tradeoff


class TestFigure1:
    def test_shapes_match_paper(self):
        result = run_figure1(
            Figure1Config(trials=150), ExperimentContext(seed=1)
        )
        # Both algorithms in the low-single-digit-percent error regime.
        assert result.morris_summary.max < 0.05
        assert result.simplified_summary.max < 0.05
        # CDFs of the same order: KS distance well below 1.
        assert result.ks_distance() < 0.5
        assert "% of runs" in result.table()
        assert "Morris" in result.plot()

    def test_17_bit_parameterization(self):
        result = run_figure1(Figure1Config(trials=10))
        assert result.simplified_resolution == 8192
        assert result.simplified_t_max == 7

    def test_trials_validated(self):
        with pytest.raises(ExperimentError):
            run_figure1(Figure1Config(trials=0))


class TestAppendixA:
    def test_vanilla_fails_morris_plus_does_not(self):
        result = run_appendix_a(AppendixAConfig(scan_points=4))
        adversarial = result.adversarial_row
        assert adversarial.vanilla_failure > 1000 * result.config.delta
        assert adversarial.morris_plus_failure == 0.0

    def test_config_constraint_enforced(self):
        with pytest.raises(ExperimentError):
            AppendixAConfig(epsilon=0.2, delta=0.01)

    def test_table_marks_adversarial_point(self):
        result = run_appendix_a(AppendixAConfig(scan_points=4))
        assert "(=N')" in result.table()


class TestSpaceScaling:
    def test_delta_slopes_separate(self):
        result = run_delta_sweep(DeltaSweepConfig(trials=5))
        ny_slope, chebyshev_slope = result.delta_slopes()
        # log log(1/δ) vs log(1/δ): at least a 2x slope separation.
        assert ny_slope < chebyshev_slope / 2
        assert "NelsonYu" in result.table()

    def test_n_sweep_loglog(self):
        result = run_n_sweep(NSweepConfig(trials=4))
        rows = result.rows
        # Exact counter doubles (log N); NY grows by a few bits (log log N).
        exact_growth = rows[-1].exact_bits - rows[0].exact_bits
        ny_growth = rows[-1].nelson_yu_bits - rows[0].nelson_yu_bits
        assert ny_growth <= exact_growth / 2

    def test_failure_check_within_guarantee(self):
        result = run_failure_check(FailureCheckConfig(trials=400))
        assert result.empirical_rate <= 2 * result.config.delta


class TestFlajoletFloor:
    def test_floor_flat_small_a_falls(self):
        result = run_flajolet_floor(
            FloorConfig(n_values=(256, 1024, 4096))
        )
        assert result.floor_spread(0) < 0.01
        small_a_failures = [row.small_a_failure for row in result.rows]
        assert small_a_failures[-1] < small_a_failures[0]


class TestLowerBound:
    def test_small_counters_broken(self):
        result = run_lower_bound(LowerBoundConfig(t_param=1024))
        assert result.all_small_broken
        labels_broken = {
            r.label: r.broken for r in result.reports
        }
        assert labels_broken["exact(cap=4096)"] is False

    def test_survival_matches_prediction(self):
        result = run_survival_threshold(t_values=(64, 256, 1024))
        for row in result.rows:
            assert row.smallest_surviving_cap_bits == row.predicted_bits


class TestMerge:
    def test_morris_merge_fits_exact_dp(self):
        result = run_morris_merge(
            MergeConfig(n1=60, n2=100, trials=800)
        )
        assert result.plausible

    def test_simplified_merge_consistent(self):
        result = run_simplified_merge(
            MergeConfig(n1=100, n2=150, trials=300), resolution=8
        )
        assert result.consistent

    def test_nelson_yu_merge_consistent(self):
        result = run_nelson_yu_merge(
            MergeConfig(n1=2000, n2=3000, trials=120)
        )
        assert result.consistent

    def test_trial_floor(self):
        with pytest.raises(ExperimentError):
            run_morris_merge(MergeConfig(trials=10))


class TestTradeoff:
    def test_randomized_beat_saturating_below_log_n(self):
        result = run_tradeoff(TradeoffConfig(bits_values=(14, 18), trials=30))
        for row in result.rows:
            assert row.morris_rms < row.saturating_rms
            assert row.simplified_rms < row.saturating_rms

    def test_error_shrinks_with_bits(self):
        result = run_tradeoff(
            TradeoffConfig(bits_values=(12, 18), trials=30)
        )
        assert result.rows[1].morris_rms < result.rows[0].morris_rms
        assert "bits" in result.table()


class TestThroughput:
    def test_reports_positive_rates(self):
        result = run_throughput(
            ThroughputConfig(increment_ops=2000, add_total=50_000)
        )
        for row in result.rows:
            assert row.increments_per_second > 0
            assert row.add_positions_per_second > 0

    def test_add_faster_than_increment_for_morris(self):
        result = run_throughput(
            ThroughputConfig(increment_ops=2000, add_total=200_000)
        )
        morris = next(r for r in result.rows if r.label.startswith("morris"))
        assert morris.add_positions_per_second > morris.increments_per_second

    def test_workload_validation(self):
        with pytest.raises(ExperimentError):
            run_throughput(ThroughputConfig(increment_ops=10, add_total=10))
