"""Tests for the trajectory experiment."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import ExperimentContext
from repro.experiments.trajectory import TrajectoryConfig, run_trajectory


class TestTrajectory:
    @pytest.fixture(scope="class")
    def result(self):
        return run_trajectory(
            TrajectoryConfig(trials=8, n_max=100_000),
            ExperimentContext(seed=2),
        )

    def test_exact_at_small_counts(self, result):
        for name, envelope in result.envelopes.items():
            assert envelope[0] == 0.0, name
            assert envelope[3] == 0.0, name  # still tiny counts

    def test_errors_bounded_by_guarantee(self, result):
        config = result.config
        for name, envelope in result.envelopes.items():
            assert max(envelope) < 2.0 * config.epsilon, name

    def test_all_families_present(self, result):
        assert set(result.envelopes) == {
            "morris_plus",
            "nelson_yu",
            "simplified_ny",
        }

    def test_renders(self, result):
        assert "p90 err" in result.table()
        assert "log10(x)" in result.plot()

    def test_trial_floor(self):
        with pytest.raises(ExperimentError):
            run_trajectory(TrajectoryConfig(trials=2))
