"""Tests for ASCII plotting."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.plotting import ascii_cdf, ascii_series


class TestAsciiCdf:
    def test_renders_legend_and_axes(self):
        plot = ascii_cdf({"a": [0.1, 0.2, 0.3], "b": [0.15, 0.25, 0.35]})
        assert "o = a" in plot
        assert "x = b" in plot
        assert "100%" in plot

    def test_monotone_markers(self):
        """CDF columns are non-decreasing: higher fractions never plot
        below lower ones."""
        plot = ascii_cdf({"s": sorted([0.01 * i for i in range(100)])})
        rows = [line.split("|", 1)[1] for line in plot.splitlines() if "|" in line]
        last_marked = [
            max((i for i, ch in enumerate(row) if ch != " "), default=-1)
            for row in rows
        ]
        marked = [c for c in last_marked if c >= 0]
        assert marked == sorted(marked, reverse=True)

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            ascii_cdf({})
        with pytest.raises(ExperimentError):
            ascii_cdf({"a": []})

    def test_size_validation(self):
        with pytest.raises(ExperimentError):
            ascii_cdf({"a": [1.0]}, width=5, height=2)


class TestAsciiSeries:
    def test_renders(self):
        plot = ascii_series({"line": [(1, 1.0), (10, 2.0), (100, 3.0)]})
        assert "o = line" in plot

    def test_logx(self):
        plot = ascii_series(
            {"line": [(1, 1.0), (1000, 2.0)]}, logx=True
        )
        assert "log10(x)" in plot

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            ascii_series({})
