"""Tests for the design-choice ablations."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    ChernoffAblationConfig,
    TransitionAblationConfig,
    run_chernoff_ablation,
    run_rounding_ablation,
    run_transition_ablation,
)
from repro.experiments.config import ExperimentContext


class TestChernoffAblation:
    def test_dispersion_falls_with_c(self):
        result = run_chernoff_ablation(
            ChernoffAblationConfig(
                trials=150, c_values=(0.25, 3.0, 6.0)
            ),
            ExperimentContext(seed=1),
        )
        dispersions = [row[1] for row in result.rows]
        assert dispersions[0] > dispersions[-1]

    def test_y_bits_grow_with_c(self):
        result = run_chernoff_ablation(
            ChernoffAblationConfig(trials=60, c_values=(1.5, 12.0)),
            ExperimentContext(seed=2),
        )
        assert result.rows[1][3] > result.rows[0][3]

    def test_default_c_is_stable(self):
        result = run_chernoff_ablation(
            ChernoffAblationConfig(trials=150, c_values=(6.0,)),
            ExperimentContext(seed=3),
        )
        c, dispersion, failure, _ = result.rows[0]
        assert c == 6.0
        assert dispersion <= 0.05
        assert failure == 0.0

    def test_table_renders(self):
        result = run_chernoff_ablation(
            ChernoffAblationConfig(trials=30, c_values=(6.0,))
        )
        assert "epoch dispersion" in result.table()


class TestRoundingAblation:
    def test_accuracy_unchanged_by_rounding(self):
        result = run_rounding_ablation(
            trials=150, context=ExperimentContext(seed=4)
        )
        dyadic, exact = result.rows
        assert dyadic[1] == pytest.approx(exact[1], abs=0.05)

    def test_rounding_costs_at_most_one_bit(self):
        result = run_rounding_ablation(
            trials=150, context=ExperimentContext(seed=5)
        )
        dyadic, exact = result.rows
        assert dyadic[2] - exact[2] <= 1.5


class TestTransitionAblation:
    def test_appendix_a_scale_leaks(self):
        result = run_transition_ablation()
        label, transition, worst, ratio = result.rows[0]
        assert "Appendix A" in label
        assert ratio > 1000.0

    def test_paper_choice_safe(self):
        result = run_transition_ablation()
        label, transition, worst, ratio = result.rows[2]
        assert "8/a" in label
        assert ratio < 1.0

    def test_monotone_in_transition(self):
        """A longer prefix can only lower the worst residual failure."""
        result = run_transition_ablation()
        worsts = [row[2] for row in result.rows]
        assert worsts == sorted(worsts, reverse=True)

    def test_custom_config(self):
        result = run_transition_ablation(
            TransitionAblationConfig(epsilon=0.15, delta=1e-10)
        )
        assert result.a > 0
        assert "8/a" in result.table()
