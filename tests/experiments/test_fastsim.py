"""Tests certifying that the fast simulators are distribution-exact."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.nelson_yu import NelsonYuCounter
from repro.core.params import DEFAULT_CHERNOFF_C
from repro.errors import BudgetError, ParameterError
from repro.experiments.fastsim import (
    make_generator,
    morris_final_x,
    nelson_yu_final_state,
    simplified_final_state,
)
from repro.theory.flajolet import (
    morris_state_distribution,
    subsample_state_distribution,
)


def _chi_square(observed: np.ndarray, expected: np.ndarray) -> tuple[float, int]:
    chi, dof = 0.0, -1
    pooled_e = pooled_o = 0.0
    for o, e in zip(observed.ravel(), expected.ravel()):
        if e >= 5.0:
            chi += (o - e) ** 2 / e
            dof += 1
        else:
            pooled_e += e
            pooled_o += o
    if pooled_e > 0:
        chi += (pooled_o - pooled_e) ** 2 / max(pooled_e, 1e-9)
        dof += 1
    return chi, max(1, dof)


class TestMakeGenerator:
    def test_reproducible(self):
        a = make_generator(1, 2).integers(0, 1 << 30, size=5)
        b = make_generator(1, 2).integers(0, 1 << 30, size=5)
        assert (a == b).all()

    def test_keys_differentiate(self):
        a = make_generator(1, 2).integers(0, 1 << 30, size=5)
        b = make_generator(1, 3).integers(0, 1 << 30, size=5)
        assert (a != b).any()


class TestMorrisFastsim:
    def test_matches_exact_dp(self):
        a, n, trials = 0.5, 200, 20_000
        exact = morris_state_distribution(a, n)
        rng = make_generator(11)
        observed = np.zeros(len(exact))
        for _ in range(trials):
            observed[min(morris_final_x(a, n, rng), len(exact) - 1)] += 1
        chi, dof = _chi_square(observed, exact * trials)
        assert chi < dof + 5 * math.sqrt(2 * dof) + 5

    def test_zero_increments(self):
        assert morris_final_x(0.5, 0, make_generator(0)) == 0

    def test_block_extension_path(self):
        """Force the block-regrowth branch with a tiny initial estimate."""
        rng = make_generator(3)
        # a=2 makes expected X small; run enough increments that the first
        # block must be exceeded occasionally across seeds.
        xs = [morris_final_x(2.0, 10**6, make_generator(3, i)) for i in range(50)]
        assert min(xs) >= 10

    def test_validation(self):
        with pytest.raises(ParameterError):
            morris_final_x(0.0, 5, make_generator(0))
        with pytest.raises(ParameterError):
            morris_final_x(0.5, -1, make_generator(0))


class TestSimplifiedFastsim:
    def test_matches_exact_dp(self):
        resolution, n, trials, t_cap = 4, 120, 20_000, 10
        exact = subsample_state_distribution(resolution, n, t_cap)
        rng = make_generator(13)
        observed = np.zeros_like(exact)
        for _ in range(trials):
            y, t = simplified_final_state(resolution, None, n, rng)
            observed[t, y] += 1
        chi, dof = _chi_square(observed, exact * trials)
        assert chi < dof + 5 * math.sqrt(2 * dof) + 5

    def test_deterministic_phase(self):
        y, t = simplified_final_state(8, None, 15, make_generator(0))
        assert (y, t) == (15, 0)

    def test_capacity_error(self):
        with pytest.raises(BudgetError):
            simplified_final_state(2, 1, 10_000, make_generator(0))


class TestNelsonYuFastsim:
    def test_matches_slow_implementation_statistically(self):
        """Fast and slow NY paths agree on the X distribution."""
        eps, exponent, n, trials = 0.3, 4, 6000, 600
        rng = make_generator(17)
        fast_x = [
            nelson_yu_final_state(eps, exponent, DEFAULT_CHERNOFF_C, n, rng)[0]
            for _ in range(trials)
        ]
        from repro.rng.bitstream import BitBudgetedRandom

        root = BitBudgetedRandom(19)
        slow_x = []
        for trial in range(trials):
            counter = NelsonYuCounter(eps, exponent, rng=root.split(trial))
            counter.add(n)
            slow_x.append(counter.x)
        # Compare means of X (integer-valued, tightly concentrated).
        fast_mean = sum(fast_x) / trials
        slow_mean = sum(slow_x) / trials
        spread = max(
            1.0, np.std(fast_x) + np.std(slow_x)
        )
        assert abs(fast_mean - slow_mean) < 6 * spread / math.sqrt(trials)

    def test_exact_while_alpha_one(self):
        """Fast path matches the slow counter exactly in epoch 0."""
        eps, exponent, n = 0.2, 10, 100
        x, y, t = nelson_yu_final_state(
            eps, exponent, DEFAULT_CHERNOFF_C, n, make_generator(0)
        )
        counter = NelsonYuCounter(eps, exponent, seed=0)
        counter.add(n)
        assert (x, y, t) == (counter.x, counter.y, counter.t)

    def test_same_schedule_as_slow_counter(self):
        """Fast sim and the class agree on X0 and the t schedule."""
        eps, exponent = 0.3, 4
        counter = NelsonYuCounter(eps, exponent, seed=0)
        counter.add(30_000)
        x, y, t = nelson_yu_final_state(
            eps, exponent, DEFAULT_CHERNOFF_C, 30_000, make_generator(2)
        )
        # X values are within each other's concentration window and the
        # t schedule (a deterministic function of X) matches at equal X.
        assert abs(x - counter.x) <= 3
