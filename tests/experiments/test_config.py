"""Tests for experiment configuration and scaling."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import ExperimentContext, scaled_trials, trials_scale


class TestScale:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRIALS_SCALE", raising=False)
        assert trials_scale() == 1.0
        assert scaled_trials(100) == 100

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS_SCALE", "0.25")
        assert scaled_trials(100) == 25

    def test_minimum_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS_SCALE", "0.001")
        assert scaled_trials(100, minimum=10) == 10

    def test_invalid_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS_SCALE", "banana")
        with pytest.raises(ExperimentError):
            trials_scale()
        monkeypatch.setenv("REPRO_TRIALS_SCALE", "-1")
        with pytest.raises(ExperimentError):
            trials_scale()

    def test_invalid_base(self):
        with pytest.raises(ExperimentError):
            scaled_trials(0)


class TestContext:
    def test_explicit_scale_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS_SCALE", "10")
        context = ExperimentContext(scale=0.5)
        assert context.trials(100) == 50

    def test_env_used_without_explicit(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS_SCALE", "2")
        assert ExperimentContext().trials(100) == 200
