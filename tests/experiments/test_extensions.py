"""Tests for the E10/E11 extension experiments."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.bank_exp import BankConfig, run_bank_experiment
from repro.experiments.config import ExperimentContext
from repro.experiments.randomness import (
    RandomnessConfig,
    run_randomness_budget,
)


class TestBankExperiment:
    def test_memory_columns_scale_differently(self):
        result = run_bank_experiment(
            BankConfig(n_counters=50), ExperimentContext(seed=3)
        )
        first, last = result.rows[0], result.rows[-1]
        optimal_growth = (
            last.optimal_bits_per_counter - first.optimal_bits_per_counter
        )
        chebyshev_growth = (
            last.chebyshev_bits_per_counter
            - first.chebyshev_bits_per_counter
        )
        assert optimal_growth < chebyshev_growth

    def test_small_delta_eliminates_failures(self):
        result = run_bank_experiment(
            BankConfig(n_counters=100, delta_exponents=(2, 14)),
            ExperimentContext(seed=4),
        )
        assert result.rows[-1].optimal_bad_fraction == 0.0
        assert result.rows[-1].chebyshev_bad_fraction == 0.0

    def test_delta_times_m_reported(self):
        result = run_bank_experiment(
            BankConfig(n_counters=100, delta_exponents=(2,)),
        )
        assert result.rows[0].delta_times_m == pytest.approx(25.0)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            run_bank_experiment(BankConfig(n_counters=5))

    def test_table_renders(self):
        result = run_bank_experiment(BankConfig(n_counters=20))
        assert "bits/ctr" in result.table()


class TestRandomnessBudget:
    def test_coin_protocol_cheap(self):
        result = run_randomness_budget(
            RandomnessConfig(increment_n=2000, add_n=200_000)
        )
        morris2 = result.rows[0]
        assert "morris2" in morris2.label
        assert morris2.increment_bits_per_op < 3.0

    def test_fast_forward_sublinear(self):
        """add(N) randomness must be far below 1 bit per position."""
        result = run_randomness_budget(
            RandomnessConfig(increment_n=1000, add_n=1_000_000)
        )
        for row in result.rows:
            if row.add_total_bits:
                assert row.add_total_bits < 1_000_000, row.label

    def test_float_bernoulli_costs_53(self):
        """The float-path Morris pays ~53 bits per increment while X is
        small (every increment draws a uniform)."""
        result = run_randomness_budget(
            RandomnessConfig(increment_n=2000, add_n=100_000)
        )
        morris = next(r for r in result.rows if r.label.startswith("morris(a"))
        assert morris.increment_bits_per_op > 40.0

    def test_validation(self):
        with pytest.raises(ExperimentError):
            run_randomness_budget(RandomnessConfig(increment_n=10, add_n=10))
