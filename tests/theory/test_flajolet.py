"""Tests for the exact DP — the library's correctness oracle.

The DP itself is validated against the paper's closed forms:
``E[estimator] = N`` exactly and ``Var = a N (N-1)/2`` exactly (§1.2).
If these hold to float precision the recurrence is implemented right.
"""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.theory.flajolet import (
    morris_estimate_moments,
    morris_failure_probability,
    morris_state_distribution,
    morris_x_window_probability,
    subsample_estimate_moments,
    subsample_state_distribution,
)


class TestMorrisDP:
    @pytest.mark.parametrize("a", [1.0, 0.5, 0.1, 0.01])
    @pytest.mark.parametrize("n", [0, 1, 10, 200])
    def test_mass_sums_to_one(self, a, n):
        p = morris_state_distribution(a, n)
        assert p.sum() == pytest.approx(1.0, abs=1e-9)

    def test_small_cases_by_hand(self):
        # n = 2, a = 1: X=1 w.p. 1/2, X=2 w.p. 1/2.
        p = morris_state_distribution(1.0, 2)
        assert p[1] == pytest.approx(0.5)
        assert p[2] == pytest.approx(0.5)

    def test_n3_by_hand(self):
        # n = 3, a = 1: X=1: 1/4, X=2: 5/8, X=3: 1/8.
        p = morris_state_distribution(1.0, 3)
        assert p[1] == pytest.approx(1 / 4)
        assert p[2] == pytest.approx(5 / 8)
        assert p[3] == pytest.approx(1 / 8)

    @pytest.mark.parametrize(
        "a,n", [(1.0, 100), (0.5, 77), (0.1, 500), (0.02, 1000)]
    )
    def test_unbiased_exactly(self, a, n):
        mean, _ = morris_estimate_moments(a, n)
        assert mean == pytest.approx(n, rel=1e-9)

    @pytest.mark.parametrize(
        "a,n", [(1.0, 100), (0.5, 77), (0.1, 500), (0.02, 1000)]
    )
    def test_variance_closed_form(self, a, n):
        _, variance = morris_estimate_moments(a, n)
        assert variance == pytest.approx(a * n * (n - 1) / 2, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ParameterError):
            morris_state_distribution(0.0, 10)
        with pytest.raises(ParameterError):
            morris_state_distribution(1.0, -1)


class TestFailureProbability:
    def test_failure_decreases_with_epsilon(self):
        tight = morris_failure_probability(1.0, 500, 0.5)
        loose = morris_failure_probability(1.0, 500, 2.0)
        assert loose < tight

    def test_failure_decreases_with_a(self):
        large_a = morris_failure_probability(1.0, 500, 0.5)
        small_a = morris_failure_probability(0.01, 500, 0.5)
        assert small_a < large_a

    def test_chebyshev_bound_respected(self):
        """Exact failure must be below the Chebyshev bound."""
        a, n, eps = 0.1, 500, 0.5
        exact = morris_failure_probability(a, n, eps)
        chebyshev = a * n * (n - 1) / 2 / (eps * n) ** 2
        assert exact <= chebyshev

    def test_window_probability(self):
        p = morris_x_window_probability(1.0, 1024, 0, 10_000)
        assert p == pytest.approx(1.0, abs=1e-9)


class TestSubsampleDP:
    @pytest.mark.parametrize("n", [0, 1, 7, 100])
    def test_mass_sums_to_one(self, n):
        p = subsample_state_distribution(4, n, t_cap=8)
        assert p.sum() == pytest.approx(1.0, abs=1e-9)

    def test_deterministic_below_2s(self):
        p = subsample_state_distribution(4, 5, t_cap=3)
        assert p[0, 5] == pytest.approx(1.0)

    def test_first_halving_deterministic(self):
        p = subsample_state_distribution(4, 8, t_cap=3)
        assert p[1, 4] == pytest.approx(1.0)

    @pytest.mark.parametrize("n", [10, 50, 300])
    def test_unbiased_exactly(self, n):
        mean, _ = subsample_estimate_moments(4, n, t_cap=10)
        assert mean == pytest.approx(n, rel=1e-9)

    def test_variance_positive_after_sampling_starts(self):
        _, variance = subsample_estimate_moments(4, 100, t_cap=10)
        assert variance > 0
