"""Tests for failure-probability predictions."""

from __future__ import annotations

import math

import pytest

from repro.errors import ParameterError
from repro.theory.failure import (
    appendix_a_adversarial_n,
    appendix_a_event_probability,
    chebyshev_predicted_failure,
    morris_a1_window_failure,
    morris_low_failure_scan,
    optimal_predicted_failure,
    vanilla_small_n_failure_exact,
)


class TestChebyshev:
    def test_formula(self):
        a, eps, n = 2e-4, 0.1, 10_000
        assert chebyshev_predicted_failure(a, eps, n) == pytest.approx(
            a * (n - 1) / (2 * eps * eps * n)
        )

    def test_tuning_gives_delta(self):
        """a = 2ε²δ makes the prediction ≈ δ."""
        eps, delta = 0.1, 0.01
        a = 2 * eps * eps * delta
        assert chebyshev_predicted_failure(a, eps, 10**6) == pytest.approx(
            delta, rel=1e-3
        )


class TestOptimal:
    def test_tuning_gives_2delta(self):
        eps, delta = 0.2, 1e-4
        a = eps * eps / (8 * math.log(1 / delta))
        assert optimal_predicted_failure(a, eps) == pytest.approx(2 * delta)


class TestA1Floor:
    def test_constant_in_n(self):
        """§1.1: the window-miss probability is flat in N."""
        values = [
            morris_a1_window_failure(n, 1.0)
            for n in (1 << 8, 1 << 10, 1 << 12, 1 << 14)
        ]
        assert max(values) - min(values) < 0.01
        assert min(values) > 0.05  # bounded away from zero

    def test_decreases_with_window(self):
        assert morris_a1_window_failure(1024, 2.0) < morris_a1_window_failure(
            1024, 1.0
        )

    def test_validation(self):
        with pytest.raises(ParameterError):
            morris_a1_window_failure(0, 1.0)
        with pytest.raises(ParameterError):
            morris_a1_window_failure(100, 0.0)


class TestAppendixA:
    def test_adversarial_n_formula(self):
        a, eps, c = 1e-4, 0.2, 2.0 ** -8
        expected = math.ceil(c * eps ** (4 / 3) / a)
        assert appendix_a_adversarial_n(a, eps, c) == max(2, expected)

    def test_event_bound_positive(self):
        assert appendix_a_event_probability(1e-4, 0.2, 2.0 ** -8) > 0

    def test_vanilla_failure_exceeds_delta(self):
        """The appendix's conclusion with exact numbers."""
        eps, delta = 0.2, 1e-9
        a = eps * eps / (8 * math.log(1 / delta))
        n_adv = appendix_a_adversarial_n(a, eps, 2.0 ** -8)
        failure = vanilla_small_n_failure_exact(a, eps, n_adv)
        assert failure > 1000 * delta

    def test_exact_failure_matches_hand_computation(self):
        """n = 2: failure = P[X <= 1] = P[2nd increment rejected]."""
        a, eps = 0.01, 0.2
        expected = 1.0 - 1.0 / (1.0 + a)
        # (1-eps)*2 = 1.6 > estimate(X=1) = 1, < estimate(X=2) = 2+a.
        assert vanilla_small_n_failure_exact(a, eps, 2) == pytest.approx(
            expected, rel=1e-9
        )

    def test_scan_matches_single_calls(self):
        a, eps = 0.002, 0.2
        points = [5, 17, 40]
        scanned = morris_low_failure_scan(a, eps, points)
        singles = [
            vanilla_small_n_failure_exact(a, eps, n) for n in points
        ]
        for s, single in zip(scanned, singles):
            assert s == pytest.approx(single, rel=1e-6, abs=1e-12)

    def test_scan_preserves_request_order(self):
        a, eps = 0.002, 0.2
        forward = morris_low_failure_scan(a, eps, [5, 40])
        backward = morris_low_failure_scan(a, eps, [40, 5])
        assert forward == list(reversed(backward))

    def test_validation(self):
        with pytest.raises(ParameterError):
            appendix_a_adversarial_n(0.0, 0.2, 2.0 ** -8)
        with pytest.raises(ParameterError):
            appendix_a_adversarial_n(1e-4, 0.3, 2.0 ** -8)
        with pytest.raises(ParameterError):
            morris_low_failure_scan(0.01, 0.2, [])
