"""Tests for the §2.2 MGF concentration machinery."""

from __future__ import annotations

import math

import pytest

from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom
from repro.theory.mgf import (
    k_window,
    prefix_sum_mean,
    prefix_sum_variance,
    prefix_tail_bound,
    theorem_1_2_failure_bound,
)


class TestPrefixMoments:
    def test_mean_is_geometric_series(self):
        a, k = 0.2, 10
        expected = sum((1 + a) ** i for i in range(k + 1))
        assert prefix_sum_mean(a, k) == pytest.approx(expected)

    def test_variance_formula(self):
        a, k = 0.3, 5
        expected = sum(
            (1 - (1 + a) ** -i) / ((1 + a) ** -i) ** 2 for i in range(k + 1)
        )
        assert prefix_sum_variance(a, k) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ParameterError):
            prefix_sum_mean(1.5, 3)
        with pytest.raises(ParameterError):
            prefix_sum_mean(0.2, -1)


class TestTailBounds:
    def test_bound_in_unit_interval(self):
        assert 0.0 < prefix_tail_bound(0.1, 30, 0.3) <= 1.0

    def test_specializes_to_theorem_1_2(self):
        """For k > 1/a the per-side bound is <= e^{-ε²/8a}."""
        a, eps = 0.05, 0.3
        k = int(1 / a) + 5
        per_side = prefix_tail_bound(a, k, eps)
        assert per_side <= math.exp(-eps * eps / (8 * a)) * 1.0001

    def test_theorem_bound_with_optimal_a_is_2delta(self):
        eps, delta = 0.2, 0.01
        a = eps * eps / (8 * math.log(1 / delta))
        assert theorem_1_2_failure_bound(a, eps) == pytest.approx(2 * delta)

    def test_bound_actually_holds_empirically(self):
        """Simulate prefix sums of geometrics; tail must be below bound."""
        a, eps, k, trials = 0.2, 0.3, 12, 4000
        mean = prefix_sum_mean(a, k)
        rng = BitBudgetedRandom(61)
        exceed = 0
        for _ in range(trials):
            total = sum(
                rng.geometric((1 + a) ** -i) for i in range(k + 1)
            )
            if total >= (1 + eps) * mean:
                exceed += 1
        bound = prefix_tail_bound(a, k, eps)
        # Empirical rate should be below bound + 5 sigma of its estimator.
        noise = 5 * math.sqrt(max(bound, 1e-4) / trials)
        assert exceed / trials <= bound + noise


class TestKWindow:
    def test_window_brackets_n(self):
        a, eps, n = 0.05, 0.2, 100_000
        k1, k2 = k_window(a, eps, n)
        assert (1 + eps) * prefix_sum_mean(a, k1) < n
        assert (1 + eps) * prefix_sum_mean(a, k1 + 1) >= n
        assert (1 - eps) * prefix_sum_mean(a, k2) >= n
        if k2 > 0:
            assert (1 - eps) * prefix_sum_mean(a, k2 - 1) < n

    def test_window_ordering(self):
        k1, k2 = k_window(0.1, 0.3, 10_000)
        assert k1 < k2

    def test_estimate_squeeze(self):
        """X in (k1, k2] implies the estimator is within (1±2ε)n."""
        from repro.core.estimators import morris_estimate

        a, eps, n = 0.05, 0.2, 50_000
        k1, k2 = k_window(a, eps, n)
        # estimate at X = k1+1 is mean(k1) - something; both ends inside.
        low = morris_estimate(k1 + 1, a)
        high = morris_estimate(k2, a)
        assert low >= (1 - 2 * eps) * n * 0.95
        assert high <= (1 + 2 * eps) * n / (1 - eps) * 1.05
