"""Tests for the probability-bound helpers."""

from __future__ import annotations

import math

import pytest

from repro.errors import ParameterError
from repro.theory.bounds import (
    binomial_pmf,
    binomial_tail_upper_exact,
    chebyshev_failure,
    chernoff_lower_tail,
    chernoff_upper_tail,
    union_bound,
)


class TestChernoff:
    def test_decreases_with_mean(self):
        assert chernoff_upper_tail(100, 0.5) < chernoff_upper_tail(10, 0.5)

    def test_upper_tail_formula(self):
        assert chernoff_upper_tail(100, 0.5) == pytest.approx(
            math.exp(-0.25 * 100 / 2.5)
        )

    def test_lower_tail_formula(self):
        assert chernoff_lower_tail(100, 0.5) == pytest.approx(
            math.exp(-0.25 * 100 / 2)
        )

    def test_bounds_actual_binomial_tail(self):
        """Chernoff must upper-bound the exact tail."""
        n, p = 200, 0.3
        mean = n * p
        for eps in (0.2, 0.5, 1.0):
            exact = binomial_tail_upper_exact(
                n, math.ceil((1 + eps) * mean), p
            )
            assert exact <= chernoff_upper_tail(mean, eps) * 1.0001

    def test_validation(self):
        with pytest.raises(ParameterError):
            chernoff_upper_tail(-1, 0.5)
        with pytest.raises(ParameterError):
            chernoff_lower_tail(10, 1.5)


class TestChebyshev:
    def test_formula(self):
        assert chebyshev_failure(4.0, 4.0) == pytest.approx(0.25)

    def test_capped_at_one(self):
        assert chebyshev_failure(100.0, 1.0) == 1.0


class TestUnionBound:
    def test_sums(self):
        assert union_bound([0.1, 0.2]) == pytest.approx(0.3)

    def test_caps(self):
        assert union_bound([0.7, 0.7]) == 1.0

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            union_bound([-0.5])


class TestBinomial:
    def test_pmf_sums_to_one(self):
        n, p = 20, 0.37
        total = sum(binomial_pmf(n, k, p) for k in range(n + 1))
        assert total == pytest.approx(1.0)

    def test_pmf_known_value(self):
        assert binomial_pmf(4, 2, 0.5) == pytest.approx(6 / 16)

    def test_pmf_edges(self):
        assert binomial_pmf(5, 0, 0.0) == 1.0
        assert binomial_pmf(5, 5, 1.0) == 1.0
        assert binomial_pmf(5, 3, 0.0) == 0.0

    def test_tail_monotone(self):
        tails = [binomial_tail_upper_exact(30, k, 0.4) for k in range(31)]
        assert tails == sorted(tails, reverse=True)

    def test_tail_beyond_n_is_zero(self):
        assert binomial_tail_upper_exact(10, 11, 0.5) == 0.0

    def test_pmf_validation(self):
        with pytest.raises(ParameterError):
            binomial_pmf(5, 6, 0.5)
        with pytest.raises(ParameterError):
            binomial_pmf(5, 2, 1.5)
