"""Tests for the predicted space curves."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.theory.space import (
    classical_space_bits,
    lower_bound_bits,
    morris_plus_space_bits,
    morris_space_bits,
    nelson_yu_space_bits,
    optimal_space_bits,
)


class TestSkeletons:
    def test_optimal_below_classical(self):
        for delta in (1e-2, 1e-6, 1e-12):
            assert optimal_space_bits(10**6, 0.1, delta) <= classical_space_bits(
                10**6, 0.1, delta
            )

    def test_delta_scaling_shapes(self):
        """Squaring 1/δ adds ~1 to optimal, doubles classical's δ term."""
        n, eps = 10**6, 0.1
        optimal_gap = optimal_space_bits(n, eps, 1e-12) - optimal_space_bits(
            n, eps, 1e-6
        )
        classical_gap = classical_space_bits(
            n, eps, 1e-12
        ) - classical_space_bits(n, eps, 1e-6)
        assert optimal_gap == pytest.approx(1.0, abs=0.5)
        assert classical_gap == pytest.approx(math_log2_ratio(), abs=0.5)

    def test_lower_bound_min_structure(self):
        # Tiny n: the log n branch wins.
        assert lower_bound_bits(8, 0.01, 1e-9) == pytest.approx(3.0)
        # Large n: the optimal branch wins.
        large = lower_bound_bits(2**40, 0.25, 0.25)
        assert large < 40 / 2

    def test_validation(self):
        with pytest.raises(ParameterError):
            optimal_space_bits(0, 0.1, 0.1)


def math_log2_ratio() -> float:
    import math

    return math.log2(1e12) - math.log2(1e6)


class TestConcretePredictions:
    def test_morris_prediction_brackets_measurement(self):
        """Predicted register covers simulated X with headroom."""
        from repro.core.morris import MorrisCounter

        a, n = 0.01, 50_000
        predicted = morris_space_bits(a, n)
        counter = MorrisCounter(a, seed=0)
        counter.add(n)
        assert counter.state_bits() <= predicted

    def test_nelson_yu_prediction_brackets_measurement(self):
        from repro.core.nelson_yu import NelsonYuCounter

        eps, exponent, n = 0.25, 10, 1 << 20
        predicted = nelson_yu_space_bits(eps, 2.0 ** -exponent, n)
        counter = NelsonYuCounter(eps, exponent, seed=0)
        counter.add(n)
        assert counter.state_bits() <= predicted + 2

    def test_morris_plus_adds_prefix(self):
        eps, delta, n = 0.2, 0.01, 10**6
        from repro.core.params import morris_a_optimal

        a = morris_a_optimal(eps, delta)
        assert morris_plus_space_bits(eps, delta, n) > morris_space_bits(a, n)
