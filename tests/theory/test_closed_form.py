"""Tests for the closed-form probabilities ([Fla85] Eq. (46) style).

Two independent derivations of the same quantities — the dynamic program
and the partial-fraction closed form — agreeing to machine precision is
the strongest possible cross-validation of both.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import ParameterError
from repro.theory.closed_form import (
    morris_pmf_exact_base2,
    morris_tail_exact_base2,
    morris_tail_float,
)
from repro.theory.flajolet import morris_state_distribution


class TestExactBase2:
    def test_boundaries(self):
        assert morris_tail_exact_base2(0, 5) == 1
        assert morris_tail_exact_base2(3, 0) == 0
        assert morris_tail_exact_base2(1, 1) == 1

    def test_too_few_increments(self):
        # X >= 5 needs at least 5 increments.
        assert morris_tail_exact_base2(5, 4) == 0

    def test_hand_computed_n2(self):
        # After 2 increments: X >= 2 with probability 1/2.
        assert morris_tail_exact_base2(2, 2) == Fraction(1, 2)

    def test_hand_computed_n3(self):
        # P[X=1]=1/4, P[X=2]=5/8, P[X=3]=1/8 after 3 increments.
        assert morris_pmf_exact_base2(1, 3) == Fraction(1, 4)
        assert morris_pmf_exact_base2(2, 3) == Fraction(5, 8)
        assert morris_pmf_exact_base2(3, 3) == Fraction(1, 8)

    @pytest.mark.parametrize("n", [5, 25, 100, 250])
    def test_matches_dp_to_machine_precision(self, n):
        dp = morris_state_distribution(1.0, n)
        for level in range(min(len(dp), 20)):
            closed = float(morris_pmf_exact_base2(level, n))
            assert closed == pytest.approx(dp[level], abs=1e-12)

    def test_pmf_sums_to_one(self):
        n = 60
        total = sum(morris_pmf_exact_base2(level, n) for level in range(25))
        assert total == pytest.approx(1.0, abs=1e-12)

    def test_tail_monotone_in_l(self):
        n = 40
        tails = [morris_tail_exact_base2(level, n) for level in range(15)]
        assert tails == sorted(tails, reverse=True)

    def test_validation(self):
        with pytest.raises(ParameterError):
            morris_tail_exact_base2(-1, 5)
        with pytest.raises(ParameterError):
            morris_tail_exact_base2(1, -5)


class TestFloatGeneralA:
    @pytest.mark.parametrize("a", [1.0, 0.5, 0.25])
    @pytest.mark.parametrize("n", [20, 100])
    def test_matches_dp(self, a, n):
        dp = morris_state_distribution(a, n)
        for level in range(2, 14):
            tail_dp = float(dp[level:].sum())
            tail_cf = morris_tail_float(a, level, n)
            assert tail_cf == pytest.approx(tail_dp, abs=1e-8)

    def test_validation(self):
        with pytest.raises(ParameterError):
            morris_tail_float(0.0, 3, 5)
