"""Tests for the pumping argument (§3 step 2)."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.lowerbound.automaton import exact_automaton, morris_automaton
from repro.lowerbound.derandomize import derandomize
from repro.lowerbound.pumping import find_pumping_witness


class TestWitnessStructure:
    def test_witness_ranges(self):
        det = derandomize(morris_automaton(1.0, 15))
        t = 1000
        witness = find_pumping_witness(det, t)
        assert witness is not None
        assert 0 <= witness.n_small < witness.n_collide <= t // 2
        assert 2 * t <= witness.n_large <= 4 * t
        assert witness.period == witness.n_collide - witness.n_small

    def test_witness_states_actually_collide(self):
        det = derandomize(morris_automaton(1.0, 15))
        witness = find_pumping_witness(det, 1000)
        assert det.state_after(witness.n_small) == det.state_after(
            witness.n_large
        )
        assert det.state_after(witness.n_small) == witness.state

    def test_small_automaton_always_pumped(self):
        """Any automaton with <= T/2 states must yield a witness."""
        for cap in (3, 7, 100):
            det = derandomize(exact_automaton(cap))
            witness = find_pumping_witness(det, 4 * (cap + 2))
            assert witness is not None

    def test_large_exact_counter_survives(self):
        det = derandomize(exact_automaton(600))
        assert find_pumping_witness(det, 1000) is None

    def test_boundary_cap_exactly_half(self):
        """cap = T/2 means states 0..T/2 are all distinct: survives."""
        t = 100
        det = derandomize(exact_automaton(t // 2))
        assert find_pumping_witness(det, t) is None

    def test_boundary_cap_one_less(self):
        t = 100
        det = derandomize(exact_automaton(t // 2 - 1))
        assert find_pumping_witness(det, t) is not None

    def test_validation(self):
        det = derandomize(exact_automaton(4))
        with pytest.raises(ParameterError):
            find_pumping_witness(det, 3)
