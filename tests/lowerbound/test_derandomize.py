"""Tests for the argmax derandomization (§3 step 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.lowerbound.automaton import exact_automaton, morris_automaton
from repro.lowerbound.derandomize import derandomize


class TestDerandomize:
    def test_deterministic_automaton_unchanged(self):
        """Derandomizing a deterministic counter changes nothing."""
        auto = exact_automaton(20)
        det = derandomize(auto)
        for n in range(25):
            expected = min(n, 20)
            assert det.state_after(n) == expected

    def test_morris_argmax_freezes_low_levels(self):
        """For a=1, stay-probability > move-probability once X >= 1, so
        the derandomized Morris gets stuck at X = 1 — the proof's point
        that randomness is load-bearing."""
        det = derandomize(morris_automaton(1.0, 20))
        assert det.state_after(0) == 0
        assert det.state_after(1) == 1
        assert det.state_after(1000) == 1

    def test_tie_break_lexicographic(self):
        """Equal-probability transitions pick the smallest state."""
        t = np.array([[0.5, 0.5], [0.0, 1.0]])
        from repro.lowerbound.automaton import CounterAutomaton

        auto = CounterAutomaton(
            t, np.array([1.0, 0.0]), np.array([0.0, 1.0])
        )
        det = derandomize(auto)
        assert det.next_state[0] == 0  # stays, does not move

    def test_orbit_cycle_acceleration(self):
        """state_after for huge n agrees with iterated stepping."""
        det = derandomize(morris_automaton(1.0, 8))
        state = det.initial_state
        for _ in range(100):
            state = int(det.next_state[state])
        assert det.state_after(100) == state
        assert det.state_after(10**15) == det.state_after(
            100 + ((10**15 - 100) % 1)
        ) or det.state_after(10**15) == state  # fixed point here

    def test_error_amplification(self):
        det = derandomize(exact_automaton(4))
        assert det.error_amplification(3, 2) == 2.0 ** 9
        with pytest.raises(ParameterError):
            det.error_amplification(0, 2)

    def test_negative_n_rejected(self):
        det = derandomize(exact_automaton(4))
        with pytest.raises(ParameterError):
            det.state_after(-1)
