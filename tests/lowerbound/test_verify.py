"""Tests for the end-to-end Theorem 3.1 verification."""

from __future__ import annotations

import math

import pytest

from repro.errors import ParameterError
from repro.lowerbound.automaton import (
    csuros_automaton,
    exact_automaton,
    morris_automaton,
    simplified_ny_automaton,
)
from repro.lowerbound.verify import (
    min_bits_to_survive,
    verify_theorem_3_1,
)


class TestVerify:
    def test_small_randomized_counters_break(self):
        t = 2048
        for auto in (
            morris_automaton(1.0, 31),
            simplified_ny_automaton(4, 7),
            csuros_automaton(2, 31),
        ):
            report = verify_theorem_3_1(auto, t)
            assert report.broken, auto.label

    def test_large_exact_counter_survives(self):
        report = verify_theorem_3_1(exact_automaton(8192), 2048)
        assert not report.broken
        assert report.witness is None

    def test_describe_mentions_outcome(self):
        broken = verify_theorem_3_1(morris_automaton(1.0, 15), 512)
        assert "BROKEN" in broken.describe()
        survives = verify_theorem_3_1(exact_automaton(8192), 512)
        assert "survives" in survives.describe()

    def test_validation(self):
        with pytest.raises(ParameterError):
            verify_theorem_3_1(exact_automaton(8), 2)


class TestMinBits:
    def test_matches_log_t(self):
        for t in (64, 256, 1024, 4096):
            assert min_bits_to_survive(t) == math.ceil(math.log2(t // 2 + 1))

    def test_is_exactly_the_survival_threshold(self):
        """Exact counters survive iff their width >= min_bits_to_survive."""
        for t in (64, 256, 1024):
            bits = min_bits_to_survive(t)
            surviving = exact_automaton((1 << bits) - 1)
            assert not verify_theorem_3_1(surviving, t).broken
            breaking = exact_automaton((1 << (bits - 1)) - 1)
            assert verify_theorem_3_1(breaking, t).broken

    def test_omega_log_shape(self):
        """min bits grows by ~1 per doubling of T: the Ω(log T) shape."""
        values = [min_bits_to_survive(1 << k) for k in range(6, 15)]
        gaps = [b - a for a, b in zip(values, values[1:])]
        assert all(gap == 1 for gap in gaps)
