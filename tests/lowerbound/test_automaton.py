"""Tests for counter automata."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.lowerbound.automaton import (
    CounterAutomaton,
    csuros_automaton,
    exact_automaton,
    morris_automaton,
    simplified_ny_automaton,
)
from repro.theory.flajolet import (
    morris_state_distribution,
    subsample_state_distribution,
)


class TestConstruction:
    def test_rejects_nonstochastic(self):
        t = np.array([[0.5, 0.4], [0.0, 1.0]])
        with pytest.raises(ParameterError):
            CounterAutomaton(
                t, np.array([1.0, 0.0]), np.array([0.0, 1.0])
            )

    def test_rejects_bad_initial(self):
        t = np.eye(2)
        with pytest.raises(ParameterError):
            CounterAutomaton(
                t, np.array([0.5, 0.4]), np.array([0.0, 1.0])
            )

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ParameterError):
            CounterAutomaton(
                np.eye(2), np.array([1.0, 0.0, 0.0]), np.array([0.0, 1.0])
            )

    def test_state_bits(self):
        assert exact_automaton(7).state_bits == 3
        assert exact_automaton(8).state_bits == 4


class TestAgainstDP:
    def test_morris_automaton_matches_dp(self):
        """Matrix-power distribution == Flajolet DP."""
        a, n = 0.5, 60
        auto = morris_automaton(a, x_cap=40)
        dist = auto.distribution_after(n)
        dp = morris_state_distribution(a, n, x_cap=40)
        assert np.allclose(dist, dp, atol=1e-9)

    def test_simplified_automaton_matches_dp(self):
        resolution, t_cap, n = 4, 6, 90
        auto = simplified_ny_automaton(resolution, t_cap)
        dist = auto.distribution_after(n)
        dp = subsample_state_distribution(resolution, n, t_cap)
        # Automaton state index = t * 2s + y.
        flattened = dp.reshape(-1)
        assert np.allclose(dist, flattened, atol=1e-9)

    def test_failure_probability_matches_dp(self):
        from repro.theory.flajolet import morris_failure_probability

        auto = morris_automaton(1.0, x_cap=40)
        assert auto.failure_probability(300, 0.5) == pytest.approx(
            morris_failure_probability(1.0, 300, 0.5), abs=1e-9
        )


class TestBuilders:
    def test_exact_automaton_counts(self):
        auto = exact_automaton(100)
        dist = auto.distribution_after(42)
        assert dist[42] == pytest.approx(1.0)

    def test_exact_automaton_saturates(self):
        auto = exact_automaton(10)
        dist = auto.distribution_after(50)
        assert dist[10] == pytest.approx(1.0)

    def test_csuros_automaton_rows_stochastic(self):
        auto = csuros_automaton(2, 30)
        assert np.allclose(auto.transition.sum(axis=1), 1.0)

    def test_repeated_squaring_consistency(self):
        """distribution_after must agree with naive stepping."""
        auto = morris_automaton(1.0, x_cap=12)
        naive = auto.initial.copy()
        for _ in range(37):
            naive = naive @ auto.transition
        assert np.allclose(auto.distribution_after(37), naive, atol=1e-12)

    def test_builder_validation(self):
        with pytest.raises(ParameterError):
            morris_automaton(0.0, 4)
        with pytest.raises(ParameterError):
            simplified_ny_automaton(0, 4)
        with pytest.raises(ParameterError):
            exact_automaton(0)
