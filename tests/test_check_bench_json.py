"""The bench-artifact validator rejects what CI must never ship."""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

_SCRIPT = (
    pathlib.Path(__file__).resolve().parents[1]
    / "scripts"
    / "check_bench_json.py"
)
_spec = importlib.util.spec_from_file_location("check_bench_json", _SCRIPT)
check_bench_json = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_bench_json)


def _valid_payload(name: str = "cluster") -> dict:
    return {
        "benchmark": name,
        "seed": 2020,
        "workload": {"kind": "zipf", "events": 1000},
        "rows": [{"nodes": 1, "events_per_sec": 123.4}],
    }


def _write(tmp_path: pathlib.Path, name: str, text: str) -> pathlib.Path:
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


class TestCheckFile:
    def test_valid_artifact_passes(self, tmp_path):
        path = _write(
            tmp_path, "BENCH_cluster.json", json.dumps(_valid_payload())
        )
        assert check_bench_json.check_file(path) == []

    def test_rejects_infinity(self, tmp_path):
        """The events_per_sec: Infinity regression must stay dead."""
        payload = _valid_payload()
        payload["rows"][0]["events_per_sec"] = float("inf")
        path = _write(
            tmp_path, "BENCH_cluster.json", json.dumps(payload)
        )  # stdlib dumps emits the non-strict 'Infinity' token
        problems = check_bench_json.check_file(path)
        assert problems and "not strict JSON" in problems[0]

    def test_rejects_nan(self, tmp_path):
        payload = _valid_payload()
        payload["rows"][0]["events_per_sec"] = float("nan")
        path = _write(tmp_path, "BENCH_cluster.json", json.dumps(payload))
        problems = check_bench_json.check_file(path)
        assert problems and "not strict JSON" in problems[0]

    def test_rejects_torn_file(self, tmp_path):
        path = _write(tmp_path, "BENCH_cluster.json", '{"benchmark": "clu')
        problems = check_bench_json.check_file(path)
        assert problems and "not strict JSON" in problems[0]

    @pytest.mark.parametrize("key", ["benchmark", "seed", "workload", "rows"])
    def test_rejects_missing_required_key(self, tmp_path, key):
        payload = _valid_payload()
        del payload[key]
        path = _write(tmp_path, "BENCH_cluster.json", json.dumps(payload))
        problems = check_bench_json.check_file(path)
        assert any(key in problem for problem in problems)

    def test_rejects_empty_rows(self, tmp_path):
        payload = _valid_payload()
        payload["rows"] = []
        path = _write(tmp_path, "BENCH_cluster.json", json.dumps(payload))
        assert check_bench_json.check_file(path)

    def test_rejects_filename_mismatch(self, tmp_path):
        path = _write(
            tmp_path,
            "BENCH_cluster_elastic.json",
            json.dumps(_valid_payload("cluster")),
        )
        problems = check_bench_json.check_file(path)
        assert any("does not match" in problem for problem in problems)


def _valid_metrics() -> dict:
    return {
        "counters": {"events_delivered_total{node=0}": 1000},
        "gauges": {"live_nodes": 2},
        "histograms": {
            "wal_fsync_seconds": {
                "buckets": [[0.001, 3], ["+Inf", 0]],
                "count": 3,
                "sum": 0.002,
                "max": 0.001,
            }
        },
        "stages": {"route": {"count": 1000, "total_s": 0.1, "max_s": 0.01}},
    }


class TestEmbeddedMetrics:
    """The optional per-row telemetry snapshot is schema-checked too."""

    def _payload_with(self, metrics: object) -> dict:
        payload = _valid_payload()
        payload["rows"][0]["metrics"] = metrics
        return payload

    def test_valid_snapshot_passes(self, tmp_path):
        path = _write(
            tmp_path,
            "BENCH_cluster.json",
            json.dumps(self._payload_with(_valid_metrics())),
        )
        assert check_bench_json.check_file(path) == []

    def test_rows_without_metrics_stay_valid(self, tmp_path):
        """metrics is optional: the pre-telemetry schema still passes."""
        path = _write(
            tmp_path, "BENCH_cluster.json", json.dumps(_valid_payload())
        )
        assert check_bench_json.check_file(path) == []

    def test_rejects_non_object_metrics(self, tmp_path):
        path = _write(
            tmp_path,
            "BENCH_cluster.json",
            json.dumps(self._payload_with([1, 2])),
        )
        problems = check_bench_json.check_file(path)
        assert any("must be an object" in problem for problem in problems)

    @pytest.mark.parametrize(
        "family", ["counters", "gauges", "histograms", "stages"]
    )
    def test_rejects_missing_family(self, tmp_path, family):
        metrics = _valid_metrics()
        del metrics[family]
        path = _write(
            tmp_path,
            "BENCH_cluster.json",
            json.dumps(self._payload_with(metrics)),
        )
        problems = check_bench_json.check_file(path)
        assert any(family in problem for problem in problems)

    def test_rejects_negative_counter(self, tmp_path):
        metrics = _valid_metrics()
        metrics["counters"]["events_delivered_total{node=0}"] = -1
        path = _write(
            tmp_path,
            "BENCH_cluster.json",
            json.dumps(self._payload_with(metrics)),
        )
        problems = check_bench_json.check_file(path)
        assert any("non-negative" in problem for problem in problems)

    def test_rejects_boolean_counter(self, tmp_path):
        """True would pass an isinstance(int) check; the schema says no."""
        metrics = _valid_metrics()
        metrics["counters"]["events_delivered_total{node=0}"] = True
        path = _write(
            tmp_path,
            "BENCH_cluster.json",
            json.dumps(self._payload_with(metrics)),
        )
        problems = check_bench_json.check_file(path)
        assert any("non-negative" in problem for problem in problems)

    def test_rejects_non_numeric_gauge(self, tmp_path):
        metrics = _valid_metrics()
        metrics["gauges"]["live_nodes"] = "two"
        path = _write(
            tmp_path,
            "BENCH_cluster.json",
            json.dumps(self._payload_with(metrics)),
        )
        problems = check_bench_json.check_file(path)
        assert any("must be numeric" in problem for problem in problems)

    def test_rejects_histogram_without_buckets(self, tmp_path):
        metrics = _valid_metrics()
        del metrics["histograms"]["wal_fsync_seconds"]["buckets"]
        path = _write(
            tmp_path,
            "BENCH_cluster.json",
            json.dumps(self._payload_with(metrics)),
        )
        problems = check_bench_json.check_file(path)
        assert any("buckets/count/sum" in problem for problem in problems)

    def test_rejects_malformed_stage_cell(self, tmp_path):
        metrics = _valid_metrics()
        metrics["stages"]["route"] = {"count": 1000}
        path = _write(
            tmp_path,
            "BENCH_cluster.json",
            json.dumps(self._payload_with(metrics)),
        )
        problems = check_bench_json.check_file(path)
        assert any(
            "count/total_s/max_s" in problem for problem in problems
        )

    def test_problem_names_the_row(self, tmp_path):
        payload = _valid_payload()
        payload["rows"].append({"nodes": 2, "metrics": "bogus"})
        path = _write(
            tmp_path, "BENCH_cluster.json", json.dumps(payload)
        )
        problems = check_bench_json.check_file(path)
        assert any("rows[1]" in problem for problem in problems)


def _membership_payload() -> dict:
    payload = _valid_payload("cluster_membership")
    payload["rows"] = [
        {
            "nodes": 2,
            "detection_rounds": 3,
            "healed_equivalent": True,
            "events_per_sec": 123.4,
        }
    ]
    return payload


class TestMembershipRows:
    """cluster_membership artifacts carry scenario-specific row checks:
    a self-healed run that diverged from its driver-healed reference
    (``healed_equivalent`` != true) must never ship."""

    def _check(self, tmp_path, payload: dict) -> list[str]:
        path = _write(
            tmp_path,
            "BENCH_cluster_membership.json",
            json.dumps(payload),
        )
        return check_bench_json.check_file(path)

    def test_valid_membership_payload_passes(self, tmp_path):
        assert self._check(tmp_path, _membership_payload()) == []

    def test_other_benchmarks_skip_the_membership_shape(self, tmp_path):
        """Rows without healed_equivalent stay valid off-scenario."""
        path = _write(
            tmp_path, "BENCH_cluster.json", json.dumps(_valid_payload())
        )
        assert check_bench_json.check_file(path) == []

    def test_rejects_healed_equivalent_false(self, tmp_path):
        payload = _membership_payload()
        payload["rows"][0]["healed_equivalent"] = False
        problems = self._check(tmp_path, payload)
        assert any(
            "healed_equivalent must be true" in problem
            for problem in problems
        )

    def test_rejects_missing_healed_equivalent(self, tmp_path):
        payload = _membership_payload()
        del payload["rows"][0]["healed_equivalent"]
        problems = self._check(tmp_path, payload)
        assert any(
            "healed_equivalent must be true" in problem
            for problem in problems
        )

    def test_rejects_truthy_non_bool_healed_equivalent(self, tmp_path):
        """JSON 1 is not true: the equivalence bit must be a boolean."""
        payload = _membership_payload()
        payload["rows"][0]["healed_equivalent"] = 1
        problems = self._check(tmp_path, payload)
        assert any(
            "healed_equivalent must be true" in problem
            for problem in problems
        )

    @pytest.mark.parametrize("rounds", [-1, 2.5, "3", True, None])
    def test_rejects_bad_detection_rounds(self, tmp_path, rounds):
        payload = _membership_payload()
        payload["rows"][0]["detection_rounds"] = rounds
        problems = self._check(tmp_path, payload)
        assert any(
            "detection_rounds" in problem for problem in problems
        )

    @pytest.mark.parametrize("nodes", [0, -2, True, "2", None])
    def test_rejects_bad_nodes(self, tmp_path, nodes):
        payload = _membership_payload()
        payload["rows"][0]["nodes"] = nodes
        problems = self._check(tmp_path, payload)
        assert any(
            "nodes must be a positive integer" in problem
            for problem in problems
        )

    def test_problem_names_the_row(self, tmp_path):
        payload = _membership_payload()
        payload["rows"].append(dict(payload["rows"][0]))
        payload["rows"][1]["healed_equivalent"] = False
        problems = self._check(tmp_path, payload)
        assert any("rows[1]" in problem for problem in problems)


def _throughput_payload() -> dict:
    payload = _valid_payload("cluster_throughput")
    payload["rows"] = [
        {"workers": 1, "mode": "serial", "events_per_sec": 123.4}
    ]
    payload["parallel_bit_identical"] = True
    payload["process_bit_identical"] = True
    payload["process_rows"] = [
        {"nodes": 2, "arm": "serial", "events_per_sec": 100.0},
        {"nodes": 2, "arm": "parallel", "events_per_sec": 120.0},
        {"nodes": 2, "arm": "process", "events_per_sec": 140.0},
    ]
    payload["skipahead_rows"] = [
        {"arm": "per_unit", "events_per_sec": 100.0},
        {"arm": "skip_ahead", "events_per_sec": 900.0},
    ]
    payload["skip_ahead_speedup"] = 9.0
    payload["weighted_bit_identical"] = True
    return payload


class TestThroughputShape:
    """cluster_throughput artifacts carry the plan-arm checks: both
    bit-identity flags must be exactly ``true`` and the process-arm
    rows must be well-formed — an execution plan that diverged from
    the serial reference must never ship."""

    def _check(self, tmp_path, payload: dict) -> list[str]:
        path = _write(
            tmp_path,
            "BENCH_cluster_throughput.json",
            json.dumps(payload),
        )
        return check_bench_json.check_file(path)

    def test_valid_throughput_payload_passes(self, tmp_path):
        assert self._check(tmp_path, _throughput_payload()) == []

    def test_other_benchmarks_skip_the_throughput_shape(self, tmp_path):
        path = _write(
            tmp_path, "BENCH_cluster.json", json.dumps(_valid_payload())
        )
        assert check_bench_json.check_file(path) == []

    @pytest.mark.parametrize(
        "flag", ["parallel_bit_identical", "process_bit_identical"]
    )
    @pytest.mark.parametrize("value", [False, 1, None, "true"])
    def test_rejects_non_true_bit_identity(self, tmp_path, flag, value):
        payload = _throughput_payload()
        payload[flag] = value
        problems = self._check(tmp_path, payload)
        assert any(
            f"{flag} must be true" in problem for problem in problems
        )

    def test_rejects_missing_bit_identity_flag(self, tmp_path):
        payload = _throughput_payload()
        del payload["process_bit_identical"]
        problems = self._check(tmp_path, payload)
        assert any(
            "process_bit_identical must be true" in problem
            for problem in problems
        )

    @pytest.mark.parametrize("rows", [None, [], "rows", {}])
    def test_rejects_bad_process_rows(self, tmp_path, rows):
        payload = _throughput_payload()
        payload["process_rows"] = rows
        problems = self._check(tmp_path, payload)
        assert any(
            "process_rows must be a non-empty list" in problem
            for problem in problems
        )

    @pytest.mark.parametrize("nodes", [0, -2, True, "2", None])
    def test_rejects_bad_nodes(self, tmp_path, nodes):
        payload = _throughput_payload()
        payload["process_rows"][0]["nodes"] = nodes
        problems = self._check(tmp_path, payload)
        assert any(
            "nodes must be a positive integer" in problem
            for problem in problems
        )

    @pytest.mark.parametrize("arm", ["threads", None, 2])
    def test_rejects_unknown_arm(self, tmp_path, arm):
        payload = _throughput_payload()
        payload["process_rows"][1]["arm"] = arm
        problems = self._check(tmp_path, payload)
        assert any("arm must be one of" in problem for problem in problems)

    @pytest.mark.parametrize("rate", [0, -1.5, True, "fast", None])
    def test_rejects_bad_rate(self, tmp_path, rate):
        payload = _throughput_payload()
        payload["process_rows"][2]["events_per_sec"] = rate
        problems = self._check(tmp_path, payload)
        assert any(
            "events_per_sec must be positive" in problem
            for problem in problems
        )

    def test_process_row_metrics_are_validated(self, tmp_path):
        payload = _throughput_payload()
        payload["process_rows"][0]["metrics"] = {"counters": {}}
        problems = self._check(tmp_path, payload)
        assert any(
            "process_rows[0]" in problem and "metrics" in problem
            for problem in problems
        )


class TestSkipaheadShape:
    """cluster_throughput artifacts also carry the weighted skip-ahead
    arm: exactly a per_unit row then a skip_ahead row, a true
    weighted-workload bit-identity flag, and — on full runs — a
    speedup that never dips below 1."""

    def _check(self, tmp_path, payload: dict) -> list[str]:
        path = _write(
            tmp_path,
            "BENCH_cluster_throughput.json",
            json.dumps(payload),
        )
        return check_bench_json.check_file(path)

    @pytest.mark.parametrize(
        "rows",
        [
            None,
            [],
            [{"arm": "skip_ahead"}, {"arm": "per_unit"}],  # wrong order
            [{"arm": "per_unit", "events_per_sec": 1.0}],
        ],
    )
    def test_rejects_malformed_rows(self, tmp_path, rows):
        payload = _throughput_payload()
        payload["skipahead_rows"] = rows
        problems = self._check(tmp_path, payload)
        assert any(
            "per_unit row then a skip_ahead row" in problem
            for problem in problems
        )

    @pytest.mark.parametrize("rate", [0, -3, True, "fast", None])
    def test_rejects_bad_rate(self, tmp_path, rate):
        payload = _throughput_payload()
        payload["skipahead_rows"][1]["events_per_sec"] = rate
        problems = self._check(tmp_path, payload)
        assert any(
            "skipahead_rows[1]" in problem
            and "events_per_sec must be positive" in problem
            for problem in problems
        )

    @pytest.mark.parametrize("value", [False, 1, None, "true"])
    def test_rejects_non_true_weighted_bit_identity(self, tmp_path, value):
        payload = _throughput_payload()
        payload["weighted_bit_identical"] = value
        problems = self._check(tmp_path, payload)
        assert any(
            "weighted_bit_identical must be true" in problem
            for problem in problems
        )

    @pytest.mark.parametrize("speedup", [0, -1.0, True, "9x", None])
    def test_rejects_bad_speedup(self, tmp_path, speedup):
        payload = _throughput_payload()
        payload["skip_ahead_speedup"] = speedup
        problems = self._check(tmp_path, payload)
        assert any(
            "skip_ahead_speedup must be positive" in problem
            for problem in problems
        )

    def test_full_run_must_not_lose_to_per_unit(self, tmp_path):
        payload = _throughput_payload()
        payload["workload"]["events"] = check_bench_json.FULL_RUN_EVENTS
        payload["skip_ahead_speedup"] = 0.8
        problems = self._check(tmp_path, payload)
        assert any(
            "must never be slower than per-unit" in problem
            for problem in problems
        )

    def test_smoke_run_may_dip_below_one(self, tmp_path):
        payload = _throughput_payload()
        payload["skip_ahead_speedup"] = 0.8  # events: 1000 — a smoke row
        assert self._check(tmp_path, payload) == []


def _trajectory_payload() -> dict:
    return {
        "benchmark": "cluster_throughput_trajectory",
        "seed": 2020,
        "workload": {"kind": "weighted_zipf", "mean_count": 64},
        "rows": [
            {
                "date": "2026-08-08",
                "cpus": 8,
                "events": 400_000,
                "mean_count": 64,
                "per_unit_events_per_sec": 100.0,
                "skip_ahead_events_per_sec": 900.0,
                "skip_ahead_speedup": 9.0,
                "skip_ahead_speedup_smoke": 7.5,
                "speedup_4_workers": 1.8,
            }
        ],
    }


class TestTrajectoryShape:
    """Committed trajectory rows are the regression gate's baseline, so
    they must be well-formed and must record skip-ahead winning — they
    only ever come from full runs."""

    def _check(self, tmp_path, payload: dict) -> list[str]:
        path = _write(
            tmp_path,
            "BENCH_cluster_throughput_trajectory.json",
            json.dumps(payload),
        )
        return check_bench_json.check_file(path)

    def test_valid_trajectory_passes(self, tmp_path):
        assert self._check(tmp_path, _trajectory_payload()) == []

    @pytest.mark.parametrize("cpus", [0, -1, 2.5, True, "8", None])
    def test_rejects_bad_cpus(self, tmp_path, cpus):
        payload = _trajectory_payload()
        payload["rows"][0]["cpus"] = cpus
        problems = self._check(tmp_path, payload)
        assert any(
            "cpus must be a positive integer" in problem
            for problem in problems
        )

    @pytest.mark.parametrize(
        "field",
        [
            "per_unit_events_per_sec",
            "skip_ahead_events_per_sec",
            "skip_ahead_speedup",
            "skip_ahead_speedup_smoke",
        ],
    )
    def test_rejects_missing_rates(self, tmp_path, field):
        payload = _trajectory_payload()
        del payload["rows"][0][field]
        problems = self._check(tmp_path, payload)
        assert any(
            f"{field} must be positive" in problem for problem in problems
        )

    def test_rejects_losing_speedup(self, tmp_path):
        payload = _trajectory_payload()
        payload["rows"][0]["skip_ahead_speedup"] = 0.9
        problems = self._check(tmp_path, payload)
        assert any(
            "trajectory rows record full runs" in problem
            for problem in problems
        )

    def test_problem_names_the_row(self, tmp_path):
        payload = _trajectory_payload()
        payload["rows"].append(dict(payload["rows"][0]))
        payload["rows"][1]["cpus"] = 0
        problems = self._check(tmp_path, payload)
        assert any("rows[1]" in problem for problem in problems)


def _serving_payload() -> dict:
    payload = _valid_payload("cluster_serving")
    payload["rows"] = [
        {
            "replicas": 2,
            "queries_per_sec": 50_000.0,
            "staleness_lag_events": 0,
            "staleness_bound_events": 2500,
            "replica_reads_bit_identical": True,
            "served_equals_unserved": True,
        }
    ]
    return payload


class TestServingShape:
    """cluster_serving artifacts carry the serving-layer row checks: a
    serving layer that changed what the cluster computes, or replica
    reads that diverged from the central fold after convergence, must
    never ship — and the staleness fields must stay honest."""

    def _check(self, tmp_path, payload: dict) -> list[str]:
        path = _write(
            tmp_path,
            "BENCH_cluster_serving.json",
            json.dumps(payload),
        )
        return check_bench_json.check_file(path)

    def test_valid_serving_payload_passes(self, tmp_path):
        assert self._check(tmp_path, _serving_payload()) == []

    def test_other_benchmarks_skip_the_serving_shape(self, tmp_path):
        path = _write(
            tmp_path, "BENCH_cluster.json", json.dumps(_valid_payload())
        )
        assert check_bench_json.check_file(path) == []

    @pytest.mark.parametrize(
        "flag", ["replica_reads_bit_identical", "served_equals_unserved"]
    )
    @pytest.mark.parametrize("value", [False, 1, None, "true"])
    def test_rejects_non_true_identity_flags(self, tmp_path, flag, value):
        payload = _serving_payload()
        payload["rows"][0][flag] = value
        problems = self._check(tmp_path, payload)
        assert any(
            f"{flag} must be true" in problem for problem in problems
        )

    def test_rejects_missing_identity_flag(self, tmp_path):
        payload = _serving_payload()
        del payload["rows"][0]["served_equals_unserved"]
        problems = self._check(tmp_path, payload)
        assert any(
            "served_equals_unserved must be true" in problem
            for problem in problems
        )

    @pytest.mark.parametrize("replicas", [0, -2, True, "2", None])
    def test_rejects_bad_replicas(self, tmp_path, replicas):
        payload = _serving_payload()
        payload["rows"][0]["replicas"] = replicas
        problems = self._check(tmp_path, payload)
        assert any(
            "replicas must be a positive integer" in problem
            for problem in problems
        )

    @pytest.mark.parametrize("rate", [0, -1.5, True, "fast", None])
    def test_rejects_bad_query_rate(self, tmp_path, rate):
        payload = _serving_payload()
        payload["rows"][0]["queries_per_sec"] = rate
        problems = self._check(tmp_path, payload)
        assert any(
            "queries_per_sec must be positive" in problem
            for problem in problems
        )

    @pytest.mark.parametrize("lag", [-1, 2.5, "0", True, None])
    def test_rejects_bad_lag(self, tmp_path, lag):
        payload = _serving_payload()
        payload["rows"][0]["staleness_lag_events"] = lag
        problems = self._check(tmp_path, payload)
        assert any(
            "staleness_lag_events" in problem for problem in problems
        )

    @pytest.mark.parametrize("bound", [0, -5, 2.5, "2500", True, None])
    def test_rejects_bad_bound(self, tmp_path, bound):
        payload = _serving_payload()
        payload["rows"][0]["staleness_bound_events"] = bound
        problems = self._check(tmp_path, payload)
        assert any(
            "staleness_bound_events" in problem for problem in problems
        )

    def test_problem_names_the_row(self, tmp_path):
        payload = _serving_payload()
        payload["rows"].append(dict(payload["rows"][0]))
        payload["rows"][1]["served_equals_unserved"] = False
        problems = self._check(tmp_path, payload)
        assert any("rows[1]" in problem for problem in problems)


class TestMain:
    def test_passes_on_valid_paths(self, tmp_path, capsys):
        path = _write(
            tmp_path, "BENCH_cluster.json", json.dumps(_valid_payload())
        )
        assert check_bench_json.main([str(path)]) == 0
        assert "1 artifact(s) validated" in capsys.readouterr().out

    def test_fails_on_invalid_paths(self, tmp_path, capsys):
        path = _write(tmp_path, "BENCH_cluster.json", "not json")
        assert check_bench_json.main([str(path)]) == 1
        assert "not strict JSON" in capsys.readouterr().out

    def test_checked_in_artifacts_are_valid(self):
        """Whatever BENCH_*.json the repo currently carries must pass."""
        assert check_bench_json.main(["--quiet"]) == 0
