"""Property-based tests for merging."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.merge import merge_all, merge_counters
from repro.core.morris import MorrisCounter
from repro.core.nelson_yu import NelsonYuCounter
from repro.core.simplified_ny import SimplifiedNYCounter
from repro.rng.bitstream import BitBudgetedRandom

_SEEDS = st.integers(min_value=0, max_value=2**31 - 1)


class TestMergeBookkeeping:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=_SEEDS,
        counts=st.lists(
            st.integers(min_value=0, max_value=3000), min_size=1, max_size=5
        ),
    )
    def test_merge_all_sums_counts_morris(self, seed, counts):
        counters = []
        for i, n in enumerate(counts):
            counter = MorrisCounter(0.3, rng=BitBudgetedRandom(seed + i))
            counter.add(n)
            counters.append(counter)
        merged = merge_all(counters)
        assert merged.n_increments == sum(counts)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=_SEEDS,
        n1=st.integers(min_value=0, max_value=5000),
        n2=st.integers(min_value=0, max_value=5000),
    )
    def test_merge_counters_nondestructive_simplified(self, seed, n1, n2):
        a = SimplifiedNYCounter(32, mergeable=True, rng=BitBudgetedRandom(seed))
        b = SimplifiedNYCounter(
            32, mergeable=True, rng=BitBudgetedRandom(seed + 1)
        )
        a.add(n1)
        b.add(n2)
        state_a, state_b = (a.y, a.t), (b.y, b.t)
        merged = merge_counters(a, b)
        assert (a.y, a.t) == state_a
        assert (b.y, b.t) == state_b
        assert merged.n_increments == n1 + n2

    @settings(max_examples=10, deadline=None)
    @given(
        seed=_SEEDS,
        n1=st.integers(min_value=0, max_value=8000),
        n2=st.integers(min_value=0, max_value=8000),
    )
    def test_nelson_yu_merge_invariants_hold_after_merge(self, seed, n1, n2):
        a = NelsonYuCounter(
            0.3, 4, mergeable=True, rng=BitBudgetedRandom(seed)
        )
        b = NelsonYuCounter(
            0.3, 4, mergeable=True, rng=BitBudgetedRandom(seed + 1)
        )
        a.add(n1)
        b.add(n2)
        a.merge_from(b)
        # Post-merge the structural invariants must still hold.
        assert (a.y << a.t) <= a._threshold
        assert a.x >= a._x0
        assert a.n_increments == n1 + n2
        # And the merged counter must keep working.
        a.add(100)
        assert a.n_increments == n1 + n2 + 100
