"""Property-based tests (hypothesis) on core invariants.

These cover structural invariants that must hold for *every* parameter
choice and seed, not just the tuned configurations the unit tests use.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.csuros import CsurosCounter
from repro.core.estimators import csuros_estimate, morris_estimate
from repro.core.morris import MorrisCounter
from repro.core.morris_plus import MorrisPlusCounter
from repro.core.nelson_yu import NelsonYuCounter
from repro.core.params import (
    morris_a_for_bits,
    morris_x_capacity,
    simplified_ny_for_bits,
)
from repro.core.simplified_ny import SimplifiedNYCounter
from repro.memory.model import uint_bits
from repro.rng.bernoulli import DyadicProbability
from repro.rng.bitstream import BitBudgetedRandom

_SMALL_SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


class TestDyadicRounding:
    @given(p=st.floats(min_value=1e-12, max_value=1.0, exclude_min=False))
    def test_round_up_brackets(self, p):
        """2^-(t+1) < p <= 2^-t for the chosen t (Remark 2.2)."""
        dyadic = DyadicProbability.at_least(p)
        assert dyadic.value >= p
        assert dyadic.value / 2.0 < p


class TestMorrisEstimatorAlgebra:
    @given(
        a=st.floats(min_value=1e-6, max_value=2.0),
        x=st.integers(min_value=0, max_value=500),
    )
    def test_estimate_monotone_in_x(self, a, x):
        assert morris_estimate(x + 1, a) > morris_estimate(x, a)

    @given(
        a=st.floats(min_value=1e-6, max_value=2.0),
        n=st.integers(min_value=1, max_value=10**9),
    )
    def test_capacity_covers_target(self, a, n):
        x = morris_x_capacity(a, n, headroom=2.0)
        assert morris_estimate(x, a) >= 2.0 * n * (1 - 1e-9)


class TestCsurosEstimatorAlgebra:
    @given(
        d=st.integers(min_value=0, max_value=12),
        x=st.integers(min_value=0, max_value=5000),
    )
    def test_strictly_monotone(self, d, x):
        assert csuros_estimate(x + 1, d) > csuros_estimate(x, d)

    @given(d=st.integers(min_value=0, max_value=12))
    def test_exact_through_first_window(self, d):
        for x in range(1 << d):
            assert csuros_estimate(x, d) == x


class TestCounterStateInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=_SMALL_SEEDS,
        a=st.floats(min_value=0.01, max_value=1.5),
        n=st.integers(min_value=0, max_value=20_000),
    )
    def test_morris_state_reachable(self, seed, a, n):
        """X never exceeds n and the space tracker follows state_bits."""
        counter = MorrisCounter(a, seed=seed)
        counter.add(n)
        assert 0 <= counter.x <= n
        assert counter.max_state_bits >= counter.state_bits() - 1
        assert counter.n_increments == n

    @settings(max_examples=25, deadline=None)
    @given(
        seed=_SMALL_SEEDS,
        resolution=st.integers(min_value=1, max_value=256),
        n=st.integers(min_value=0, max_value=20_000),
    )
    def test_simplified_y_range_and_estimate_parity(self, seed, resolution, n):
        """Y in [0, 2s) always; estimate is Y << t; estimate <= capacity."""
        counter = SimplifiedNYCounter(resolution, seed=seed)
        counter.add(n)
        assert 0 <= counter.y < 2 * resolution
        assert counter.estimate() == float(counter.y << counter.t)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=_SMALL_SEEDS,
        eps=st.floats(min_value=0.05, max_value=0.45),
        exponent=st.integers(min_value=2, max_value=30),
        n=st.integers(min_value=0, max_value=30_000),
    )
    def test_nelson_yu_trigger_invariant(self, seed, eps, exponent, n):
        """After any run, Y·2^t <= T and X >= X0."""
        counter = NelsonYuCounter(eps, exponent, seed=seed)
        counter.add(n)
        assert (counter.y << counter.t) <= counter._threshold
        assert counter.x >= counter._x0
        assert counter.n_increments == n

    @settings(max_examples=20, deadline=None)
    @given(
        seed=_SMALL_SEEDS,
        a=st.floats(min_value=0.005, max_value=0.5),
        n=st.integers(min_value=0, max_value=5_000),
    )
    def test_morris_plus_exact_or_morris(self, seed, a, n):
        """The estimate is either the exact prefix or the Morris value."""
        counter = MorrisPlusCounter(a, seed=seed)
        counter.add(n)
        if n <= counter.transition:
            assert counter.estimate() == float(n)
        else:
            assert counter.estimate() == counter.morris.estimate()

    @settings(max_examples=20, deadline=None)
    @given(
        seed=_SMALL_SEEDS,
        d=st.integers(min_value=0, max_value=10),
        n=st.integers(min_value=0, max_value=20_000),
    )
    def test_csuros_x_monotone_bounded(self, seed, d, n):
        counter = CsurosCounter(d, seed=seed)
        counter.add(n)
        assert 0 <= counter.x <= n


class TestAddSplitEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=_SMALL_SEEDS,
        n1=st.integers(min_value=0, max_value=3000),
        n2=st.integers(min_value=0, max_value=3000),
    )
    def test_add_split_same_stream_same_result(self, seed, n1, n2):
        """add(n1); add(n2) with the same RNG stream equals add(n1+n2)
        only in distribution — but bookkeeping must agree exactly."""
        counter = MorrisCounter(0.1, seed=seed)
        counter.add(n1)
        counter.add(n2)
        assert counter.n_increments == n1 + n2


class TestBitBudgetFitting:
    @settings(max_examples=30, deadline=None)
    @given(
        bits=st.integers(min_value=8, max_value=24),
        n_max=st.integers(min_value=100, max_value=5_000_000),
    )
    def test_morris_fit_within_budget(self, bits, n_max):
        a = morris_a_for_bits(bits, n_max)
        assert morris_x_capacity(a, n_max) <= (1 << bits) - 1

    @settings(max_examples=30, deadline=None)
    @given(
        bits=st.integers(min_value=6, max_value=24),
        n_max=st.integers(min_value=100, max_value=5_000_000),
    )
    def test_simplified_fit_within_budget(self, bits, n_max):
        config = simplified_ny_for_bits(bits, n_max)
        assert config.total_bits <= bits
        assert config.capacity >= 2 * n_max


class TestSnapshotRoundtrips:
    @settings(max_examples=15, deadline=None)
    @given(seed=_SMALL_SEEDS, n=st.integers(min_value=0, max_value=5000))
    def test_every_counter_roundtrips(self, seed, n):
        counters = [
            MorrisCounter(0.2, seed=seed),
            MorrisPlusCounter(0.2, seed=seed),
            SimplifiedNYCounter(32, seed=seed),
            CsurosCounter(4, seed=seed),
            NelsonYuCounter(0.3, 6, seed=seed),
        ]
        for counter in counters:
            counter.add(n)
            snap = counter.snapshot()
            clone = type(counter)(**snap.params, seed=seed + 1)
            clone.restore(snap)
            assert clone.estimate() == counter.estimate()
            assert clone.state_bits() == counter.state_bits()


class TestRandomBitAccounting:
    @settings(max_examples=15, deadline=None)
    @given(seed=_SMALL_SEEDS, k=st.integers(min_value=0, max_value=200))
    def test_getbits_accounting_exact(self, seed, k):
        rng = BitBudgetedRandom(seed)
        rng.getbits(k)
        assert rng.bits_consumed == k

    @settings(max_examples=15, deadline=None)
    @given(seed=_SMALL_SEEDS)
    def test_uint_bits_matches_python(self, seed):
        rng = BitBudgetedRandom(seed)
        value = rng.getbits(40)
        assert uint_bits(value) == max(1, value.bit_length())
