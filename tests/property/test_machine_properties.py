"""Property-based tests for the register-machine layer."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nelson_yu import NelsonYuCounter
from repro.core.simplified_ny import SimplifiedNYCounter
from repro.errors import BudgetError
from repro.machine.counters import NelsonYuMachine, SimplifiedNYMachine
from repro.machine.registers import BoundedRegister
from repro.rng.bitstream import BitBudgetedRandom

_SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


class TestRegisterProperties:
    @given(
        width=st.integers(min_value=1, max_value=40),
        value=st.integers(min_value=0, max_value=2**45),
    )
    def test_store_accepts_iff_fits(self, width, value):
        register = BoundedRegister("r", width)
        if value <= (1 << width) - 1:
            register.store(value)
            assert register.value == value
        else:
            try:
                register.store(value)
            except BudgetError:
                assert register.value == 0  # unchanged on failure
            else:  # pragma: no cover - would be a real bug
                raise AssertionError("overflow not detected")

    @given(
        width=st.integers(min_value=2, max_value=30),
        value=st.integers(min_value=0, max_value=2**30 - 1),
        shift=st.integers(min_value=0, max_value=12),
    )
    def test_shift_right_matches_python(self, width, value, shift):
        register = BoundedRegister("r", width)
        register.store(value & ((1 << width) - 1))
        expected = register.value >> shift
        register.shift_right(shift)
        assert register.value == expected


class TestMachineEquivalenceProperty:
    @settings(max_examples=10, deadline=None)
    @given(seed=_SEEDS, n=st.integers(min_value=0, max_value=3000))
    def test_simplified_machine_equals_counter(self, seed, n):
        machine = SimplifiedNYMachine(16, 16, BitBudgetedRandom(seed))
        counter = SimplifiedNYCounter(
            16, t_max=16, rng=BitBudgetedRandom(seed)
        )
        for _ in range(n):
            machine.increment()
            counter.increment()
        assert (machine.y, machine.t) == (counter.y, counter.t)

    @settings(max_examples=8, deadline=None)
    @given(
        seed=_SEEDS,
        n=st.integers(min_value=0, max_value=4000),
        eps=st.sampled_from([0.2, 0.3, 0.45]),
        exponent=st.sampled_from([2, 4, 8]),
    )
    def test_nelson_yu_machine_equals_counter(self, seed, n, eps, exponent):
        machine = NelsonYuMachine(
            eps, exponent, n_max=max(1, n), rng=BitBudgetedRandom(seed)
        )
        counter = NelsonYuCounter(eps, exponent, rng=BitBudgetedRandom(seed))
        for _ in range(n):
            machine.increment()
            counter.increment()
        assert (machine.x, machine.y, machine.t) == (
            counter.x,
            counter.y,
            counter.t,
        )
