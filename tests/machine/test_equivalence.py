"""Machine-vs-counter equivalence.

The register machines and the abstract counters consume randomness through
the same ``bernoulli_pow2`` primitive in the same order, so identical
seeds must produce *identical state trajectories* — the strongest
equivalence between the algorithm and its finite implementation.  The
Morris(1) machine, which replaces the float-based accept of
``MorrisCounter``, is validated distributionally against the exact DP.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.nelson_yu import NelsonYuCounter
from repro.core.simplified_ny import SimplifiedNYCounter
from repro.errors import BudgetError
from repro.machine.counters import (
    Morris2Machine,
    NelsonYuMachine,
    SimplifiedNYMachine,
)
from repro.rng.bitstream import BitBudgetedRandom
from repro.theory.flajolet import morris_state_distribution


class TestSimplifiedEquivalence:
    def test_identical_trajectories(self):
        seed, n = 7, 5000
        machine = SimplifiedNYMachine(64, 12, BitBudgetedRandom(seed))
        counter = SimplifiedNYCounter(64, t_max=12, rng=BitBudgetedRandom(seed))
        for step in range(n):
            machine.increment()
            counter.increment()
            assert (machine.y, machine.t) == (counter.y, counter.t), step

    def test_declared_bits_match_counter_accounting(self):
        machine = SimplifiedNYMachine(8192, 7, BitBudgetedRandom(0))
        counter = SimplifiedNYCounter(8192, t_max=7, seed=0)
        assert machine.state_bits == counter.state_bits() == 17

    def test_estimates_agree(self):
        seed = 11
        machine = SimplifiedNYMachine(16, 10, BitBudgetedRandom(seed))
        counter = SimplifiedNYCounter(16, t_max=10, rng=BitBudgetedRandom(seed))
        for _ in range(2000):
            machine.increment()
            counter.increment()
        assert machine.estimate() == counter.estimate()


class TestNelsonYuEquivalence:
    def test_identical_trajectories(self):
        seed, n = 13, 20_000
        epsilon, exponent = 0.3, 4
        machine = NelsonYuMachine(
            epsilon, exponent, n_max=n, rng=BitBudgetedRandom(seed)
        )
        counter = NelsonYuCounter(
            epsilon, exponent, rng=BitBudgetedRandom(seed)
        )
        for step in range(n):
            machine.increment()
            counter.increment()
            assert (machine.x, machine.y, machine.t) == (
                counter.x,
                counter.y,
                counter.t,
            ), step

    def test_estimate_agrees_at_end(self):
        seed = 17
        machine = NelsonYuMachine(
            0.25, 6, n_max=10_000, rng=BitBudgetedRandom(seed)
        )
        counter = NelsonYuCounter(0.25, 6, rng=BitBudgetedRandom(seed))
        for _ in range(10_000):
            machine.increment()
            counter.increment()
        assert machine.estimate() == counter.estimate()

    def test_declared_widths_hold_for_larger_runs(self):
        """The schedule walk must size registers for the whole stream —
        a longer run than n_max is the overflow stress."""
        machine = NelsonYuMachine(
            0.3, 4, n_max=50_000, rng=BitBudgetedRandom(19)
        )
        for _ in range(50_000):
            machine.increment()  # must not raise BudgetError

    def test_state_bits_within_theorem_scale(self):
        machine = NelsonYuMachine(
            0.25, 10, n_max=1 << 20, rng=BitBudgetedRandom(0)
        )
        # O(log log N + log 1/eps + log log 1/delta): tens of bits.
        assert machine.state_bits < 40


class TestMorris2Machine:
    def test_matches_exact_dp(self):
        n, trials = 100, 4000
        exact = morris_state_distribution(1.0, n)
        root = BitBudgetedRandom(23)
        observed = np.zeros(len(exact))
        for trial in range(trials):
            machine = Morris2Machine(8, root.split(trial))
            for _ in range(n):
                machine.increment()
            observed[min(machine.x, len(exact) - 1)] += 1
        chi, dof = 0.0, -1
        pooled_e = pooled_o = 0.0
        for level in range(len(exact)):
            expected = exact[level] * trials
            if expected >= 5:
                chi += (observed[level] - expected) ** 2 / expected
                dof += 1
            else:
                pooled_e += expected
                pooled_o += observed[level]
        if pooled_e > 0:
            chi += (pooled_o - pooled_e) ** 2 / max(pooled_e, 1e-9)
            dof += 1
        dof = max(1, dof)
        assert chi < dof + 5 * math.sqrt(2 * dof) + 5

    def test_coin_only_randomness(self):
        """The machine must consume ~2 bits per increment on average
        (early-exit coin protocol), never 53-bit uniforms."""
        rng = BitBudgetedRandom(29)
        machine = Morris2Machine.for_stream(10_000, rng)
        for _ in range(10_000):
            machine.increment()
        assert rng.bits_consumed < 3 * 10_000

    def test_estimate(self):
        machine = Morris2Machine(8, BitBudgetedRandom(1))
        machine.increment()
        assert machine.estimate() == 1.0

    def test_overflow_surfaces(self):
        machine = Morris2Machine(1, BitBudgetedRandom(2))
        with pytest.raises(BudgetError):
            for _ in range(100):
                machine.increment()
