"""Tests for width-enforced registers."""

from __future__ import annotations

import pytest

from repro.errors import BudgetError, ParameterError
from repro.machine.registers import BoundedRegister, RegisterFile


class TestBoundedRegister:
    def test_stores_within_width(self):
        register = BoundedRegister("r", 4)
        register.store(15)
        assert register.value == 15
        assert register.capacity == 15

    def test_overflow_raises(self):
        register = BoundedRegister("r", 4)
        with pytest.raises(BudgetError, match="r"):
            register.store(16)

    def test_increment_overflow_raises(self):
        register = BoundedRegister("r", 2, value=3)
        with pytest.raises(BudgetError):
            register.increment()

    def test_negative_rejected(self):
        register = BoundedRegister("r", 4)
        with pytest.raises(BudgetError):
            register.store(-1)

    def test_shift_right(self):
        register = BoundedRegister("r", 6, value=40)
        register.shift_right(2)
        assert register.value == 10

    def test_clear(self):
        register = BoundedRegister("r", 4, value=9)
        register.clear()
        assert register.value == 0

    def test_width_validation(self):
        with pytest.raises(ParameterError):
            BoundedRegister("r", 0)

    def test_initial_value_checked(self):
        with pytest.raises(BudgetError):
            BoundedRegister("r", 2, value=4)


class TestRegisterFile:
    def test_total_bits(self):
        file = RegisterFile(
            BoundedRegister("a", 3), BoundedRegister("b", 5)
        )
        assert file.total_bits == 8

    def test_lookup(self):
        a = BoundedRegister("a", 3)
        file = RegisterFile(a)
        assert file["a"] is a
        assert "a" in file and "z" not in file
        with pytest.raises(ParameterError):
            file["z"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ParameterError):
            RegisterFile(BoundedRegister("a", 1), BoundedRegister("a", 2))

    def test_snapshot(self):
        file = RegisterFile(
            BoundedRegister("a", 3, value=5), BoundedRegister("b", 2)
        )
        assert file.snapshot() == {"a": 5, "b": 0}
