"""Tests for the deterministic PRNGs."""

from __future__ import annotations

import pytest

from repro.rng.splitmix import (
    SplitMix64,
    Xoshiro256StarStar,
    derive_seed,
    mix64,
)


class TestMix64:
    def test_is_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_is_64_bit(self):
        for z in (0, 1, (1 << 64) - 1, 0xDEADBEEF):
            assert 0 <= mix64(z) < (1 << 64)

    def test_is_injective_on_sample(self):
        outputs = {mix64(z) for z in range(10_000)}
        assert len(outputs) == 10_000

    def test_zero_maps_to_zero(self):
        # mix64(0) = 0 is a known fixed point of this mixer family.
        assert mix64(0) == 0


class TestSplitMix64:
    def test_reproducible(self):
        a = SplitMix64(42)
        b = SplitMix64(42)
        assert [a.next64() for _ in range(10)] == [
            b.next64() for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        a = SplitMix64(1)
        b = SplitMix64(2)
        assert [a.next64() for _ in range(4)] != [
            b.next64() for _ in range(4)
        ]

    def test_split_streams_are_unrelated(self):
        parent = SplitMix64(7)
        child = parent.split()
        parent_values = {parent.next64() for _ in range(1000)}
        child_values = {child.next64() for _ in range(1000)}
        assert len(parent_values & child_values) <= 1

    def test_known_reference_value(self):
        # SplitMix64(0) first output is the mix of the golden gamma.
        gen = SplitMix64(0)
        assert gen.next64() == mix64(0x9E3779B97F4A7C15)


class TestXoshiro:
    def test_reproducible(self):
        a = Xoshiro256StarStar(99)
        b = Xoshiro256StarStar(99)
        assert [a.next64() for _ in range(16)] == [
            b.next64() for _ in range(16)
        ]

    def test_output_range(self):
        gen = Xoshiro256StarStar(3)
        for _ in range(1000):
            assert 0 <= gen.next64() < (1 << 64)

    def test_bit_balance(self):
        """Each output bit should be ~uniform over many draws."""
        gen = Xoshiro256StarStar(5)
        n = 4000
        counts = [0] * 64
        for _ in range(n):
            value = gen.next64()
            for bit in range(64):
                counts[bit] += (value >> bit) & 1
        for bit, count in enumerate(counts):
            assert abs(count - n / 2) < 5 * (n ** 0.5), f"bit {bit} biased"


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)

    def test_key_order_matters(self):
        assert derive_seed(1, 2, 3) != derive_seed(1, 3, 2)

    def test_distinct_keys_distinct_seeds(self):
        seeds = {derive_seed(0, k) for k in range(5000)}
        assert len(seeds) == 5000

    def test_no_keys_still_mixes(self):
        assert derive_seed(17) != 17
