"""Tests for the geometric skip-ahead engine.

The load-bearing property: ``step(p, budget)`` must be distributionally
identical to flipping Bernoulli(p) up to ``budget`` times and stopping at
the first success.  We check acceptance probability and the conditional
law of the consumed count.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom
from repro.rng.skip import GeometricSkipper, SkipOutcome


class _PinnedGapRng(BitBudgetedRandom):
    """A random source whose geometric draws are pinned to a fixed gap.

    Lets the budget-boundary tests exercise ``gap == budget`` and
    ``gap == budget + 1`` exactly instead of waiting for the draws to
    land there.
    """

    def __init__(self, gap: int) -> None:
        super().__init__(0)
        self._gap = gap

    def geometric(self, p: float) -> int:
        return self._gap

    def geometric_pow2(self, t: int) -> int:
        return self._gap


class TestStep:
    def test_p_one_accepts_immediately(self, rng):
        outcome = GeometricSkipper(rng).step(1.0, 100)
        assert outcome.accepted and outcome.consumed == 1

    def test_p_zero_never_accepts(self, rng):
        outcome = GeometricSkipper(rng).step(0.0, 100)
        assert not outcome.accepted and outcome.consumed == 100

    def test_consumed_never_exceeds_budget(self, rng):
        skipper = GeometricSkipper(rng)
        for _ in range(2000):
            outcome = skipper.step(0.05, 17)
            assert 1 <= outcome.consumed <= 17
            if not outcome.accepted:
                assert outcome.consumed == 17

    def test_acceptance_probability(self, rng):
        """P[accept within budget] = 1 - (1-p)^budget."""
        skipper = GeometricSkipper(rng)
        p, budget, trials = 0.1, 10, 30_000
        accepted = sum(
            skipper.step(p, budget).accepted for _ in range(trials)
        )
        expected = (1.0 - (1.0 - p) ** budget) * trials
        assert abs(accepted - expected) < 5 * math.sqrt(trials * 0.25)

    def test_consumed_distribution_geometric(self, rng):
        """Conditioned on acceptance, consumed ~ truncated geometric."""
        skipper = GeometricSkipper(rng)
        p, budget, trials = 0.3, 8, 40_000
        counts = [0] * (budget + 1)
        accepted_total = 0
        for _ in range(trials):
            outcome = skipper.step(p, budget)
            if outcome.accepted:
                counts[outcome.consumed] += 1
                accepted_total += 1
        for g in range(1, budget + 1):
            expected = (1 - p) ** (g - 1) * p * trials
            if expected > 50:
                assert abs(counts[g] - expected) < 6 * math.sqrt(expected)

    def test_pow2_matches_float_path(self, rng):
        skipper = GeometricSkipper(rng)
        trials = 30_000
        accepted = sum(
            skipper.step_pow2(3, 5).accepted for _ in range(trials)
        )
        expected = (1.0 - (1.0 - 0.125) ** 5) * trials
        assert abs(accepted - expected) < 6 * math.sqrt(trials * 0.25)

    def test_budget_validation(self, rng):
        skipper = GeometricSkipper(rng)
        with pytest.raises(ParameterError):
            skipper.step(0.5, 0)
        with pytest.raises(ParameterError):
            skipper.step_pow2(1, 0)


class TestBudgetBoundary:
    """The ``gap == budget`` edge: a gap landing exactly on the budget is
    an accept that consumes the whole budget; one past it is a miss that
    consumes exactly the budget — never ``budget ± 1``."""

    def test_step_gap_equals_budget_accepts(self):
        outcome = GeometricSkipper(_PinnedGapRng(7)).step(0.5, 7)
        assert outcome == SkipOutcome(accepted=True, consumed=7)

    def test_step_gap_one_past_budget_misses(self):
        outcome = GeometricSkipper(_PinnedGapRng(8)).step(0.5, 7)
        assert outcome == SkipOutcome(accepted=False, consumed=7)

    def test_step_pow2_gap_equals_budget_accepts(self):
        # t > 4 with budget >= 53: the inverse-CDF path.
        outcome = GeometricSkipper(_PinnedGapRng(60)).step_pow2(5, 60)
        assert outcome == SkipOutcome(accepted=True, consumed=60)

    def test_step_pow2_gap_one_past_budget_misses(self):
        outcome = GeometricSkipper(_PinnedGapRng(61)).step_pow2(5, 60)
        assert outcome == SkipOutcome(accepted=False, consumed=60)

    def test_step_pow2_capped_path_budget_boundary(self, rng):
        # Capped coin protocol (budget < 53): a miss consumes exactly
        # the budget, an accept consumes at most the budget.
        skipper = GeometricSkipper(rng)
        for _ in range(500):
            outcome = skipper.step_pow2(6, 40)
            if outcome.accepted:
                assert 1 <= outcome.consumed <= 40
            else:
                assert outcome.consumed == 40


class TestCappedRegimeBitIdentity:
    """For ``t <= 4`` or ``budget < 53`` the skip consumes the *same bit
    stream* the per-unit ``bernoulli_pow2`` loop would — not just the
    same distribution."""

    @pytest.mark.parametrize(
        "t,budget", [(1, 200), (2, 75), (4, 500), (7, 13), (10, 52)]
    )
    def test_matches_per_unit_loop(self, rng_factory, t, budget):
        skip_rng = rng_factory(0xC0FFEE)
        unit_rng = rng_factory(0xC0FFEE)
        skipper = GeometricSkipper(skip_rng)
        for _ in range(50):
            outcome = skipper.step_pow2(t, budget)
            accepted, gap = False, budget
            for i in range(1, budget + 1):
                if unit_rng.bernoulli_pow2(t):
                    accepted, gap = True, i
                    break
            assert outcome.accepted == accepted
            assert outcome.consumed == (gap if accepted else budget)
            assert skip_rng.bits_consumed == unit_rng.bits_consumed


class TestBitMetering:
    """Skip-ahead must never report more random bits than the per-unit
    loop it replaces (the module's bit-metering contract)."""

    def test_step_spends_one_cdf_draw(self, rng):
        # One 53-bit draw covers the whole budget; a single per-unit
        # bernoulli(p) trial already costs the same 53 bits.
        skipper = GeometricSkipper(rng)
        before = rng.bits_consumed
        outcome = skipper.step(0.2, 40)
        spent = rng.bits_consumed - before
        assert spent == 53
        assert spent <= 53 * outcome.consumed

    @pytest.mark.parametrize("t", [1, 3, 5, 9])
    def test_step_pow2_aggregate_never_exceeds_per_unit(
        self, rng_factory, t
    ):
        # Drive the same total budget through skip-ahead and through
        # per-unit trials on twin streams: the skip side's bill must
        # not exceed the per-unit side's.
        total = 20_000
        skip_rng, unit_rng = rng_factory(99), rng_factory(99)
        skipper = GeometricSkipper(skip_rng)
        remaining = total
        while remaining > 0:
            remaining -= skipper.step_pow2(t, remaining).consumed
        for _ in range(total):
            unit_rng.bernoulli_pow2(t)
        assert skip_rng.bits_consumed <= unit_rng.bits_consumed
