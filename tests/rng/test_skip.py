"""Tests for the geometric skip-ahead engine.

The load-bearing property: ``step(p, budget)`` must be distributionally
identical to flipping Bernoulli(p) up to ``budget`` times and stopping at
the first success.  We check acceptance probability and the conditional
law of the consumed count.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ParameterError
from repro.rng.skip import GeometricSkipper


class TestStep:
    def test_p_one_accepts_immediately(self, rng):
        outcome = GeometricSkipper(rng).step(1.0, 100)
        assert outcome.accepted and outcome.consumed == 1

    def test_p_zero_never_accepts(self, rng):
        outcome = GeometricSkipper(rng).step(0.0, 100)
        assert not outcome.accepted and outcome.consumed == 100

    def test_consumed_never_exceeds_budget(self, rng):
        skipper = GeometricSkipper(rng)
        for _ in range(2000):
            outcome = skipper.step(0.05, 17)
            assert 1 <= outcome.consumed <= 17
            if not outcome.accepted:
                assert outcome.consumed == 17

    def test_acceptance_probability(self, rng):
        """P[accept within budget] = 1 - (1-p)^budget."""
        skipper = GeometricSkipper(rng)
        p, budget, trials = 0.1, 10, 30_000
        accepted = sum(
            skipper.step(p, budget).accepted for _ in range(trials)
        )
        expected = (1.0 - (1.0 - p) ** budget) * trials
        assert abs(accepted - expected) < 5 * math.sqrt(trials * 0.25)

    def test_consumed_distribution_geometric(self, rng):
        """Conditioned on acceptance, consumed ~ truncated geometric."""
        skipper = GeometricSkipper(rng)
        p, budget, trials = 0.3, 8, 40_000
        counts = [0] * (budget + 1)
        accepted_total = 0
        for _ in range(trials):
            outcome = skipper.step(p, budget)
            if outcome.accepted:
                counts[outcome.consumed] += 1
                accepted_total += 1
        for g in range(1, budget + 1):
            expected = (1 - p) ** (g - 1) * p * trials
            if expected > 50:
                assert abs(counts[g] - expected) < 6 * math.sqrt(expected)

    def test_pow2_matches_float_path(self, rng):
        skipper = GeometricSkipper(rng)
        trials = 30_000
        accepted = sum(
            skipper.step_pow2(3, 5).accepted for _ in range(trials)
        )
        expected = (1.0 - (1.0 - 0.125) ** 5) * trials
        assert abs(accepted - expected) < 6 * math.sqrt(trials * 0.25)

    def test_budget_validation(self, rng):
        skipper = GeometricSkipper(rng)
        with pytest.raises(ParameterError):
            skipper.step(0.5, 0)
        with pytest.raises(ParameterError):
            skipper.step_pow2(1, 0)
