"""Tests for dyadic probabilities (the Remark 2.2 α representation)."""

from __future__ import annotations

import math

import pytest

from repro.errors import ParameterError
from repro.rng.bernoulli import DyadicProbability, sample_bernoulli


class TestAtLeast:
    def test_rounds_up(self):
        """The chosen 2^-t must be >= p (Remark 2.2's direction)."""
        for p in (0.3, 0.6, 0.1, 1e-5, 0.999, 2.0 ** -17 + 1e-9):
            dyadic = DyadicProbability.at_least(p)
            assert dyadic.value >= p

    def test_is_tight(self):
        """One more halving would undershoot p."""
        for p in (0.3, 0.6, 0.1, 1e-5, 0.7):
            dyadic = DyadicProbability.at_least(p)
            assert dyadic.value / 2.0 < p

    def test_exact_powers(self):
        for t in range(0, 40):
            assert DyadicProbability.at_least(2.0 ** -t).t == t

    def test_one(self):
        assert DyadicProbability.at_least(1.0).t == 0

    def test_invalid_probability(self):
        with pytest.raises(ParameterError):
            DyadicProbability.at_least(0.0)
        with pytest.raises(ParameterError):
            DyadicProbability.at_least(1.5)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ParameterError):
            DyadicProbability(-1)


class TestStorage:
    def test_storage_bits_is_exponent_length(self):
        assert DyadicProbability(0).storage_bits() == 1
        assert DyadicProbability(5).storage_bits() == 3
        assert DyadicProbability(1023).storage_bits() == 10

    def test_float_conversion(self):
        assert float(DyadicProbability(4)) == 0.0625


class TestSampling:
    def test_sample_rate(self, rng):
        dyadic = DyadicProbability(2)
        n = 40_000
        hits = sum(dyadic.sample(rng) for _ in range(n))
        assert abs(hits - n / 4) < 5 * math.sqrt(n * 3 / 16)

    def test_sample_bernoulli_dispatch(self, rng):
        assert sample_bernoulli(rng, DyadicProbability(0)) is True
        assert sample_bernoulli(rng, 1.0) is True
        assert sample_bernoulli(rng, 0.0) is False
