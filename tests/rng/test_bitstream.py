"""Tests for the bit-metered random source."""

from __future__ import annotations

import math

import pytest

from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom


class TestBitAccounting:
    def test_coin_costs_one_bit(self, rng):
        rng.coin()
        assert rng.bits_consumed == 1

    def test_getbits_costs_k(self, rng):
        rng.getbits(13)
        assert rng.bits_consumed == 13

    def test_getbits_zero_is_free(self, rng):
        assert rng.getbits(0) == 0
        assert rng.bits_consumed == 0

    def test_uniform53_costs_53(self, rng):
        rng.uniform53()
        assert rng.bits_consumed == 53

    def test_bernoulli_pow2_early_exit(self, rng):
        """Expected cost is < 2 bits regardless of t."""
        trials = 2000
        before = rng.bits_consumed
        for _ in range(trials):
            rng.bernoulli_pow2(40)
        cost = (rng.bits_consumed - before) / trials
        assert cost < 2.5

    def test_bernoulli_pow2_zero_costs_nothing(self, rng):
        assert rng.bernoulli_pow2(0) is True
        assert rng.bits_consumed == 0

    def test_no_entropy_discarded_between_calls(self, rng):
        """Buffered bits keep total consumption exact across mixed calls."""
        rng.getbits(7)
        rng.coin()
        rng.getbits(64)
        assert rng.bits_consumed == 7 + 1 + 64


class TestDistributions:
    def test_getbits_range(self, rng):
        for _ in range(500):
            assert 0 <= rng.getbits(5) < 32

    def test_coin_is_fair(self, rng):
        n = 20_000
        heads = sum(rng.coin() for _ in range(n))
        assert abs(heads - n / 2) < 5 * math.sqrt(n / 4)

    def test_bernoulli_pow2_rate(self, rng):
        n = 30_000
        hits = sum(rng.bernoulli_pow2(3) for _ in range(n))
        expected = n / 8
        assert abs(hits - expected) < 5 * math.sqrt(expected)

    def test_bernoulli_edge_cases(self, rng):
        assert rng.bernoulli(0.0) is False
        assert rng.bernoulli(1.0) is True

    def test_bernoulli_rate(self, rng):
        n = 30_000
        hits = sum(rng.bernoulli(0.3) for _ in range(n))
        assert abs(hits - 0.3 * n) < 5 * math.sqrt(n * 0.21)

    def test_geometric_mean(self, rng):
        p = 0.2
        n = 20_000
        total = sum(rng.geometric(p) for _ in range(n))
        mean = total / n
        std_of_mean = math.sqrt((1 - p) / p**2 / n)
        assert abs(mean - 1 / p) < 6 * std_of_mean

    def test_geometric_p1(self, rng):
        assert rng.geometric(1.0) == 1

    def test_geometric_support_starts_at_one(self, rng):
        assert all(rng.geometric(0.9) >= 1 for _ in range(1000))

    def test_geometric_pow2_matches_geometric(self, rng):
        """Small-t (coin protocol) and large-t (inverse CDF) agree."""
        n = 20_000
        small = sum(rng.geometric_pow2(3) for _ in range(n)) / n
        assert abs(small - 8.0) < 6 * math.sqrt(56.0 / n)

    def test_randint_below_uniform(self, rng):
        counts = [0] * 7
        n = 21_000
        for _ in range(n):
            counts[rng.randint_below(7)] += 1
        for c in counts:
            assert abs(c - n / 7) < 6 * math.sqrt(n / 7)

    def test_randint_inclusive_bounds(self, rng):
        values = {rng.randint(3, 5) for _ in range(200)}
        assert values == {3, 4, 5}

    def test_shuffle_is_permutation(self, rng):
        items = list(range(50))
        rng.shuffle(items)
        assert sorted(items) == list(range(50))

    def test_uniform_open_never_zero(self, rng):
        assert all(0.0 < rng.uniform_open() < 1.0 for _ in range(2000))


class TestSplitting:
    def test_split_reproducible(self):
        a = BitBudgetedRandom(5).split(1, 2)
        b = BitBudgetedRandom(5).split(1, 2)
        assert [a.getbits(32) for _ in range(4)] == [
            b.getbits(32) for _ in range(4)
        ]

    def test_split_independent_of_consumption(self):
        a = BitBudgetedRandom(5)
        a.getbits(640)
        b = BitBudgetedRandom(5)
        assert a.split(9).getbits(64) == b.split(9).getbits(64)

    def test_distinct_keys_distinct_streams(self):
        root = BitBudgetedRandom(5)
        assert root.split(1).getbits(64) != root.split(2).getbits(64)


class TestValidation:
    def test_negative_bits_rejected(self, rng):
        with pytest.raises(ParameterError):
            rng.getbits(-1)

    def test_bad_bernoulli_probability(self, rng):
        with pytest.raises(ParameterError):
            rng.bernoulli(1.5)

    def test_bad_geometric_probability(self, rng):
        with pytest.raises(ParameterError):
            rng.geometric(0.0)

    def test_negative_pow2_exponent(self, rng):
        with pytest.raises(ParameterError):
            rng.bernoulli_pow2(-1)

    def test_randint_below_zero(self, rng):
        with pytest.raises(ParameterError):
            rng.randint_below(0)

    def test_empty_randint_range(self, rng):
        with pytest.raises(ParameterError):
            rng.randint(5, 4)
