"""Tests for geometric helpers and exact binomial sampling."""

from __future__ import annotations

import math

import pytest

from repro.errors import ParameterError
from repro.rng.geometric import (
    expected_trials_until_overflow,
    geometric_mean,
    geometric_variance,
    sample_binomial,
    sample_truncated_geometric,
)
from repro.theory.bounds import binomial_pmf


class TestMoments:
    def test_mean(self):
        assert geometric_mean(0.25) == 4.0

    def test_variance(self):
        assert geometric_variance(0.5) == pytest.approx(2.0)

    def test_invalid_p(self):
        with pytest.raises(ParameterError):
            geometric_mean(0.0)
        with pytest.raises(ParameterError):
            geometric_variance(1.5)


class TestTruncated:
    def test_overflow_probability(self, rng):
        p, limit, n = 0.05, 20, 20_000
        overflows = sum(
            sample_truncated_geometric(rng, p, limit) is None
            for _ in range(n)
        )
        expected = expected_trials_until_overflow(p, limit) * n
        assert abs(overflows - expected) < 5 * math.sqrt(expected)

    def test_values_within_limit(self, rng):
        for _ in range(500):
            g = sample_truncated_geometric(rng, 0.3, 7)
            assert g is None or 1 <= g <= 7

    def test_invalid_limit(self, rng):
        with pytest.raises(ParameterError):
            sample_truncated_geometric(rng, 0.5, 0)


class TestBinomial:
    def test_edge_cases(self, rng):
        assert sample_binomial(rng, 0, 0.5) == 0
        assert sample_binomial(rng, 10, 0.0) == 0
        assert sample_binomial(rng, 10, 1.0) == 10

    def test_small_n_distribution(self, rng):
        """n <= 16 path: exact match to binomial pmf by chi-square."""
        n, p, trials = 8, 0.4, 30_000
        counts = [0] * (n + 1)
        for _ in range(trials):
            counts[sample_binomial(rng, n, p)] += 1
        chi = 0.0
        for k in range(n + 1):
            expected = binomial_pmf(n, k, p) * trials
            if expected > 5:
                chi += (counts[k] - expected) ** 2 / expected
        assert chi < 30.0  # ~9 dof; 30 is far beyond any sane quantile

    def test_large_n_gap_method_mean(self, rng):
        """n > 16 path: mean and variance match np, np(1-p)."""
        n, p, trials = 500, 0.02, 4000
        samples = [sample_binomial(rng, n, p) for _ in range(trials)]
        mean = sum(samples) / trials
        expected = n * p
        std_of_mean = math.sqrt(n * p * (1 - p) / trials)
        assert abs(mean - expected) < 6 * std_of_mean

    def test_validation(self, rng):
        with pytest.raises(ParameterError):
            sample_binomial(rng, -1, 0.5)
        with pytest.raises(ParameterError):
            sample_binomial(rng, 5, 1.5)
