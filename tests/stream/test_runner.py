"""Tests for the stream runner."""

from __future__ import annotations

import pytest

from repro.core.deterministic import ExactCounter
from repro.core.morris import MorrisCounter
from repro.stream.runner import run_counter
from repro.stream.source import FixedLengthStream, TraceStream, UniformLengthStream


class TestRunCounter:
    def test_exact_counter_trajectory(self):
        result = run_counter(
            ExactCounter(seed=0), TraceStream((10, 100, 1000))
        )
        assert [c.n for c in result.checkpoints] == [10, 100, 1000]
        assert [c.estimate for c in result.checkpoints] == [10, 100, 1000]
        assert all(c.relative_error == 0.0 for c in result.checkpoints)
        assert result.final.n == 1000

    def test_morris_records_space_and_bits(self):
        result = run_counter(MorrisCounter(0.5, seed=1), FixedLengthStream(5000))
        assert result.max_state_bits >= result.final.state_bits - 1
        assert result.random_bits > 0

    def test_plan_rng_reproducible_across_algorithms(self):
        """Two counters given the same plan source see the same N."""
        from repro.rng.bitstream import BitBudgetedRandom

        source = UniformLengthStream(1000, 2000)
        r1 = run_counter(
            ExactCounter(seed=0), source, plan_rng=BitBudgetedRandom(5)
        )
        r2 = run_counter(
            MorrisCounter(0.5, seed=9), source, plan_rng=BitBudgetedRandom(5)
        )
        assert r1.final.n == r2.final.n

    def test_default_plan_rng_split_from_counter(self):
        source = UniformLengthStream(100, 200)
        r1 = run_counter(ExactCounter(seed=4), source)
        r2 = run_counter(ExactCounter(seed=4), source)
        assert r1.final.n == r2.final.n
