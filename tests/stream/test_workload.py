"""Tests for keyed workload generators."""

from __future__ import annotations

import math
from collections import Counter

import pytest

from repro.errors import ParameterError
from repro.stream.workload import (
    burst_workload,
    uniform_workload,
    weighted_zipf_workload,
    zipf_workload,
)


class TestZipf:
    def test_event_count(self, rng):
        events = list(zipf_workload(rng, 50, 1000))
        assert len(events) == 1000

    def test_head_heavier_than_tail(self, rng):
        counts = Counter(
            e.key for e in zipf_workload(rng, 100, 20_000, exponent=1.2)
        )
        top = counts.most_common(1)[0][1]
        assert top > 20_000 / 100 * 5  # rank 1 way above uniform share

    def test_rank_frequencies_follow_power_law(self, rng):
        n_events = 60_000
        counts = Counter(
            e.key for e in zipf_workload(rng, 20, n_events, exponent=1.0)
        )
        harmonic = sum(1 / r for r in range(1, 21))
        expected_top = n_events / harmonic
        observed_top = counts["page-000000"]
        assert abs(observed_top - expected_top) < 6 * math.sqrt(expected_top)

    def test_validation(self, rng):
        with pytest.raises(ParameterError):
            list(zipf_workload(rng, 0, 10))
        with pytest.raises(ParameterError):
            list(zipf_workload(rng, 5, -1))
        with pytest.raises(ParameterError):
            list(zipf_workload(rng, 5, 10, exponent=0.0))


class TestUniform:
    def test_balanced(self, rng):
        n_keys, n_events = 10, 30_000
        counts = Counter(e.key for e in uniform_workload(rng, n_keys, n_events))
        for key, count in counts.items():
            assert abs(count - n_events / n_keys) < 6 * math.sqrt(
                n_events / n_keys
            )


class TestWeightedZipf:
    def test_keys_match_unweighted_stream(self, rng_factory):
        """Same seed, same key sequence as zipf_workload — only the
        per-event counts differ (they ride an independent split)."""
        weighted = list(weighted_zipf_workload(rng_factory(5), 40, 2000))
        plain = list(zipf_workload(rng_factory(5), 40, 2000))
        assert [e.key for e in weighted] == [e.key for e in plain]

    def test_deterministic(self, rng_factory):
        first = list(weighted_zipf_workload(rng_factory(9), 30, 1500))
        second = list(weighted_zipf_workload(rng_factory(9), 30, 1500))
        assert first == second

    def test_counts_uniform_around_mean(self, rng):
        mean_count, n_events = 32, 4000
        counts = [
            e.count
            for e in weighted_zipf_workload(
                rng, 40, n_events, mean_count=mean_count
            )
        ]
        assert min(counts) >= 1
        assert max(counts) <= 2 * mean_count - 1
        observed_mean = sum(counts) / len(counts)
        std = (2 * mean_count - 2) / math.sqrt(12)
        assert abs(observed_mean - mean_count) < 6 * std / math.sqrt(n_events)

    def test_mean_count_one_degenerates_to_unit_events(self, rng):
        events = list(weighted_zipf_workload(rng, 10, 200, mean_count=1))
        assert all(e.count == 1 for e in events)

    def test_validation(self, rng):
        with pytest.raises(ParameterError):
            list(weighted_zipf_workload(rng, 10, 10, mean_count=0))
        with pytest.raises(ParameterError):
            list(weighted_zipf_workload(rng, 0, 10))


class TestBurst:
    def test_hot_key_share(self, rng):
        n_events = 20_000
        counts = Counter(
            e.key
            for e in burst_workload(
                rng, 10, n_events, hot_key_index=3, hot_fraction=0.5
            )
        )
        hot = counts["page-000003"]
        # Hot key gets 50% + 1/10 of the remaining 50% = 55%.
        expected = n_events * 0.55
        assert abs(hot - expected) < 6 * math.sqrt(n_events * 0.25)

    def test_validation(self, rng):
        with pytest.raises(ParameterError):
            list(burst_workload(rng, 5, 10, hot_key_index=9))
        with pytest.raises(ParameterError):
            list(burst_workload(rng, 5, 10, hot_fraction=1.5))
