"""Tests for keyed workload generators."""

from __future__ import annotations

import math
from collections import Counter

import pytest

from repro.errors import ParameterError
from repro.stream.workload import (
    burst_workload,
    uniform_workload,
    zipf_workload,
)


class TestZipf:
    def test_event_count(self, rng):
        events = list(zipf_workload(rng, 50, 1000))
        assert len(events) == 1000

    def test_head_heavier_than_tail(self, rng):
        counts = Counter(
            e.key for e in zipf_workload(rng, 100, 20_000, exponent=1.2)
        )
        top = counts.most_common(1)[0][1]
        assert top > 20_000 / 100 * 5  # rank 1 way above uniform share

    def test_rank_frequencies_follow_power_law(self, rng):
        n_events = 60_000
        counts = Counter(
            e.key for e in zipf_workload(rng, 20, n_events, exponent=1.0)
        )
        harmonic = sum(1 / r for r in range(1, 21))
        expected_top = n_events / harmonic
        observed_top = counts["page-000000"]
        assert abs(observed_top - expected_top) < 6 * math.sqrt(expected_top)

    def test_validation(self, rng):
        with pytest.raises(ParameterError):
            list(zipf_workload(rng, 0, 10))
        with pytest.raises(ParameterError):
            list(zipf_workload(rng, 5, -1))
        with pytest.raises(ParameterError):
            list(zipf_workload(rng, 5, 10, exponent=0.0))


class TestUniform:
    def test_balanced(self, rng):
        n_keys, n_events = 10, 30_000
        counts = Counter(e.key for e in uniform_workload(rng, n_keys, n_events))
        for key, count in counts.items():
            assert abs(count - n_events / n_keys) < 6 * math.sqrt(
                n_events / n_keys
            )


class TestBurst:
    def test_hot_key_share(self, rng):
        n_events = 20_000
        counts = Counter(
            e.key
            for e in burst_workload(
                rng, 10, n_events, hot_key_index=3, hot_fraction=0.5
            )
        )
        hot = counts["page-000003"]
        # Hot key gets 50% + 1/10 of the remaining 50% = 55%.
        expected = n_events * 0.55
        assert abs(hot - expected) < 6 * math.sqrt(n_events * 0.25)

    def test_validation(self, rng):
        with pytest.raises(ParameterError):
            list(burst_workload(rng, 5, 10, hot_key_index=9))
        with pytest.raises(ParameterError):
            list(burst_workload(rng, 5, 10, hot_fraction=1.5))
