"""Tests for stream sources."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.source import (
    FixedLengthStream,
    TraceStream,
    UniformLengthStream,
)


class TestFixed:
    def test_plan(self, rng):
        assert FixedLengthStream(100).plan(rng) == [100]

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            FixedLengthStream(-1)


class TestUniform:
    def test_range(self, rng):
        source = UniformLengthStream(10, 20)
        for _ in range(200):
            (n,) = source.plan(rng)
            assert 10 <= n <= 20

    def test_deterministic_given_rng(self):
        source = UniformLengthStream(500_000, 999_999)
        a = source.plan(BitBudgetedRandom(3))
        b = source.plan(BitBudgetedRandom(3))
        assert a == b

    def test_figure1_range_shape(self, rng):
        """The paper's draw: a 20-bit number."""
        source = UniformLengthStream(500_000, 999_999)
        (n,) = source.plan(rng)
        assert n.bit_length() == 20

    def test_invalid_range(self):
        with pytest.raises(ParameterError):
            UniformLengthStream(10, 5)


class TestTrace:
    def test_plan_returns_points(self, rng):
        trace = TraceStream((1, 5, 100))
        assert trace.plan(rng) == [1, 5, 100]

    def test_requires_increasing(self):
        with pytest.raises(ParameterError):
            TraceStream((1, 1))
        with pytest.raises(ParameterError):
            TraceStream(())

    def test_geometric_grid(self):
        trace = TraceStream.geometric_grid(1000, points_per_decade=3)
        points = trace.points
        assert points[0] == 1
        assert points[-1] == 1000
        assert list(points) == sorted(set(points))

    def test_geometric_grid_small(self):
        assert TraceStream.geometric_grid(1).points == (1,)
