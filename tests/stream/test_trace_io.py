"""Tests for trace persistence."""

from __future__ import annotations

import pytest

from repro.errors import StateError
from repro.stream.trace_io import load_trace_stream, read_trace, write_trace


class TestRoundtrip:
    def test_write_read(self, tmp_path):
        path = tmp_path / "trace.txt"
        write_trace(path, [1, 10, 100], comment="for test")
        assert read_trace(path) == [1, 10, 100]

    def test_comment_preserved_in_file(self, tmp_path):
        path = tmp_path / "trace.txt"
        write_trace(path, [5], comment="two\nlines")
        text = path.read_text()
        assert "# two" in text and "# lines" in text

    def test_load_as_stream(self, tmp_path):
        path = tmp_path / "trace.txt"
        write_trace(path, [2, 20, 200])
        stream = load_trace_stream(path)
        assert stream.points == (2, 20, 200)


class TestFailureInjection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StateError):
            read_trace(tmp_path / "nope.txt")

    def test_garbage_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1\nbanana\n3\n")
        with pytest.raises(StateError, match="banana"):
            read_trace(path)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# only a comment\n")
        with pytest.raises(StateError, match="no checkpoints"):
            read_trace(path)

    def test_non_increasing_trace_rejected_as_stream(self, tmp_path):
        path = tmp_path / "dup.txt"
        write_trace(path, [5, 5])
        with pytest.raises(StateError, match="not a valid plan"):
            load_trace_stream(path)
