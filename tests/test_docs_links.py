"""Tier-1 guard: documentation references resolve to real files.

Runs ``scripts/check_docs_links.py`` the way CI would, so a rename that
strands README/docs references fails loudly, and unit-tests the
reference extractor itself.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

_REPO = pathlib.Path(__file__).resolve().parents[1]
_SCRIPT = _REPO / "scripts" / "check_docs_links.py"

sys.path.insert(0, str(_SCRIPT.parent))
import check_docs_links  # noqa: E402


class TestExtractor:
    def test_markdown_links_and_backtick_paths(self):
        text = (
            "See [the docs](docs/cluster.md) and `src/repro/cli.py`, "
            "plus [external](https://example.com), [anchor](#sec), "
            "and a pattern `tests/**/*.py`."
        )
        assert check_docs_links.references(text) == {
            "docs/cluster.md",
            "src/repro/cli.py",
        }

    def test_anchor_suffix_stripped(self):
        text = "[jump](docs/architecture.md#layers)"
        assert check_docs_links.references(text) == {
            "docs/architecture.md"
        }


class TestRepoDocs:
    def test_repo_docs_have_no_broken_references(self):
        completed = subprocess.run(
            [sys.executable, str(_SCRIPT)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stdout

    def test_doc_set_includes_readme_and_docs(self):
        names = {path.name for path in check_docs_links.doc_files()}
        assert "README.md" in names
        assert "architecture.md" in names
        assert "cluster.md" in names
