"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.rng.bitstream import BitBudgetedRandom


@pytest.fixture
def rng() -> BitBudgetedRandom:
    """A deterministic random source (fresh per test)."""
    return BitBudgetedRandom(0xDEADBEEF)


@pytest.fixture
def rng_factory():
    """Factory producing independent seeded sources."""

    def make(seed: int) -> BitBudgetedRandom:
        return BitBudgetedRandom(seed)

    return make
