"""Tests for Algorithm 1 (NelsonYuCounter)."""

from __future__ import annotations

import math

import pytest

from repro.core.nelson_yu import NelsonYuCounter
from repro.errors import MergeError, ParameterError
from repro.memory.model import SpaceModel
from repro.rng.bitstream import BitBudgetedRandom


class TestInit:
    def test_delta_exponent_validation(self):
        with pytest.raises(ParameterError):
            NelsonYuCounter(0.1, 1)

    def test_epsilon_validation(self):
        with pytest.raises(ParameterError):
            NelsonYuCounter(0.6, 10)

    def test_from_delta_rounds_down(self):
        counter = NelsonYuCounter.from_delta(0.1, 0.01)
        assert counter.delta <= 0.01
        assert counter.delta_exponent == 7  # 2^-7 < 0.01

    def test_initial_state(self):
        counter = NelsonYuCounter(0.2, 10, seed=0)
        assert counter.epoch == 0
        assert counter.y == 0
        assert counter.t == 0
        assert counter.alpha == 1.0


class TestEpochZeroExactness:
    """Theorem 2.1's first observation: epoch 0 counts exactly."""

    def test_exact_while_in_epoch_zero(self):
        counter = NelsonYuCounter(0.2, 10, seed=0)
        for n in range(1, 200):
            counter.increment()
            if counter.epoch == 0:
                assert counter.estimate() == n

    def test_add_exact_in_epoch_zero(self):
        counter = NelsonYuCounter(0.2, 10, seed=0)
        counter.add(100)
        assert counter.epoch == 0
        assert counter.estimate() == 100.0


class TestInvariants:
    def test_trigger_invariant(self):
        """Between increments Y*2^t <= T always holds."""
        counter = NelsonYuCounter(0.3, 6, seed=1)
        for _ in range(3000):
            counter.increment()
            assert (counter.y << counter.t) <= counter._threshold

    def test_t_monotone_nondecreasing(self):
        counter = NelsonYuCounter(0.3, 6, seed=2)
        previous = 0
        for _ in range(50):
            counter.add(500)
            assert counter.t >= previous
            previous = counter.t

    def test_x_monotone(self):
        counter = NelsonYuCounter(0.3, 6, seed=3)
        previous = counter.x
        for _ in range(50):
            counter.add(500)
            assert counter.x >= previous
            previous = counter.x

    def test_alpha_is_dyadic(self):
        counter = NelsonYuCounter(0.3, 6, seed=4)
        counter.add(30_000)
        assert counter.alpha == 2.0 ** -counter.t

    def test_threshold_never_stored_stale(self):
        counter = NelsonYuCounter(0.3, 6, seed=5)
        counter.add(10_000)
        assert counter._threshold == math.ceil(
            math.exp(counter.x * math.log1p(counter.epsilon))
        )


class TestAccuracy:
    def test_estimate_within_guarantee(self):
        """Relative error bounded by C·ε across magnitudes (C ~ 1.5)."""
        counter = NelsonYuCounter(0.1, 20, seed=6)
        position = 0
        for n in (1_000, 10_000, 100_000, 1_000_000):
            counter.add(n - position)
            position = n
            assert counter.relative_error() < 1.5 * 0.1, f"at n={n}"

    def test_increment_and_add_agree_statistically(self):
        """Mean estimates from the two drivers agree at matched n."""
        n, trials = 3000, 150
        root = BitBudgetedRandom(7)
        means = []
        for mode in ("increment", "add"):
            total = 0.0
            for t in range(trials):
                counter = NelsonYuCounter(0.3, 4, rng=root.split(t, hash(mode) & 0xFF))
                if mode == "increment":
                    for _ in range(n):
                        counter.increment()
                else:
                    counter.add(n)
                total += counter.estimate()
            means.append(total / trials)
        assert abs(means[0] - means[1]) / n < 0.1

    def test_log_estimate(self):
        counter = NelsonYuCounter(0.1, 20, seed=8)
        counter.add(1_000_000)
        expected_x = math.log(1_000_000) / math.log1p(0.1)
        assert abs(counter.log_estimate() - expected_x) < 6


class TestSpace:
    def test_state_bits_components(self):
        counter = NelsonYuCounter(0.2, 10, seed=9)
        counter.add(200_000)
        automaton = counter.state_bits(SpaceModel.AUTOMATON)
        word_ram = counter.state_bits(SpaceModel.WORD_RAM)
        assert automaton == max(1, counter.x.bit_length()) + max(
            1, counter.y.bit_length()
        )
        assert word_ram >= automaton

    def test_loglog_n_scaling(self):
        """Going from N to N^2 should add O(1) bits, not double them."""
        bits = []
        for n in (10_000, 100_000_000):
            counter = NelsonYuCounter(0.25, 10, seed=10)
            counter.add(n)
            bits.append(counter.state_bits())
        assert bits[1] - bits[0] <= 3


class TestMerge:
    def test_requires_mergeable_flag(self):
        a = NelsonYuCounter(0.3, 4, seed=0)
        b = NelsonYuCounter(0.3, 4, seed=1)
        with pytest.raises(MergeError):
            a.merge_from(b)

    def test_param_mismatch(self):
        a = NelsonYuCounter(0.3, 4, mergeable=True, seed=0)
        b = NelsonYuCounter(0.3, 5, mergeable=True, seed=1)
        with pytest.raises(MergeError):
            a.merge_from(b)

    def test_merge_preserves_total_count(self):
        a = NelsonYuCounter(0.3, 4, mergeable=True, seed=0)
        b = NelsonYuCounter(0.3, 4, mergeable=True, seed=1)
        a.add(4000)
        b.add(9000)
        a.merge_from(b)
        assert a.n_increments == 13_000
        assert a.relative_error() < 1.5 * 0.3

    def test_merge_smaller_into_larger_and_vice_versa(self):
        for n_a, n_b in ((500, 20_000), (20_000, 500)):
            a = NelsonYuCounter(0.3, 4, mergeable=True, seed=2)
            b = NelsonYuCounter(0.3, 4, mergeable=True, seed=3)
            a.add(n_a)
            b.add(n_b)
            b_state_before = (b.x, b.y, b.t, b.n_increments)
            a.merge_from(b)
            # Donor is never mutated.
            assert (b.x, b.y, b.t, b.n_increments) == b_state_before
            assert a.n_increments == n_a + n_b
            assert a.relative_error() < 1.5 * 0.3

    def test_merged_counter_keeps_counting(self):
        a = NelsonYuCounter(0.3, 4, mergeable=True, seed=4)
        b = NelsonYuCounter(0.3, 4, mergeable=True, seed=5)
        a.add(3000)
        b.add(3000)
        a.merge_from(b)
        a.add(6000)
        assert a.n_increments == 12_000
        assert a.relative_error() < 1.5 * 0.3

    def test_merged_counter_remains_mergeable(self):
        a = NelsonYuCounter(0.3, 4, mergeable=True, seed=6)
        b = NelsonYuCounter(0.3, 4, mergeable=True, seed=7)
        c = NelsonYuCounter(0.3, 4, mergeable=True, seed=8)
        for counter, n in ((a, 2000), (b, 3000), (c, 4000)):
            counter.add(n)
        a.merge_from(b)
        a.merge_from(c)
        assert a.n_increments == 9000
        assert a.relative_error() < 1.5 * 0.3


class TestSnapshot:
    def test_roundtrip(self):
        counter = NelsonYuCounter(0.2, 10, mergeable=True, seed=0)
        counter.add(50_000)
        snap = counter.snapshot()
        other = NelsonYuCounter(0.2, 10, mergeable=True, seed=99)
        other.restore(snap)
        assert (other.x, other.y, other.t) == (
            counter.x,
            counter.y,
            counter.t,
        )
        assert other.estimate() == counter.estimate()

    def test_restore_rejects_below_x0(self):
        counter = NelsonYuCounter(0.2, 10, seed=0)
        with pytest.raises(ParameterError):
            counter._restore_state({"x": 0, "y": 0, "t": 0})
