"""Tests for the estimator formulas."""

from __future__ import annotations

import math

import pytest

from repro.core.estimators import (
    csuros_estimate,
    csuros_increment_exponent,
    morris_estimate,
    morris_estimator_variance,
    morris_inverse_estimate,
    relative_error,
    subsample_estimate,
)
from repro.errors import ParameterError


class TestMorrisEstimate:
    def test_base_cases(self):
        assert morris_estimate(0, 1.0) == 0.0
        assert morris_estimate(1, 1.0) == 1.0
        assert morris_estimate(2, 1.0) == 3.0  # (2^2 - 1)/1

    def test_matches_direct_formula(self):
        for a in (1.0, 0.25, 0.001):
            for x in (0, 1, 5, 50):
                direct = ((1 + a) ** x - 1) / a
                assert morris_estimate(x, a) == pytest.approx(direct)

    def test_numerically_stable_for_tiny_a(self):
        """expm1 form must not lose precision where (1+a)^x ~ 1."""
        a = 1e-12
        assert morris_estimate(5, a) == pytest.approx(5.0, rel=1e-6)

    def test_inverse_roundtrip(self):
        for a in (1.0, 0.05):
            for n in (1.0, 10.0, 12345.0):
                x = morris_inverse_estimate(n, a)
                assert morris_estimate(int(round(x)), a) == pytest.approx(
                    n, rel=a + 0.5
                )

    def test_validation(self):
        with pytest.raises(ParameterError):
            morris_estimate(-1, 1.0)
        with pytest.raises(ParameterError):
            morris_estimate(1, 0.0)


class TestVariance:
    def test_paper_formula(self):
        # §1.2: Var[2^X - 1] = N(N-1)/2 for a = 1.
        assert morris_estimator_variance(100, 1.0) == 100 * 99 / 2

    def test_zero_for_tiny_n(self):
        assert morris_estimator_variance(0, 1.0) == 0.0
        assert morris_estimator_variance(1, 1.0) == 0.0


class TestSubsampleEstimate:
    def test_shift_semantics(self):
        assert subsample_estimate(5, 0) == 5
        assert subsample_estimate(5, 3) == 40

    def test_halving_preserves_estimate(self):
        """2s * 2^t == s * 2^(t+1) — the martingale invariant."""
        s = 64
        assert subsample_estimate(2 * s, 3) == subsample_estimate(s, 4)

    def test_validation(self):
        with pytest.raises(ParameterError):
            subsample_estimate(-1, 0)
        with pytest.raises(ParameterError):
            subsample_estimate(1, -1)


class TestCsurosEstimate:
    def test_exact_below_mantissa_rollover(self):
        """With e = 0 the counter is exact: estimate(x) = x."""
        d = 4
        for x in range(16):
            assert csuros_estimate(x, d) == x

    def test_first_rollover(self):
        d = 2  # M = 4
        # x = 4 -> e = 1, mantissa 0 -> (4+0)*2 - 4 = 4.
        assert csuros_estimate(4, 2) == 4
        # x = 5 -> (4+1)*2 - 4 = 6: steps of 2 at exponent 1.
        assert csuros_estimate(5, 2) == 6

    def test_monotone(self):
        values = [csuros_estimate(x, 3) for x in range(200)]
        assert values == sorted(values)
        assert len(set(values)) == len(values)

    def test_exponent(self):
        assert csuros_increment_exponent(17, 3) == 2


class TestRelativeError:
    def test_zero_truth(self):
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(1.0, 0.0) == math.inf

    def test_symmetric_magnitude(self):
        assert relative_error(90, 100) == pytest.approx(0.1)
        assert relative_error(110, 100) == pytest.approx(0.1)
