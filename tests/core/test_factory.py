"""Tests for the counter factory."""

from __future__ import annotations

import pytest

from repro.core.csuros import CsurosCounter
from repro.core.deterministic import SaturatingCounter
from repro.core.factory import COUNTER_TYPES, counter_for_bits, make_counter
from repro.core.morris import MorrisCounter
from repro.core.nelson_yu import NelsonYuCounter
from repro.core.simplified_ny import SimplifiedNYCounter
from repro.errors import ParameterError


class TestMakeCounter:
    def test_all_registered_types_constructible(self):
        params = {
            "exact": {},
            "saturating": {"bits": 8},
            "morris": {"a": 0.5},
            "morris_plus": {"a": 0.5},
            "nelson_yu": {"epsilon": 0.2, "delta_exponent": 8},
            "simplified_ny": {"resolution": 16},
            "csuros": {"d": 4},
        }
        assert set(params) == set(COUNTER_TYPES)
        for name, kwargs in params.items():
            counter = make_counter(name, seed=0, **kwargs)
            counter.add(100)
            assert counter.n_increments == 100

    def test_unknown_algorithm(self):
        with pytest.raises(ParameterError, match="unknown algorithm"):
            make_counter("hyperloglog")

    def test_registry_names_match_classes(self):
        for name, cls in COUNTER_TYPES.items():
            assert cls.algorithm_name == name


class TestCounterForBits:
    def test_morris(self):
        counter = counter_for_bits("morris", 16, 100_000, seed=0)
        assert isinstance(counter, MorrisCounter)

    def test_simplified(self):
        counter = counter_for_bits("simplified_ny", 16, 100_000, seed=0)
        assert isinstance(counter, SimplifiedNYCounter)

    def test_csuros(self):
        counter = counter_for_bits("csuros", 16, 100_000, seed=0)
        assert isinstance(counter, CsurosCounter)

    def test_saturating(self):
        counter = counter_for_bits("saturating", 16, 100_000, seed=0)
        assert isinstance(counter, SaturatingCounter)
        assert counter.bits == 16

    def test_budgets_respected_at_n_max(self):
        n_max = 200_000
        for kind in ("morris", "simplified_ny", "csuros", "saturating"):
            counter = counter_for_bits(kind, 18, n_max, seed=1)
            counter.add(n_max)
            assert counter.state_bits() <= 18, kind

    def test_unsupported_kind(self):
        with pytest.raises(ParameterError):
            counter_for_bits("nelson_yu", 16, 100_000)
