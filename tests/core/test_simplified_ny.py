"""Tests for the simplified (Figure 1) counter, incl. exact-DP checks."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.simplified_ny import SimplifiedNYCounter
from repro.errors import BudgetError, MergeError, ParameterError
from repro.rng.bitstream import BitBudgetedRandom
from repro.theory.flajolet import subsample_state_distribution


class TestMechanics:
    def test_counts_exactly_below_2s(self):
        counter = SimplifiedNYCounter(resolution=8, seed=0)
        counter.add(15)
        assert (counter.y, counter.t) == (15, 0)
        assert counter.estimate() == 15.0

    def test_first_halving(self):
        counter = SimplifiedNYCounter(resolution=8, seed=0)
        counter.add(16)
        assert (counter.y, counter.t) == (8, 1)
        assert counter.estimate() == 16.0

    def test_y_stays_in_range(self):
        counter = SimplifiedNYCounter(resolution=8, seed=1)
        for _ in range(5000):
            counter.increment()
            assert 0 <= counter.y < 16

    def test_capacity_exhaustion_raises(self):
        counter = SimplifiedNYCounter(resolution=2, t_max=1, seed=0)
        with pytest.raises(BudgetError):
            counter.add(10_000)

    def test_validation(self):
        with pytest.raises(ParameterError):
            SimplifiedNYCounter(resolution=0)
        with pytest.raises(ParameterError):
            SimplifiedNYCounter(resolution=4, t_max=-1)
        with pytest.raises(ParameterError):
            SimplifiedNYCounter(resolution=4, seed=0).add(-1)


class TestDistribution:
    def test_increment_matches_dp(self):
        """Per-increment path vs the exact (Y, t) DP."""
        resolution, n, trials, t_cap = 4, 120, 4000, 10
        exact = subsample_state_distribution(resolution, n, t_cap)
        root = BitBudgetedRandom(23)
        observed = np.zeros_like(exact)
        for trial in range(trials):
            counter = SimplifiedNYCounter(resolution, rng=root.split(trial))
            for _ in range(n):
                counter.increment()
            observed[counter.t, counter.y] += 1
        chi, dof = _chi_square(observed, exact, trials)
        assert chi < dof + 5 * math.sqrt(2 * dof) + 5

    def test_add_matches_dp(self):
        """Skip-ahead path vs the exact DP."""
        resolution, n, trials, t_cap = 4, 120, 4000, 10
        exact = subsample_state_distribution(resolution, n, t_cap)
        root = BitBudgetedRandom(29)
        observed = np.zeros_like(exact)
        for trial in range(trials):
            counter = SimplifiedNYCounter(resolution, rng=root.split(trial))
            counter.add(n)
            observed[counter.t, counter.y] += 1
        chi, dof = _chi_square(observed, exact, trials)
        assert chi < dof + 5 * math.sqrt(2 * dof) + 5

    def test_estimator_unbiased_empirically(self):
        resolution, n, trials = 8, 1000, 4000
        root = BitBudgetedRandom(31)
        total = 0.0
        for trial in range(trials):
            counter = SimplifiedNYCounter(resolution, rng=root.split(trial))
            counter.add(n)
            total += counter.estimate()
        mean = total / trials
        # Variance of the subsample estimator is ~ n * 2^t; bound loosely.
        assert abs(mean - n) < 6 * math.sqrt(n * 64 / trials) + 2


def _chi_square(observed, exact, trials):
    chi, dof = 0.0, -1
    pooled_e = pooled_o = 0.0
    for t in range(exact.shape[0]):
        for y in range(exact.shape[1]):
            expected = exact[t, y] * trials
            if expected >= 5.0:
                chi += (observed[t, y] - expected) ** 2 / expected
                dof += 1
            else:
                pooled_e += expected
                pooled_o += observed[t, y]
    if pooled_e > 0:
        chi += (pooled_o - pooled_e) ** 2 / max(pooled_e, 1e-9)
        dof += 1
    return chi, max(1, dof)


class TestMerge:
    def test_requires_mergeable(self):
        a = SimplifiedNYCounter(8, seed=0)
        b = SimplifiedNYCounter(8, seed=1)
        with pytest.raises(MergeError):
            a.merge_from(b)

    def test_param_mismatch(self):
        a = SimplifiedNYCounter(8, mergeable=True, seed=0)
        b = SimplifiedNYCounter(16, mergeable=True, seed=1)
        with pytest.raises(MergeError):
            a.merge_from(b)

    def test_merge_counts_add(self):
        a = SimplifiedNYCounter(16, mergeable=True, seed=0)
        b = SimplifiedNYCounter(16, mergeable=True, seed=1)
        a.add(700)
        b.add(1300)
        a.merge_from(b)
        assert a.n_increments == 2000

    def test_merge_unbiased(self):
        """Mean of merged estimates equals the combined count."""
        trials, n1, n2 = 2500, 300, 500
        root = BitBudgetedRandom(37)
        total = 0.0
        for trial in range(trials):
            a = SimplifiedNYCounter(8, mergeable=True, rng=root.split(trial, 1))
            b = SimplifiedNYCounter(8, mergeable=True, rng=root.split(trial, 2))
            a.add(n1)
            b.add(n2)
            a.merge_from(b)
            total += a.estimate()
        mean = total / trials
        assert abs(mean - (n1 + n2)) < 6 * math.sqrt((n1 + n2) * 128 / trials) + 2

    def test_donor_not_mutated(self):
        a = SimplifiedNYCounter(8, mergeable=True, seed=0)
        b = SimplifiedNYCounter(8, mergeable=True, seed=1)
        a.add(100)
        b.add(5000)
        before = (b.y, b.t, b.n_increments)
        a.merge_from(b)
        assert (b.y, b.t, b.n_increments) == before


class TestFitting:
    def test_for_bits_respects_budget(self):
        counter = SimplifiedNYCounter.for_bits(17, 999_999, seed=0)
        assert counter.state_bits() <= 17
        counter.add(999_999)
        assert counter.state_bits() <= 17

    def test_snapshot_roundtrip(self):
        counter = SimplifiedNYCounter(64, t_max=10, seed=0)
        counter.add(5000)
        snap = counter.snapshot()
        other = SimplifiedNYCounter(64, t_max=10, seed=9)
        other.restore(snap)
        assert (other.y, other.t) == (counter.y, counter.t)
