"""Tests for the Morris Counter, including distributional correctness.

The strongest checks compare the simulated state distribution (both the
``increment`` and the skip-ahead ``add`` paths) to the *exact* Flajolet
DP — this is what certifies that the fast paths are not just fast but
distribution-identical.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.morris import MorrisCounter
from repro.errors import MergeError, ParameterError
from repro.memory.model import SpaceModel
from repro.rng.bitstream import BitBudgetedRandom
from repro.theory.flajolet import morris_state_distribution


def _chi_square_against_dp(
    states: list[int], a: float, n: int, pool_below: float = 5.0
) -> tuple[float, int]:
    """χ² of observed states against the exact DP (pooled tails)."""
    exact = morris_state_distribution(a, n)
    trials = len(states)
    observed = np.zeros(len(exact))
    for state in states:
        observed[min(state, len(exact) - 1)] += 1
    chi, dof = 0.0, -1
    pooled_e, pooled_o = 0.0, 0.0
    for level in range(len(exact)):
        expected = exact[level] * trials
        if expected >= pool_below:
            chi += (observed[level] - expected) ** 2 / expected
            dof += 1
        else:
            pooled_e += expected
            pooled_o += observed[level]
    if pooled_e > 0:
        chi += (pooled_o - pooled_e) ** 2 / max(pooled_e, 1e-9)
        dof += 1
    return chi, max(1, dof)


class TestBasics:
    def test_starts_at_zero(self):
        counter = MorrisCounter(1.0, seed=0)
        assert counter.x == 0
        assert counter.estimate() == 0.0

    def test_first_increment_always_accepts(self):
        counter = MorrisCounter(1.0, seed=0)
        counter.increment()
        assert counter.x == 1

    def test_x_monotone(self):
        counter = MorrisCounter(0.5, seed=1)
        previous = 0
        for _ in range(500):
            counter.increment()
            assert counter.x >= previous
            previous = counter.x

    def test_accept_probability(self):
        counter = MorrisCounter(1.0, seed=0)
        counter.increment()
        counter.increment()
        assert counter.accept_probability() == pytest.approx(
            2.0 ** -counter.x
        )

    def test_invalid_a(self):
        with pytest.raises(ParameterError):
            MorrisCounter(0.0)
        with pytest.raises(ParameterError):
            MorrisCounter(-1.0)

    def test_add_negative_rejected(self):
        with pytest.raises(ParameterError):
            MorrisCounter(1.0, seed=0).add(-1)

    def test_n_increments_bookkeeping(self):
        counter = MorrisCounter(1.0, seed=0)
        counter.add(100)
        counter.increment()
        assert counter.n_increments == 101


class TestSpaceAccounting:
    def test_state_bits_is_x_bits(self):
        counter = MorrisCounter(1.0, seed=0)
        counter.add(1000)
        assert counter.state_bits() == max(1, counter.x.bit_length())
        assert counter.state_bits(SpaceModel.WORD_RAM) == counter.state_bits()

    def test_max_tracked(self):
        counter = MorrisCounter(1.0, seed=0)
        counter.add(1000)
        assert counter.max_state_bits == counter.state_bits()

    def test_loglog_growth(self):
        """State bits grow ~log log N for a = 1."""
        counter = MorrisCounter(1.0, seed=3)
        counter.add(1 << 16)
        assert counter.state_bits() <= 6  # X ~ 16, 5 bits + slack


class TestDistribution:
    def test_increment_matches_dp(self):
        a, n, trials = 1.0, 60, 4000
        root = BitBudgetedRandom(11)
        states = []
        for t in range(trials):
            counter = MorrisCounter(a, rng=root.split(t))
            for _ in range(n):
                counter.increment()
            states.append(counter.x)
        chi, dof = _chi_square_against_dp(states, a, n)
        assert chi < dof + 5 * math.sqrt(2 * dof) + 5

    def test_add_matches_dp(self):
        """The geometric fast-forward is distribution-exact."""
        a, n, trials = 0.5, 200, 4000
        root = BitBudgetedRandom(13)
        states = []
        for t in range(trials):
            counter = MorrisCounter(a, rng=root.split(t))
            counter.add(n)
            states.append(counter.x)
        chi, dof = _chi_square_against_dp(states, a, n)
        assert chi < dof + 5 * math.sqrt(2 * dof) + 5

    def test_add_in_pieces_matches_dp(self):
        """add(n1); add(n2) must equal add(n1+n2) in distribution."""
        a, trials = 0.5, 4000
        root = BitBudgetedRandom(17)
        states = []
        for t in range(trials):
            counter = MorrisCounter(a, rng=root.split(t))
            counter.add(77)
            counter.add(123)
            states.append(counter.x)
        chi, dof = _chi_square_against_dp(states, a, 200)
        assert chi < dof + 5 * math.sqrt(2 * dof) + 5

    def test_estimator_unbiased_empirically(self):
        a, n, trials = 0.25, 500, 3000
        root = BitBudgetedRandom(19)
        total = 0.0
        for t in range(trials):
            counter = MorrisCounter(a, rng=root.split(t))
            counter.add(n)
            total += counter.estimate()
        mean = total / trials
        std_of_mean = math.sqrt(a * n * (n - 1) / 2 / trials)
        assert abs(mean - n) < 5 * std_of_mean


class TestConstructors:
    def test_for_chebyshev(self):
        counter = MorrisCounter.for_chebyshev(0.1, 0.01, seed=0)
        assert counter.a == pytest.approx(2e-4)

    def test_for_optimal(self):
        counter = MorrisCounter.for_optimal(0.1, 0.01, seed=0)
        assert counter.a == pytest.approx(0.01 / (8 * math.log(100)))

    def test_for_bits_capacity(self):
        counter = MorrisCounter.for_bits(12, 100_000, seed=0)
        counter.add(100_000)
        assert counter.state_bits() <= 12


class TestSnapshot:
    def test_roundtrip(self):
        counter = MorrisCounter(0.5, seed=0)
        counter.add(500)
        snap = counter.snapshot()
        other = MorrisCounter(0.5, seed=1)
        other.restore(snap)
        assert other.x == counter.x
        assert other.n_increments == counter.n_increments
        assert other.estimate() == counter.estimate()

    def test_param_mismatch_rejected(self):
        counter = MorrisCounter(0.5, seed=0)
        other = MorrisCounter(0.25, seed=0)
        with pytest.raises(ParameterError):
            other.restore(counter.snapshot())

    def test_bad_state_rejected(self):
        counter = MorrisCounter(0.5, seed=0)
        with pytest.raises(ParameterError):
            counter._restore_state({"x": -3})


class TestMergeGuards:
    def test_merge_base_mismatch(self):
        a = MorrisCounter(0.5, seed=0)
        b = MorrisCounter(0.25, seed=1)
        with pytest.raises(MergeError):
            a.merge_from(b)

    def test_merge_wrong_type(self):
        from repro.core.deterministic import ExactCounter

        a = MorrisCounter(0.5, seed=0)
        with pytest.raises(MergeError):
            a.merge_from(ExactCounter(seed=1))
