"""Cross-counter space accounting under both conventions.

These pin down the exact Remark 2.2 accounting rules per counter:
which fields count as automaton state, and which additionally count
under word-RAM accounting.
"""

from __future__ import annotations

import pytest

from repro.core.csuros import CsurosCounter
from repro.core.deterministic import ExactCounter, SaturatingCounter
from repro.core.morris import MorrisCounter
from repro.core.morris_plus import MorrisPlusCounter
from repro.core.nelson_yu import NelsonYuCounter
from repro.core.simplified_ny import SimplifiedNYCounter
from repro.memory.model import SpaceModel


def _all_counters(seed: int = 0):
    return [
        ExactCounter(seed=seed),
        SaturatingCounter(12, seed=seed),
        MorrisCounter(0.1, seed=seed),
        MorrisPlusCounter(0.1, seed=seed),
        NelsonYuCounter(0.25, 8, seed=seed),
        SimplifiedNYCounter(64, seed=seed),
        CsurosCounter(4, seed=seed),
    ]


class TestWordRamDominatesAutomaton:
    @pytest.mark.parametrize("n", [0, 100, 20_000])
    def test_word_ram_at_least_automaton(self, n):
        for counter in _all_counters():
            counter.add(n)
            automaton = counter.state_bits(SpaceModel.AUTOMATON)
            word_ram = counter.state_bits(SpaceModel.WORD_RAM)
            assert word_ram >= automaton, type(counter).__name__


class TestNelsonYuAccountingRules:
    def test_word_ram_adds_exactly_t_bits(self):
        counter = NelsonYuCounter(0.25, 8, seed=1)
        counter.add(200_000)
        gap = counter.state_bits(SpaceModel.WORD_RAM) - counter.state_bits(
            SpaceModel.AUTOMATON
        )
        assert gap == max(1, counter.t.bit_length())

    def test_tracker_uses_automaton_convention(self):
        counter = NelsonYuCounter(0.25, 8, seed=2)
        counter.add(50_000)
        assert counter.max_state_bits >= counter.state_bits(
            SpaceModel.AUTOMATON
        ) - 1


class TestStateBitsNeverZero:
    def test_fresh_counters_have_positive_state(self):
        for counter in _all_counters():
            assert counter.state_bits() >= 1, type(counter).__name__


class TestOrderingAtScale:
    def test_approximate_beats_exact_at_large_n(self):
        """At N = 5M the randomized counters must be well under the
        exact counter's 23 bits (the paper's entire point)."""
        n = 5_000_000
        exact = ExactCounter(seed=0)
        exact.add(n)
        morris = MorrisCounter(0.05, seed=0)
        morris.add(n)
        simplified = SimplifiedNYCounter(256, seed=0)
        simplified.add(n)
        csuros = CsurosCounter(8, seed=0)
        csuros.add(n)
        assert exact.state_bits() == 23
        for counter in (morris, simplified, csuros):
            assert counter.state_bits() < 16, type(counter).__name__
