"""Tests for the abstract counter interface."""

from __future__ import annotations

import pytest

from repro.core.deterministic import ExactCounter
from repro.core.morris import MorrisCounter
from repro.errors import MergeError, ParameterError
from repro.rng.bitstream import BitBudgetedRandom


class TestConstruction:
    def test_rng_and_seed_mutually_exclusive(self):
        with pytest.raises(ParameterError):
            ExactCounter(rng=BitBudgetedRandom(0), seed=1)

    def test_default_seed_is_deterministic(self):
        a, b = MorrisCounter(0.5), MorrisCounter(0.5)
        a.add(500)
        b.add(500)
        assert a.x == b.x

    def test_explicit_rng_is_used(self):
        rng = BitBudgetedRandom(7)
        counter = MorrisCounter(0.5, rng=rng)
        counter.add(100)
        assert rng.bits_consumed > 0


class TestRelativeError:
    def test_zero_counts(self):
        counter = ExactCounter()
        assert counter.relative_error() == 0.0

    def test_nonzero(self):
        counter = ExactCounter()
        counter.add(100)
        assert counter.relative_error() == 0.0


class TestSnapshots:
    def test_algorithm_mismatch_rejected(self):
        exact = ExactCounter()
        morris = MorrisCounter(0.5)
        with pytest.raises(ParameterError):
            morris.restore(exact.snapshot())

    def test_snapshot_carries_bookkeeping(self):
        counter = MorrisCounter(0.5, seed=0)
        counter.add(123)
        snap = counter.snapshot()
        assert snap.n_increments == 123
        assert snap.algorithm == "morris"
        assert snap.params == {"a": 0.5}


class TestDefaultMerge:
    def test_unsupported_by_default(self):
        class Dummy(MorrisCounter):
            algorithm_name = "dummy"

        # The ABC default (reached via super()) raises MergeError.
        from repro.core.base import ApproximateCounter

        counter = ExactCounter()
        with pytest.raises(MergeError):
            ApproximateCounter.merge_from(counter, counter)
