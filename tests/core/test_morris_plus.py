"""Tests for Morris+ (the deterministic-prefix tweak, Appendix A)."""

from __future__ import annotations

import pytest

from repro.core.morris_plus import MorrisPlusCounter
from repro.core.params import morris_a_optimal, morris_transition_point
from repro.errors import MergeError, ParameterError
from repro.memory.model import SpaceModel


class TestDeterministicPhase:
    def test_exact_below_transition(self):
        counter = MorrisPlusCounter(a=0.1, seed=0)  # transition = 80
        for n in range(1, 81):
            counter.increment()
            assert counter.estimate() == float(n), f"n={n}"

    def test_add_exact_below_transition(self):
        counter = MorrisPlusCounter(a=0.1, seed=0)
        counter.add(80)
        assert counter.estimate() == 80.0
        assert counter.in_deterministic_phase

    def test_switches_to_morris_after_transition(self):
        counter = MorrisPlusCounter(a=0.1, seed=0)
        counter.add(81)
        assert not counter.in_deterministic_phase
        assert counter.estimate() == counter.morris.estimate()

    def test_prefix_saturates(self):
        counter = MorrisPlusCounter(a=0.1, seed=0)
        counter.add(10_000)
        assert counter.prefix_value == counter.transition + 1

    def test_default_transition_is_8_over_a(self):
        counter = MorrisPlusCounter(a=0.01, seed=0)
        assert counter.transition == 800

    def test_custom_transition(self):
        counter = MorrisPlusCounter(a=0.1, transition=10, seed=0)
        counter.add(11)
        assert not counter.in_deterministic_phase


class TestTheorem12Tuning:
    def test_for_optimal_parameters(self):
        counter = MorrisPlusCounter.for_optimal(0.2, 0.01, seed=0)
        assert counter.a == pytest.approx(morris_a_optimal(0.2, 0.01))
        assert counter.transition == morris_transition_point(counter.a)

    def test_accuracy_beyond_transition(self):
        counter = MorrisPlusCounter.for_optimal(0.2, 0.05, seed=1)
        counter.add(10 * counter.transition)
        # Theorem 1.2: (1 ± 2ε) with probability 1 - 2δ; seed is fixed so
        # this is a deterministic regression check within the guarantee.
        assert counter.relative_error() < 2 * 0.2


class TestSpace:
    def test_bits_include_prefix_register(self):
        counter = MorrisPlusCounter(a=0.1, seed=0)
        counter.add(1000)
        prefix_bits = (counter.transition + 1).bit_length()
        assert counter.state_bits() == prefix_bits + counter.morris.state_bits()

    def test_word_ram_equals_automaton(self):
        counter = MorrisPlusCounter(a=0.1, seed=0)
        counter.add(100)
        assert counter.state_bits(SpaceModel.WORD_RAM) == counter.state_bits(
            SpaceModel.AUTOMATON
        )


class TestMerge:
    def test_merge_in_deterministic_phase_is_exact(self):
        a = MorrisPlusCounter(a=0.01, seed=0)
        b = MorrisPlusCounter(a=0.01, seed=1)
        a.add(100)
        b.add(200)
        a.merge_from(b)
        assert a.estimate() == 300.0

    def test_merge_param_mismatch(self):
        a = MorrisPlusCounter(a=0.01, seed=0)
        b = MorrisPlusCounter(a=0.02, seed=1)
        with pytest.raises(MergeError):
            a.merge_from(b)

    def test_merge_crossing_transition(self):
        a = MorrisPlusCounter(a=0.1, seed=2)
        b = MorrisPlusCounter(a=0.1, seed=3)
        a.add(60)
        b.add(60)
        a.merge_from(b)
        assert a.n_increments == 120
        assert not a.in_deterministic_phase
        assert a.relative_error() < 1.0  # generous: a = 0.1 at N = 120


class TestValidation:
    def test_bad_a(self):
        with pytest.raises(ParameterError):
            MorrisPlusCounter(a=0.0)

    def test_bad_transition(self):
        with pytest.raises(ParameterError):
            MorrisPlusCounter(a=0.1, transition=0)

    def test_snapshot_roundtrip(self):
        counter = MorrisPlusCounter(a=0.1, seed=0)
        counter.add(500)
        snap = counter.snapshot()
        other = MorrisPlusCounter(a=0.1, seed=9)
        other.restore(snap)
        assert other.estimate() == counter.estimate()
        assert other.prefix_value == counter.prefix_value
