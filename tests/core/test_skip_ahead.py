"""Skip-ahead equivalence: ``add(n)`` versus the per-unit reference arm.

Every counter's ``add(n)`` fast-forwards through
:class:`~repro.rng.skip.GeometricSkipper`; ``add_per_unit(n)`` pays one
coin flip per unit.  The contract this file pins:

* deterministic counters are *bit-identical* between the two arms;
* :class:`~repro.core.csuros.CsurosCounter` in the capped coin regime
  (small exponents) is bit-identical too, because the skipper replays
  the per-unit bit stream exactly;
* every approximate template is *distributionally* equivalent — same
  mean (unbiased for the true count) and comparable spread;
* skip-ahead never reports more random bits than per-unit, so the bit
  accounting stays an honest lower bound on simulation cost.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.factory import make_counter

_SMALL_SEEDS = st.integers(min_value=0, max_value=2**32 - 1)

#: One parameterization per approximate counter family (the cluster
#: presets where one exists, plain defaults otherwise).
_APPROX_TEMPLATES: dict[str, dict] = {
    "morris": {"a": 0.05},
    "morris_plus": {"a": 0.05},
    "csuros": {"d": 8},
    "simplified_ny": {"resolution": 1024},
    "nelson_yu": {"epsilon": 0.1, "delta_exponent": 10},
}

_APPROX_CASES = sorted(_APPROX_TEMPLATES.items())


def _mean_std(values: list[float]) -> tuple[float, float]:
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return mean, math.sqrt(var)


class TestDeterministicBitIdentity:
    @pytest.mark.parametrize("n", [0, 1, 7, 1000])
    def test_exact_counter(self, n):
        skip = make_counter("exact", seed=3)
        unit = make_counter("exact", seed=3)
        skip.add(n)
        unit.add_per_unit(n)
        assert skip.estimate() == unit.estimate() == float(n)
        assert skip.n_increments == unit.n_increments == n

    def test_saturating_counter(self):
        skip = make_counter("saturating", bits=8, seed=3)
        unit = make_counter("saturating", bits=8, seed=3)
        skip.add(1000)
        unit.add_per_unit(1000)
        assert skip.estimate() == unit.estimate() == 255.0
        assert skip.rng.bits_consumed == unit.rng.bits_consumed == 0


class TestCsurosCappedRegime:
    """With ``d=4`` and ``n <= 64`` the exponent never leaves the capped
    coin regime (``X <= 64`` keeps ``e = X >> 4 <= 4``), where the
    skipper replays the per-unit bit stream exactly — so ``add(n)`` is
    bit-identical to ``n`` increments at the same seed, state, estimate
    and bit bill included."""

    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(seed=_SMALL_SEEDS, n=st.integers(min_value=0, max_value=64))
    def test_add_bit_identical_to_increments(self, seed, n):
        skip = make_counter("csuros", d=4, seed=seed)
        unit = make_counter("csuros", d=4, seed=seed)
        skip.add(n)
        unit.add_per_unit(n)
        assert skip.x == unit.x
        assert skip.estimate() == unit.estimate()
        assert skip.n_increments == unit.n_increments == n
        assert skip.rng.bits_consumed == unit.rng.bits_consumed


class TestDistributionalEquivalence:
    """``add(n)`` and ``add_per_unit(n)`` on independent streams must
    agree as distributions: matching means (both unbiased for the true
    count) and comparable spread.  Seeds are fixed, so this is a
    deterministic check of a statistical property."""

    @pytest.mark.parametrize("algorithm,params", _APPROX_CASES)
    def test_add_matches_per_unit_distribution(self, algorithm, params):
        total, runs = 4096, 80
        skip_estimates, unit_estimates = [], []
        for i in range(runs):
            skip = make_counter(algorithm, **params, seed=1000 + i)
            unit = make_counter(algorithm, **params, seed=500_000 + i)
            skip.add(total)
            unit.add_per_unit(total)
            skip_estimates.append(skip.estimate())
            unit_estimates.append(unit.estimate())
        skip_mean, skip_std = _mean_std(skip_estimates)
        unit_mean, unit_std = _mean_std(unit_estimates)
        slack = 0.005 * total
        se = math.sqrt((skip_std**2 + unit_std**2) / runs)
        assert abs(skip_mean - unit_mean) <= 6 * se + slack
        # Both arms are unbiased for the true count.
        assert abs(skip_mean - total) <= 6 * skip_std / math.sqrt(runs) + slack
        assert abs(unit_mean - total) <= 6 * unit_std / math.sqrt(runs) + slack
        # Comparable spread (sample stds over 80 runs agree within 2x).
        assert skip_std <= 2.0 * unit_std + slack
        assert unit_std <= 2.0 * skip_std + slack


class TestBitMetering:
    @pytest.mark.parametrize("algorithm,params", _APPROX_CASES)
    def test_skip_ahead_never_reports_more_bits(self, algorithm, params):
        total = 50_000
        skip = make_counter(algorithm, **params, seed=7)
        unit = make_counter(algorithm, **params, seed=7)
        skip.add(total)
        unit.add_per_unit(total)
        assert skip.n_increments == unit.n_increments == total
        assert skip.rng.bits_consumed <= unit.rng.bits_consumed
