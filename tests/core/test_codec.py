"""Tests for snapshot serialization, including corruption injection."""

from __future__ import annotations

import json

import pytest

from repro.core.codec import decode_snapshot, encode_snapshot, restore_counter
from repro.core.factory import COUNTER_TYPES, make_counter
from repro.core.morris import MorrisCounter
from repro.core.nelson_yu import NelsonYuCounter
from repro.core.simplified_ny import SimplifiedNYCounter
from repro.errors import StateError


def _roundtrip(counter):
    return restore_counter(encode_snapshot(counter.snapshot()), seed=99)


#: One representative parameterization per registered counter family.
_FAMILY_PARAMS = {
    "exact": {},
    "saturating": {"bits": 12},
    "morris": {"a": 0.25},
    "morris_plus": {"a": 0.25},
    "nelson_yu": {"epsilon": 0.3, "delta_exponent": 4, "mergeable": True},
    "simplified_ny": {"resolution": 128, "mergeable": True},
    "csuros": {"d": 8},
}


class TestEveryFamilyRoundtrips:
    def test_param_table_covers_registry(self):
        assert set(_FAMILY_PARAMS) == set(COUNTER_TYPES)

    @pytest.mark.parametrize("algorithm", sorted(_FAMILY_PARAMS))
    def test_roundtrip(self, algorithm):
        counter = make_counter(
            algorithm, **_FAMILY_PARAMS[algorithm], seed=7
        )
        counter.add(3000)
        restored = _roundtrip(counter)
        assert restored.algorithm_name == algorithm
        assert restored.estimate() == counter.estimate()
        assert restored.n_increments == counter.n_increments
        assert restored.state_bits() == counter.state_bits()
        assert restored.snapshot() == counter.snapshot()

    @pytest.mark.parametrize("algorithm", sorted(_FAMILY_PARAMS))
    def test_restored_counter_keeps_counting(self, algorithm):
        counter = make_counter(
            algorithm, **_FAMILY_PARAMS[algorithm], seed=8
        )
        counter.add(500)
        restored = _roundtrip(counter)
        restored.add(500)
        assert restored.n_increments == 1000


class TestRoundtrip:
    def test_morris(self):
        counter = MorrisCounter(0.25, seed=0)
        counter.add(5000)
        restored = _roundtrip(counter)
        assert restored.estimate() == counter.estimate()
        assert restored.n_increments == 5000

    def test_nelson_yu_with_history(self):
        counter = NelsonYuCounter(0.3, 4, mergeable=True, seed=1)
        counter.add(20_000)
        restored = _roundtrip(counter)
        assert restored.estimate() == counter.estimate()
        # Mergeable history survives the roundtrip: merging still works.
        other = NelsonYuCounter(0.3, 4, mergeable=True, seed=2)
        other.add(1000)
        restored.merge_from(other)
        assert restored.n_increments == 21_000

    def test_simplified(self):
        counter = SimplifiedNYCounter(128, t_max=12, seed=3)
        counter.add(30_000)
        restored = _roundtrip(counter)
        assert (restored.y, restored.t) == (counter.y, counter.t)

    def test_restored_counter_continues(self):
        counter = MorrisCounter(0.25, seed=4)
        counter.add(1000)
        restored = _roundtrip(counter)
        restored.add(1000)
        assert restored.n_increments == 2000

    def test_replicas_do_not_share_randomness(self):
        counter = MorrisCounter(0.25, seed=5)
        counter.add(200)
        line = encode_snapshot(counter.snapshot())
        a = restore_counter(line, seed=1)
        b = restore_counter(line, seed=2)
        a.add(50_000)
        b.add(50_000)
        assert a.x != b.x  # overwhelmingly likely with distinct streams


class TestCorruptionInjection:
    def _line(self) -> str:
        counter = MorrisCounter(0.25, seed=0)
        counter.add(100)
        return encode_snapshot(counter.snapshot())

    def test_bit_flip_detected(self):
        line = self._line()
        corrupted = line.replace('"x":', '"x": 9', 1)
        with pytest.raises(StateError):
            decode_snapshot(corrupted)

    def test_truncation_detected(self):
        with pytest.raises(StateError):
            decode_snapshot(self._line()[:-10])

    def test_payload_tamper_detected(self):
        wrapper = json.loads(self._line())
        wrapper["payload"]["n"] = 999_999
        with pytest.raises(StateError, match="checksum"):
            decode_snapshot(json.dumps(wrapper))

    def test_version_mismatch(self):
        wrapper = json.loads(self._line())
        wrapper["payload"]["v"] = 42
        # Re-frame with a valid checksum so the version check is reached.
        from repro.core.codec import _CHECKSUM_SEED, encode_checksummed_line

        line = encode_checksummed_line(wrapper["payload"], _CHECKSUM_SEED)
        with pytest.raises(StateError, match="version"):
            decode_snapshot(line)

    def test_unknown_algorithm(self):
        wrapper = json.loads(self._line())
        wrapper["payload"]["algorithm"] = "hyperloglog"
        from repro.core.codec import _CHECKSUM_SEED, encode_checksummed_line

        line = encode_checksummed_line(wrapper["payload"], _CHECKSUM_SEED)
        with pytest.raises(StateError, match="unknown algorithm"):
            decode_snapshot(line)

    def test_not_json(self):
        with pytest.raises(StateError):
            decode_snapshot("definitely not json")
