"""Tests for the Csűrös floating-point counter."""

from __future__ import annotations

import math

import pytest

from repro.core.csuros import CsurosCounter
from repro.errors import MergeError, ParameterError
from repro.rng.bitstream import BitBudgetedRandom


class TestMechanics:
    def test_exact_below_first_rollover(self):
        counter = CsurosCounter(d=4, seed=0)  # M = 16
        counter.add(16)
        assert counter.x == 16
        assert counter.estimate() == 16.0

    def test_exponent_advances(self):
        counter = CsurosCounter(d=2, seed=0)
        counter.add(10_000)
        assert counter.exponent >= 3

    def test_d_zero_is_base2_morris(self):
        """With d=0 the accept rate is 2^-X — exactly Morris(1)."""
        counter = CsurosCounter(d=0, seed=0)
        counter.increment()
        assert counter.x == 1
        # estimate (1 + 0)*2^1 - 1 = 1 at x=1 (matches 2^X - 1).
        assert counter.estimate() == 1.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            CsurosCounter(d=-1)
        with pytest.raises(ParameterError):
            CsurosCounter(d=3, seed=0).add(-2)


class TestUnbiasedness:
    def test_empirical_mean(self):
        d, n, trials = 3, 2000, 3000
        root = BitBudgetedRandom(41)
        total = 0.0
        for trial in range(trials):
            counter = CsurosCounter(d, rng=root.split(trial))
            counter.add(n)
            total += counter.estimate()
        mean = total / trials
        # Var ~ n^2 / (2M) per [Csu10]; loose 6-sigma band.
        std = n / math.sqrt(2 * (1 << d))
        assert abs(mean - n) < 6 * std / math.sqrt(trials)

    def test_increment_add_agree(self):
        d, n, trials = 2, 300, 2000
        root = BitBudgetedRandom(43)
        totals = {"inc": 0.0, "add": 0.0}
        for trial in range(trials):
            c1 = CsurosCounter(d, rng=root.split(trial, 1))
            for _ in range(n):
                c1.increment()
            totals["inc"] += c1.estimate()
            c2 = CsurosCounter(d, rng=root.split(trial, 2))
            c2.add(n)
            totals["add"] += c2.estimate()
        assert abs(totals["inc"] - totals["add"]) / (n * trials) < 0.05


class TestInterface:
    def test_for_bits(self):
        counter = CsurosCounter.for_bits(17, 999_999, seed=0)
        counter.add(999_999)
        assert counter.state_bits() <= 17

    def test_merge_unsupported(self):
        a = CsurosCounter(3, seed=0)
        b = CsurosCounter(3, seed=1)
        with pytest.raises(MergeError):
            a.merge_from(b)

    def test_snapshot_roundtrip(self):
        counter = CsurosCounter(5, seed=0)
        counter.add(4000)
        other = CsurosCounter(5, seed=9)
        other.restore(counter.snapshot())
        assert other.x == counter.x
