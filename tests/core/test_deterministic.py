"""Tests for the deterministic baselines."""

from __future__ import annotations

import pytest

from repro.core.deterministic import ExactCounter, SaturatingCounter
from repro.errors import ParameterError


class TestExactCounter:
    def test_counts_exactly(self):
        counter = ExactCounter()
        counter.add(100)
        counter.increment()
        assert counter.estimate() == 101.0
        assert counter.relative_error() == 0.0

    def test_state_bits_is_log_n(self):
        counter = ExactCounter()
        counter.add(255)
        assert counter.state_bits() == 8
        counter.add(1)
        assert counter.state_bits() == 9

    def test_merge(self):
        a, b = ExactCounter(), ExactCounter()
        a.add(30)
        b.add(12)
        a.merge_from(b)
        assert a.estimate() == 42.0

    def test_merge_type_check(self):
        a = ExactCounter()
        with pytest.raises(ParameterError):
            a.merge_from(SaturatingCounter(4))

    def test_snapshot_roundtrip(self):
        a = ExactCounter()
        a.add(77)
        b = ExactCounter()
        b.restore(a.snapshot())
        assert b.estimate() == 77.0


class TestSaturatingCounter:
    def test_saturates(self):
        counter = SaturatingCounter(bits=4)
        counter.add(100)
        assert counter.estimate() == 15.0
        assert counter.saturated

    def test_exact_before_cap(self):
        counter = SaturatingCounter(bits=8)
        counter.add(200)
        assert counter.estimate() == 200.0
        assert not counter.saturated

    def test_fixed_width_state(self):
        counter = SaturatingCounter(bits=6)
        assert counter.state_bits() == 6
        counter.add(1000)
        assert counter.state_bits() == 6

    def test_increment_at_cap_is_noop(self):
        counter = SaturatingCounter(bits=2)
        for _ in range(10):
            counter.increment()
        assert counter.estimate() == 3.0
        assert counter.n_increments == 10

    def test_validation(self):
        with pytest.raises(ParameterError):
            SaturatingCounter(bits=0)
        with pytest.raises(ParameterError):
            SaturatingCounter(bits=4)._restore_state({"value": 99})
