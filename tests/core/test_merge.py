"""Distributional tests for merging (Remark 2.4, CY20 §2.1).

The Morris merge is checked against the *exact* Flajolet DP for the
combined count — the strongest possible test of "merged ≡ run on
N1 + N2 increments".
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.deterministic import ExactCounter
from repro.core.merge import merge_all, merge_counters
from repro.core.morris import MorrisCounter
from repro.core.simplified_ny import SimplifiedNYCounter
from repro.errors import MergeError
from repro.rng.bitstream import BitBudgetedRandom
from repro.theory.flajolet import morris_state_distribution


class TestMorrisMergeDistribution:
    def test_merged_matches_exact_dp(self):
        a, n1, n2, trials = 0.5, 40, 70, 5000
        exact = morris_state_distribution(a, n1 + n2)
        root = BitBudgetedRandom(53)
        observed = np.zeros(len(exact))
        for trial in range(trials):
            c1 = MorrisCounter(a, rng=root.split(trial, 1))
            c2 = MorrisCounter(a, rng=root.split(trial, 2))
            c1.add(n1)
            c2.add(n2)
            c1.merge_from(c2)
            observed[min(c1.x, len(exact) - 1)] += 1
        chi, dof = 0.0, -1
        pooled_e = pooled_o = 0.0
        for level in range(len(exact)):
            expected = exact[level] * trials
            if expected >= 5:
                chi += (observed[level] - expected) ** 2 / expected
                dof += 1
            else:
                pooled_e += expected
                pooled_o += observed[level]
        if pooled_e > 0:
            chi += (pooled_o - pooled_e) ** 2 / max(pooled_e, 1e-9)
            dof += 1
        dof = max(1, dof)
        assert chi < dof + 5 * math.sqrt(2 * dof) + 5

    def test_merge_order_symmetric_in_distribution(self):
        """mean(merge(A,B)) == mean(merge(B,A)) statistically."""
        a, n1, n2, trials = 0.5, 30, 90, 3000
        root = BitBudgetedRandom(59)
        means = []
        for order in (0, 1):
            total = 0.0
            for trial in range(trials):
                c1 = MorrisCounter(a, rng=root.split(trial, order, 1))
                c2 = MorrisCounter(a, rng=root.split(trial, order, 2))
                c1.add(n1 if order == 0 else n2)
                c2.add(n2 if order == 0 else n1)
                c1.merge_from(c2)
                total += c1.estimate()
            means.append(total / trials)
        std = math.sqrt(0.5 * 120 * 119 / 2 / trials)
        assert abs(means[0] - means[1]) < 6 * std


class TestMergeHelpers:
    def test_merge_counters_not_destructive(self):
        a = MorrisCounter(0.5, seed=0)
        b = MorrisCounter(0.5, seed=1)
        a.add(100)
        b.add(100)
        xa, xb = a.x, b.x
        merged = merge_counters(a, b)
        assert (a.x, b.x) == (xa, xb)
        assert merged.n_increments == 200

    def test_merge_all(self):
        counters = []
        for i in range(4):
            c = ExactCounter(seed=i)
            c.add(10 * (i + 1))
            counters.append(c)
        merged = merge_all(counters)
        assert merged.estimate() == 100.0

    def test_merge_all_empty(self):
        with pytest.raises(MergeError):
            merge_all([])

    def test_merge_all_mergeable_simplified(self):
        counters = []
        for i in range(3):
            c = SimplifiedNYCounter(16, mergeable=True, seed=i)
            c.add(500)
            counters.append(c)
        merged = merge_all(counters)
        assert merged.n_increments == 1500
        assert merged.relative_error() < 0.5
