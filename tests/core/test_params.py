"""Tests for parameter selection formulas."""

from __future__ import annotations

import math

import pytest

from repro.core.params import (
    DEFAULT_CHERNOFF_C,
    SimplifiedNYConfig,
    csuros_d_for_bits,
    morris_a_chebyshev,
    morris_a_for_bits,
    morris_a_optimal,
    morris_expected_std,
    morris_transition_point,
    morris_x_capacity,
    nelson_yu_alpha_raw,
    nelson_yu_x0,
    simplified_ny_for_bits,
    validate_epsilon_delta,
)
from repro.errors import ParameterError


class TestValidation:
    @pytest.mark.parametrize("eps", [0.0, 0.5, 1.0, -0.1])
    def test_bad_epsilon(self, eps):
        with pytest.raises(ParameterError):
            validate_epsilon_delta(eps, 0.1)

    @pytest.mark.parametrize("delta", [0.0, 0.5, 1.0])
    def test_bad_delta(self, delta):
        with pytest.raises(ParameterError):
            validate_epsilon_delta(0.1, delta)

    def test_good_values_pass(self):
        validate_epsilon_delta(0.499, 0.499)
        validate_epsilon_delta(1e-6, 1e-12)


class TestMorrisTunings:
    def test_chebyshev_formula(self):
        assert morris_a_chebyshev(0.1, 0.01) == pytest.approx(2e-4)

    def test_optimal_formula(self):
        a = morris_a_optimal(0.2, 0.01)
        assert a == pytest.approx(0.04 / (8 * math.log(100)))

    def test_optimal_depends_log_log(self):
        """Halving δ barely changes a (log dependence)."""
        a1 = morris_a_optimal(0.1, 1e-6)
        a2 = morris_a_optimal(0.1, 1e-12)
        assert a1 / a2 == pytest.approx(2.0, rel=1e-9)

    def test_chebyshev_depends_linearly(self):
        assert morris_a_chebyshev(0.1, 1e-6) / morris_a_chebyshev(
            0.1, 1e-12
        ) == pytest.approx(1e6)

    def test_transition_point(self):
        assert morris_transition_point(0.01) == 800
        with pytest.raises(ParameterError):
            morris_transition_point(0.0)

    def test_expected_std(self):
        assert morris_expected_std(0.5, 100) == pytest.approx(
            math.sqrt(0.5 * 100 * 99 / 2)
        )
        assert morris_expected_std(0.5, 1) == 0.0


class TestXCapacity:
    def test_capacity_reaches_target(self):
        """The estimator at the capacity state covers headroom * n_max."""
        from repro.core.estimators import morris_estimate

        for a in (1.0, 0.1, 1e-3):
            x = morris_x_capacity(a, 10_000, headroom=4.0)
            assert morris_estimate(x, a) >= 4.0 * 10_000 * 0.999

    def test_capacity_is_tight(self):
        from repro.core.estimators import morris_estimate

        x = morris_x_capacity(0.01, 10_000, headroom=2.0)
        assert morris_estimate(x - 1, 0.01) < 2.0 * 10_000 * 1.001

    def test_monotone_in_a(self):
        assert morris_x_capacity(0.001, 1000) > morris_x_capacity(0.1, 1000)


class TestBitFitting:
    def test_morris_fits_budget(self):
        a = morris_a_for_bits(17, 999_999)
        assert morris_x_capacity(a, 999_999) <= (1 << 17) - 1

    def test_morris_fit_is_tight(self):
        """A noticeably smaller a must overflow the budget."""
        a = morris_a_for_bits(17, 999_999)
        assert morris_x_capacity(a * 0.9, 999_999) > ((1 << 17) - 1) * 0.95

    def test_morris_impossible_budget(self):
        with pytest.raises(ParameterError):
            morris_a_for_bits(2, 10**9)

    def test_simplified_fits_budget(self):
        config = simplified_ny_for_bits(17, 999_999)
        assert config.total_bits <= 17
        assert config.capacity >= 2 * 999_999

    def test_simplified_figure1_shape(self):
        """The 17-bit / 1M configuration used by Figure 1."""
        config = simplified_ny_for_bits(17, 999_999, headroom=2.0)
        assert config.resolution == 8192
        assert config.t_max == 7

    def test_simplified_impossible(self):
        with pytest.raises(ParameterError):
            simplified_ny_for_bits(3, 10**12)

    def test_csuros_fits(self):
        d = csuros_d_for_bits(17, 999_999)
        assert 1 <= d < 17

    def test_config_validation(self):
        with pytest.raises(ParameterError):
            SimplifiedNYConfig(resolution=0, t_max=3)
        with pytest.raises(ParameterError):
            SimplifiedNYConfig(resolution=4, t_max=-1)

    def test_config_bit_arithmetic(self):
        config = SimplifiedNYConfig(resolution=8192, t_max=7)
        assert config.y_bits == 14
        assert config.t_bits == 3
        assert config.total_bits == 17
        assert config.capacity == 16383 * 128


class TestNelsonYuParams:
    def test_x0_threshold_covers_sampling_body(self):
        """T0 = ceil((1+eps)^X0) >= C ln(1/δ)/ε³ by construction."""
        for eps, delta in [(0.1, 0.01), (0.3, 1e-6), (0.45, 0.4)]:
            x0 = nelson_yu_x0(eps, delta, DEFAULT_CHERNOFF_C)
            body = DEFAULT_CHERNOFF_C * math.log(1 / delta) / eps**3
            assert (1 + eps) ** x0 >= body * 0.999

    def test_x0_is_minimal(self):
        eps, delta = 0.2, 0.01
        x0 = nelson_yu_x0(eps, delta, DEFAULT_CHERNOFF_C)
        body = DEFAULT_CHERNOFF_C * math.log(1 / delta) / eps**3
        assert (1 + eps) ** (x0 - 1) < body * 1.001

    def test_alpha_raw_capped_at_one(self):
        assert nelson_yu_alpha_raw(0.3, 0.01, 6.0, 5, 10) == 1.0

    def test_alpha_raw_decreases_with_threshold(self):
        small = nelson_yu_alpha_raw(0.1, 0.01, 6.0, 100, 10**6)
        large = nelson_yu_alpha_raw(0.1, 0.01, 6.0, 100, 10**8)
        assert large < small

    def test_alpha_raw_validation(self):
        with pytest.raises(ParameterError):
            nelson_yu_alpha_raw(0.1, 0.01, 6.0, 0, 100)
        with pytest.raises(ParameterError):
            nelson_yu_alpha_raw(0.1, 0.01, 6.0, 5, 0)
