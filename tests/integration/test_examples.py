"""Every example script must run cleanly (reduced workloads)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

_EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

#: script -> args keeping runtime test-friendly
_CASES = {
    "cluster_simulation.py": ["4", "60000"],
    "durable_cluster.py": ["40000"],
    "elastic_cluster.py": ["60000"],
    "gossip_cluster.py": ["30000"],
    "parallel_cluster.py": ["30000"],
    "quickstart.py": ["200000"],
    "wikipedia_page_views.py": ["100", "2000000"],
    "distributed_merge.py": ["3", "20000"],
    "stream_applications.py": [],
    "accuracy_space_tour.py": ["60"],
    "lower_bound_demo.py": ["1024"],
    "register_machine.py": ["30000"],
}


class TestExamplesRun:
    @pytest.mark.parametrize("script", sorted(_CASES))
    def test_example_exits_zero(self, script):
        result = subprocess.run(
            [sys.executable, str(_EXAMPLES / script), *_CASES[script]],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert result.stdout.strip(), "example produced no output"

    def test_every_example_is_covered(self):
        on_disk = {p.name for p in _EXAMPLES.glob("*.py")}
        assert on_disk == set(_CASES), (
            "examples and test cases out of sync"
        )
