"""Integration tests spanning multiple subsystems."""

from __future__ import annotations

import math

import pytest

from repro import (
    MorrisCounter,
    MorrisPlusCounter,
    NelsonYuCounter,
    SimplifiedNYCounter,
    SpaceModel,
    counter_for_bits,
    make_counter,
    merge_all,
)
from repro.analytics.counter_bank import CounterBank
from repro.lowerbound.automaton import morris_automaton
from repro.lowerbound.verify import verify_theorem_3_1
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.runner import run_counter
from repro.stream.source import TraceStream, UniformLengthStream
from repro.stream.workload import zipf_workload


class TestPublicApiSurface:
    def test_top_level_imports_work(self):
        counter = NelsonYuCounter(0.1, 20, seed=42)
        counter.add(1_000_000)
        assert counter.relative_error() < 0.15
        assert counter.state_bits(SpaceModel.WORD_RAM) >= counter.state_bits()

    def test_quickstart_snippet(self):
        """The snippet in the package docstring must work as written."""
        counter = NelsonYuCounter(epsilon=0.1, delta_exponent=20, seed=42)
        counter.add(1_000_000)
        assert counter.estimate() > 0
        assert counter.state_bits() < 64


class TestFigure1PipelineSlowPath:
    """A miniature Figure 1 using the *real* counters end to end
    (the experiment harness uses fastsim; this certifies the slow path
    produces the same quality on the same workload)."""

    def test_both_algorithms_on_shared_streams(self):
        trials = 8
        root = BitBudgetedRandom(99)
        source = UniformLengthStream(500_000, 999_999)
        for trial in range(trials):
            plan_a = root.split(trial, 0)
            plan_b = root.split(trial, 0)
            morris = counter_for_bits(
                "morris", 17, 999_999, rng=root.split(trial, 1)
            )
            simplified = counter_for_bits(
                "simplified_ny", 17, 999_999, rng=root.split(trial, 2)
            )
            result_m = run_counter(morris, source, plan_rng=plan_a)
            result_s = run_counter(simplified, source, plan_rng=plan_b)
            assert result_m.final.n == result_s.final.n
            assert result_m.final.relative_error < 0.05
            assert result_s.final.relative_error < 0.05
            assert result_m.max_state_bits <= 17
            assert result_s.max_state_bits <= 17


class TestAnalyticsPipeline:
    def test_wikipedia_style_bank(self):
        bank = CounterBank(
            lambda rng: SimplifiedNYCounter(256, mergeable=False, rng=rng),
            seed=5,
        )
        events = zipf_workload(BitBudgetedRandom(6), 200, 20_000, exponent=1.2)
        bank.consume(events)
        report = bank.error_report()
        assert report.n_keys <= 200
        assert report.total_events == 20_000
        assert report.rms_relative_error < 0.2
        # Top key must be the Zipf head.
        assert bank.top_keys(1)[0][0] == "page-000000"


class TestDistributedMergePipeline:
    def test_shard_and_merge_matches_total(self):
        """Four shards counted independently then merged: the classic
        distributed-analytics flow of Remark 2.4."""
        shard_counts = [12_000, 7_500, 22_000, 3_500]
        counters = []
        for i, count in enumerate(shard_counts):
            counter = SimplifiedNYCounter(1024, mergeable=True, seed=100 + i)
            counter.add(count)
            counters.append(counter)
        merged = merge_all(counters)
        total = sum(shard_counts)
        assert merged.n_increments == total
        assert abs(merged.estimate() - total) / total < 0.2

    def test_morris_shards(self):
        counters = []
        for i in range(3):
            counter = MorrisCounter(0.01, seed=200 + i)
            counter.add(30_000)
            counters.append(counter)
        merged = merge_all(counters)
        assert abs(merged.estimate() - 90_000) / 90_000 < 0.2


class TestTrajectoryAcrossDecades:
    def test_relative_error_stays_bounded(self):
        counter = MorrisPlusCounter.for_optimal(0.1, 1e-4, seed=7)
        result = run_counter(
            counter, TraceStream.geometric_grid(1_000_000, points_per_decade=2)
        )
        for checkpoint in result.checkpoints:
            assert checkpoint.relative_error < 0.3, checkpoint

    def test_space_grows_double_logarithmically(self):
        counter = MorrisCounter(1.0, seed=8)
        result = run_counter(
            counter, TraceStream.geometric_grid(1_000_000, points_per_decade=1)
        )
        final_bits = result.final.state_bits
        assert final_bits <= math.ceil(math.log2(math.log2(4e6))) + 4


class TestLowerBoundOnRealCounter:
    def test_factory_counter_to_automaton_attack(self):
        """Build a counter via the factory, model it as an automaton at
        the same parameterization, and break it with §3."""
        counter = make_counter("morris", a=1.0, seed=0)
        counter.add(1000)
        automaton = morris_automaton(1.0, x_cap=31)
        report = verify_theorem_3_1(automaton, t_param=4096)
        assert report.broken
