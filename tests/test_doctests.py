"""Tier-1 doctest pass over the cluster layer and the merge helpers.

Every ``>>>`` example in these modules is executable documentation; this
test keeps README/docs-adjacent snippets honest.  Modules that promise
examples (``EXPECTED_EXAMPLES``) must actually contain some, so the
examples cannot silently be deleted.
"""

from __future__ import annotations

import doctest

import pytest

import repro.analytics.counter_bank
import repro.cluster.aggregator
import repro.cluster.checkpoint
import repro.cluster.gossip
import repro.cluster.node
import repro.cluster.pipeline
import repro.cluster.rebalance
import repro.cluster.retention
import repro.cluster.router
import repro.cluster.simulation
import repro.cluster.storage
import repro.core.merge

MODULES = [
    repro.analytics.counter_bank,
    repro.cluster.aggregator,
    repro.cluster.checkpoint,
    repro.cluster.gossip,
    repro.cluster.node,
    repro.cluster.pipeline,
    repro.cluster.rebalance,
    repro.cluster.retention,
    repro.cluster.router,
    repro.cluster.simulation,
    repro.cluster.storage,
    repro.core.merge,
]

# Modules whose docstrings must carry at least one runnable example.
EXPECTED_EXAMPLES = {
    repro.analytics.counter_bank,
    repro.cluster.gossip,
    repro.cluster.node,
    repro.cluster.pipeline,
    repro.cluster.rebalance,
    repro.cluster.retention,
    repro.cluster.router,
    repro.cluster.simulation,
    repro.cluster.storage,
    repro.core.merge,
}


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{module.__name__}: {result.failed} failed"
    if module in EXPECTED_EXAMPLES:
        assert result.attempted > 0, (
            f"{module.__name__} should carry runnable >>> examples"
        )
