"""One crash matrix instead of hand-picked crash points.

Every fence type the cluster has — periodic checkpoint, forced WAL
segment fence, migration fence, retention collapse, gossip round — is
crossed with *every* node id and both storage backends, crashing the
node at the fence's exact stream position (the event-loop order puts
the failure right after the fence action).  The assertion is always the
same, and always the strongest available on ``exact`` templates:

* recovery is lossless — the final global view equals the workload's
  ground truth bit for bit, and
* the storage backend is transparent — the memory- and file-backed
  runs of the same crash are bit-identical.

A second class covers the ``recover_cluster`` edge cases the
example-based tests skipped: a freshly-initialized store that never saw
an event, a store recovered twice in a row, and recovery immediately
followed by a gossip round (the digest-rebuild path).

A third class is the *self-healing* axis: every node id is killed with
``NodeFailure(heal=False)`` — the driver never heals it — crossed with
both heal modes (``recover`` and ``rebalance``) and both storage
backends.  The membership layer must detect, quorum-confirm, and heal
on its own, and the result must be lossless, bit-identical to the
driver-healed reference run of the same seed, and bit-identical between
serial and parallel delivery.  ``REPRO_MEMBERSHIP_SEED`` reseeds the
whole class (CI re-runs it at several seeds to pin determinism).
"""

from __future__ import annotations

import os
from collections import Counter

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterSimulation,
    NodeFailure,
    ScaleEvent,
    TumblingRetention,
    default_template,
    merge_views,
    recover_cluster,
    view_fingerprint,
)
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import zipf_workload

_SEED = 424242
_EVENTS = 3000
_NODES = 3
_FENCE_AT = 1000  # every fence type fires just before this position


def _workload():
    return list(
        zipf_workload(
            BitBudgetedRandom(_SEED), n_keys=120, n_events=_EVENTS
        )
    )


def _truth(events) -> dict[str, int]:
    counts: Counter[str] = Counter()
    for event in events:
        counts[event.key] += event.count
    return dict(counts)


#: fence type -> config fields that make that fence fire at _FENCE_AT.
_FENCES: dict[str, dict] = {
    "checkpoint": dict(checkpoint_every=500),
    "segment": dict(checkpoint_every=None, wal_segment_events=250),
    "migration": dict(
        checkpoint_every=500,
        routing="ring",
        scale_events=(ScaleEvent(at_event=_FENCE_AT, action="add"),),
    ),
    "retention": dict(
        checkpoint_every=500,
        retention=TumblingRetention(window_events=_FENCE_AT),
    ),
    "gossip": dict(
        checkpoint_every=500,
        aggregation="gossip",
        gossip_fanout=1,
        gossip_every=_FENCE_AT,
    ),
}


def _run_crash(
    fence: str, node_id: int, storage: str, directory
) -> tuple[tuple, int]:
    config = ClusterConfig(
        n_nodes=_NODES,
        template=default_template("exact"),
        seed=_SEED,
        buffer_limit=64,
        failures=(NodeFailure(at_event=_FENCE_AT, node_id=node_id),),
        storage=storage,
        storage_dir=(str(directory) if storage == "file" else None),
        **_FENCES[fence],
    )
    with ClusterSimulation(config) as simulation:
        result = simulation.run(iter(_workload()))
        view = simulation.aggregator.global_view()
        if simulation.archived_windows:
            # The horizon answer (retention keeps every window here).
            view = merge_views([*simulation.archived_windows, view])
        return view_fingerprint(view), result.recoveries


class TestCrashMatrix:
    @pytest.mark.parametrize("fence", sorted(_FENCES))
    @pytest.mark.parametrize("node_id", range(_NODES))
    def test_crash_at_fence_is_lossless_on_both_backends(
        self, fence, node_id, tmp_path
    ):
        expected = _truth(_workload())
        stamps = {}
        for storage in ("memory", "file"):
            fingerprint, recoveries = _run_crash(
                fence, node_id, storage, tmp_path / storage
            )
            assert recoveries == 1
            estimates, truth = fingerprint
            # Losslessness: checkpoint + WAL replay drops nothing.
            assert truth == expected, (
                f"{fence}/{storage}: truth diverged after crashing "
                f"node {node_id}"
            )
            assert estimates == {
                key: float(count) for key, count in expected.items()
            }
            stamps[storage] = fingerprint
        # Backend transparency: same crash, same bits.
        assert stamps["memory"] == stamps["file"]

    def test_crash_the_freshly_added_node_at_the_migration_fence(
        self, tmp_path
    ):
        """The node that joined at the fence position is crash-target
        number one in a real deployment; it has no checkpoint yet."""
        config = ClusterConfig(
            n_nodes=_NODES,
            template=default_template("exact"),
            seed=_SEED,
            checkpoint_every=500,
            routing="ring",
            scale_events=(ScaleEvent(at_event=_FENCE_AT, action="add"),),
            failures=(NodeFailure(at_event=_FENCE_AT, node_id=_NODES),),
            storage="file",
            storage_dir=str(tmp_path),
        )
        events = _workload()
        with ClusterSimulation(config) as simulation:
            result = simulation.run(iter(events))
            estimates, truth = view_fingerprint(
                simulation.aggregator.global_view()
            )
        assert result.recoveries == 1
        assert truth == _truth(events)


class TestRecoverClusterEdgeCases:
    def _config(self, directory, **overrides) -> ClusterConfig:
        base = dict(
            n_nodes=_NODES,
            template=default_template("exact"),
            seed=_SEED,
            checkpoint_every=500,
            storage="file",
            storage_dir=str(directory),
        )
        base.update(overrides)
        return ClusterConfig(**base)

    def test_recover_freshly_initialized_empty_store(self, tmp_path):
        """A store that never saw an event recovers to an empty, *live*
        cluster: it can run a stream afterwards and stays exact."""
        with ClusterSimulation(self._config(tmp_path)):
            pass  # initialized the store, delivered nothing
        events = _workload()
        with recover_cluster(str(tmp_path)) as recovered:
            view = recovered.aggregator.global_view()
            assert view.n_keys == 0
            assert len(recovered.nodes) == _NODES
            # Every node went through the standard recovery path even
            # though there was nothing to replay.
            result = recovered.run(iter(events))
            estimates, truth = view_fingerprint(
                recovered.aggregator.global_view()
            )
        assert truth == _truth(events)
        assert result.total_events == sum(truth.values())

    def test_recover_twice_in_a_row_is_stable(self, tmp_path):
        """Recovery must be idempotent on the answer: re-opening the
        same store twice (incarnations bump each time) reproduces the
        identical global view, and never rewrites on-disk state into
        something a third recovery would read differently."""
        config = self._config(
            tmp_path,
            failures=(NodeFailure(at_event=_FENCE_AT, node_id=1),),
        )
        events = _workload()
        with ClusterSimulation(config) as simulation:
            simulation.run(iter(events))
            before = view_fingerprint(simulation.aggregator.global_view())
        fingerprints = []
        for _ in range(2):
            with recover_cluster(str(tmp_path)) as recovered:
                fingerprints.append(
                    view_fingerprint(recovered.aggregator.global_view())
                )
        assert fingerprints[0] == before
        assert fingerprints[1] == before

    def test_recovery_immediately_followed_by_gossip_round(self, tmp_path):
        """After process death the digests are rebuilt from checkpoint +
        WAL replay; a gossip round (and the anti-entropy pass) must
        bring every node's local read back to the central answer."""
        config = self._config(
            tmp_path,
            aggregation="gossip",
            gossip_fanout=1,
            gossip_every=_FENCE_AT,
        )
        events = _workload()
        with ClusterSimulation(config) as simulation:
            simulation.run(iter(events))
            before = view_fingerprint(simulation.aggregator.global_view())
        with recover_cluster(str(tmp_path)) as recovered:
            assert recovered.config.aggregation == "gossip"
            assert recovered.config.gossip_every == _FENCE_AT
            # Each digest knows only its own rebuilt entry so far.
            for node in recovered.nodes:
                assert recovered.gossip.digest(node.node_id).origins == (
                    node.node_id,
                )
            recovered.gossip_round()
            rounds = recovered.gossip.converge(
                {node.node_id: node for node in recovered.nodes},
                epoch=recovered.router.epoch,
            )
            central = view_fingerprint(
                recovered.aggregator.global_view()
            )
            assert central == before
            for node in recovered.nodes:
                assert (
                    view_fingerprint(recovered.node_view(node.node_id))
                    == central
                )
        assert central[1] == _truth(events)

    def test_metrics_counters_survive_recovery_monotonically(
        self, tmp_path
    ):
        """Lifetime counters round-trip through the manifest: after
        process death, ``recover_cluster`` restores every counter to at
        least its pre-death value (monotone, never reset), and the
        recovery pass itself shows up as incremented recoveries."""
        config = self._config(
            tmp_path,
            failures=(NodeFailure(at_event=_FENCE_AT, node_id=1),),
        )
        with ClusterSimulation(config) as simulation:
            simulation.run(iter(_workload()))
            before = dict(simulation.metrics_snapshot()["counters"])
        assert before["node_crashes{node=1}"] == 1
        assert before["node_recoveries{node=1}"] == 1
        with recover_cluster(str(tmp_path)) as recovered:
            after = dict(recovered.metrics_snapshot()["counters"])
        regressed = {
            series: (value, after.get(series, 0))
            for series, value in before.items()
            if after.get(series, 0) < value
        }
        assert regressed == {}, f"counters went backwards: {regressed}"
        # recover_cluster recovers every node once more on top of the
        # in-run crash recovery.
        for node_id in range(_NODES):
            assert (
                after[f"node_recoveries{{node={node_id}}}"]
                == before.get(f"node_recoveries{{node={node_id}}}", 0) + 1
            )


#: CI re-runs the self-healing matrix at several seeds (the determinism
#: sweep step); locally this is just the crash-matrix seed.
_SELF_HEAL_SEED = int(os.environ.get("REPRO_MEMBERSHIP_SEED", _SEED))


def _self_heal_workload():
    return list(
        zipf_workload(
            BitBudgetedRandom(_SELF_HEAL_SEED), n_keys=120, n_events=_EVENTS
        )
    )


def _run_self_heal(
    node_id: int,
    storage: str,
    directory,
    heal_mode: str = "recover",
    self_heal: bool = True,
    workers: int = 1,
) -> tuple[tuple, "object"]:
    """One kill run: self-healed (``heal=False`` + membership) or the
    driver-healed reference of the identical seed and workload."""
    config = ClusterConfig(
        n_nodes=_NODES,
        template=default_template("exact"),
        seed=_SELF_HEAL_SEED,
        buffer_limit=64,
        checkpoint_every=500,
        aggregation="gossip",
        gossip_fanout=1,
        gossip_every=250,
        membership=self_heal,
        membership_heal=heal_mode if self_heal else "auto",
        failures=(
            NodeFailure(
                at_event=_FENCE_AT, node_id=node_id, heal=not self_heal
            ),
        ),
        storage=storage,
        storage_dir=(str(directory) if storage == "file" else None),
        ingest_workers=workers,
    )
    with ClusterSimulation(config) as simulation:
        result = simulation.run(iter(_self_heal_workload()))
        view = simulation.aggregator.global_view()
        return view_fingerprint(view), result


class TestSelfHealingMatrix:
    """Every node x both heal modes x both backends, driver-healed
    reference and serial-vs-parallel bit-identity included."""

    @pytest.mark.parametrize("heal_mode", ("recover", "rebalance"))
    @pytest.mark.parametrize("node_id", range(_NODES))
    def test_self_heal_is_lossless_on_both_backends(
        self, heal_mode, node_id, tmp_path
    ):
        expected = _truth(_self_heal_workload())
        reference, _ = _run_self_heal(
            node_id, "memory", None, self_heal=False
        )
        stamps = {}
        for storage in ("memory", "file"):
            fingerprint, result = _run_self_heal(
                node_id, storage, tmp_path / storage, heal_mode=heal_mode
            )
            estimates, truth = fingerprint
            # Losslessness: the kill the driver never healed still
            # converges to the workload's exact ground truth.
            assert truth == expected, (
                f"{heal_mode}/{storage}: truth diverged after killing "
                f"node {node_id}"
            )
            assert estimates == {
                key: float(count) for key, count in expected.items()
            }
            # ...which is the driver-healed reference, bit for bit.
            assert fingerprint == reference
            assert result.membership_kills == 1
            assert result.membership_heals == 1
            assert result.membership_confirmations >= 1
            assert result.membership_detection_rounds >= 1
            if heal_mode == "rebalance":
                assert result.n_nodes == _NODES - 1
            stamps[storage] = fingerprint
        # Backend transparency: same kill, same bits.
        assert stamps["memory"] == stamps["file"]

    @pytest.mark.parametrize("node_id", range(_NODES))
    def test_self_heal_serial_parallel_bit_identical(self, node_id):
        serial, serial_result = _run_self_heal(node_id, "memory", None)
        parallel, parallel_result = _run_self_heal(
            node_id, "memory", None, workers=3
        )
        assert serial == parallel
        assert (
            serial_result.membership_detection_rounds
            == parallel_result.membership_detection_rounds
        )
        assert serial_result.node_stats == parallel_result.node_stats
