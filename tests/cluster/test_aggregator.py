"""Tests for merge-tree aggregation and the global view."""

from __future__ import annotations

import pytest

from repro.cluster.aggregator import MergeTreeAggregator
from repro.cluster.node import IngestNode, default_template
from repro.errors import MergeError, ParameterError
from repro.stream.workload import KeyedEvent


def _nodes(n: int, algorithm: str = "simplified_ny") -> list[IngestNode]:
    template = default_template(algorithm)
    return [
        IngestNode(i, template, seed=100 + i, buffer_limit=64)
        for i in range(n)
    ]


class TestMergeExactness:
    def test_exact_template_loses_nothing(self):
        """With exact counters, the merged view equals ground truth —
        the routing/merging plumbing adds zero error of its own."""
        nodes = _nodes(4, "exact")
        for i, node in enumerate(nodes):
            node.submit(KeyedEvent("shared", count=1000 + i))
            node.submit(KeyedEvent(f"own-{i}", count=50))
        aggregator = MergeTreeAggregator(nodes)
        view = aggregator.global_view()
        assert view.estimate("shared") == sum(1000 + i for i in range(4))
        for i in range(4):
            assert view.estimate(f"own-{i}") == 50
        assert view.error_report().max_relative_error == 0.0

    def test_merged_estimate_tracks_truth(self):
        nodes = _nodes(4)
        for node in nodes:
            node.submit(KeyedEvent("k", count=25_000))
        view = MergeTreeAggregator(nodes).global_view()
        assert abs(view.estimate("k") - 100_000) / 100_000 < 0.1

    def test_single_node_key_is_cloned_not_aliased(self):
        nodes = _nodes(1)
        nodes[0].submit(KeyedEvent("k", count=500))
        view = MergeTreeAggregator(nodes).global_view()
        merged = view.counters["k"]
        assert merged is not nodes[0].bank.counter("k")
        merged.add(100)
        assert nodes[0].bank.truth("k") == 500  # original untouched

    def test_scratch_merge_is_non_destructive(self):
        nodes = _nodes(3)
        for node in nodes:
            node.submit(KeyedEvent("k", count=5000))
            node.flush()
        before = [node.bank.counter("k").snapshot() for node in nodes]
        MergeTreeAggregator(nodes).global_view()
        after = [node.bank.counter("k").snapshot() for node in nodes]
        assert before == after

    def test_unmergeable_template_reports_key(self):
        template = default_template("simplified_ny")
        broken = {**template.params, "mergeable": False}
        from repro.cluster.node import CounterTemplate

        nodes = [
            IngestNode(
                i,
                CounterTemplate("simplified_ny", broken),
                seed=i,
                buffer_limit=8,
            )
            for i in range(2)
        ]
        for node in nodes:
            node.submit(KeyedEvent("k", count=10))
        with pytest.raises(MergeError, match="'k'"):
            MergeTreeAggregator(nodes).global_view()


class TestMergeTreeShape:
    @pytest.mark.parametrize(
        "n_nodes,fanout,rounds", [(4, 2, 2), (8, 2, 3), (8, 4, 2), (1, 2, 0)]
    )
    def test_rounds(self, n_nodes, fanout, rounds):
        nodes = _nodes(n_nodes, "exact")
        for node in nodes:
            node.submit(KeyedEvent("k"))
        view = MergeTreeAggregator(nodes, fanout=fanout).global_view()
        assert view.merge_rounds == rounds

    def test_fanout_validated(self):
        with pytest.raises(ParameterError):
            MergeTreeAggregator(_nodes(2), fanout=1)
        with pytest.raises(ParameterError):
            MergeTreeAggregator([])


class TestQueriesAndCollapse:
    def test_global_estimate_single_key(self):
        nodes = _nodes(3, "exact")
        for node in nodes:
            node.submit(KeyedEvent("k", count=10))
        aggregator = MergeTreeAggregator(nodes)
        # flush happens inside global_view, not global_estimate
        for node in nodes:
            node.flush()
        assert aggregator.global_estimate("k") == 30
        assert aggregator.global_estimate("unseen") == 0.0

    def test_top_keys(self):
        nodes = _nodes(2, "exact")
        nodes[0].submit(KeyedEvent("big", count=1000))
        nodes[1].submit(KeyedEvent("big", count=1000))
        nodes[0].submit(KeyedEvent("small", count=3))
        view = MergeTreeAggregator(nodes).global_view()
        assert view.top_keys(1) == [("big", 2000.0)]

    def test_collapse_window_resets_nodes(self):
        nodes = _nodes(2, "exact")
        for node in nodes:
            node.submit(KeyedEvent("k", count=7))
        aggregator = MergeTreeAggregator(nodes)
        view = aggregator.collapse_window(window=1)
        assert view.estimate("k") == 14
        # Next window starts clean.
        for node in nodes:
            assert len(node.bank) == 0
        second = aggregator.global_view()
        assert second.n_keys == 0
