"""Unit tests for the telemetry substrate (:mod:`repro.obs`).

Covers the three pillars in isolation — registry (counters, gauges,
windowed histograms), trace sinks (null / ring / JSONL file), and stage
timers — plus the ``Telemetry`` facade's gating and the simulation-level
wiring that the property and crash-matrix layers then pin end to end.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterSimulation,
    NodeFailure,
)
from repro.errors import ParameterError
from repro.obs import (
    DEFAULT_DURATION_BOUNDS,
    Histogram,
    JsonlTraceSink,
    MetricsRegistry,
    NullTraceSink,
    RingTraceSink,
    StageTimer,
    Telemetry,
    merge_stage_snapshots,
    series_key,
)
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import zipf_workload

_SEED = 1234


def _events(n_events: int = 2000):
    return zipf_workload(
        BitBudgetedRandom(_SEED), n_keys=60, n_events=n_events
    )


class TestMetricsRegistry:
    def test_counters_accumulate_per_label_set(self):
        registry = MetricsRegistry()
        registry.inc("events_total", node=0)
        registry.inc("events_total", 4, node=0)
        registry.inc("events_total", node=1)
        assert registry.counter("events_total", node=0) == 5
        assert registry.counter("events_total", node=1) == 1
        assert registry.counter("events_total", node=9) == 0

    def test_negative_increment_refused(self):
        registry = MetricsRegistry()
        with pytest.raises(ParameterError):
            registry.inc("events_total", -1)

    def test_load_counter_is_a_monotone_floor(self):
        registry = MetricsRegistry()
        registry.inc("crashes", 3, node=0)
        registry.load_counter("crashes", 2, node=0)  # below: no-op
        assert registry.counter("crashes", node=0) == 3
        registry.load_counter("crashes", 7, node=0)  # above: raises
        assert registry.counter("crashes", node=0) == 7

    def test_export_import_round_trip(self):
        registry = MetricsRegistry()
        registry.inc("a", 2)
        registry.inc("b", 5, node=1, zone="x")
        blob = registry.export_counters()
        restored = MetricsRegistry()
        restored.import_counters(blob)
        assert restored.counter("a") == 2
        assert restored.counter("b", node=1, zone="x") == 5
        assert restored.export_counters() == blob

    def test_series_key_sorts_labels(self):
        assert series_key("m", {"b": 2, "a": 1}) == "m{a=1,b=2}"
        assert series_key("m", {}) == "m"

    def test_gauges_set_and_clear(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 4, node=0)
        registry.set_gauge("depth", 9, node=1)
        assert registry.gauge("depth", node=1) == 9
        registry.clear_gauges("depth")
        assert registry.gauge("depth", node=0) is None

    def test_snapshot_is_strict_json(self):
        registry = MetricsRegistry()
        registry.inc("c", node=0)
        registry.set_gauge("g", 1.5)
        registry.observe("h", 0.002)
        text = json.dumps(
            registry.snapshot(), sort_keys=True, allow_nan=False
        )
        assert json.loads(text)["counters"] == {"c{node=0}": 1}

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.inc("c_total", 2, node=0)
        registry.set_gauge("g", 7)
        registry.observe("h_seconds", 0.5)
        text = registry.render_prometheus()
        assert "# TYPE c_total counter" in text
        assert 'c_total{node="0"} 2' in text
        assert "g 7" in text
        assert "h_seconds_count 1" in text
        assert 'le="+Inf"' in text


class TestHistogram:
    def test_bucketing_against_fixed_bounds(self):
        histogram = Histogram(bounds=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        counts = [count for _, count in snapshot["buckets"]]
        assert counts == [1, 1, 1, 1]
        assert snapshot["buckets"][-1][0] == "+Inf"
        assert snapshot["count"] == 4
        assert snapshot["max"] == 5.0

    def test_window_keeps_newest(self):
        histogram = Histogram(DEFAULT_DURATION_BOUNDS, window=3)
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.recent() == [2.0, 3.0, 4.0]
        assert histogram.count == 4  # lifetime, not windowed


class TestTraceSinks:
    def test_null_sink_is_inactive(self):
        sink = NullTraceSink()
        assert sink.active is False
        sink.emit({"type": "x"})  # no-op, no error
        sink.close()

    def test_ring_sink_caps_capacity(self):
        sink = RingTraceSink(capacity=2)
        for index in range(5):
            sink.emit({"type": "t", "position": index})
        assert [record["position"] for record in sink.records()] == [3, 4]
        assert len(sink) == 2
        with pytest.raises(ParameterError):
            RingTraceSink(capacity=0)

    def test_jsonl_sink_writes_strict_json_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path)
        sink.emit({"type": "crash", "position": 3, "node": 1})
        sink.emit({"type": "recover", "position": 3, "node": 1})
        sink.close()
        sink.close()  # idempotent
        lines = path.read_text().splitlines()
        assert [json.loads(line)["type"] for line in lines] == [
            "crash",
            "recover",
        ]


class TestStageTimer:
    def test_accumulates_count_total_max(self):
        timer = StageTimer()
        timer.add("route", 0.25)
        timer.add("route", 0.5)
        timer.add("fsync", 1.0)
        snapshot = timer.snapshot()
        assert snapshot["route"] == {
            "count": 2,
            "total_s": 0.75,
            "max_s": 0.5,
        }
        assert snapshot["fsync"]["count"] == 1

    def test_merge_across_workers(self):
        first, second = StageTimer(), StageTimer()
        first.add("deliver", 1.0)
        second.add("deliver", 3.0)
        second.add("route", 0.5)
        merged = merge_stage_snapshots(
            [first.snapshot(), second.snapshot()]
        )
        assert merged["deliver"] == {
            "count": 2,
            "total_s": 4.0,
            "max_s": 3.0,
        }
        assert merged["route"]["count"] == 1


class TestTelemetryFacade:
    def test_disabled_facade_emits_nothing(self):
        telemetry = Telemetry.disabled()
        assert telemetry.trace_active is False
        telemetry.trace("crash", node=0)  # swallowed
        assert telemetry.snapshot()["stages"] == {}
        # Deterministic counters still run on a disabled facade.
        telemetry.registry.inc("crashes_total")
        assert telemetry.registry.counter("crashes_total") == 1

    def test_trace_stamps_coordinator_position(self):
        telemetry = Telemetry(sink=RingTraceSink())
        telemetry.position = 17
        telemetry.trace("gossip_round", round=2)
        telemetry.trace("crash", position=3, node=1)
        records = telemetry.sink.records()
        assert records[0]["position"] == 17
        assert records[1]["position"] == 3

    def test_stage_timers_are_thread_confined(self):
        telemetry = Telemetry()
        timers = {}

        def work(name: str) -> None:
            timer = telemetry.stage_timer()
            timers[name] = timer
            timer.add("deliver", 1.0)

        threads = [
            threading.Thread(target=work, args=(f"w{i}",))
            for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(timer) for timer in timers.values()}) == 3
        assert telemetry.stage_snapshot()["deliver"]["count"] == 3


class TestSimulationWiring:
    """The registry/trace contents a real run must publish."""

    def test_run_publishes_lifecycle_counters_and_traces(self):
        telemetry = Telemetry(sink=RingTraceSink(capacity=100_000))
        config = ClusterConfig(
            n_nodes=3,
            seed=_SEED,
            checkpoint_every=500,
            failures=(NodeFailure(at_event=1000, node_id=1),),
        )
        simulation = ClusterSimulation(config, telemetry=telemetry)
        simulation.run(_events(3000))
        counters = simulation.metrics_snapshot()["counters"]
        assert counters["node_crashes{node=1}"] == 1
        assert counters["node_recoveries{node=1}"] == 1
        assert (
            sum(
                value
                for series, value in counters.items()
                if series.startswith("events_delivered_total")
            )
            == 3000
        )
        kinds = {record["type"] for record in telemetry.sink.records()}
        assert {
            "event_delivered",
            "checkpoint_fence",
            "crash",
            "recover",
        } <= kinds
        # Trace positions are stream-ordered.
        positions = [
            record["position"]
            for record in telemetry.sink.records()
            if record["type"] == "event_delivered"
        ]
        assert positions == sorted(positions)

    def test_router_traffic_exposed_as_gauges(self):
        telemetry = Telemetry()
        # Traffic is tracked toward hot promotion, so auto-detection
        # must be on; a huge threshold keeps every key cold.
        config = ClusterConfig(
            n_nodes=2, seed=_SEED, hot_key_threshold=10**9
        )
        simulation = ClusterSimulation(config, telemetry=telemetry)
        simulation.run(_events(2000))
        snapshot = simulation.metrics_snapshot()
        top = {
            series: value
            for series, value in snapshot["gauges"].items()
            if series.startswith("traffic_top")
        }
        assert 0 < len(top) <= 10
        assert all(value > 0 for value in top.values())
        assert snapshot["gauges"]["live_nodes"] == 2

    def test_stage_snapshot_covers_delivery_path(self):
        telemetry = Telemetry()
        config = ClusterConfig(n_nodes=2, seed=_SEED, ingest_workers=2)
        simulation = ClusterSimulation(config, telemetry=telemetry)
        simulation.run(_events(2000))
        stages = simulation.metrics_snapshot()["stages"]
        assert stages["route"]["count"] == 2000
        assert stages["deliver"]["count"] == 2000
        assert stages["bank_consume"]["count"] == 2000
