"""End-to-end elastic scaling tests: the ISSUE-2 acceptance scenario.

Pinned invariants:

* **Merge exactness through resizes** — a cluster that scales 2→4→3
  mid-stream reproduces ground truth bit-for-bit with ``exact``
  templates (so its per-key estimates are identical to a static
  single-node run over the same stream), and matches a static run's
  error statistically for approximate templates.
* **Checkpoint determinism mid-migration** — runs with scale events,
  retention, and crashes adjacent to migrations are pure functions of
  the config seed and event stream.
* **Recovery losslessness** — no delivered event is dropped across
  drain/migrate/crash sequences.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    BankCheckpoint,
    ClusterConfig,
    ClusterSimulation,
    NodeFailure,
    ScaleEvent,
    TumblingRetention,
    default_template,
)
from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import zipf_workload

_SEED = 4242
_SCALE_2_4_3 = (
    ScaleEvent(at_event=6000, action="add"),      # 2 -> 3
    ScaleEvent(at_event=12_000, action="add"),    # 3 -> 4
    ScaleEvent(at_event=18_000, action="remove", node_id=1),  # 4 -> 3
)


def _events(n_events: int = 24_000, n_keys: int = 300):
    return zipf_workload(BitBudgetedRandom(_SEED), n_keys, n_events)


def _run(n_events: int = 24_000, **overrides):
    settings = dict(
        seed=_SEED,
        n_nodes=2,
        template=default_template("exact"),
        buffer_limit=256,
        checkpoint_every=5000,
        routing="ring",
        scale_events=_SCALE_2_4_3,
    )
    settings.update(overrides)
    return ClusterSimulation(ClusterConfig(**settings)).run(
        _events(n_events)
    )


class TestScaleExactness:
    def test_2_4_3_reproduces_ground_truth(self):
        """The acceptance scenario: grow 2→3→4, drain back to 3, all
        mid-stream — every estimate still equals the exact count."""
        result = _run()
        assert result.epoch == 3
        assert result.scale_events_applied == 3
        assert result.n_nodes == 3
        assert result.keys_migrated > 0
        assert result.total_events == 24_000
        assert result.max_relative_error == 0.0

    def test_matches_static_single_node_run(self):
        """exact template: the elastic cluster's estimates are
        bit-identical to a static single-node run (both reproduce the
        stream's ground truth, which is seed-independent)."""
        elastic = _run()
        single = _run(n_nodes=1, scale_events=(), routing="hash")
        assert elastic.total_events == single.total_events
        assert elastic.n_keys == single.n_keys
        assert elastic.max_relative_error == 0.0
        assert single.max_relative_error == 0.0
        # Identical per-key answers: same keys, same estimates, and
        # estimate == truth on both sides.
        assert [
            (key, estimate) for key, estimate, _ in elastic.top
        ] == [(key, estimate) for key, estimate, _ in single.top]

    def test_approximate_template_matches_static_error(self):
        """Remark 2.4: resizing costs nothing in accuracy — the elastic
        run's rms error is within noise of a static run at the same
        seed-class and state."""
        elastic = _run(template=default_template("simplified_ny"))
        static = _run(
            template=default_template("simplified_ny"),
            n_nodes=3,
            scale_events=(),
        )
        assert elastic.rms_relative_error < 0.02
        assert static.rms_relative_error < 0.02
        assert elastic.rms_relative_error < max(
            3 * static.rms_relative_error, 0.005
        )

    def test_both_routing_strategies_stay_exact(self):
        for routing in ("hash", "ring"):
            result = _run(routing=routing)
            assert result.max_relative_error == 0.0, routing

    def test_hot_keys_survive_resizes(self):
        result = _run(hot_key_threshold=800)
        assert result.hot_keys >= 1
        assert result.max_relative_error == 0.0


class TestMidMigrationRecovery:
    def test_crash_right_after_scale_restores_deterministically(self):
        """A checkpoint taken by the migration fence is what the crash
        recovers from — twice over, bit-identically."""
        kwargs = dict(
            template=default_template("simplified_ny"),
            failures=(
                NodeFailure(at_event=6001, node_id=0),   # just migrated
                NodeFailure(at_event=18_001, node_id=2),  # post-drain
            ),
        )
        first = _run(**kwargs)
        replay = _run(**kwargs)
        assert first.recoveries == 2
        assert first.node_stats == replay.node_stats
        assert first.top == replay.top
        assert first.rms_relative_error == replay.rms_relative_error
        assert first.total_state_bits == replay.total_state_bits

    def test_crash_after_scale_preserves_truth(self):
        result = _run(
            failures=(NodeFailure(at_event=12_001, node_id=3),),
        )
        assert result.recoveries == 1
        assert result.total_events == 24_000
        assert result.max_relative_error == 0.0

    def test_full_elastic_determinism_with_retention(self):
        """≥2 scale events + retention + a crash: bit-deterministic."""
        kwargs = dict(
            template=default_template("simplified_ny"),
            retention=TumblingRetention(window_events=8000),
            failures=(NodeFailure(at_event=15_000, node_id=0),),
        )
        first = _run(**kwargs)
        replay = _run(**kwargs)
        assert first.windows_collapsed == 2
        assert first.scale_events_applied == 3
        assert first.node_stats == replay.node_stats
        assert first.top == replay.top
        assert first.rms_relative_error == replay.rms_relative_error

    def test_retention_plus_scaling_stays_lossless(self):
        result = _run(
            retention=TumblingRetention(window_events=9000),
        )
        assert result.windows_collapsed == 2
        assert result.max_relative_error == 0.0


class TestTopologyBookkeeping:
    def test_retired_node_stats_preserved(self):
        result = _run()
        by_id = {s.node_id: s for s in result.node_stats}
        assert by_id[1].retired
        assert not by_id[0].retired
        # The retired row reports what the node held at drain time, not
        # its post-drain emptiness.
        assert by_id[1].keys > 0 and by_id[1].state_bits > 0
        assert by_id[1].events > 0  # lifetime counts survive retirement
        assert sum(s.events for s in result.node_stats) == 24_000

    def test_scale_up_after_down_never_reuses_seeds(self):
        """A node added after a removal must not resurrect the retired
        node's id or RNG streams (auto ids are monotone; explicit reuse
        gets a bumped incarnation seed)."""
        sim = ClusterSimulation(
            ClusterConfig(n_nodes=3, seed=_SEED, scale_events=())
        )
        retired_seed = sim.nodes[2].bank.seed
        sim.scale_down(2)
        assert sim.scale_up() == 3  # not 2: ids are monotone
        sim.scale_down(3)
        # Explicitly reusing a retired id is allowed, but on a fresh
        # incarnation-derived seed.
        assert sim.scale_up(2) == 2
        assert sim.nodes[-1].bank.seed != retired_seed

    def test_checkpoints_carry_topology(self):
        sim = ClusterSimulation(
            ClusterConfig(n_nodes=2, seed=_SEED, scale_events=())
        )
        for event in _events(n_events=100):
            sim.nodes[0].submit(event)
        line = sim.checkpoint_node(0)
        checkpoint = BankCheckpoint.decode(line)
        assert checkpoint.topology == {
            "epoch": 0,
            "nodes": [0, 1],
            "routing": "hash",
        }
        new_id = sim.scale_up()
        assert new_id == 2
        line = sim.checkpoint_node(0)
        assert BankCheckpoint.decode(line).topology == {
            "epoch": 1,
            "nodes": [0, 1, 2],
            "routing": "hash",
        }

    def test_scale_validation(self):
        with pytest.raises(ParameterError):
            ScaleEvent(at_event=-1, action="add")
        with pytest.raises(ParameterError):
            ScaleEvent(at_event=0, action="resize")
        with pytest.raises(ParameterError):
            ScaleEvent(at_event=0, action="remove")
        sim = ClusterSimulation(ClusterConfig(n_nodes=1, seed=0))
        with pytest.raises(ParameterError):
            sim.scale_down(0)  # last node
        with pytest.raises(ParameterError):
            sim.scale_down(5)  # unknown node

    def test_crashing_retired_node_rejected_at_config_time(self):
        with pytest.raises(ParameterError):
            ClusterConfig(
                n_nodes=2,
                seed=_SEED,
                scale_events=(ScaleEvent(at_event=50, action="remove",
                                         node_id=1),),
                failures=(NodeFailure(at_event=100, node_id=1),),
            )

    def test_schedule_validation_fails_fast(self):
        # Removing a node that never existed.
        with pytest.raises(ParameterError):
            ClusterConfig(
                n_nodes=2,
                scale_events=(ScaleEvent(at_event=10, action="remove",
                                         node_id=7),),
            )
        # Adding an id that is already live.
        with pytest.raises(ParameterError):
            ClusterConfig(
                n_nodes=2,
                scale_events=(ScaleEvent(at_event=10, action="add",
                                         node_id=1),),
            )
        # Removing down to zero nodes.
        with pytest.raises(ParameterError):
            ClusterConfig(
                n_nodes=1,
                scale_events=(ScaleEvent(at_event=10, action="remove",
                                         node_id=0),),
            )
        # Killing a node before it is added.
        with pytest.raises(ParameterError):
            ClusterConfig(
                n_nodes=2,
                scale_events=(ScaleEvent(at_event=100, action="add"),),
                failures=(NodeFailure(at_event=50, node_id=2),),
            )
        # ... but killing it after the add is fine (auto id = 2).
        ClusterConfig(
            n_nodes=2,
            scale_events=(ScaleEvent(at_event=100, action="add"),),
            failures=(NodeFailure(at_event=150, node_id=2),),
        )

    def test_static_config_still_validates_failures(self):
        with pytest.raises(ParameterError):
            ClusterConfig(n_nodes=2, failures=(NodeFailure(10, 5),))
