"""End-to-end cluster simulation tests: exactness, recovery, determinism.

These are the scaled-down tier-1 versions of the acceptance scenario the
benchmark runs at 1M events: a ≥4-node cluster over a Zipf workload whose
global merged estimate is statistically indistinguishable from a
single-node run (Remark 2.4 exactness), with a node killed mid-run
recovering from its checkpoint and the whole simulation staying
deterministic.
"""

from __future__ import annotations

import json
import math

import pytest

import repro.cluster.simulation as simulation_module
from repro.cluster import (
    ClusterConfig,
    ClusterSimulation,
    NodeFailure,
    default_template,
)
from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import KeyedEvent, zipf_workload

_SEED = 1234


def _events(n_events: int, n_keys: int = 300):
    return zipf_workload(BitBudgetedRandom(_SEED), n_keys, n_events)


def _run(n_events: int = 30_000, **overrides) -> "SimulationResult":
    settings = dict(
        seed=_SEED,
        template=default_template("simplified_ny"),
        buffer_limit=256,
        checkpoint_every=5000,
    )
    settings.update(overrides)
    return ClusterSimulation(ClusterConfig(**settings)).run(_events(n_events))


class TestMergeExactness:
    def test_exact_cluster_is_lossless(self):
        """Exact counters through the full pipeline — routing, buffering,
        checkpoints, a crash, aggregation — reproduce ground truth."""
        result = _run(
            n_events=20_000,
            template=default_template("exact"),
            failures=(NodeFailure(at_event=9000, node_id=2),),
            hot_key_threshold=1000,
        )
        assert result.total_events == 20_000
        assert result.max_relative_error == 0.0

    def test_multinode_error_matches_single_node(self):
        """Remark 2.4: sharding over 4 nodes costs nothing in accuracy
        relative to a single node at the same seed-class."""
        single = _run(n_nodes=1)
        cluster = _run(n_nodes=4)
        assert cluster.total_events == single.total_events == 30_000
        assert cluster.n_keys == single.n_keys
        # Both runs resolve the same workload to comparable accuracy.
        assert single.rms_relative_error < 0.02
        assert cluster.rms_relative_error < 0.02
        assert cluster.rms_relative_error < max(
            3 * single.rms_relative_error, 0.005
        )

    def test_hot_key_split_keeps_accuracy(self):
        result = _run(n_nodes=4, hot_key_threshold=500)
        assert result.hot_keys >= 1  # Zipf head crosses the threshold
        assert result.rms_relative_error < 0.02
        # The split head key is still estimated well.
        key, estimate, truth = result.top[0]
        assert key == "page-000000"
        assert abs(estimate - truth) / truth < 0.05


class TestCrashRecovery:
    def test_recovery_preserves_ground_truth(self):
        result = _run(
            n_nodes=4,
            failures=(NodeFailure(at_event=15_000, node_id=1),),
        )
        assert result.recoveries == 1
        # Durable-log replay is lossless: every delivered event is
        # accounted for in the final merged view.
        assert result.total_events == 30_000
        assert result.rms_relative_error < 0.02

    def test_crash_before_first_checkpoint(self):
        result = _run(
            n_events=4000,
            n_nodes=3,
            checkpoint_every=100_000,  # never reached
            failures=(NodeFailure(at_event=2000, node_id=0),),
        )
        assert result.recoveries == 1
        assert result.checkpoints == 0
        assert result.total_events == 4000

    def test_repeated_crashes_same_node(self):
        result = _run(
            n_nodes=4,
            failures=(
                NodeFailure(at_event=8000, node_id=2),
                NodeFailure(at_event=16_000, node_id=2),
                NodeFailure(at_event=24_000, node_id=2),
            ),
        )
        assert result.node_stats[2].recoveries == 3
        assert result.total_events == 30_000
        assert result.rms_relative_error < 0.02

    def test_failure_validation(self):
        with pytest.raises(ParameterError):
            ClusterConfig(n_nodes=2, failures=(NodeFailure(10, 5),))
        with pytest.raises(ParameterError):
            NodeFailure(at_event=-1, node_id=0)


class TestDeterminism:
    def test_identical_runs_bit_identical(self):
        kwargs = dict(
            n_nodes=4,
            failures=(NodeFailure(at_event=12_000, node_id=3),),
            hot_key_threshold=800,
        )
        first = _run(**kwargs)
        replay = _run(**kwargs)
        assert first.node_stats == replay.node_stats
        assert first.top == replay.top
        assert first.rms_relative_error == replay.rms_relative_error
        assert first.total_state_bits == replay.total_state_bits

    def test_seed_changes_estimates_not_truth(self):
        base = ClusterConfig(seed=1, n_nodes=2, checkpoint_every=None)
        other = ClusterConfig(seed=2, n_nodes=2, checkpoint_every=None)
        stream = list(_events(5000, n_keys=20))
        a = ClusterSimulation(base).run(iter(stream))
        b = ClusterSimulation(other).run(iter(stream))
        assert a.total_events == b.total_events == 5000
        truths_a = {key: truth for key, _, truth in a.top}
        truths_b = {key: truth for key, _, truth in b.top}
        assert truths_a == truths_b  # ground truth is seed-independent


class TestMetrics:
    def test_result_accounting(self):
        result = _run(n_nodes=4)
        assert len(result.node_stats) == 4
        assert sum(s.events for s in result.node_stats) == 30_000
        assert all(s.flushes > 0 for s in result.node_stats)
        assert result.checkpoints > 0
        assert result.events_per_sec > 0
        assert result.total_state_bits > 0

    def test_table_renders(self):
        text = _run(n_events=2000, n_nodes=2).table()
        assert "node-0" in text
        assert "events/s" in text
        assert "global error" in text

    def test_weighted_events_accepted(self):
        config = ClusterConfig(
            n_nodes=2, template=default_template("exact"), seed=0
        )
        events = [KeyedEvent("a", 10), KeyedEvent("b", 5), KeyedEvent("a", 1)]
        result = ClusterSimulation(config).run(iter(events))
        assert result.total_events == 16
        assert result.max_relative_error == 0.0

    def test_events_per_sec_finite_when_clock_stalls(self, monkeypatch):
        """A run faster than one perf_counter tick used to report
        float('inf'), which json.dump emits as non-strict ``Infinity``;
        elapsed is now clamped so the metric stays strict-JSON-safe."""
        monkeypatch.setattr(
            simulation_module.time, "perf_counter", lambda: 42.0
        )
        result = _run(n_events=500)
        assert math.isfinite(result.events_per_sec)
        assert result.events_per_sec > 0
        assert result.elapsed_s > 0
        # The exact round-trip the benchmark JSON needs to survive.
        encoded = json.dumps(
            {"events_per_sec": result.events_per_sec}, allow_nan=False
        )
        assert json.loads(encoded)["events_per_sec"] > 0


class TestEagerCheckpointAfterRecovery:
    def test_overdue_checkpoint_taken_at_recovery(self):
        """Satellite fix: if replay leaves ``_since_checkpoint`` at or
        past ``checkpoint_every``, the checkpoint is taken eagerly, so a
        crash-recover-crash at one position cannot replay the same log
        twice."""
        config = ClusterConfig(
            n_nodes=1,
            template=default_template("exact"),
            seed=_SEED,
            checkpoint_every=100,
        )
        sim = ClusterSimulation(config)
        # Deliver past the budget without the per-delivery checkpoint
        # hook (as an external driver feeding the durable log would),
        # leaving the node overdue at crash time.
        for i in range(150):
            event = KeyedEvent(f"k{i}")
            sim.store.wal.append(0, event)
            sim.nodes[0].submit(event)
            sim._since_checkpoint[0] += 1
        assert sim._since_checkpoint[0] >= 100
        sim.crash_node(0)
        # The overdue checkpoint was taken during recovery: the log is
        # fenced and the budget reset — not deferred to the next event.
        assert sim._since_checkpoint[0] == 0
        assert sim.store.wal.retained_events(0) == 0
        first_line = sim.store.latest(0)
        assert first_line is not None
        # A second crash at the same position replays nothing.
        sim.crash_node(0)
        assert sim.store.latest(0) == first_line
        assert sim.nodes[0].estimate("k0") == 1.0
        assert sim.nodes[0].events_ingested == 150

    def test_not_overdue_recovery_takes_no_checkpoint(self):
        config = ClusterConfig(
            n_nodes=1,
            template=default_template("exact"),
            seed=_SEED,
            checkpoint_every=1000,
        )
        sim = ClusterSimulation(config)
        for i in range(50):
            sim.deliver_event(KeyedEvent(f"k{i}"))
        sim.crash_node(0)
        assert sim._since_checkpoint[0] == 50
        assert sim.store.latest(0) is None  # still below the budget
