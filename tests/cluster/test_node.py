"""Tests for ingest nodes and counter templates."""

from __future__ import annotations

import pytest

from repro.cluster.node import CounterTemplate, IngestNode, default_template
from repro.errors import ParameterError
from repro.stream.workload import KeyedEvent


def _node(buffer_limit: int = 100, **kwargs) -> IngestNode:
    return IngestNode(
        0,
        default_template("simplified_ny"),
        seed=7,
        buffer_limit=buffer_limit,
        **kwargs,
    )


class TestCounterTemplate:
    def test_build(self):
        from repro.rng.bitstream import BitBudgetedRandom

        template = CounterTemplate("morris", {"a": 0.5})
        counter = template.build(BitBudgetedRandom(1))
        counter.add(100)
        assert counter.n_increments == 100

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ParameterError):
            CounterTemplate("hyperloglog")

    def test_dict_roundtrip(self):
        template = default_template("nelson_yu")
        clone = CounterTemplate.from_dict(template.to_dict())
        assert clone == template

    def test_default_template_unknown(self):
        with pytest.raises(ParameterError):
            default_template("csuros")  # not mergeable, no preset


class TestWriteBuffer:
    def test_coalescing(self):
        node = _node(buffer_limit=1000)
        for _ in range(10):
            node.submit(KeyedEvent("hot"))
        node.submit(KeyedEvent("cold"))
        assert node.pending == 11
        assert len(node.bank) == 0  # nothing flushed yet
        node.flush()
        assert node.pending == 0
        assert node.bank.truth("hot") == 10
        assert node.bank.truth("cold") == 1
        assert node.n_flushes == 1

    def test_auto_flush_at_limit(self):
        node = _node(buffer_limit=5)
        for i in range(5):
            node.submit(KeyedEvent(f"k{i}"))
        assert node.pending == 0  # hit the limit, flushed itself
        assert node.n_flushes == 1

    def test_weighted_events(self):
        node = _node(buffer_limit=100)
        node.submit(KeyedEvent("k", count=60))
        node.submit(KeyedEvent("k", count=60))  # 120 >= limit
        assert node.pending == 0
        assert node.bank.truth("k") == 120
        assert node.events_ingested == 120

    def test_zero_count_is_noop(self):
        node = _node()
        node.submit(KeyedEvent("k", count=0))
        assert node.pending == 0
        assert node.events_ingested == 0

    def test_estimate_sees_buffered_increments(self):
        node = _node(buffer_limit=1000)
        node.submit(KeyedEvent("k", count=42))
        assert node.estimate("k") == 42.0  # exact while still buffered

    def test_flush_is_order_independent(self):
        streams = (
            [KeyedEvent("a", 3), KeyedEvent("b", 5), KeyedEvent("a", 2)],
            [KeyedEvent("b", 5), KeyedEvent("a", 2), KeyedEvent("a", 3)],
        )
        estimates = []
        for events in streams:
            node = _node(buffer_limit=1000)
            node.submit_all(events)
            node.flush()
            estimates.append((node.estimate("a"), node.estimate("b")))
        assert estimates[0] == estimates[1]


class TestValidationAndReset:
    def test_bad_parameters(self):
        template = default_template()
        with pytest.raises(ParameterError):
            IngestNode(-1, template, seed=0)
        with pytest.raises(ParameterError):
            IngestNode(0, template, seed=0, buffer_limit=0)

    def test_reset_starts_empty_window(self):
        node = _node(buffer_limit=10_000)
        node.submit(KeyedEvent("k", count=500))
        node.flush()
        node.submit(KeyedEvent("pending", count=3))
        node.reset()
        assert node.pending == 0
        assert len(node.bank) == 0
        assert node.estimate("k") == 0.0
        # Lifetime stats survive the window roll.
        assert node.events_ingested == 503

    def test_reset_windows_are_deterministic(self):
        def run():
            node = _node(buffer_limit=10_000)
            node.submit(KeyedEvent("k", count=10_000))
            node.flush()
            node.reset()
            node.submit(KeyedEvent("k", count=10_000))
            node.flush()
            return node.estimate("k")

        assert run() == run()
