"""The unified read API: consistency, caching, staleness honesty.

``ClusterReader`` is the one blessed read surface (PR 9): every query
answers at a chosen consistency — ``"replica"`` (pure gossip-digest
read, honestly staleness-stamped) or ``"consistent"`` (the paid
central fold) — behind a stamp-invalidated read cache.  These tests
pin the contract the HTTP frontend and the CLI build on:

* replica reads equal consistent reads bit for bit once the network
  has converged (exact templates);
* the cache hits on idle re-reads and invalidates on digest version
  bumps and on new ingest;
* the staleness stamp is honest: a converged replica owes zero lag, a
  replica that missed N unrefreshed events reports exactly N;
* replica reads are pure — they never flush a node's buffer;
* ``global_view()`` still answers, now routed through the reader.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterReader,
    ClusterSimulation,
    KeyCount,
    Subscription,
    TopK,
    ViewSnapshot,
    default_template,
    view_fingerprint,
)
from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import KeyedEvent, zipf_workload

_SEED = 7
_EVENTS = 1200


def _run_cluster(n_nodes: int = 3, gossip: bool = True):
    """A finished (converged) little cluster and its reader."""
    extra = (
        dict(aggregation="gossip", gossip_every=_EVENTS // 4)
        if gossip
        else {}
    )
    config = ClusterConfig(
        n_nodes=n_nodes,
        template=default_template("exact"),
        seed=_SEED,
        buffer_limit=64,
        **extra,
    )
    simulation = ClusterSimulation(config)
    simulation.run(
        zipf_workload(
            BitBudgetedRandom(_SEED), n_keys=50, n_events=_EVENTS
        )
    )
    return simulation, ClusterReader.from_simulation(simulation)


class TestConsistencyResolution:
    def test_gossip_cluster_defaults_to_replica(self):
        _, reader = _run_cluster(gossip=True)
        assert reader.get("page-000000").staleness.consistency == "replica"

    def test_tree_cluster_defaults_to_consistent(self):
        _, reader = _run_cluster(gossip=False)
        assert reader.get("page-000000").staleness.consistency == "consistent"
        assert reader.replicas == ()

    def test_unknown_consistency_is_loud(self):
        _, reader = _run_cluster()
        with pytest.raises(ParameterError, match="unknown consistency"):
            reader.get("page-000000", consistency="eventual")
        with pytest.raises(ParameterError, match="unknown consistency"):
            ClusterReader.from_simulation(
                _run_cluster()[0], consistency="bogus"
            )

    def test_replica_read_without_gossip_is_loud(self):
        _, reader = _run_cluster(gossip=False)
        with pytest.raises(
            ParameterError, match="replica reads need a gossip network"
        ):
            reader.view(consistency="replica")

    def test_unknown_replica_id_is_loud(self):
        _, reader = _run_cluster(n_nodes=2)
        with pytest.raises(Exception):
            reader.view(consistency="replica", replica=99)


class TestReplicaConsistentEquivalence:
    def test_every_replica_equals_consistent_after_converge(self):
        simulation, reader = _run_cluster(n_nodes=4)
        central = view_fingerprint(
            reader.raw_view(consistency="consistent")
        )
        assert central == view_fingerprint(
            simulation.aggregator.global_view()
        )
        for replica in reader.replicas:
            snapshot = reader.view(
                consistency="replica", replica=replica
            )
            assert snapshot.fingerprint() == central

    def test_entities_are_typed_and_stamped(self):
        _, reader = _run_cluster()
        count = reader.get("page-000000", consistency="replica")
        assert isinstance(count, KeyCount)
        assert count.staleness.consistency == "replica"
        top = reader.top_k(5, consistency="consistent")
        assert isinstance(top, TopK)
        assert len(top.entries) == 5
        assert top.staleness.lag_events == 0
        snapshot = reader.view()
        assert isinstance(snapshot, ViewSnapshot)
        assert snapshot.n_keys == len(reader.raw_view().counters) > 0

    def test_top_k_matches_view_order(self):
        _, reader = _run_cluster()
        top = reader.top_k(10)
        pairs = [(e.key, e.estimate) for e in top.entries]
        view = reader.raw_view()
        assert pairs == list(view.top_keys(10))


class TestReadCache:
    def test_idle_rereads_hit(self):
        _, reader = _run_cluster()
        reader.view(consistency="replica")
        assert (reader.cache_hits, reader.cache_misses) == (0, 1)
        reader.get("page-000000", consistency="replica")
        reader.top_k(3, consistency="replica")
        assert (reader.cache_hits, reader.cache_misses) == (2, 1)

    def test_consistent_idle_rereads_hit(self):
        _, reader = _run_cluster()
        reader.view(consistency="consistent")
        reader.view(consistency="consistent")
        assert (reader.cache_hits, reader.cache_misses) == (1, 1)

    def test_digest_version_bump_invalidates_replica_reads(self):
        simulation, reader = _run_cluster()
        replica = reader.replicas[0]
        reader.view(consistency="replica", replica=replica)
        # Re-capturing the replica's own entry bumps its version: the
        # stamp moves, so the cached view must not be served again.
        simulation.gossip.refresh(simulation.nodes[0])
        reader.view(consistency="replica", replica=replica)
        assert (reader.cache_hits, reader.cache_misses) == (0, 2)

    def test_new_ingest_invalidates_consistent_reads(self):
        simulation, reader = _run_cluster()
        reader.view(consistency="consistent")
        simulation.nodes[0].submit(KeyedEvent("page-000000"))
        reader.view(consistency="consistent")
        assert (reader.cache_hits, reader.cache_misses) == (0, 2)

    def test_invalidate_drops_the_cache(self):
        _, reader = _run_cluster()
        reader.view(consistency="replica")
        reader.invalidate()
        reader.view(consistency="replica")
        assert (reader.cache_hits, reader.cache_misses) == (0, 2)

    def test_replicas_cache_independently(self):
        _, reader = _run_cluster(n_nodes=3)
        reader.view(consistency="replica", replica=0)
        reader.view(consistency="replica", replica=1)
        reader.view(consistency="replica", replica=0)
        assert (reader.cache_hits, reader.cache_misses) == (1, 2)


class TestStalenessHonesty:
    def test_converged_replica_owes_nothing(self):
        _, reader = _run_cluster()
        for replica in reader.replicas:
            staleness = reader.staleness(
                consistency="replica", replica=replica
            )
            assert staleness.lag_events == 0
            assert staleness.bound_events == _EVENTS // 4

    def test_unrefreshed_ingest_is_reported_exactly(self):
        simulation, reader = _run_cluster(n_nodes=3)
        node = simulation.nodes[0]
        for _ in range(17):
            node.submit(KeyedEvent("page-000000"))
        # No gossip round ran: every replica's digest missed those 17
        # events and must say so — no more, no less.
        for replica in reader.replicas:
            staleness = reader.staleness(
                consistency="replica", replica=replica
            )
            assert staleness.lag_events == 17
        # A consistent read pays for the fold and owes nothing.
        assert reader.staleness(consistency="consistent").lag_events == 0

    def test_refresh_clears_the_reported_lag(self):
        simulation, reader = _run_cluster(n_nodes=2)
        node = simulation.nodes[0]
        node.submit(KeyedEvent("page-000000"))
        assert (
            reader.staleness(consistency="replica", replica=0).lag_events
            == 1
        )
        simulation.gossip.refresh(node)
        assert (
            reader.staleness(consistency="replica", replica=0).lag_events
            == 0
        )

    def test_replica_reads_are_pure(self):
        """A replica read must never flush a node's buffer."""
        simulation, reader = _run_cluster()
        node = simulation.nodes[0]
        node.submit(KeyedEvent("page-000000"))
        pending_before = node.pending
        assert pending_before > 0
        reader.view(consistency="replica")
        reader.staleness(consistency="replica")
        assert node.pending == pending_before
        # ... while a consistent read flushes, like global_view always
        # has.
        reader.view(consistency="consistent")
        assert node.pending == 0


class TestGlobalViewShim:
    def test_global_view_routes_through_the_reader(self):
        simulation, reader = _run_cluster()
        shim = view_fingerprint(simulation.aggregator.global_view())
        assert shim == view_fingerprint(
            reader.raw_view(consistency="consistent")
        )

    def test_shim_still_reflects_new_ingest(self):
        simulation, _ = _run_cluster()
        before = simulation.aggregator.global_view().estimate("page-000000")
        simulation.nodes[0].submit(KeyedEvent("page-000000"))
        after = simulation.aggregator.global_view().estimate("page-000000")
        assert after == before + 1.0


class TestSubscription:
    def test_first_poll_reports_everything_then_quiesces(self):
        _, reader = _run_cluster()
        subscription = reader.subscribe(consistency="consistent")
        assert isinstance(subscription, Subscription)
        first = subscription.poll()
        assert len(first) == len(reader.raw_view().counters) > 0
        assert [update.key for update in first] == sorted(
            update.key for update in first
        )
        assert subscription.poll() == ()

    def test_poll_reports_only_changed_keys(self):
        simulation, reader = _run_cluster()
        subscription = reader.subscribe(consistency="consistent")
        subscription.poll()
        simulation.nodes[0].submit(KeyedEvent("page-000000"))
        updates = subscription.poll()
        assert [update.key for update in updates] == ["page-000000"]
        assert subscription.poll() == ()

    def test_key_filter_restricts_updates(self):
        _, reader = _run_cluster()
        subscription = reader.subscribe(
            keys=["page-000001", "page-000000"], consistency="consistent"
        )
        first = subscription.poll()
        assert [update.key for update in first] == ["page-000000", "page-000001"]
