"""Tier-1 smoke test for the cluster benchmark's quick path.

Runs ``python benchmarks/bench_cluster.py -q`` as a subprocess and
validates the ``BENCH_cluster.json`` it writes against the shared schema
(``benchmark`` / ``seed`` / ``workload`` / ``rows``).
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

_REPO = pathlib.Path(__file__).resolve().parents[2]
_BENCH = _REPO / "benchmarks" / "bench_cluster.py"
_RESULT = _REPO / "benchmarks" / "results" / "BENCH_cluster.json"


class TestBenchClusterSmoke:
    def test_quick_path_writes_schema(self):
        env = dict(os.environ)
        src = str(_REPO / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src
        )
        completed = subprocess.run(
            [sys.executable, str(_BENCH), "-q"],
            capture_output=True,
            text=True,
            timeout=600,
            env=env,
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "events/s" in completed.stdout

        payload = json.loads(_RESULT.read_text(encoding="utf-8"))
        assert payload["benchmark"] == "cluster"
        assert isinstance(payload["seed"], int)
        assert payload["workload"]["kind"] == "zipf"
        rows = payload["rows"]
        assert [row["nodes"] for row in rows] == [1, 2, 4, 8]
        for row in rows:
            assert row["events_per_sec"] > 0
            assert 0.0 <= row["rms_relative_error"] < 0.02
            assert row["state_bits"] > 0
            if row["nodes"] > 1:
                assert row["recoveries"] >= 1
