"""Tier-1 smoke tests for the cluster benchmark's quick paths.

Runs ``python benchmarks/bench_cluster.py -q`` (and ``--scenario
durability``) as subprocesses and validates the ``BENCH_cluster*.json``
they write against the shared schema (``benchmark`` / ``seed`` /
``workload`` / ``rows``).  Every payload must also survive a *strict*
JSON round-trip (``allow_nan=False``) — the regression guard for the
``events_per_sec: Infinity`` bug.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

_REPO = pathlib.Path(__file__).resolve().parents[2]
_BENCH = _REPO / "benchmarks" / "bench_cluster.py"
_RESULTS = _REPO / "benchmarks" / "results"
_RESULT = _RESULTS / "BENCH_cluster.json"
_DURABILITY_RESULT = _RESULTS / "BENCH_cluster_durability.json"
_THROUGHPUT_RESULT = _RESULTS / "BENCH_cluster_throughput.json"
_GOSSIP_RESULT = _RESULTS / "BENCH_cluster_gossip.json"
_MEMBERSHIP_RESULT = _RESULTS / "BENCH_cluster_membership.json"


def _run_bench(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(_REPO / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    return subprocess.run(
        [sys.executable, str(_BENCH), *args],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )


def _assert_strict_json_roundtrip(payload: dict) -> None:
    """Every row must survive json.dumps(..., allow_nan=False)."""
    for row in payload["rows"]:
        assert json.loads(json.dumps(row, allow_nan=False)) == row
    assert json.loads(json.dumps(payload, allow_nan=False)) == payload


class TestBenchClusterSmoke:
    def test_quick_path_writes_schema(self):
        completed = _run_bench("-q")
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "events/s" in completed.stdout

        payload = json.loads(_RESULT.read_text(encoding="utf-8"))
        assert payload["benchmark"] == "cluster"
        assert isinstance(payload["seed"], int)
        assert payload["workload"]["kind"] == "zipf"
        rows = payload["rows"]
        assert [row["nodes"] for row in rows] == [1, 2, 4, 8]
        for row in rows:
            assert row["events_per_sec"] > 0
            assert 0.0 <= row["rms_relative_error"] < 0.02
            assert row["state_bits"] > 0
            if row["nodes"] > 1:
                assert row["recoveries"] >= 1
        _assert_strict_json_roundtrip(payload)


class TestBenchDurabilitySmoke:
    def test_durability_quick_path(self):
        """Tmp-dir FileStore vs memory at equal accuracy, plus the
        recovery-from-disk bit-for-bit proof on exact templates."""
        completed = _run_bench("-q", "--scenario", "durability")
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "bit-identical" in completed.stdout

        payload = json.loads(
            _DURABILITY_RESULT.read_text(encoding="utf-8")
        )
        assert payload["benchmark"] == "cluster_durability"
        assert payload["workload"]["kind"] == "zipf"
        rows = {row["scenario"]: row for row in payload["rows"]}
        assert set(rows) == {"memory", "file"}
        # Equal accuracy is bit-equality: the backend may not change
        # what the cluster computes.
        assert (
            rows["memory"]["rms_relative_error"]
            == rows["file"]["rms_relative_error"]
        )
        assert rows["file"]["storage_bytes"] > 0
        assert rows["memory"]["events_per_sec"] > 0
        assert rows["file"]["events_per_sec"] > 0
        # Recovery from disk reproduced the pre-crash run exactly.
        assert payload["recovery_bit_identical"] is True
        _assert_strict_json_roundtrip(payload)


class TestBenchThroughputSmoke:
    def test_throughput_quick_path(self):
        """Serial vs worker-sharded delivery: bit-identical accuracy at
        every worker count, plus the exact-template GlobalView proof.
        (The >=1.5x speedup bar is asserted on full runs only — smoke
        timings are noise.)"""
        completed = _run_bench("-q", "--scenario", "throughput")
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "bit-identical" in completed.stdout

        payload = json.loads(
            _THROUGHPUT_RESULT.read_text(encoding="utf-8")
        )
        assert payload["benchmark"] == "cluster_throughput"
        assert payload["workload"]["kind"] == "zipf"
        rows = payload["rows"]
        assert [row["workers"] for row in rows] == [1, 2, 4, 8]
        serial = rows[0]
        assert serial["mode"] == "serial"
        for row in rows:
            assert row["events_per_sec"] > 0
            # The execution plan may only move wall-clock numbers.
            assert (
                row["rms_relative_error"] == serial["rms_relative_error"]
            )
            assert row["checkpoints"] == serial["checkpoints"]
            assert row["state_bits"] == serial["state_bits"]
        assert payload["parallel_bit_identical"] is True
        # The process arm: serial vs thread-parallel vs per-node OS
        # worker processes at 2 and 4 nodes, same plan-invariance bar.
        # (The >1x-vs-parallel speedup bar is full-run, multi-core
        # only; the payload records cpus so the gate is auditable.)
        process_rows = payload["process_rows"]
        assert [(row["nodes"], row["arm"]) for row in process_rows] == [
            (nodes, arm)
            for nodes in (2, 4)
            for arm in ("serial", "parallel", "process")
        ]
        by_arm = {
            (row["nodes"], row["arm"]): row for row in process_rows
        }
        for row in process_rows:
            base = by_arm[(row["nodes"], "serial")]
            assert row["events_per_sec"] > 0
            assert (
                row["rms_relative_error"] == base["rms_relative_error"]
            )
            assert row["checkpoints"] == base["checkpoints"]
            assert row["state_bits"] == base["state_bits"]
        assert payload["process_bit_identical"] is True
        assert payload["cpus"] >= 1
        _assert_strict_json_roundtrip(payload)


class TestBenchGossipSmoke:
    def test_gossip_quick_path(self):
        """Gossip aggregation on exact templates: every node's
        decentralized read equals the central merge-tree answer bit
        for bit, convergence stays O(log n) rounds, and staleness is
        recorded."""
        completed = _run_bench("-q", "--scenario", "gossip")
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "local == central" in completed.stdout

        payload = json.loads(_GOSSIP_RESULT.read_text(encoding="utf-8"))
        assert payload["benchmark"] == "cluster_gossip"
        assert payload["workload"]["kind"] == "zipf"
        rows = payload["rows"]
        assert [row["nodes"] for row in rows] == [2, 4, 8]
        for row in rows:
            assert row["central_read_equivalent"] is True
            assert row["max_relative_error"] == 0.0
            # O(log n): 2 nodes converge faster than a generous
            # log-scaled bound at 8; never linear in n.
            assert 1 <= row["rounds_to_convergence"] <= 12
            assert row["max_staleness_events"] >= 0
            assert row["gossip_rounds"] > row["rounds_to_convergence"]
            assert row["recoveries"] >= 1
            assert row["events_per_sec"] > 0
        _assert_strict_json_roundtrip(payload)


class TestBenchMembershipSmoke:
    def test_membership_quick_path(self):
        """Self-healing membership: a kill the driver never heals is
        detected, quorum-confirmed, and healed by the cluster, and the
        self-healed exact view is bit-identical to the driver-healed
        reference run's."""
        completed = _run_bench("-q", "--scenario", "membership")
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "healed == driver" in completed.stdout

        payload = json.loads(
            _MEMBERSHIP_RESULT.read_text(encoding="utf-8")
        )
        assert payload["benchmark"] == "cluster_membership"
        assert payload["workload"]["kind"] == "zipf"
        assert payload["config"]["suspect_after"] >= 1
        rows = payload["rows"]
        assert [row["nodes"] for row in rows] == [2, 4, 8]
        for row in rows:
            assert row["kills"] == 1
            assert row["suspicions"] >= 1
            assert row["confirmations"] >= 1
            assert row["heals"] == 1
            assert row["healed_equivalent"] is True
            assert row["max_relative_error"] == 0.0
            # Detection latency: the staleness threshold plus an
            # O(log n) dissemination allowance, never linear in n.
            assert 1 <= row["detection_rounds"] <= 14
            assert row["recoveries"] >= 1
            assert row["events_per_sec"] > 0
        _assert_strict_json_roundtrip(payload)
