"""End-to-end HTTP/SSE frontend tests against a live server.

One finished gossip cluster, one ``ClusterHTTPServer`` on an ephemeral
port, real sockets: point lookups, top-k, whole views, one SSE event,
a ``/metrics`` scrape, and the 400/404 error contract — every JSON
body must be *strict* JSON (the repo-wide artifact convention).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterReader,
    ClusterSimulation,
    default_template,
)
from repro.cluster.httpd import ClusterHTTPServer, serve_http
from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import zipf_workload

_SEED = 11
_EVENTS = 1500


@pytest.fixture(scope="module")
def served():
    """A finished cluster behind a live HTTP server (module-scoped:
    the endpoints under test are read-only)."""
    config = ClusterConfig(
        n_nodes=3,
        template=default_template("exact"),
        seed=_SEED,
        buffer_limit=64,
        aggregation="gossip",
        gossip_every=_EVENTS // 4,
    )
    simulation = ClusterSimulation(config)
    simulation.run(
        zipf_workload(
            BitBudgetedRandom(_SEED), n_keys=40, n_events=_EVENTS
        )
    )
    reader = ClusterReader.from_simulation(simulation)
    server = serve_http(reader)
    yield simulation, reader, server
    server.close()


def _get(server, endpoint: str) -> tuple[int, bytes]:
    with urllib.request.urlopen(
        server.url + endpoint, timeout=10
    ) as reply:
        return reply.status, reply.read()


def _get_json(server, endpoint: str) -> dict:
    status, body = _get(server, endpoint)
    assert status == 200
    text = body.decode("utf-8")
    payload = json.loads(text)
    # Strict JSON: a re-dump with allow_nan=False must round-trip.
    json.dumps(payload, allow_nan=False)
    return payload


def _error_json(server, endpoint: str, status: int) -> dict:
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(server, endpoint)
    assert excinfo.value.code == status
    return json.loads(excinfo.value.read().decode("utf-8"))


class TestEndpoints:
    def test_healthz(self, served):
        _, reader, server = served
        payload = _get_json(server, "/healthz")
        assert payload["status"] == "ok"
        assert payload["replicas"] == list(reader.replicas)
        assert payload["consistency"] == ["replica", "consistent"]

    def test_point_lookup_matches_the_reader(self, served):
        _, reader, server = served
        payload = _get_json(server, "/v1/keys/page-000000")
        expected = reader.get("page-000000")
        assert payload["key"] == "page-000000"
        assert payload["estimate"] == expected.estimate
        assert payload["truth"] == expected.truth
        assert payload["staleness"]["consistency"] == "replica"
        assert payload["staleness"]["lag_events"] == 0

    def test_unseen_key_counts_zero(self, served):
        _, _, server = served
        payload = _get_json(server, "/v1/keys/never-seen")
        assert payload["estimate"] == 0.0

    def test_topk(self, served):
        _, reader, server = served
        payload = _get_json(server, "/v1/topk?k=5")
        assert payload["k"] == 5
        expected = [
            (entry.key, entry.estimate)
            for entry in reader.top_k(5).entries
        ]
        assert [
            (entry["key"], entry["estimate"])
            for entry in payload["entries"]
        ] == expected

    def test_view_consistencies_agree_after_converge(self, served):
        _, _, server = served
        replica = _get_json(server, "/v1/view?consistency=replica")
        consistent = _get_json(
            server, "/v1/view?consistency=consistent"
        )
        assert replica["counts"] == consistent["counts"]
        assert replica["truth"] == consistent["truth"]
        assert replica["staleness"]["consistency"] == "replica"
        assert consistent["staleness"]["consistency"] == "consistent"

    def test_replica_selection(self, served):
        _, reader, server = served
        for replica in reader.replicas:
            payload = _get_json(
                server, f"/v1/view?replica={replica}"
            )
            assert payload["staleness"]["replica"] == replica

    def test_stream_emits_sse_events(self, served):
        _, _, server = served
        status, body = _get(
            server, "/v1/stream?limit=1&poll_ms=1&keys=page-000000"
        )
        assert status == 200
        text = body.decode("utf-8")
        frames = [
            frame for frame in text.split("\n\n") if frame.strip()
        ]
        assert frames and frames[0].startswith("event: count\n")
        payload = json.loads(
            frames[0].split("\ndata: ", 1)[1]
        )
        assert payload["key"] == "page-000000"

    def test_metrics_scrape(self, served):
        _, _, server = served
        status, body = _get(server, "/metrics")
        assert status == 200
        text = body.decode("utf-8")
        assert "http_requests_total" in text
        assert "queries_total" in text


class TestErrorContract:
    def test_unknown_endpoint_is_404_json(self, served):
        _, _, server = served
        payload = _error_json(server, "/v2/nothing", 404)
        assert "unknown endpoint" in payload["error"]

    def test_unknown_consistency_is_400_json(self, served):
        _, _, server = served
        payload = _error_json(
            server, "/v1/view?consistency=eventual", 400
        )
        assert "unknown consistency" in payload["error"]

    def test_bad_replica_is_400_json(self, served):
        _, _, server = served
        payload = _error_json(server, "/v1/view?replica=abc", 400)
        assert "replica must be an integer" in payload["error"]

    def test_bad_k_is_400_json(self, served):
        _, _, server = served
        payload = _error_json(server, "/v1/topk?k=many", 400)
        assert "k must be an integer" in payload["error"]

    def test_missing_key_is_400_json(self, served):
        _, _, server = served
        payload = _error_json(server, "/v1/keys/", 400)
        assert "missing key" in payload["error"]


class TestServerLifecycle:
    def test_double_start_is_loud(self, served):
        _, _, server = served
        with pytest.raises(ParameterError, match="already started"):
            server.start()

    def test_close_is_idempotent(self):
        config = ClusterConfig(
            n_nodes=1,
            template=default_template("exact"),
            seed=_SEED,
        )
        simulation = ClusterSimulation(config)
        simulation.run(
            zipf_workload(
                BitBudgetedRandom(_SEED), n_keys=5, n_events=50
            )
        )
        server = serve_http(ClusterReader.from_simulation(simulation))
        assert isinstance(server, ClusterHTTPServer)
        url = server.url
        server.close()
        server.close()
        with pytest.raises(OSError):
            urllib.request.urlopen(url + "/healthz", timeout=2)
