"""Tests for routing strategies, topology epochs, and key migration.

The elastic-scaling invariant being pinned: moving a counter between
nodes is a merge (Remark 2.4), so rebalancing preserves ground truth
exactly for ``exact`` templates and preserves the error distribution for
approximate ones — and the whole flow (plan → drain → encoded batch →
decode → absorb) is deterministic.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import (
    ClusterRouter,
    CounterTemplate,
    HashRingStrategy,
    IngestNode,
    KeyMove,
    MigrationBatch,
    ModuloHashStrategy,
    StableHashRouter,
    default_template,
    execute_rebalance,
    make_strategy,
    plan_rebalance,
)
from repro.errors import ParameterError, StateError
from repro.stream.workload import KeyedEvent

_KEYS = [f"page-{i:04d}" for i in range(600)]


class TestStrategies:
    def test_registry(self):
        assert isinstance(make_strategy("hash"), ModuloHashStrategy)
        ring = make_strategy("ring", points_per_node=8)
        assert isinstance(ring, HashRingStrategy)
        assert ring.points_per_node == 8
        with pytest.raises(ParameterError):
            make_strategy("nope")
        with pytest.raises(ParameterError):
            HashRingStrategy(points_per_node=0)

    def test_modulo_matches_legacy_router(self):
        """The strategy refactor reproduces the frozen-topology router."""
        legacy = StableHashRouter(8, salt=5)
        elastic = ClusterRouter(
            range(8), strategy=ModuloHashStrategy(), salt=5
        )
        assert [legacy.route(k) for k in _KEYS] == [
            elastic.route(k) for k in _KEYS
        ]

    def test_ring_is_deterministic_and_spreads(self):
        strategy = HashRingStrategy(points_per_node=64)
        nodes = tuple(range(6))
        owners = [
            strategy.owner(hash_, nodes, 3)
            for hash_ in range(0, 600_000, 1000)
        ]
        assert owners == [
            HashRingStrategy(64).owner(h, nodes, 3)
            for h in range(0, 600_000, 1000)
        ]
        loads = [owners.count(n) for n in nodes]
        assert all(load > 20 for load in loads)

    def test_ring_moves_few_keys_on_grow(self):
        """Consistent hashing: adding a node moves roughly 1/n of keys,
        and never moves a key between two surviving nodes."""
        router = ClusterRouter(range(8), strategy=HashRingStrategy())
        before = {key: router.home_node(key) for key in _KEYS}
        router.add_node()
        after = {key: router.home_node(key) for key in _KEYS}
        moved = {key for key in _KEYS if before[key] != after[key]}
        assert 0 < len(moved) < len(_KEYS) // 2  # ~1/9 expected
        assert all(after[key] == 8 for key in moved)

    def test_modulo_reshuffles_on_epoch(self):
        """Salt regeneration: a stable-hash resize reshuffles globally."""
        router = ClusterRouter(range(8), strategy=ModuloHashStrategy())
        salt_before = router.salt
        before = {key: router.home_node(key) for key in _KEYS}
        router.add_node()
        assert router.salt != salt_before
        moved = [k for k in _KEYS if router.home_node(k) != before[k]]
        assert len(moved) > len(_KEYS) // 2


class TestClusterRouterTopology:
    def test_epoch_advances_per_change(self):
        router = ClusterRouter([0, 1, 2])
        assert router.epoch == 0
        assert router.add_node() == 3
        router.remove_node(1)
        assert router.epoch == 2
        assert router.nodes == (0, 2, 3)

    def test_set_nodes_noop_keeps_epoch(self):
        router = ClusterRouter([0, 1])
        assert router.set_nodes([1, 0]) == 0

    def test_validation(self):
        router = ClusterRouter([0])
        with pytest.raises(ParameterError):
            router.remove_node(0)  # last node
        with pytest.raises(ParameterError):
            router.remove_node(7)  # unknown
        with pytest.raises(ParameterError):
            router.add_node(0)  # duplicate
        with pytest.raises(ParameterError):
            ClusterRouter([])
        with pytest.raises(ParameterError):
            ClusterRouter([1, 1])
        with pytest.raises(ParameterError):
            ClusterRouter([-1])

    def test_hot_keys_rotate_over_current_topology(self):
        router = ClusterRouter([0, 1, 2, 3], hot_keys=["hot"])
        router.remove_node(2)
        nodes = {router.route("hot") for _ in range(9)}
        assert nodes == {0, 1, 3}


def _node(node_id: int, seed: int, algorithm: str = "exact") -> IngestNode:
    return IngestNode(node_id, default_template(algorithm), seed=seed)


class TestPlanAndExecute:
    def test_plan_only_moves_changed_owners(self):
        a, b = _node(0, 1), _node(1, 2)
        a.submit_all([KeyedEvent("x", 3), KeyedEvent("y", 2)])
        b.submit(KeyedEvent("z", 5))
        plan = plan_rebalance(
            {0: a, 1: b},
            owner_of=lambda key: 1 if key == "x" else 0,
            epoch=4,
        )
        assert plan.epoch == 4
        assert [(m.key, m.source, m.target) for m in plan.moves] == [
            ("x", 0, 1),
            ("z", 1, 0),
        ]
        assert plan.grouped() == {(0, 1): ["x"], (1, 0): ["z"]}

    def test_plan_rejects_unknown_target(self):
        a = _node(0, 1)
        a.submit(KeyedEvent("x"))
        with pytest.raises(ParameterError):
            plan_rebalance({0: a}, owner_of=lambda key: 9)

    def test_no_op_move_rejected(self):
        with pytest.raises(ParameterError):
            KeyMove("k", 2, 2)

    def test_execute_preserves_ground_truth_exactly(self):
        nodes = {i: _node(i, seed=i + 1) for i in range(3)}
        truth: dict[str, int] = {}
        for i, key in enumerate(_KEYS[:60]):
            count = (i % 7) + 1
            nodes[i % 3].submit(KeyedEvent(key, count))
            truth[key] = count
        plan = plan_rebalance(
            nodes, owner_of=lambda key: sum(map(ord, key)) % 3, epoch=1
        )
        report = execute_rebalance(plan, nodes, seed=99)
        assert report.keys_moved == plan.n_moves > 0
        assert report.bytes_shipped > 0
        for node in nodes.values():
            node.flush()
        for key, count in truth.items():
            owner = sum(map(ord, key)) % 3
            assert nodes[owner].estimate(key) == float(count)
            assert nodes[owner].bank.truth(key) == count
            for other in nodes.values():
                if other.node_id != owner:
                    assert key not in other.bank

    def test_execute_is_deterministic(self):
        def run():
            nodes = {i: _node(i, seed=i + 1, algorithm="simplified_ny")
                     for i in range(2)}
            for i, key in enumerate(_KEYS[:40]):
                nodes[i % 2].submit(KeyedEvent(key, i + 1))
            plan = plan_rebalance(
                nodes, owner_of=lambda key: len(key) % 2, epoch=1
            )
            execute_rebalance(plan, nodes, seed=5)
            for node in nodes.values():
                node.flush()
            return {
                (node_id, key): nodes[node_id].estimate(key)
                for node_id in nodes
                for key in _KEYS[:40]
            }

        assert run() == run()


class TestMigrationBatch:
    def _batch(self) -> MigrationBatch:
        source = _node(0, 3)
        source.submit_all(
            [KeyedEvent("a", 4), KeyedEvent("b", 1), KeyedEvent("c", 9)]
        )
        records = source.drain(["a", "b", "c"])
        return MigrationBatch(
            source=0,
            target=1,
            epoch=2,
            snapshots={key: snap for key, snap, _ in records},
            truth={key: truth for key, _, truth in records},
        )

    def test_round_trip(self):
        batch = self._batch()
        decoded = MigrationBatch.decode(batch.encode())
        assert decoded.source == 0 and decoded.target == 1
        assert decoded.epoch == 2
        assert len(decoded) == 3
        assert decoded.truth == {"a": 4, "b": 1, "c": 9}
        assert set(decoded.snapshots) == {"a", "b", "c"}

    def test_corruption_fails_loudly(self):
        line = self._batch().encode()
        wrapper = json.loads(line)
        wrapper["payload"]["truth"]["a"] = 400
        with pytest.raises(StateError):
            MigrationBatch.decode(json.dumps(wrapper))
        with pytest.raises(StateError):
            MigrationBatch.decode(line[: len(line) // 2])
        with pytest.raises(StateError):
            MigrationBatch.decode("not json at all")

    def test_version_guard(self):
        from repro.cluster.rebalance import _BATCH_CHECKSUM_SEED
        from repro.core.codec import encode_checksummed_line

        wrapper = json.loads(self._batch().encode())
        wrapper["payload"]["v"] = 99
        line = encode_checksummed_line(
            wrapper["payload"], _BATCH_CHECKSUM_SEED
        )
        with pytest.raises(StateError):
            MigrationBatch.decode(line)

    def test_checksum_seed_separates_record_kinds(self):
        """A migration batch cannot be decoded as a bank checkpoint:
        the framing seeds differ, so the checksum rejects it."""
        from repro.cluster import BankCheckpoint

        with pytest.raises(StateError):
            BankCheckpoint.decode(self._batch().encode())

    def test_untracked_truth_stays_none(self):
        source = IngestNode(
            0, CounterTemplate("exact"), seed=1, track_truth=False
        )
        source.submit(KeyedEvent("k", 2))
        records = source.drain(["k"])
        assert records[0][2] is None
        target = IngestNode(
            1, CounterTemplate("exact"), seed=2, track_truth=False
        )
        # the earlier drain emptied the node; re-submit so the plan
        # sees the key again
        source.submit(KeyedEvent("k", 2))
        plan = plan_rebalance(
            {0: source, 1: target}, owner_of=lambda key: 1
        )
        execute_rebalance(plan, {0: source, 1: target}, seed=3)
        target.flush()
        assert target.estimate("k") == 2.0
