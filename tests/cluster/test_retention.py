"""Tests for windowed retention policies and their simulation semantics.

Pinned invariants: a window boundary is exact (each window holds exactly
``window_events`` events), collapse bounds live state, the horizon view
(retained ⊕ live) preserves ground truth for ``exact`` templates, and a
bounded policy really drops expired windows from the horizon.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterSimulation,
    SlidingRetention,
    TumblingRetention,
    default_template,
)
from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import KeyedEvent, zipf_workload

_SEED = 77


def _events(n_events: int, n_keys: int = 200):
    return zipf_workload(BitBudgetedRandom(_SEED), n_keys, n_events)


def _run(n_events: int = 12_000, **overrides):
    settings = dict(
        seed=_SEED,
        n_nodes=3,
        template=default_template("exact"),
        buffer_limit=128,
        checkpoint_every=2500,
    )
    settings.update(overrides)
    return ClusterSimulation(ClusterConfig(**settings)).run(
        _events(n_events)
    )


class TestPolicies:
    def test_boundaries(self):
        policy = TumblingRetention(window_events=500)
        assert not policy.is_boundary(0)
        assert not policy.is_boundary(499)
        assert policy.is_boundary(500)
        assert policy.is_boundary(1000)

    def test_validation(self):
        with pytest.raises(ParameterError):
            TumblingRetention(0)
        with pytest.raises(ParameterError):
            TumblingRetention(10, keep_windows=-1)
        with pytest.raises(ParameterError):
            SlidingRetention(10, panes=0)

    def test_retained_windows(self):
        assert TumblingRetention(10).retained_windows is None
        assert TumblingRetention(10, keep_windows=3).retained_windows == 3
        assert SlidingRetention(10, panes=4).retained_windows == 4
        assert SlidingRetention(10, panes=4).panes == 4


class TestTumblingSimulation:
    def test_keep_all_horizon_is_lossless(self):
        """With every window retained, the horizon view reproduces the
        full-stream ground truth bit for bit (exact template)."""
        result = _run(retention=TumblingRetention(window_events=3000))
        assert result.windows_collapsed == 3  # boundary before last 9k
        assert result.windows_retained == 3
        assert result.total_events == 12_000
        assert result.max_relative_error == 0.0

    def test_windowing_matches_unwindowed_truth(self):
        """exact template: windowed horizon == unwindowed run's truth."""
        windowed = _run(retention=TumblingRetention(window_events=5000))
        plain = _run(retention=None)
        assert windowed.windows_collapsed == 2
        truths = lambda r: {key: t for key, _, t in r.top}  # noqa: E731
        assert truths(windowed) == truths(plain)
        assert windowed.max_relative_error == 0.0

    def test_live_state_is_bounded(self):
        """After a collapse, live banks only hold the current window."""
        config = ClusterConfig(
            seed=_SEED,
            n_nodes=2,
            template=default_template("exact"),
            retention=TumblingRetention(window_events=1000),
            checkpoint_every=None,
        )
        sim = ClusterSimulation(config)
        result = sim.run(_events(5500, n_keys=400))
        assert result.windows_collapsed == 5
        # The live banks were reset 5 times; they hold only the tail
        # window's keys, far fewer than the horizon's key set.
        live_keys = sum(len(node.bank) for node in sim.nodes)
        assert 0 < live_keys < result.n_keys
        # Horizon still accounts for everything.
        assert result.max_relative_error == 0.0

    def test_bounded_horizon_drops_expired_windows(self):
        """keep_windows=1: the horizon forgets all but the last archived
        window (plus the live tail)."""
        bounded = _run(
            n_events=9000,
            retention=TumblingRetention(window_events=3000, keep_windows=1),
        )
        unbounded = _run(
            n_events=9000,
            retention=TumblingRetention(window_events=3000),
        )
        # 9000 events / 3000-event windows: boundaries fire at 3000 and
        # 6000; the final window stays live (no boundary at stream end).
        assert bounded.windows_collapsed == 2
        assert bounded.windows_retained == 1
        assert unbounded.windows_retained == 2
        # Horizon truth shrank: the bounded top key saw fewer events.
        bounded_top_truth = bounded.top[0][2]
        unbounded_top_truth = unbounded.top[0][2]
        assert bounded_top_truth < unbounded_top_truth
        # ... but what it does cover, it covers exactly.
        assert bounded.max_relative_error == 0.0

    def test_deterministic_across_reruns(self):
        kwargs = dict(
            template=default_template("simplified_ny"),
            retention=TumblingRetention(window_events=2500, keep_windows=2),
        )
        first = _run(**kwargs)
        replay = _run(**kwargs)
        assert first.node_stats == replay.node_stats
        assert first.top == replay.top
        assert first.rms_relative_error == replay.rms_relative_error


class TestSlidingSimulation:
    def test_pane_horizon(self):
        result = _run(
            n_events=10_000,
            retention=SlidingRetention(pane_events=2000, panes=2),
        )
        assert result.windows_collapsed == 4
        assert result.windows_retained == 2
        assert result.max_relative_error == 0.0

    def test_crash_inside_window_stays_lossless(self):
        from repro.cluster import NodeFailure

        result = _run(
            retention=TumblingRetention(window_events=4000),
            failures=(NodeFailure(at_event=5000, node_id=1),),
        )
        assert result.recoveries == 1
        assert result.total_events == 12_000
        assert result.max_relative_error == 0.0

    def test_weighted_events_count_by_position_not_weight(self):
        """Window boundaries are event positions, matching failure
        injection semantics."""
        config = ClusterConfig(
            n_nodes=2,
            template=default_template("exact"),
            seed=0,
            retention=TumblingRetention(window_events=2),
        )
        events = [KeyedEvent("a", 10), KeyedEvent("b", 5),
                  KeyedEvent("a", 1), KeyedEvent("c", 2)]
        result = ClusterSimulation(config).run(iter(events))
        assert result.windows_collapsed == 1
        assert result.total_events == 18
        assert result.max_relative_error == 0.0
