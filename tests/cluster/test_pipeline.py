"""Determinism-under-concurrency: the parallel plan equals the serial one.

The execution plan (:mod:`repro.cluster.pipeline`) may only move
wall-clock work around — never what the cluster computes.  These tests
pin that down the strongest way available: a worker-sharded run must
reproduce the serial run **bit for bit** at the same seed — the full
``GlobalView`` (every counter estimate and the truth table), the
per-node stats, and the error report — on ``exact`` templates *and* on
approximate ones, with crashes mid-run, a live migration mid-stream,
retention collapses, and file-backed storage in the mix, across three
seeds and a sweep of worker counts and delivery batch sizes.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    PLAN_NAMES,
    PLAN_REGISTRY,
    ClusterConfig,
    ClusterSimulation,
    ExecutionPlan,
    NodeFailure,
    ParallelPlan,
    ProcessPlan,
    ScaleEvent,
    SerialPlan,
    TumblingRetention,
    default_template,
    make_plan,
    recover_cluster,
    view_fingerprint,
)
from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import zipf_workload

_SEEDS = (11, 2023, 40961)
_EVENTS = 12_000


def _events(seed: int, n_events: int = _EVENTS, n_keys: int = 250):
    return zipf_workload(BitBudgetedRandom(seed), n_keys, n_events)


def _run(config: ClusterConfig, seed: int, n_events: int = _EVENTS):
    """Run one simulation; returns (result, view fingerprint)."""
    with ClusterSimulation(config) as simulation:
        result = simulation.run(_events(seed, n_events))
        fingerprint = view_fingerprint(simulation.aggregator.global_view())
    return result, fingerprint


def _comparable(result) -> tuple:
    """Every deterministic field of a result (wall clock excluded)."""
    return (
        result.n_nodes,
        result.total_events,
        result.n_keys,
        result.hot_keys,
        result.node_stats,
        result.top,
        result.mean_relative_error,
        result.rms_relative_error,
        result.max_relative_error,
        result.epoch,
        result.scale_events_applied,
        result.keys_migrated,
        result.windows_collapsed,
        result.windows_retained,
        result.total_state_bits,
    )


class TestPlanSelection:
    def test_default_config_is_serial(self):
        plan = make_plan(ClusterConfig(n_nodes=2))
        assert isinstance(plan, SerialPlan)
        assert plan.name == "serial"

    def test_workers_select_parallel(self):
        plan = make_plan(
            ClusterConfig(n_nodes=2, ingest_workers=4, delivery_batch=32)
        )
        assert isinstance(plan, ParallelPlan)
        assert plan.name == "parallel"
        assert (plan.workers, plan.delivery_batch) == (4, 32)

    def test_plans_are_execution_plans(self):
        assert issubclass(SerialPlan, ExecutionPlan)
        assert issubclass(ParallelPlan, ExecutionPlan)

    def test_config_rejects_bad_parallelism(self):
        with pytest.raises(ParameterError):
            ClusterConfig(ingest_workers=0)
        with pytest.raises(ParameterError):
            ClusterConfig(delivery_batch=0)
        with pytest.raises(ParameterError):
            ClusterConfig(wal_fsync_every=0)
        with pytest.raises(ParameterError):
            ParallelPlan(workers=0)
        with pytest.raises(ParameterError):
            ParallelPlan(workers=2, delivery_batch=0)
        with pytest.raises(ParameterError):
            ProcessPlan(delivery_batch=0)

    def test_registry_covers_every_plan(self):
        assert PLAN_NAMES == ("parallel", "process", "serial")
        made = {
            name: PLAN_REGISTRY[name](ClusterConfig(n_nodes=2))
            for name in PLAN_NAMES
        }
        for name, plan in made.items():
            assert isinstance(plan, ExecutionPlan)
            assert plan.name == name

    def test_explicit_plan_names_resolve(self):
        assert isinstance(
            make_plan(ClusterConfig(n_nodes=2, plan="serial")), SerialPlan
        )
        parallel = make_plan(
            ClusterConfig(n_nodes=2, plan="parallel", delivery_batch=8)
        )
        assert isinstance(parallel, ParallelPlan)
        assert parallel.delivery_batch == 8
        process = make_plan(
            ClusterConfig(n_nodes=2, plan="process", delivery_batch=8)
        )
        assert isinstance(process, ProcessPlan)
        assert process.delivery_batch == 8

    def test_unknown_plan_name_lists_the_valid_ones(self):
        with pytest.raises(ParameterError, match="serial"):
            ClusterConfig(n_nodes=2, plan="threads")

    def test_plan_constraints(self):
        # serial is the one-thread loop; silently ignoring workers
        # would lie about what ran.
        with pytest.raises(ParameterError, match="ingest_workers"):
            ClusterConfig(n_nodes=2, plan="serial", ingest_workers=4)
        # process workers are processes, not threads.
        with pytest.raises(ParameterError, match="ingest_workers"):
            ClusterConfig(n_nodes=2, plan="process", ingest_workers=4)
        # gossip rounds exchange digests between in-process objects.
        with pytest.raises(ParameterError, match="gossip"):
            ClusterConfig(
                n_nodes=2,
                plan="process",
                aggregation="gossip",
                gossip_every=100,
            )


class TestBitIdenticalExact:
    """Exact templates: parallel == serial == ground truth, bit for bit."""

    @pytest.mark.parametrize("seed", _SEEDS)
    def test_crashes_mid_run(self, seed):
        """Serial vs 4 workers with two crashes and checkpoint fences."""
        shared = dict(
            n_nodes=4,
            template=default_template("exact"),
            seed=seed,
            buffer_limit=128,
            checkpoint_every=2500,
            failures=(
                NodeFailure(at_event=4000, node_id=1),
                NodeFailure(at_event=9000, node_id=3),
            ),
        )
        serial_result, serial_view = _run(
            ClusterConfig(**shared), seed
        )
        parallel_result, parallel_view = _run(
            ClusterConfig(**shared, ingest_workers=4, delivery_batch=32),
            seed,
        )
        assert serial_view == parallel_view
        assert _comparable(serial_result) == _comparable(parallel_result)
        assert parallel_result.max_relative_error == 0.0
        assert parallel_result.recoveries == 2

    @pytest.mark.parametrize("seed", _SEEDS)
    def test_migration_mid_stream(self, seed):
        """A live grow + shrink (ring routing) with a crash right after
        the first migration — the barriers the drain handshake fences."""
        shared = dict(
            n_nodes=2,
            template=default_template("exact"),
            seed=seed,
            checkpoint_every=2500,
            routing="ring",
            scale_events=(
                ScaleEvent(at_event=3000, action="add"),
                ScaleEvent(at_event=8000, action="remove", node_id=0),
            ),
            failures=(NodeFailure(at_event=3001, node_id=1),),
        )
        serial_result, serial_view = _run(ClusterConfig(**shared), seed)
        parallel_result, parallel_view = _run(
            ClusterConfig(**shared, ingest_workers=4, delivery_batch=16),
            seed,
        )
        assert serial_view == parallel_view
        assert _comparable(serial_result) == _comparable(parallel_result)
        assert parallel_result.scale_events_applied == 2
        assert parallel_result.keys_migrated > 0

    def test_retention_boundaries(self):
        """Window collapses are global fences; the horizon view must
        still match bit for bit."""
        shared = dict(
            n_nodes=3,
            template=default_template("exact"),
            seed=77,
            checkpoint_every=3000,
            retention=TumblingRetention(window_events=4000),
            failures=(NodeFailure(at_event=6000, node_id=2),),
        )
        serial_result, _ = _run(ClusterConfig(**shared), 77)
        parallel_result, _ = _run(
            ClusterConfig(**shared, ingest_workers=3, delivery_batch=64),
            77,
        )
        assert _comparable(serial_result) == _comparable(parallel_result)
        assert parallel_result.windows_collapsed >= 2
        assert parallel_result.max_relative_error == 0.0


class TestBitIdenticalApproximate:
    """Approximate templates: still bit-identical — the plan moves
    wall-clock only, so even the coin flips line up."""

    @pytest.mark.parametrize("seed", _SEEDS)
    def test_simplified_ny_with_crash(self, seed):
        shared = dict(
            n_nodes=4,
            template=default_template("simplified_ny"),
            seed=seed,
            buffer_limit=256,
            checkpoint_every=3000,
            failures=(NodeFailure(at_event=5000, node_id=0),),
        )
        serial_result, serial_view = _run(ClusterConfig(**shared), seed)
        parallel_result, parallel_view = _run(
            ClusterConfig(**shared, ingest_workers=4, delivery_batch=48),
            seed,
        )
        assert serial_view == parallel_view
        assert _comparable(serial_result) == _comparable(parallel_result)

    def test_hot_key_splitting(self):
        """Hot-key round-robin cursors live on the coordinator; the
        split must land identically under parallel delivery."""
        shared = dict(
            n_nodes=4,
            template=default_template("simplified_ny"),
            seed=5,
            hot_key_threshold=400,
            checkpoint_every=4000,
        )
        serial_result, serial_view = _run(ClusterConfig(**shared), 5)
        parallel_result, parallel_view = _run(
            ClusterConfig(**shared, ingest_workers=4), 5
        )
        assert serial_result.hot_keys >= 1
        assert serial_view == parallel_view
        assert _comparable(serial_result) == _comparable(parallel_result)


class TestPlanParameterInvariance:
    """Worker count and batch size are pure wall-clock knobs."""

    def test_worker_count_invariance(self):
        shared = dict(
            n_nodes=4,
            template=default_template("simplified_ny"),
            seed=13,
            checkpoint_every=2500,
            failures=(NodeFailure(at_event=4000, node_id=2),),
        )
        baseline = None
        for workers in (1, 2, 3, 8):
            result, view = _run(
                ClusterConfig(**shared, ingest_workers=workers), 13
            )
            stamp = (_comparable(result), view)
            if baseline is None:
                baseline = stamp
            assert stamp == baseline, f"workers={workers} diverged"

    def test_delivery_batch_invariance(self):
        shared = dict(
            n_nodes=4,
            template=default_template("simplified_ny"),
            seed=29,
            checkpoint_every=2500,
            ingest_workers=4,
        )
        baseline = None
        for batch in (1, 7, 64, 4096):
            result, view = _run(
                ClusterConfig(**shared, delivery_batch=batch), 29
            )
            stamp = (_comparable(result), view)
            if baseline is None:
                baseline = stamp
            assert stamp == baseline, f"delivery_batch={batch} diverged"


class TestParallelDurability:
    """Parallel delivery composes with the durability layer unchanged."""

    def test_file_store_matches_memory_serial(self, tmp_path):
        """Four-way equality: {serial, parallel} x {memory, file} — the
        plan and the backend are both transparent, group-commit fsync
        included, and the forced segment fence fires at the same
        positions under parallel delivery."""
        shared = dict(
            n_nodes=4,
            template=default_template("simplified_ny"),
            seed=31,
            checkpoint_every=None,  # only the WAL segment fence remains
            wal_segment_events=1500,
            failures=(NodeFailure(at_event=7000, node_id=1),),
        )
        stamps = {}
        for label, extra in {
            "serial-memory": {},
            "parallel-memory": dict(ingest_workers=4, delivery_batch=32),
            "serial-file": dict(
                storage="file",
                storage_dir=str(tmp_path / "serial"),
                wal_fsync_every=8,
            ),
            "parallel-file": dict(
                storage="file",
                storage_dir=str(tmp_path / "parallel"),
                wal_fsync_every=8,
                ingest_workers=4,
                delivery_batch=32,
            ),
        }.items():
            result, view = _run(ClusterConfig(**shared, **extra), 31)
            stamps[label] = (_comparable(result), view)
            assert result.checkpoints > 0  # the segment fence fired
        baseline = stamps["serial-memory"]
        for label, stamp in stamps.items():
            assert stamp == baseline, f"{label} changed the computation"

class TestProcessPlanBitIdentity:
    """One OS process per node still equals the serial loop bit for bit.

    The strongest claim in the tentpole: shipping delivery over a wire
    protocol to worker subprocesses — with real ``SIGKILL`` crash
    injection, live migration, retention collapses, and file-backed
    durability in the mix — must not change a single bit of the
    ``GlobalView`` on ``exact`` templates.
    """

    _N = 6_000

    @pytest.mark.parametrize("seed", _SEEDS[:2])
    def test_full_scenario_matches_serial(self, seed, tmp_path):
        """Crashes + grow/shrink migration + retention + file storage:
        the acceptance scenario, serial vs process, two seeds."""
        shared = dict(
            n_nodes=3,
            template=default_template("exact"),
            seed=seed,
            buffer_limit=128,
            checkpoint_every=1500,
            routing="ring",
            retention=TumblingRetention(window_events=2000),
            scale_events=(
                ScaleEvent(at_event=1800, action="add"),
                ScaleEvent(at_event=4500, action="remove", node_id=0),
            ),
            failures=(NodeFailure(at_event=3200, node_id=1),),
            wal_segment_events=1000,
        )
        serial_result, serial_view = _run(
            ClusterConfig(**shared), seed, self._N
        )
        process_result, process_view = _run(
            ClusterConfig(
                **shared,
                plan="process",
                delivery_batch=32,
                storage="file",
                storage_dir=str(tmp_path),
            ),
            seed,
            self._N,
        )
        assert serial_view == process_view
        assert _comparable(serial_result) == _comparable(process_result)
        assert process_result.max_relative_error == 0.0
        assert process_result.recoveries == 1
        assert process_result.scale_events_applied == 2
        assert process_result.keys_migrated > 0
        assert process_result.windows_collapsed >= 2

    def test_sigkill_at_fence_recovers_lossless(self):
        """Crash-matrix row: the worker process is SIGKILLed right at a
        checkpoint fence position, recovery replays the WAL, and the
        answer is still exactly the serial one."""
        shared = dict(
            n_nodes=3,
            template=default_template("exact"),
            seed=97,
            checkpoint_every=1000,
            # at_event == a fence position: the node checkpointed at
            # the previous delivery, so the kill lands on a worker
            # whose unfenced tail is exactly the WAL's retained log.
            failures=(NodeFailure(at_event=3000, node_id=2),),
        )
        serial_result, serial_view = _run(
            ClusterConfig(**shared), 97, self._N
        )
        process_result, process_view = _run(
            ClusterConfig(**shared, plan="process", delivery_batch=16),
            97,
            self._N,
        )
        assert serial_view == process_view
        assert _comparable(serial_result) == _comparable(process_result)
        assert process_result.recoveries == 1
        assert process_result.max_relative_error == 0.0

    def test_approximate_without_crashes_matches_serial(self):
        """No crash ⇒ workers are never re-seeded mid-run, so even the
        coin flips line up with serial — scales and retention included."""
        shared = dict(
            n_nodes=3,
            template=default_template("simplified_ny"),
            seed=43,
            checkpoint_every=2000,
            retention=TumblingRetention(window_events=2500),
            scale_events=(ScaleEvent(at_event=2200, action="add"),),
        )
        serial_result, serial_view = _run(
            ClusterConfig(**shared), 43, self._N
        )
        process_result, process_view = _run(
            ClusterConfig(**shared, plan="process"), 43, self._N
        )
        assert serial_view == process_view
        assert _comparable(serial_result) == _comparable(process_result)

    def test_approximate_with_crash_is_run_to_run_deterministic(self):
        """Crash recovery re-seeds the respawned worker's RNG from the
        incarnation seed (RNG state is deliberately not in snapshots),
        so approximate templates promise run-to-run determinism."""
        config = dict(
            n_nodes=3,
            template=default_template("simplified_ny"),
            seed=71,
            checkpoint_every=1500,
            plan="process",
            failures=(NodeFailure(at_event=2500, node_id=0),),
        )
        first_result, first_view = _run(
            ClusterConfig(**config), 71, self._N
        )
        second_result, second_view = _run(
            ClusterConfig(**config), 71, self._N
        )
        assert first_view == second_view
        assert _comparable(first_result) == _comparable(second_result)
        assert first_result.recoveries == 1

    def test_recover_cluster_after_process_run(self, tmp_path):
        """A process-plan file-backed run reopens from disk bit-for-bit
        and the manifest round-trips ``plan='process'``."""
        config = ClusterConfig(
            n_nodes=2,
            template=default_template("exact"),
            seed=53,
            checkpoint_every=1500,
            plan="process",
            storage="file",
            storage_dir=str(tmp_path),
            wal_segment_events=1200,
        )
        _, before = _run(config, 53, self._N)
        with recover_cluster(str(tmp_path)) as recovered:
            after = view_fingerprint(recovered.aggregator.global_view())
            assert recovered.config.plan == "process"
        assert before == after


class TestParallelDurabilityRecovery:
    def test_recover_cluster_after_parallel_run(self, tmp_path):
        """A parallel file-backed run recovers from disk bit-for-bit on
        exact templates, and the manifest round-trips the plan config."""
        config = ClusterConfig(
            n_nodes=3,
            template=default_template("exact"),
            seed=17,
            checkpoint_every=2500,
            routing="ring",
            scale_events=(ScaleEvent(at_event=4000, action="add"),),
            failures=(NodeFailure(at_event=4001, node_id=0),),
            storage="file",
            storage_dir=str(tmp_path),
            wal_segment_events=2000,
            wal_fsync_every=4,
            ingest_workers=4,
            delivery_batch=16,
        )
        _, before = _run(config, 17)
        with recover_cluster(str(tmp_path)) as recovered:
            after = view_fingerprint(recovered.aggregator.global_view())
            assert recovered.config.ingest_workers == 4
            assert recovered.config.delivery_batch == 16
            assert recovered.config.wal_fsync_every == 4
        assert before == after
