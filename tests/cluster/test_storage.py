"""Durability-layer tests: stores, segmented WAL, recovery from disk.

The ISSUE-3 acceptance invariants pinned here:

* **Bounded durable log** — with ``checkpoint_every=None`` and a
  ``SegmentedLog``, per-node retained-log length after a long run is
  bounded by the segment size (the forced fence checkpoint), never by
  stream length.
* **Backend transparency** — the same config seed and event stream
  produce bit-identical results on ``memory`` and ``file`` storage,
  crashes mid-migration and window collapses included.
* **Recovery from disk** — a ``FileStore`` cluster rebuilt via
  :func:`~repro.cluster.simulation.recover_cluster` reproduces the
  pre-crash run's ``GlobalView`` bit for bit on ``exact`` templates.
* **Loud corruption** — a truncated or bit-flipped checkpoint line
  raises :class:`~repro.errors.StateError`, never a silently wrong node.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterSimulation,
    FileStore,
    MemoryStore,
    NodeFailure,
    ScaleEvent,
    SegmentedLog,
    TumblingRetention,
    default_template,
    make_store,
    recover_cluster,
)
from repro.errors import ParameterError, StateError
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import KeyedEvent, zipf_workload

_SEED = 90210


def _events(n_events: int, n_keys: int = 300, seed: int = _SEED):
    return zipf_workload(BitBudgetedRandom(seed), n_keys, n_events)


def _view_fingerprint(view) -> tuple[dict, dict | None]:
    """Comparable (estimates, truth) projection of a GlobalView."""
    return (
        {key: counter.estimate() for key, counter in view.counters.items()},
        dict(view.truth) if view.truth is not None else None,
    )


class TestSegmentedLog:
    def test_unbounded_mode_never_needs_fence(self):
        log = SegmentedLog()
        log.register(0)
        for i in range(1000):
            log.append(0, KeyedEvent(f"k{i}"))
        assert log.retained_events(0) == 1000
        assert not log.needs_fence(0)
        log.fence(0)
        assert log.retained_events(0) == 0

    def test_segments_roll_and_fence_truncates_all(self):
        log = SegmentedLog(segment_events=10)
        log.register(0)
        for i in range(25):
            log.append(0, KeyedEvent(f"k{i}"))
        assert log.retained_events(0) == 25
        assert log.needs_fence(0)
        # Replay preserves order across segment boundaries.
        assert [e.key for e in log.replay(0)] == [f"k{i}" for i in range(25)]
        log.fence(0)
        assert log.retained_events(0) == 0
        assert not log.needs_fence(0)

    def test_needs_fence_exactly_at_segment_boundary(self):
        log = SegmentedLog(segment_events=4)
        log.register(0)
        for i in range(3):
            log.append(0, KeyedEvent(f"k{i}"))
        assert not log.needs_fence(0)
        log.append(0, KeyedEvent("k3"))
        assert log.needs_fence(0)

    def test_drop_forgets_node(self):
        log = SegmentedLog(segment_events=4)
        log.register(3)
        log.append(3, KeyedEvent("a"))
        log.drop(3)
        with pytest.raises(StateError):
            log.replay(3)

    def test_unregistered_node_is_loud(self):
        log = SegmentedLog()
        with pytest.raises(StateError):
            log.append(7, KeyedEvent("a"))

    def test_validation(self):
        with pytest.raises(ParameterError):
            SegmentedLog(segment_events=0)


class TestMemoryStore:
    def test_save_latest_drop(self):
        store = MemoryStore()
        store.initialize()
        store.register(0)
        assert store.latest(0) is None
        store.save(0, "line-1")
        store.save(0, "line-2")
        assert store.latest(0) == "line-2"
        store.drop(0)
        with pytest.raises(StateError):
            store.latest(0)

    def test_load_is_impossible(self):
        with pytest.raises(StateError):
            MemoryStore().load()

    def test_storage_bytes_counts_retained_state(self):
        store = MemoryStore()
        store.initialize()
        store.register(0)
        assert store.storage_bytes() == 0
        store.save(0, "x" * 100)
        store.wal.append(0, KeyedEvent("key", 2))
        assert store.storage_bytes() > 100

    def test_make_store_registry(self):
        assert isinstance(make_store("memory"), MemoryStore)
        with pytest.raises(ParameterError):
            make_store("file")  # needs a directory
        with pytest.raises(ParameterError):
            make_store("kv")


class TestFileStore:
    def test_checkpoints_survive_reopen(self, tmp_path):
        store = FileStore(tmp_path)
        store.initialize()
        store.register(0)
        store.register(1)
        store.save(0, "checkpoint-zero")
        store.write_manifest({"topology": {"nodes": [0, 1], "epoch": 0}})
        store.close()
        reopened = FileStore(tmp_path)
        manifest = reopened.load()
        assert manifest["topology"]["nodes"] == [0, 1]
        assert reopened.latest(0) == "checkpoint-zero"
        assert reopened.latest(1) is None
        reopened.close()

    def test_wal_survives_reopen_in_order(self, tmp_path):
        store = FileStore(tmp_path, wal_segment_events=3)
        store.initialize()
        store.register(0)
        for i in range(8):
            store.wal.append(0, KeyedEvent(f"k{i}", i + 1))
        store.write_manifest(
            {
                "topology": {"nodes": [0], "epoch": 0},
                "config": {"wal_segment_events": 3},
            }
        )
        store.close()
        reopened = FileStore(tmp_path)
        reopened.load()
        assert [(e.key, e.count) for e in reopened.wal.replay(0)] == [
            (f"k{i}", i + 1) for i in range(8)
        ]
        reopened.close()

    def test_fence_deletes_segment_files(self, tmp_path):
        store = FileStore(tmp_path, wal_segment_events=2)
        store.initialize()
        store.register(0)
        for i in range(5):
            store.wal.append(0, KeyedEvent(f"k{i}"))
        segment_files = list(tmp_path.glob("wal/node-0/seg-*.log"))
        assert len(segment_files) == 3  # two sealed + one active
        store.wal.fence(0)
        remaining = list(tmp_path.glob("wal/node-0/seg-*.log"))
        assert len(remaining) == 1  # the fresh active segment
        assert remaining[0].read_text() == ""
        store.close()

    def test_initialize_refuses_to_clobber_existing_cluster(self, tmp_path):
        """The durability layer must never destroy durable state by
        accident: re-initializing over a persisted cluster is refused
        unless overwrite is explicit."""
        store = FileStore(tmp_path)
        store.initialize()
        store.register(0)
        store.save(0, "precious")
        store.write_manifest({"topology": {"nodes": [0], "epoch": 0}})
        store.close()
        careless = FileStore(tmp_path)
        with pytest.raises(StateError):
            careless.initialize()
        # The refused initialize must leave the cluster recoverable.
        assert careless.load()["topology"]["nodes"] == [0]
        careless.close()
        forced = FileStore(tmp_path, overwrite=True)
        forced.initialize()
        with pytest.raises(StateError):
            forced.load()  # manifest gone, explicitly
        forced.close()

    def test_simulation_refuses_existing_dir_without_overwrite(
        self, tmp_path
    ):
        config = _durable_config(tmp_path, scale_events=(), failures=())
        ClusterSimulation(config).close()
        with pytest.raises(StateError):
            ClusterSimulation(config)
        replaced = ClusterSimulation(
            _durable_config(
                tmp_path,
                scale_events=(),
                failures=(),
                storage_overwrite=True,
            )
        )
        replaced.close()

    def test_missing_manifest_is_loud(self, tmp_path):
        with pytest.raises(StateError):
            FileStore(tmp_path / "empty").load()

    def test_constructor_has_no_filesystem_side_effects(self, tmp_path):
        """Probing a wrong path (e.g. a typo'd recover_cluster) must not
        litter the filesystem with empty directories."""
        missing = tmp_path / "no" / "such" / "cluster"
        with pytest.raises(StateError):
            recover_cluster(str(missing))
        assert not missing.exists()

    def test_corrupt_manifest_is_loud(self, tmp_path):
        store = FileStore(tmp_path)
        store.initialize()
        store.write_manifest({"topology": {"nodes": [], "epoch": 0}})
        store.close()
        path = tmp_path / "manifest.json"
        path.write_text(path.read_text()[:40])  # truncate mid-record
        with pytest.raises(StateError):
            FileStore(tmp_path).load()


def _durable_config(tmp_path=None, **overrides):
    settings = dict(
        seed=_SEED,
        n_nodes=2,
        template=default_template("exact"),
        buffer_limit=256,
        checkpoint_every=4000,
        routing="ring",
        scale_events=(
            ScaleEvent(at_event=6000, action="add"),
            ScaleEvent(at_event=12_000, action="remove", node_id=1),
        ),
        failures=(
            NodeFailure(at_event=6001, node_id=0),  # crash mid-migration
        ),
    )
    if tmp_path is not None:
        settings.update(storage="file", storage_dir=str(tmp_path))
    settings.update(overrides)
    return ClusterConfig(**settings)


class TestBoundedDurableLog:
    def test_wal_bounded_without_periodic_checkpoints(self):
        """The acceptance regression: checkpoint_every=None + SegmentedLog
        keeps every node's retained log within the segment size."""
        config = ClusterConfig(
            n_nodes=3,
            seed=_SEED,
            checkpoint_every=None,
            wal_segment_events=256,
            template=default_template("simplified_ny"),
        )
        simulation = ClusterSimulation(config)
        result = simulation.run(_events(30_000))
        for node in simulation.nodes:
            assert (
                simulation.store.wal.retained_events(node.node_id) <= 256
            )
        # The forced segment fences actually fired (no periodic budget
        # exists to take checkpoints otherwise).
        assert result.checkpoints > 0

    def test_unbounded_without_segments_still_default(self):
        """checkpoint_every=None alone reproduces the historical
        retain-everything behavior (no silent cadence change)."""
        config = ClusterConfig(
            n_nodes=2,
            seed=_SEED,
            checkpoint_every=None,
            template=default_template("exact"),
        )
        simulation = ClusterSimulation(config)
        result = simulation.run(_events(5000))
        assert result.checkpoints == 0
        assert (
            sum(
                simulation.store.wal.retained_events(node.node_id)
                for node in simulation.nodes
            )
            == 5000
        )


class TestBackendDeterminism:
    def test_crash_during_migration_bit_identical(self, tmp_path):
        """Same seed → bit-identical results for memory and file stores,
        with a crash scheduled right after a migration."""
        memory = ClusterSimulation(_durable_config()).run(_events(18_000))
        file_backed = ClusterSimulation(
            _durable_config(tmp_path / "cluster")
        ).run(_events(18_000))
        assert memory.node_stats == file_backed.node_stats
        assert memory.top == file_backed.top
        assert memory.rms_relative_error == file_backed.rms_relative_error
        assert memory.total_state_bits == file_backed.total_state_bits

    def test_crash_after_collapse_bit_identical(self, tmp_path):
        """Retention collapse + post-collapse crash behaves identically
        on both backends (approximate template: RNG paths must align)."""
        overrides = dict(
            template=default_template("simplified_ny"),
            retention=TumblingRetention(window_events=5000),
            failures=(NodeFailure(at_event=5001, node_id=0),),
            scale_events=(),
        )
        memory = ClusterSimulation(
            _durable_config(**overrides)
        ).run(_events(15_000))
        file_backed = ClusterSimulation(
            _durable_config(tmp_path / "cluster", **overrides)
        ).run(_events(15_000))
        assert memory.windows_collapsed == 2
        assert memory.node_stats == file_backed.node_stats
        assert memory.top == file_backed.top
        assert memory.rms_relative_error == file_backed.rms_relative_error

    def test_segment_fences_identical_across_backends(self, tmp_path):
        """Forced segment fences fire at the same positions regardless
        of backend (checkpoint counts must match exactly)."""
        overrides = dict(
            checkpoint_every=None,
            wal_segment_events=512,
            template=default_template("simplified_ny"),
        )
        memory = ClusterSimulation(
            _durable_config(**overrides)
        ).run(_events(12_000))
        file_backed = ClusterSimulation(
            _durable_config(tmp_path / "cluster", **overrides)
        ).run(_events(12_000))
        assert memory.checkpoints == file_backed.checkpoints > 0
        assert memory.node_stats == file_backed.node_stats


class TestRecoverCluster:
    def test_recovers_pre_crash_view_bit_for_bit(self, tmp_path):
        """The acceptance scenario: exact templates, crash mid-migration,
        full recovery from the store directory alone."""
        simulation = ClusterSimulation(_durable_config(tmp_path))
        result = simulation.run(_events(18_000))
        assert result.max_relative_error == 0.0
        assert result.recoveries >= 1
        before = _view_fingerprint(simulation.aggregator.global_view())
        recovered = recover_cluster(str(tmp_path))
        after = _view_fingerprint(recovered.aggregator.global_view())
        assert before == after

    def test_recovered_topology_matches(self, tmp_path):
        simulation = ClusterSimulation(_durable_config(tmp_path))
        simulation.run(_events(18_000))
        recovered = recover_cluster(str(tmp_path))
        assert recovered.router.epoch == simulation.router.epoch
        assert recovered.router.nodes == simulation.router.nodes
        assert [n.node_id for n in recovered.nodes] == [
            n.node_id for n in simulation.nodes
        ]
        # Recovery bumps every incarnation: replicas never share future
        # coin flips with the dead cluster.
        for node_id in recovered.router.nodes:
            assert (
                recovered._incarnation[node_id]
                == simulation._incarnation[node_id] + 1
            )

    def test_recovered_cluster_keeps_counting(self, tmp_path):
        """A recovered exact cluster keeps perfect counts for new
        traffic — recovery is a working cluster, not a read-only view."""
        simulation = ClusterSimulation(_durable_config(tmp_path))
        simulation.run(_events(18_000))
        truth_before = simulation.aggregator.global_view().truth
        recovered = recover_cluster(str(tmp_path))
        extra = [KeyedEvent("page-000000", 5), KeyedEvent("fresh-key", 7)]
        for event in extra:
            recovered.deliver_event(event)
        view = recovered.aggregator.global_view()
        assert view.estimate("fresh-key") == 7.0
        assert (
            view.estimate("page-000000")
            == truth_before["page-000000"] + 5
        )

    def test_truncated_checkpoint_is_loud(self, tmp_path):
        simulation = ClusterSimulation(_durable_config(tmp_path))
        simulation.run(_events(18_000))
        victim = sorted(tmp_path.glob("checkpoints/node-*.ckpt"))[0]
        line = victim.read_text()
        victim.write_text(line[: len(line) // 2])  # torn write
        with pytest.raises(StateError):
            recover_cluster(str(tmp_path))

    def test_bit_flipped_checkpoint_is_loud(self, tmp_path):
        simulation = ClusterSimulation(_durable_config(tmp_path))
        simulation.run(_events(18_000))
        victim = sorted(tmp_path.glob("checkpoints/node-*.ckpt"))[0]
        line = victim.read_text()
        flipped = line.replace('"seed"', '"sEed"', 1)
        assert flipped != line
        victim.write_text(flipped)
        with pytest.raises(StateError):
            recover_cluster(str(tmp_path))

    def test_recovery_refuses_mid_migration_without_journal(self, tmp_path):
        """Migrated counters reach durability only at the closing fence
        checkpoints; if the writer died inside that window *and* the
        store holds no migration journal (a pre-journal store, or the
        journal itself was lost), counters may be missing from every
        checkpoint — recovery must still refuse loudly instead of
        rebuilding a silently wrong cluster."""
        simulation = ClusterSimulation(
            _durable_config(tmp_path, scale_events=(), failures=())
        )
        simulation.run(_events(3000))
        # Persist the state a process death mid-_rebalance leaves
        # behind, minus the journal lines.
        simulation._mid_migration = True
        simulation._sync_manifest()
        simulation.close()
        with pytest.raises(StateError, match="mid-migration"):
            recover_cluster(str(tmp_path))

    def test_mid_migration_death_recovers_from_journal(self, tmp_path):
        """Death between a batch's drain and its closing fences loses
        nothing: every batch line was journaled durably *before* its
        absorb, so recovery replays the journal and finishes the move.

        The victim dies at the first fence checkpoint of a scale-up
        rebalance — the worst spot: counters drained from their source
        live only in the journal.  The recovered cluster must hold the
        complete pre-migration key set *and* the completed move (same
        per-node ownership as an undisturbed reference run).
        """
        events = list(_events(3000))
        overrides = dict(scale_events=(), failures=())

        reference = ClusterSimulation(
            _durable_config(tmp_path / "reference", **overrides)
        )
        reference.run(events)
        reference.scale_up()
        reference_view = _view_fingerprint(
            reference.aggregator.global_view()
        )
        reference_keys = {
            node.node_id: sorted(node.bank.keys())
            for node in reference.nodes
        }
        reference.close()

        victim = ClusterSimulation(
            _durable_config(tmp_path / "victim", **overrides)
        )
        victim.run(events)
        boom = RuntimeError("simulated process death at the fence")

        def dying_checkpoint(node_id):
            raise boom

        victim.checkpoint_node = dying_checkpoint
        with pytest.raises(RuntimeError):
            victim.scale_up()
        # Close the files the way a dead process would: no manifest
        # resync, the mid_migration flag stays set on disk.
        victim._store.close()

        recovered = recover_cluster(str(tmp_path / "victim"))
        assert (
            _view_fingerprint(recovered.aggregator.global_view())
            == reference_view
        )
        assert {
            node.node_id: sorted(node.bank.keys())
            for node in recovered.nodes
        } == reference_keys
        # The journal was consumed; a second recovery is clean.
        assert recovered.store.pending_migrations() == []
        recovered.close()
        second = recover_cluster(str(tmp_path / "victim"))
        assert (
            _view_fingerprint(second.aggregator.global_view())
            == reference_view
        )
        second.close()

    def test_stale_journal_after_completed_migration_is_ignored(
        self, tmp_path
    ):
        """Death between the completion manifest sync and the journal
        unlink leaves flag=False plus a stale journal; recovery must
        ignore and clear it, not double-apply the batches."""
        simulation = ClusterSimulation(_durable_config(tmp_path))
        journaled: list[str] = []
        simulation.set_migration_observer(journaled.append)
        simulation.run(_events(18_000))
        simulation.set_migration_observer(None)
        before = _view_fingerprint(simulation.aggregator.global_view())
        assert journaled  # the scale events really migrated batches
        # Re-create the stale leftover: journal lines present, flag off.
        for line in journaled:
            simulation.store.journal_migration(line)
        simulation.close()
        with recover_cluster(str(tmp_path)) as recovered:
            assert (
                _view_fingerprint(recovered.aggregator.global_view())
                == before
            )

    def test_completed_migration_recovers_fine(self, tmp_path):
        """The mid-migration flag clears once the fences land: a run
        whose scale events completed recovers normally."""
        simulation = ClusterSimulation(_durable_config(tmp_path))
        simulation.run(_events(18_000))
        simulation.close()
        recovered = recover_cluster(str(tmp_path))
        assert recovered.router.epoch == 2
        recovered.close()

    def test_wal_gap_is_loud(self, tmp_path):
        """Losing a whole WAL segment (or its tail lines, with a
        successor present) must raise StateError, not misalign replay."""
        store = FileStore(tmp_path, wal_segment_events=3)
        store.initialize()
        store.register(0)
        for i in range(8):
            store.wal.append(0, KeyedEvent(f"k{i}"))
        store.close()
        files = sorted((tmp_path / "wal" / "node-0").glob("seg-*.log"))
        assert len(files) == 3
        files[1].unlink()  # lose the middle segment
        broken = FileStore(tmp_path)
        with pytest.raises(StateError, match="WAL gap"):
            broken.wal.load(0)
        broken.close()

    def test_wal_lost_tail_lines_are_loud(self, tmp_path):
        store = FileStore(tmp_path, wal_segment_events=3)
        store.initialize()
        store.register(0)
        for i in range(6):
            store.wal.append(0, KeyedEvent(f"k{i}"))
        store.close()
        first = sorted((tmp_path / "wal" / "node-0").glob("seg-*.log"))[0]
        lines = first.read_text().splitlines()
        first.write_text("\n".join(lines[:-1]) + "\n")  # lost last line
        broken = FileStore(tmp_path)
        with pytest.raises(StateError, match="WAL gap"):
            broken.wal.load(0)
        broken.close()

    def test_memory_cluster_cannot_recover(self):
        simulation = ClusterSimulation(_durable_config())
        simulation.run(_events(5000))
        with pytest.raises(StateError):
            simulation.store.load()

    def test_reopening_takes_no_spurious_checkpoint(self, tmp_path):
        """A partial WAL segment re-loaded from disk must not read as a
        'filled segment awaiting a fence': recovery may only checkpoint
        a genuinely overdue node, so merely re-opening a store never
        rewrites its checkpoints or truncates its log."""
        config = _durable_config(
            tmp_path,
            scale_events=(),
            failures=(),
            checkpoint_every=1000,
            wal_segment_events=500,
        )
        simulation = ClusterSimulation(config)
        simulation.run(_events(50))  # far below every budget
        assert simulation._tenure_counts(0) == (0, 0)
        assert simulation._tenure_counts(1) == (0, 0)
        retained = {
            node.node_id: simulation.store.wal.retained_events(
                node.node_id
            )
            for node in simulation.nodes
        }
        assert sum(retained.values()) == 50
        simulation.close()
        recovered = recover_cluster(str(tmp_path))
        assert recovered._tenure_counts(0)[0] == 0
        assert recovered._tenure_counts(1)[0] == 0
        for node_id, events in retained.items():
            assert (
                recovered.store.wal.retained_events(node_id) == events
            )
        recovered.close()

    def test_crash_inside_fence_does_not_lose_later_events(self, tmp_path):
        """A crash *inside* the fence (segment files unlinked, fresh
        active segment not yet created) resets the on-disk sequence
        record to nothing; recovery must re-anchor the sequence at the
        checkpoint's wal_seq, or events delivered after that recovery
        would recycle covered sequence numbers and be truncated away —
        silently lost — by the *next* recovery."""
        config = _durable_config(
            tmp_path, scale_events=(), failures=(), checkpoint_every=None
        )
        simulation = ClusterSimulation(config)
        for event in _events(500):
            simulation.deliver_event(event)
        for node in simulation.nodes:
            simulation.checkpoint_node(node.node_id)
        simulation.close()
        # Mimic the mid-fence crash: the fence's unlinks landed, the
        # fresh active segment file did not.
        for path in tmp_path.glob("wal/node-*/seg-*.log"):
            path.unlink()
        first = recover_cluster(str(tmp_path))
        extra = [KeyedEvent(f"extra-{i}") for i in range(30)]
        for event in extra:
            first.deliver_event(event)
        first.close()
        # Crash again before any checkpoint: the 30 post-recovery
        # events exist only in the WAL and must survive replay.
        second = recover_cluster(str(tmp_path))
        view = second.aggregator.global_view()
        for i in range(30):
            assert view.estimate(f"extra-{i}") == 1.0, f"extra-{i} lost"
        second.close()

    def test_torn_fence_does_not_double_count(self, tmp_path, monkeypatch):
        """The torn-fence protocol: a process death between saving a
        checkpoint and fencing the WAL leaves both the checkpoint and
        the covered events on disk — recovery must not replay them on
        top of themselves."""
        config = _durable_config(
            tmp_path, scale_events=(), failures=(), checkpoint_every=None
        )
        simulation = ClusterSimulation(config)
        stream = list(_events(2000))
        for event in stream:
            simulation.deliver_event(event)
        truth = simulation.aggregator.global_view().truth
        # Take a checkpoint whose fence "never happens" (process dies
        # between the atomic checkpoint replace and the WAL unlink).
        monkeypatch.setattr(
            simulation.store.wal, "fence", lambda node_id: None
        )
        for node in simulation.nodes:
            simulation.checkpoint_node(node.node_id)
        assert (
            sum(
                simulation.store.wal.retained_events(node.node_id)
                for node in simulation.nodes
            )
            == 2000  # the log still holds everything the ckpt covers
        )
        simulation.close()
        recovered = recover_cluster(str(tmp_path))
        view = recovered.aggregator.global_view()
        assert view.truth == truth  # not doubled
        assert {
            key: counter.estimate()
            for key, counter in view.counters.items()
        } == {key: float(count) for key, count in truth.items()}
        recovered.close()


class TestConfigValidation:
    def test_file_storage_requires_dir(self):
        with pytest.raises(ParameterError):
            ClusterConfig(storage="file")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParameterError):
            ClusterConfig(storage="kv")

    def test_wal_segment_validation(self):
        with pytest.raises(ParameterError):
            ClusterConfig(wal_segment_events=0)

    def test_traffic_table_limit_validation(self):
        with pytest.raises(ParameterError):
            ClusterConfig(traffic_table_limit=0)
