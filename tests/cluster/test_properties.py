"""Seeded randomized property sweep over the cluster invariants.

The example-based tests in ``tests/cluster/`` pin the ROADMAP
invariants at hand-picked configurations; this sweep (hypothesis, in
the ``tests/property`` style — no new dependencies) asserts them for
*randomly drawn* templates, topologies, schedules, and seeds:

* **merge exactness** (Remark 2.4) — an ``exact``-template cluster
  reproduces the workload's ground truth bit for bit through routing,
  hot-key splitting, crashes, and checkpointing, whatever the topology;
* **gossip-vs-tree read equivalence** — with ``aggregation="gossip"``
  every node's converged decentralized read equals the central
  merge-tree answer bit for bit, and enabling gossip never changes
  what an ``exact`` cluster computes;
* **serial-vs-parallel bit-identity** — the execution plan moves
  wall-clock only: worker-sharded delivery reproduces the serial run's
  ``GlobalView`` and per-node stats bit for bit on approximate
  templates too, crashes, gossip rounds, and self-healing membership
  (kills the driver never heals) included;
* **telemetry inertness** — runs with telemetry disabled, enabled
  (ring-sinked), and JSONL-file-sinked are bit-identical on the
  ``GlobalView`` fingerprint and every deterministic result field,
  serially and in parallel, membership-enabled configurations
  included: observing a run never changes it;
* **serving inertness** — a run whose finished cluster was served
  (every ``ClusterReader`` query at every supported consistency, an
  SSE subscription, and a full HTTP round through
  :mod:`repro.cluster.httpd`) is bit-identical to an unserved run of
  the same seed: serving reads never change what the cluster
  computes.

``derandomize=True`` keeps the sweep a pure function of the test code
(CI never sees a flaky draw); bump ``max_examples`` locally to sweep
wider.
"""

from __future__ import annotations

import json
import tempfile
import urllib.request
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterConfig,
    ClusterReader,
    ClusterSimulation,
    NodeFailure,
    default_template,
    view_fingerprint,
)
from repro.cluster.httpd import serve_http
from repro.obs import JsonlTraceSink, RingTraceSink, Telemetry
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import zipf_workload

_SEEDS = st.integers(min_value=0, max_value=2**32 - 1)
_NODES = st.integers(min_value=1, max_value=5)
_EVENTS = st.integers(min_value=400, max_value=2500)
_ROUTINGS = st.sampled_from(("hash", "ring"))
_TEMPLATES = st.sampled_from(("exact", "simplified_ny", "morris"))


def _workload(seed: int, n_events: int):
    return list(
        zipf_workload(
            BitBudgetedRandom(seed), n_keys=80, n_events=n_events
        )
    )


def _truth(events) -> dict[str, int]:
    counts: Counter[str] = Counter()
    for event in events:
        counts[event.key] += event.count
    return dict(counts)


def _failures(n_nodes: int, n_events: int, crash: bool, heal: bool = True):
    if not crash or n_nodes < 2:
        return ()
    return (
        NodeFailure(
            at_event=n_events // 2, node_id=n_nodes - 1, heal=heal
        ),
    )


class TestMergeExactness:
    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(
        seed=_SEEDS,
        n_nodes=_NODES,
        n_events=_EVENTS,
        routing=_ROUTINGS,
        crash=st.booleans(),
        hot=st.booleans(),
    )
    def test_exact_cluster_reproduces_ground_truth(
        self, seed, n_nodes, n_events, routing, crash, hot
    ):
        events = _workload(seed, n_events)
        config = ClusterConfig(
            n_nodes=n_nodes,
            template=default_template("exact"),
            seed=seed,
            buffer_limit=64,
            checkpoint_every=max(n_events // 4, 50),
            routing=routing,
            hot_key_threshold=(n_events // 10 if hot else None),
            failures=_failures(n_nodes, n_events, crash),
        )
        simulation = ClusterSimulation(config)
        result = simulation.run(iter(events))
        estimates, truth = view_fingerprint(
            simulation.aggregator.global_view()
        )
        expected = _truth(events)
        assert truth == expected
        assert estimates == {
            key: float(count) for key, count in expected.items()
        }
        assert result.total_events == sum(expected.values())
        assert result.max_relative_error == 0.0


class TestGossipTreeEquivalence:
    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(
        seed=_SEEDS,
        n_nodes=_NODES,
        n_events=_EVENTS,
        fanout=st.integers(min_value=1, max_value=3),
        every_div=st.integers(min_value=2, max_value=8),
        crash=st.booleans(),
    )
    def test_converged_gossip_reads_equal_central(
        self, seed, n_nodes, n_events, fanout, every_div, crash
    ):
        events = _workload(seed, n_events)
        shared = dict(
            n_nodes=n_nodes,
            template=default_template("exact"),
            seed=seed,
            checkpoint_every=max(n_events // 3, 50),
            failures=_failures(n_nodes, n_events, crash),
        )
        tree = ClusterSimulation(ClusterConfig(**shared))
        tree.run(iter(events))
        tree_central = view_fingerprint(tree.aggregator.global_view())

        gossip = ClusterSimulation(
            ClusterConfig(
                **shared,
                aggregation="gossip",
                gossip_fanout=fanout,
                gossip_every=max(n_events // every_div, 1),
            )
        )
        gossip.run(iter(events))
        central = view_fingerprint(gossip.aggregator.global_view())
        # Gossip is a read-path feature: it must not change what an
        # exact cluster computes...
        assert central == tree_central
        # ...and every node's converged local read equals the central
        # answer bit for bit.
        for node in gossip.nodes:
            assert (
                view_fingerprint(gossip.node_view(node.node_id))
                == central
            )


class TestSerialParallelBitIdentity:
    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(
        seed=_SEEDS,
        n_nodes=st.integers(min_value=2, max_value=5),
        n_events=_EVENTS,
        template=_TEMPLATES,
        workers=st.integers(min_value=2, max_value=6),
        batch=st.sampled_from((1, 16, 64, 512)),
        crash=st.booleans(),
        use_gossip=st.booleans(),
        use_membership=st.booleans(),
    )
    def test_parallel_reproduces_serial_bit_for_bit(
        self, seed, n_nodes, n_events, template, workers, batch, crash,
        use_gossip, use_membership,
    ):
        # Membership rides on gossip; its interesting case is a kill
        # the driver never heals (crash with heal=False).
        use_gossip = use_gossip or use_membership
        events = _workload(seed, n_events)
        shared = dict(
            n_nodes=n_nodes,
            template=default_template(template),
            seed=seed,
            buffer_limit=128,
            checkpoint_every=max(n_events // 4, 50),
            failures=_failures(
                n_nodes, n_events, crash, heal=not use_membership
            ),
        )
        if use_gossip:
            shared.update(
                aggregation="gossip",
                gossip_every=max(n_events // 4, 1),
                membership=use_membership,
            )
        stamps = []
        for extra in ({}, dict(ingest_workers=workers,
                               delivery_batch=batch)):
            simulation = ClusterSimulation(ClusterConfig(**shared, **extra))
            result = simulation.run(iter(events))
            stamps.append(
                (
                    view_fingerprint(simulation.aggregator.global_view()),
                    result.node_stats,
                    result.rms_relative_error,
                    result.max_relative_error,
                    result.total_state_bits,
                    result.gossip_rounds,
                    result.gossip_convergence_rounds,
                    result.gossip_max_staleness,
                    result.membership_kills,
                    result.membership_suspicions,
                    result.membership_confirmations,
                    result.membership_heals,
                    result.membership_detection_rounds,
                )
            )
        assert stamps[0] == stamps[1]


class TestTelemetryInertness:
    """Observing a run must never change it (the hard constraint of
    the telemetry subsystem): the same ``(config, stream)`` produces a
    bit-identical cluster with telemetry off, on, and file-sinked —
    whatever the execution plan."""

    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(
        seed=_SEEDS,
        n_nodes=st.integers(min_value=2, max_value=5),
        n_events=_EVENTS,
        template=_TEMPLATES,
        workers=st.sampled_from((1, 4)),
        crash=st.booleans(),
        use_gossip=st.booleans(),
        use_membership=st.booleans(),
        hot=st.booleans(),
    )
    def test_telemetry_on_off_file_bit_identical(
        self, seed, n_nodes, n_events, template, workers, crash,
        use_gossip, use_membership, hot,
    ):
        use_gossip = use_gossip or use_membership
        events = _workload(seed, n_events)
        shared = dict(
            n_nodes=n_nodes,
            template=default_template(template),
            seed=seed,
            buffer_limit=128,
            checkpoint_every=max(n_events // 4, 50),
            hot_key_threshold=(n_events // 10 if hot else None),
            failures=_failures(
                n_nodes, n_events, crash, heal=not use_membership
            ),
            ingest_workers=workers,
        )
        if use_gossip:
            shared.update(
                aggregation="gossip",
                gossip_every=max(n_events // 4, 1),
                membership=use_membership,
            )
        with tempfile.TemporaryDirectory() as tmp:
            facades = (
                Telemetry.disabled(),
                Telemetry(sink=RingTraceSink()),
                Telemetry(sink=JsonlTraceSink(f"{tmp}/trace.jsonl")),
            )
            stamps = []
            for telemetry in facades:
                simulation = ClusterSimulation(
                    ClusterConfig(**shared), telemetry=telemetry
                )
                result = simulation.run(iter(events))
                telemetry.close()
                stamps.append(
                    (
                        view_fingerprint(
                            simulation.aggregator.global_view()
                        ),
                        result.node_stats,
                        result.rms_relative_error,
                        result.max_relative_error,
                        result.total_state_bits,
                        result.checkpoints,
                        result.recoveries,
                        result.gossip_rounds,
                        result.membership_kills,
                        result.membership_confirmations,
                        result.membership_heals,
                        result.membership_detection_rounds,
                    )
                )
            assert stamps[0] == stamps[1] == stamps[2]
            # The deterministic counter layer is plan- and
            # sink-independent too: identical exported counters.
            exports = [
                facade.registry.export_counters() for facade in facades
            ]
            assert exports[0] == exports[1] == exports[2]


class TestServingInertness:
    """Serving a finished run must never change it: the PR-9 read
    surface (``ClusterReader`` + the HTTP/SSE frontend) is pure on the
    replica path and flushes no differently than ``global_view()``
    always has on the consistent path — so a served run and an
    unserved run of the same seed are bit-identical."""

    @settings(max_examples=8, deadline=None, derandomize=True)
    @given(
        seed=_SEEDS,
        n_nodes=_NODES,
        n_events=_EVENTS,
        template=_TEMPLATES,
        crash=st.booleans(),
        use_gossip=st.booleans(),
    )
    def test_served_run_bit_identical_to_unserved(
        self, seed, n_nodes, n_events, template, crash, use_gossip
    ):
        events = _workload(seed, n_events)
        shared = dict(
            n_nodes=n_nodes,
            template=default_template(template),
            seed=seed,
            buffer_limit=128,
            checkpoint_every=max(n_events // 4, 50),
            failures=_failures(n_nodes, n_events, crash),
        )
        if use_gossip:
            shared.update(
                aggregation="gossip",
                gossip_every=max(n_events // 4, 1),
            )
        stamps = []
        for serve in (False, True):
            simulation = ClusterSimulation(ClusterConfig(**shared))
            result = simulation.run(iter(events))
            if serve:
                self._serve(simulation, events[0].key, use_gossip)
            stamps.append(
                (
                    view_fingerprint(
                        simulation.aggregator.global_view()
                    ),
                    result.node_stats,
                    result.rms_relative_error,
                    result.max_relative_error,
                    result.total_state_bits,
                )
            )
        assert stamps[0] == stamps[1]

    @staticmethod
    def _serve(simulation, hot_key: str, use_gossip: bool) -> None:
        """Exercise every read path: in-process queries at every
        supported consistency, a subscription, and one HTTP round."""
        reader = ClusterReader.from_simulation(simulation)
        consistencies = ("consistent",) + (
            ("replica",) if use_gossip else ()
        )
        for consistency in consistencies:
            reader.get(hot_key, consistency=consistency)
            reader.top_k(5, consistency=consistency)
            reader.view(consistency=consistency)
        subscription = reader.subscribe()
        subscription.poll()
        subscription.poll()
        server = serve_http(reader)
        try:
            for endpoint in (
                "/healthz",
                f"/v1/keys/{hot_key}",
                "/v1/topk?k=3",
                "/v1/view",
                "/v1/stream?limit=1&poll_ms=1",
                "/metrics",
            ):
                with urllib.request.urlopen(
                    server.url + endpoint, timeout=10
                ) as reply:
                    body = reply.read()
                    assert reply.status == 200
                if endpoint.startswith(("/healthz", "/v1/keys",
                                        "/v1/topk", "/v1/view")):
                    json.loads(body.decode("utf-8"))
        finally:
            server.close()
