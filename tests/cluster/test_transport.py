"""The process-deployment wire protocol fails loudly, never silently.

Every frame is a length prefix plus a checksummed JSON payload — the
same envelope the durable records use — so the properties to pin are
exactly a codec's: round-trips are lossless, any truncation or bit
flip raises :class:`~repro.errors.StateError` instead of desyncing the
stream, version and type are validated, and arbitrarily fragmented
reads (the normal case on a busy pipe) reassemble perfectly.
"""

from __future__ import annotations

import io

import pytest

from repro.cluster.transport import (
    FRAME_TYPES,
    FRAME_VERSION,
    MAX_FRAME_BYTES,
    FrameStream,
    decode_frame_payload,
    encode_frame,
    frame_summary,
    read_frame,
    write_frame,
)
from repro.errors import ParameterError, StateError


class ChunkedReader(io.RawIOBase):
    """A reader that returns at most ``chunk`` bytes per ``read`` call —
    the adversarial fragmentation a busy pipe produces."""

    def __init__(self, data: bytes, chunk: int) -> None:
        self._data = data
        self._chunk = chunk
        self._pos = 0
        self.calls = 0

    def read(self, n: int = -1) -> bytes:
        self.calls += 1
        if self._pos >= len(self._data):
            return b""
        take = min(self._chunk, n if n >= 0 else self._chunk)
        piece = self._data[self._pos : self._pos + take]
        self._pos += len(piece)
        return piece


class TestRoundTrip:
    def test_every_frame_type_round_trips(self):
        for frame_type in sorted(FRAME_TYPES):
            frame = encode_frame(frame_type, n=3, name="x")
            body = read_frame(io.BytesIO(frame))
            assert body["type"] == frame_type
            assert body["v"] == FRAME_VERSION
            assert (body["n"], body["name"]) == (3, "x")

    def test_nested_fields_round_trip(self):
        events = [["key-1", 2], ["key-2", 1]]
        meta = {"node_id": 4, "wal_seq": [7, 9]}
        frame = encode_frame("deliver_batch", events=events, meta=meta)
        body = read_frame(io.BytesIO(frame))
        assert body["events"] == events
        assert body["meta"] == meta

    def test_back_to_back_frames(self):
        buffer = io.BytesIO()
        write_frame(buffer, "drain")
        write_frame(buffer, "ping")
        write_frame(buffer, "shutdown")
        buffer.seek(0)
        types = [read_frame(buffer)["type"] for _ in range(3)]
        assert types == ["drain", "ping", "shutdown"]
        assert read_frame(buffer) is None  # clean EOF at the boundary

    def test_unknown_type_refused_at_encode(self):
        with pytest.raises(ParameterError, match="unknown frame type"):
            encode_frame("gossip_digest")

    def test_frame_summary(self):
        body = decode_frame_payload(encode_frame("drain_ack", node=2)[4:])
        assert frame_summary(body) == "drain_ack(node)"


class TestTruncation:
    def test_eof_inside_length_prefix(self):
        frame = encode_frame("ok")
        with pytest.raises(StateError, match="truncated"):
            read_frame(io.BytesIO(frame[:2]))

    def test_eof_inside_payload(self):
        frame = encode_frame("ok", detail="x" * 64)
        with pytest.raises(StateError, match="truncated"):
            read_frame(io.BytesIO(frame[:-5]))

    def test_eof_right_after_prefix(self):
        frame = encode_frame("ok")
        with pytest.raises(StateError, match="EOF before frame payload"):
            read_frame(io.BytesIO(frame[:4]))

    def test_clean_eof_is_none_not_error(self):
        assert read_frame(io.BytesIO(b"")) is None

    def test_corrupt_length_prefix_refused(self):
        huge = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(StateError, match="corrupt or foreign"):
            read_frame(io.BytesIO(huge + b"anything"))


class TestCorruption:
    def test_every_single_bit_flip_in_payload_is_caught(self):
        frame = encode_frame("drain_ack", node=1, pending=0)
        prefix, payload = frame[:4], bytearray(frame[4:])
        for index in range(len(payload)):
            for bit in range(8):
                corrupted = bytearray(payload)
                corrupted[index] ^= 1 << bit
                with pytest.raises(StateError):
                    read_frame(io.BytesIO(prefix + bytes(corrupted)))

    def test_version_mismatch_refused(self):
        # Re-checksum a body claiming a future protocol version: the
        # checksum passes, the version gate must still refuse it.
        from repro.core.codec import encode_checksummed_line

        line = encode_checksummed_line(
            {"v": FRAME_VERSION + 1, "type": "ok"},
            0x9B1D77A446524D45,
        ).encode("utf-8")
        framed = len(line).to_bytes(4, "big") + line
        with pytest.raises(StateError, match="version"):
            read_frame(io.BytesIO(framed))

    def test_unknown_type_refused_at_decode(self):
        from repro.core.codec import encode_checksummed_line

        line = encode_checksummed_line(
            {"v": FRAME_VERSION, "type": "exfiltrate"},
            0x9B1D77A446524D45,
        ).encode("utf-8")
        framed = len(line).to_bytes(4, "big") + line
        with pytest.raises(StateError, match="unknown transport frame"):
            read_frame(io.BytesIO(framed))

    def test_non_utf8_payload_refused(self):
        framed = (2).to_bytes(4, "big") + b"\xff\xfe"
        with pytest.raises(StateError, match="not UTF-8"):
            read_frame(io.BytesIO(framed))

    def test_foreign_checksum_seed_refused(self):
        # A checkpoint line is a valid checksummed record — under the
        # wrong seed.  Speaking the wrong protocol must not decode.
        from repro.core.codec import encode_checksummed_line

        line = encode_checksummed_line(
            {"v": FRAME_VERSION, "type": "ok"}, 0xDEADBEEF
        ).encode("utf-8")
        framed = len(line).to_bytes(4, "big") + line
        with pytest.raises(StateError):
            read_frame(io.BytesIO(framed))


class TestFragmentedReads:
    @pytest.mark.parametrize("chunk", [1, 2, 3, 7])
    def test_interleaved_partial_reads_reassemble(self, chunk):
        buffer = io.BytesIO()
        write_frame(buffer, "deliver_batch", events=[["k", 1]] * 17)
        write_frame(buffer, "drain")
        reader = ChunkedReader(buffer.getvalue(), chunk)
        first = read_frame(reader)
        second = read_frame(reader)
        assert first["type"] == "deliver_batch"
        assert len(first["events"]) == 17
        assert second["type"] == "drain"
        assert read_frame(reader) is None
        assert reader.calls > 2  # genuinely fragmented

    def test_truncation_detected_through_fragmentation(self):
        frame = encode_frame("ok", filler="y" * 100)
        reader = ChunkedReader(frame[:-1], 3)
        with pytest.raises(StateError, match="truncated"):
            read_frame(reader)


class TestFrameStream:
    def _pair(self) -> tuple[FrameStream, io.BytesIO, io.BytesIO]:
        inbound, outbound = io.BytesIO(), io.BytesIO()
        return FrameStream(inbound, outbound), inbound, outbound

    def test_send_then_peer_reads(self):
        stream, _, outbound = self._pair()
        stream.send("ping")
        assert read_frame(io.BytesIO(outbound.getvalue()))["type"] == "ping"

    def test_expect_enforces_type(self):
        stream, inbound, _ = self._pair()
        write_frame(inbound, "pong", pid=1)
        inbound.seek(0)
        with pytest.raises(StateError, match="expected 'drain_ack'"):
            stream.expect("drain_ack")

    def test_expect_surfaces_error_frames(self):
        stream, inbound, _ = self._pair()
        write_frame(inbound, "error", message="bank exploded")
        inbound.seek(0)
        with pytest.raises(StateError, match="bank exploded"):
            stream.expect("ok")

    def test_expect_on_eof(self):
        stream, _, _ = self._pair()
        with pytest.raises(StateError, match="closed while waiting"):
            stream.expect("ok")

    def test_request_round_trip(self):
        stream, inbound, outbound = self._pair()
        write_frame(inbound, "drain_ack", node=3)
        inbound.seek(0)
        reply = stream.request("drain", "drain_ack")
        assert reply["node"] == 3
        assert (
            read_frame(io.BytesIO(outbound.getvalue()))["type"] == "drain"
        )
