"""Unit tests for the gossip layer (`repro.cluster.gossip`).

The digest algebra (version-wins merges, never sums), peer-selection
determinism, convergence, membership changes, and the simulation-level
wiring: scheduled rounds at exact stream positions, digest rebuild on
crash recovery, and equality of every converged decentralized read with
the central merge-tree answer.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterSimulation,
    GossipNetwork,
    NodeFailure,
    ScaleEvent,
    default_template,
    view_fingerprint,
)
from repro.cluster.gossip import DigestEntry, NodeDigest
from repro.cluster.node import CounterTemplate, IngestNode
from repro.errors import ParameterError, StateError
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import KeyedEvent, zipf_workload


def _node(node_id: int, counts: dict[str, int]) -> IngestNode:
    node = IngestNode(node_id, CounterTemplate("exact"), seed=100 + node_id)
    for key, count in counts.items():
        node.submit(KeyedEvent(key, count))
    return node


def _network(nodes: dict[int, IngestNode], fanout: int = 1) -> GossipNetwork:
    network = GossipNetwork(seed=7, fanout=fanout)
    for node_id in nodes:
        network.add_node(node_id)
    return network


class TestDigestAlgebra:
    def test_capture_is_a_clone_not_an_alias(self):
        node = _node(0, {"a": 5})
        entry = DigestEntry.capture(node, version=1)
        node.submit(KeyedEvent("a", 3))
        node.flush()
        # The entry froze the bank at capture time.
        assert entry.counters["a"].estimate() == 5.0
        assert node.estimate("a") == 8.0
        assert entry.truth == {"a": 5}
        assert entry.events == 5

    def test_capture_does_not_perturb_future_coin_flips(self):
        """Capturing a digest entry must not consume node RNG: two runs
        that differ only in an extra capture stay bit-identical."""
        results = []
        for capture_mid_run in (False, True):
            node = IngestNode(
                0, default_template("simplified_ny"), seed=42
            )
            node.submit(KeyedEvent("k", 500))
            if capture_mid_run:
                DigestEntry.capture(node, version=1)
            node.submit(KeyedEvent("k", 500))
            node.flush()
            results.append(node.estimate("k"))
        assert results[0] == results[1]

    def test_merge_keeps_higher_version_never_sums(self):
        node = _node(0, {"a": 5})
        old = DigestEntry.capture(node, version=1)
        node.submit(KeyedEvent("a", 2))
        new = DigestEntry.capture(node, version=2)
        digest = NodeDigest(9)
        assert digest.merge_entry(old) is True
        assert digest.merge_entry(new) is True
        # Re-merging the stale entry (any number of times) is a no-op.
        assert digest.merge_entry(old) is False
        assert digest.merge_entry(old) is False
        assert digest.view().estimate("a") == 7.0
        assert digest.view().truth == {"a": 7}

    def test_view_merges_across_origins_exactly_once(self):
        digest = NodeDigest(0)
        for node_id, counts in ((0, {"a": 3}), (1, {"a": 4, "b": 1})):
            digest.merge_entry(
                DigestEntry.capture(_node(node_id, counts), version=1)
            )
        # Forward the same entries again through another digest: still
        # counted once.
        other = NodeDigest(1)
        other.merge_digest(digest)
        digest.merge_digest(other)
        view = digest.view()
        assert view.estimate("a") == 7.0
        assert view.estimate("b") == 1.0
        assert view.truth == {"a": 7, "b": 1}

    def test_empty_digest_view(self):
        view = NodeDigest(0).view()
        assert view.n_keys == 0
        assert view.truth == {}
        assert view.epoch == 0


class TestGossipNetwork:
    def test_rounds_are_deterministic(self):
        fingerprints = []
        for _ in range(2):
            nodes = {
                node_id: _node(node_id, {f"k{node_id}": node_id + 1})
                for node_id in range(5)
            }
            network = _network(nodes, fanout=1)
            for _ in range(3):
                network.run_round(nodes)
            fingerprints.append(
                {
                    node_id: view_fingerprint(network.node_view(node_id))
                    for node_id in network.node_ids
                }
            )
        assert fingerprints[0] == fingerprints[1]

    def test_converge_reaches_central_answer(self):
        nodes = {
            node_id: _node(node_id, {"hot": 10 + node_id, f"n{node_id}": 1})
            for node_id in range(6)
        }
        network = _network(nodes, fanout=1)
        rounds = network.converge(nodes)
        assert rounds >= 1
        expected_hot = float(sum(10 + i for i in range(6)))
        for node_id in network.node_ids:
            view = network.node_view(node_id)
            assert view.estimate("hot") == expected_hot
            assert view.truth["hot"] == int(expected_hot)
        assert network.converged()

    def test_single_node_converges_trivially(self):
        nodes = {0: _node(0, {"a": 2})}
        network = _network(nodes)
        assert network.converge(nodes) == 0
        assert network.node_view(0).estimate("a") == 2.0

    def test_staleness_shrinks_with_rounds(self):
        nodes = {node_id: _node(node_id, {"k": 100}) for node_id in range(4)}
        network = _network(nodes, fanout=1)
        before = network.max_staleness(nodes)
        assert before == 400  # nothing propagated yet
        network.converge(nodes)
        assert network.max_staleness(nodes) == 0

    def test_remove_node_purges_its_entries_everywhere(self):
        nodes = {node_id: _node(node_id, {"k": 1}) for node_id in range(3)}
        network = _network(nodes, fanout=2)
        network.converge(nodes)
        network.remove_node(2)
        assert network.node_ids == (0, 1)
        for node_id in network.node_ids:
            assert 2 not in network.digest(node_id).origins

    def test_reset_then_refresh_outversions_stale_entries(self):
        """A recovered node's rebuilt entry must win against the
        pre-crash entry peers still hold."""
        nodes = {node_id: _node(node_id, {"k": 5}) for node_id in range(2)}
        network = _network(nodes, fanout=1)
        network.converge(nodes)
        # Node 0 "crashes": digest wiped, bank replaced (recovery).
        nodes[0] = _node(0, {"k": 9})
        network.reset_node(0)
        entry = network.refresh(nodes[0])
        assert entry.version >= 2  # version table survived the crash
        network.converge(nodes)
        for node_id in network.node_ids:
            assert network.node_view(node_id).estimate("k") == 14.0

    def test_parameter_errors(self):
        with pytest.raises(ParameterError):
            GossipNetwork(seed=1, fanout=0)
        network = GossipNetwork(seed=1)
        network.add_node(0)
        with pytest.raises(ParameterError):
            network.add_node(0)
        with pytest.raises(ParameterError):
            network.digest(3)
        with pytest.raises(ParameterError):
            network.remove_node(3)


class TestConfigValidation:
    def test_aggregation_choices(self):
        with pytest.raises(ParameterError):
            ClusterConfig(aggregation="broadcast")
        with pytest.raises(ParameterError):
            ClusterConfig(aggregation="gossip", gossip_fanout=0)
        with pytest.raises(ParameterError):
            ClusterConfig(aggregation="gossip", gossip_every=0)
        with pytest.raises(ParameterError):
            ClusterConfig(gossip_every=100)  # tree aggregation
        with pytest.raises(ParameterError):
            ClusterConfig(gossip_fanout=3)  # tree aggregation
        config = ClusterConfig(
            aggregation="gossip", gossip_fanout=2, gossip_every=100
        )
        assert config.aggregation == "gossip"

    def test_tree_cluster_refuses_gossip_reads(self):
        simulation = ClusterSimulation(ClusterConfig(n_nodes=2))
        assert simulation.gossip is None
        with pytest.raises(StateError):
            simulation.gossip_round()
        with pytest.raises(StateError):
            simulation.node_view(0)


class TestSimulationWiring:
    def _run(self, **overrides):
        config = ClusterConfig(
            n_nodes=3,
            template=default_template("exact"),
            seed=11,
            checkpoint_every=1500,
            aggregation="gossip",
            gossip_fanout=1,
            gossip_every=2000,
            **overrides,
        )
        simulation = ClusterSimulation(config)
        events = zipf_workload(
            BitBudgetedRandom(11), n_keys=150, n_events=8000
        )
        result = simulation.run(events)
        return simulation, result

    def test_scheduled_rounds_and_convergence(self):
        simulation, result = self._run()
        # 8000 events / 2000 = 3 in-stream rounds (position 0 skipped),
        # plus whatever the final convergence pass needed.
        assert result.gossip_rounds >= 3 + result.gossip_convergence_rounds
        assert result.gossip_max_staleness is not None
        central = view_fingerprint(simulation.aggregator.global_view())
        for node in simulation.nodes:
            assert view_fingerprint(
                simulation.node_view(node.node_id)
            ) == central
        assert result.max_relative_error == 0.0

    def test_crash_rebuilds_digest_from_recovery(self):
        simulation, result = self._run(
            failures=(NodeFailure(at_event=4000, node_id=1),)
        )
        assert result.recoveries == 1
        central = view_fingerprint(simulation.aggregator.global_view())
        for node in simulation.nodes:
            assert view_fingerprint(
                simulation.node_view(node.node_id)
            ) == central

    def test_scale_events_update_membership(self):
        simulation, result = self._run(
            routing="ring",
            scale_events=(
                ScaleEvent(at_event=2500, action="add"),
                ScaleEvent(at_event=5500, action="remove", node_id=0),
            ),
        )
        assert result.scale_events_applied == 2
        live = tuple(node.node_id for node in simulation.nodes)
        assert simulation.gossip.node_ids == live
        central = view_fingerprint(simulation.aggregator.global_view())
        for node_id in live:
            # Retired node 0 appears in no digest; every read is exact.
            assert 0 not in simulation.gossip.digest(node_id).origins
            assert view_fingerprint(
                simulation.node_view(node_id)
            ) == central

    def test_gossip_run_is_pure_function_of_seed(self):
        stamps = []
        for _ in range(2):
            simulation, result = self._run(
                failures=(NodeFailure(at_event=4000, node_id=2),)
            )
            stamps.append(
                (
                    view_fingerprint(simulation.aggregator.global_view()),
                    result.gossip_rounds,
                    result.gossip_convergence_rounds,
                    result.gossip_max_staleness,
                    {
                        node.node_id: view_fingerprint(
                            simulation.node_view(node.node_id)
                        )
                        for node in simulation.nodes
                    },
                )
            )
        assert stamps[0] == stamps[1]

    def test_gossip_off_results_carry_no_gossip_stats(self):
        config = ClusterConfig(
            n_nodes=2, template=default_template("exact"), seed=5
        )
        result = ClusterSimulation(config).run(
            zipf_workload(BitBudgetedRandom(5), n_keys=50, n_events=1000)
        )
        assert result.gossip_rounds == 0
        assert result.gossip_convergence_rounds == 0
        assert result.gossip_max_staleness is None
