"""``cluster serve`` lifecycle: a real 2-worker fleet round-trips.

Integration test against live daemon processes: ``up`` launches
socket-mode workers and waits for readiness, ``ps`` sees them alive,
``status`` pings them over their Unix sockets, a direct frame
conversation delivers events, and ``down`` stops everything and cleans
the fleet record so a second ``up`` can proceed.
"""

from __future__ import annotations

import os
import signal
import socket

import pytest

from repro.cluster import default_template, node_seed
from repro.cluster.serve import (
    fleet_down,
    fleet_paths,
    fleet_ps,
    fleet_status,
    fleet_up,
    load_fleet,
)
from repro.cluster.transport import FrameStream
from repro.errors import ParameterError, StateError


@pytest.fixture
def fleet(tmp_path):
    """A live 2-worker fleet, torn down even when a test fails."""
    workers = fleet_up(
        tmp_path,
        n_nodes=2,
        template=default_template("exact"),
        seed=404,
        timeout=30.0,
    )
    try:
        yield tmp_path, workers
    finally:
        try:
            fleet_down(tmp_path, timeout=10.0)
        except StateError:
            pass  # the test already took the fleet down


def _connect(record) -> FrameStream:
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(10.0)
    sock.connect(record["socket"])
    stream = FrameStream.from_socket(sock)
    sock.close()
    return stream


class TestServeLifecycle:
    def test_up_ps_status_down_round_trip(self, fleet):
        root, workers = fleet
        assert [record["node"] for record in workers] == [0, 1]

        rows = fleet_ps(root)
        assert [row["state"] for row in rows] == ["running", "running"]
        for row in rows:
            assert os.path.exists(row["socket"])

        status = fleet_status(root)
        assert [row["state"] for row in status] == ["running", "running"]
        for row, record in zip(status, workers):
            assert row["pid"] == record["pid"]
            assert row["events_ingested"] == 0

        down = fleet_down(root)
        assert all(row["state"] == "stopped" for row in down)
        for record in workers:
            assert not os.path.exists(record["socket"])
            assert not os.path.exists(record["pidfile"])
        with pytest.raises(StateError, match="no fleet"):
            fleet_ps(root)

    def test_fleet_record_and_layout(self, fleet):
        root, workers = fleet
        record = load_fleet(root)
        assert record["n_nodes"] == 2
        assert record["seed"] == 404
        assert record["workers"] == workers
        base = fleet_paths(root)
        for node_id in (0, 1):
            assert (base / f"node-{node_id}.pid").exists()
            assert (base / f"node-{node_id}.log").exists()

    def test_workers_ingest_over_the_socket(self, fleet):
        """A coordinator-side conversation: deliver, drain, status."""
        root, workers = fleet
        stream = _connect(workers[0])
        try:
            stream.send(
                "deliver_batch", events=[["alpha", 2], ["beta", 1]]
            )
            ack = stream.request("drain", "drain_ack")
            assert ack["events_ingested"] == 3
        finally:
            stream.close()
        status = fleet_status(root)
        assert status[0]["events_ingested"] == 3
        assert status[1]["events_ingested"] == 0

    def test_worker_seed_matches_the_simulation_derivation(self, fleet):
        """A serve worker's bank is the in-process node's bank: same
        ``node_seed`` derivation, so checkpoints from one deployment
        shape restore in the other."""
        from repro.cluster.checkpoint import BankCheckpoint

        root, workers = fleet
        stream = _connect(workers[1])
        try:
            reply = stream.request(
                "snapshot_request", "snapshot_reply", flush=True
            )
        finally:
            stream.close()
        checkpoint = BankCheckpoint.decode(reply["line"])
        assert checkpoint.restore().seed == node_seed(404, 1)

    def test_up_refuses_while_fleet_recorded(self, fleet):
        root, _ = fleet
        with pytest.raises(StateError, match="already recorded"):
            fleet_up(
                root,
                n_nodes=1,
                template=default_template("exact"),
                seed=404,
            )

    def test_down_escalates_on_unresponsive_worker(self, fleet):
        """A worker stopped with SIGSTOP cannot answer the protocol
        shutdown; down must escalate to signals and still succeed."""
        root, workers = fleet
        os.kill(workers[0]["pid"], signal.SIGSTOP)
        rows = fleet_down(root, timeout=4.0)
        states = {row["node"]: row["state"] for row in rows}
        assert states[1] == "stopped"  # the healthy worker exited clean
        assert states[0] in ("terminated", "killed")
        assert not _alive(workers[0]["pid"])

    def test_ps_reports_a_dead_worker(self, fleet):
        root, workers = fleet
        os.kill(workers[1]["pid"], signal.SIGKILL)
        _wait_gone(workers[1]["pid"])
        states = {row["node"]: row["state"] for row in fleet_ps(root)}
        assert states == {0: "running", 1: "stopped"}


class TestServeValidation:
    def test_up_rejects_zero_nodes(self, tmp_path):
        with pytest.raises(ParameterError):
            fleet_up(tmp_path, 0, default_template("exact"))

    def test_commands_without_fleet_are_loud(self, tmp_path):
        for command in (fleet_ps, fleet_status, fleet_down):
            with pytest.raises(StateError, match="no fleet"):
                command(tmp_path)


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    return True


def _wait_gone(pid: int, timeout: float = 10.0) -> None:
    import time

    deadline = time.monotonic() + timeout
    while _alive(pid) and time.monotonic() < deadline:
        time.sleep(0.05)
