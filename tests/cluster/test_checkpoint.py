"""Tests for whole-bank checkpoints: round-trips, determinism, corruption."""

from __future__ import annotations

import json

import pytest

from repro.analytics.counter_bank import CounterBank
from repro.cluster.checkpoint import BankCheckpoint
from repro.cluster.node import default_template
from repro.errors import StateError
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import zipf_workload

_TEMPLATE = default_template("simplified_ny")


def _loaded_bank(seed: int = 11, n_events: int = 5000) -> CounterBank:
    bank = CounterBank(_TEMPLATE.build, seed=seed)
    bank.consume(zipf_workload(BitBudgetedRandom(3), 50, n_events))
    return bank


class TestRoundtrip:
    def test_estimates_survive(self):
        bank = _loaded_bank()
        line = BankCheckpoint.capture(bank, _TEMPLATE).encode()
        restored = BankCheckpoint.decode(line).restore()
        assert len(restored) == len(bank)
        for key in bank.keys():
            assert restored.estimate(key) == bank.estimate(key)
            assert restored.truth(key) == bank.truth(key)

    def test_meta_carried(self):
        checkpoint = BankCheckpoint.capture(
            _loaded_bank(), _TEMPLATE, meta={"node_id": 3, "incarnation": 2}
        )
        decoded = BankCheckpoint.decode(checkpoint.encode())
        assert decoded.meta == {"node_id": 3, "incarnation": 2}
        assert decoded.template == _TEMPLATE

    def test_untracked_truth(self):
        bank = CounterBank(_TEMPLATE.build, seed=1, track_truth=False)
        bank.record("k", 100)
        restored = BankCheckpoint.decode(
            BankCheckpoint.capture(bank, _TEMPLATE).encode()
        ).restore()
        assert not restored.tracks_truth
        assert restored.estimate("k") == bank.estimate("k")


class TestRestoreDeterminism:
    def test_same_seed_restores_identically(self):
        line = BankCheckpoint.capture(_loaded_bank(), _TEMPLATE).encode()
        a = BankCheckpoint.decode(line).restore(seed=5)
        b = BankCheckpoint.decode(line).restore(seed=5)
        # Identical restores fed the identical post-restore stream stay
        # identical — the recovery determinism invariant.
        stream = list(zipf_workload(BitBudgetedRandom(9), 50, 3000))
        a.consume(iter(stream))
        b.consume(iter(stream))
        for key in a.keys():
            assert a.estimate(key) == b.estimate(key)

    def test_incarnation_seeds_do_not_share_coin_flips(self):
        bank = _loaded_bank(n_events=200)
        line = BankCheckpoint.capture(bank, _TEMPLATE).encode()
        a = BankCheckpoint.decode(line).restore(seed=1)
        b = BankCheckpoint.decode(line).restore(seed=2)
        a.record("page-000000", 500_000)
        b.record("page-000000", 500_000)
        # Distinct incarnation streams: agreeing estimates at this count
        # would mean the replicas share randomness.
        assert a.estimate("page-000000") != b.estimate("page-000000")


class TestCorruption:
    def _line(self) -> str:
        return BankCheckpoint.capture(_loaded_bank(n_events=50), _TEMPLATE).encode()

    def test_truncation_detected(self):
        with pytest.raises(StateError):
            BankCheckpoint.decode(self._line()[:-5])

    def test_tamper_detected(self):
        wrapper = json.loads(self._line())
        wrapper["payload"]["seed"] = 12345
        with pytest.raises(StateError, match="checksum"):
            BankCheckpoint.decode(json.dumps(wrapper))

    def test_not_json(self):
        with pytest.raises(StateError):
            BankCheckpoint.decode("not a checkpoint")
