"""Consume-mode wiring and the flattened node write path.

The skip-ahead delivery path (PR 10) must not change *what* the cluster
computes: ``flush()`` through ``consume_counts`` is bit-identical to
recording each buffered key, ``submit_counts`` is bit-identical to the
per-event submit loop, and on exact templates the ``per_unit`` reference
arm reproduces the ``skip_ahead`` run fingerprint for fingerprint.
"""

from __future__ import annotations

import pytest

from repro.analytics.counter_bank import CounterBank
from repro.cluster import (
    ClusterConfig,
    ClusterSimulation,
    default_template,
    recover_cluster,
    view_fingerprint,
)
from repro.cluster.node import IngestNode
from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import KeyedEvent, weighted_zipf_workload

_SEED = 424242


def _weighted_events(n_events: int = 4000, n_keys: int = 60):
    return weighted_zipf_workload(
        BitBudgetedRandom(_SEED), n_keys, n_events, mean_count=16
    )


def _node(consume_mode: str = "skip_ahead", **overrides) -> IngestNode:
    settings = dict(
        node_id=0,
        template=default_template("simplified_ny"),
        seed=_SEED,
        buffer_limit=64,
        consume_mode=consume_mode,
    )
    settings.update(overrides)
    return IngestNode(**settings)


class TestModeValidation:
    def test_node_rejects_unknown_mode(self):
        with pytest.raises(ParameterError):
            _node(consume_mode="telepathy")

    def test_config_rejects_unknown_mode(self):
        with pytest.raises(ParameterError):
            ClusterConfig(consume_mode="telepathy")

    def test_defaults_to_skip_ahead(self):
        assert _node().consume_mode == "skip_ahead"
        assert ClusterConfig().consume_mode == "skip_ahead"

    def test_per_unit_accepted(self):
        assert _node(consume_mode="per_unit").consume_mode == "per_unit"


class TestFlushBitIdentity:
    @pytest.mark.parametrize("consume_mode", IngestNode.CONSUME_MODES)
    def test_flush_matches_manual_bank(self, consume_mode):
        """A flush is the sorted coalesced buffer applied to a bank with
        the node's seed — same estimates, truth, and state bits."""
        node = _node(consume_mode=consume_mode, buffer_limit=10**9)
        events = list(_weighted_events(600))
        node.submit_all(events)
        buffered = sorted(node._buffer.items())
        node.flush()
        reference = CounterBank(
            default_template("simplified_ny").build, seed=_SEED
        )
        reference.consume_counts(buffered, per_unit=consume_mode == "per_unit")
        for key, _ in buffered:
            assert node.bank.estimate(key) == reference.estimate(key)
            assert node.bank.truth(key) == reference.truth(key)
        assert node.bank.total_state_bits() == reference.total_state_bits()


class TestSubmitCounts:
    def test_matches_per_event_submit(self):
        """Same buffer state, lifetime stats, flush timing, and bank
        contents as submitting one KeyedEvent per pair."""
        events = list(_weighted_events(3000))
        pairs = [(event.key, event.count) for event in events]
        pairs[7] = (pairs[7][0], 0)  # zero-count events are dropped
        by_event, by_pairs = _node(), _node()
        ingested_events = by_event.submit_all(
            KeyedEvent(key, count) for key, count in pairs
        )
        ingested_pairs = by_pairs.submit_counts(pairs)
        assert ingested_pairs == ingested_events
        assert by_pairs.events_ingested == by_event.events_ingested
        assert by_pairs.events_coalesced == by_event.events_coalesced
        assert by_pairs.n_flushes == by_event.n_flushes
        assert by_pairs.pending == by_event.pending
        assert by_pairs._buffer == by_event._buffer
        for key in by_event.bank.keys():
            assert by_pairs.bank.estimate(key) == by_event.bank.estimate(key)

    def test_flushes_when_buffer_fills(self):
        node = _node(buffer_limit=8)
        node.submit_counts([("a", 5), ("b", 5), ("c", 1)])
        assert node.n_flushes == 1
        assert node.pending == 1  # "c" arrived after the flush


class TestClusterConsumeMode:
    def _run(self, consume_mode: str, **overrides):
        settings = dict(
            n_nodes=3,
            template=default_template("exact"),
            seed=_SEED,
            buffer_limit=128,
            consume_mode=consume_mode,
        )
        settings.update(overrides)
        simulation = ClusterSimulation(ClusterConfig(**settings))
        result = simulation.run(_weighted_events())
        return simulation, result

    def test_exact_template_identical_across_modes(self):
        """Consume mode never changes what an exact cluster computes."""
        skip_sim, skip_result = self._run("skip_ahead")
        unit_sim, unit_result = self._run("per_unit")
        assert view_fingerprint(
            skip_sim.aggregator.global_view()
        ) == view_fingerprint(unit_sim.aggregator.global_view())
        assert skip_result.total_events == unit_result.total_events
        assert skip_result.max_relative_error == 0.0
        assert unit_result.max_relative_error == 0.0

    def test_mode_survives_manifest_roundtrip(self, tmp_path):
        _, _ = self._run(
            "per_unit",
            storage="file",
            storage_dir=str(tmp_path),
            checkpoint_every=1000,
        )
        with recover_cluster(str(tmp_path)) as recovered:
            assert recovered.config.consume_mode == "per_unit"
