"""Tests for stable-hash routing and hot-key splitting."""

from __future__ import annotations

import pytest

from repro.cluster.router import StableHashRouter
from repro.errors import ParameterError
from repro.stream.workload import KeyedEvent


class TestStableRouting:
    def test_deterministic_across_instances(self):
        keys = [f"page-{i}" for i in range(200)]
        a = StableHashRouter(8, salt=5)
        b = StableHashRouter(8, salt=5)
        assert [a.route(k) for k in keys] == [b.route(k) for k in keys]

    def test_salt_reshuffles(self):
        keys = [f"page-{i}" for i in range(200)]
        a = StableHashRouter(8, salt=1)
        b = StableHashRouter(8, salt=2)
        assert [a.route(k) for k in keys] != [b.route(k) for k in keys]

    def test_cold_keys_are_sticky(self):
        router = StableHashRouter(5)
        assert len({router.route("k") for _ in range(50)}) == 1

    def test_spreads_over_nodes(self):
        router = StableHashRouter(4)
        homes = [router.route(f"page-{i}") for i in range(1000)]
        loads = [homes.count(n) for n in range(4)]
        assert all(load > 150 for load in loads)

    def test_validation(self):
        with pytest.raises(ParameterError):
            StableHashRouter(0)
        with pytest.raises(ParameterError):
            StableHashRouter(2, hot_key_threshold=0)


class TestHotKeySplitting:
    def test_explicit_hot_key_rotates(self):
        router = StableHashRouter(4, hot_keys=["hot"])
        nodes = [router.route("hot") for _ in range(8)]
        assert sorted(set(nodes)) == [0, 1, 2, 3]
        # Round-robin: each node sees exactly 2 of the 8 events.
        assert all(nodes.count(n) == 2 for n in range(4))

    def test_auto_promotion_at_threshold(self):
        router = StableHashRouter(4, hot_key_threshold=100)
        for _ in range(99):
            router.route("popular")
        assert "popular" not in router.hot_keys
        router.route("popular")
        assert "popular" in router.hot_keys
        # After promotion, traffic spreads.
        nodes = {router.route("popular") for _ in range(8)}
        assert len(nodes) == 4

    def test_weighted_counts_speed_promotion(self):
        router = StableHashRouter(2, hot_key_threshold=100)
        router.route("bulk", count=100)
        assert "bulk" in router.hot_keys

    def test_partition_annotates_stream(self):
        router = StableHashRouter(3)
        events = [KeyedEvent(f"k{i}") for i in range(10)]
        pairs = list(router.partition(events))
        assert [event for _, event in pairs] == events
        assert all(0 <= node < 3 for node, _ in pairs)
