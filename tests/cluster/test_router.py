"""Tests for stable-hash routing and hot-key splitting."""

from __future__ import annotations

import pytest

from repro.cluster.router import ClusterRouter, StableHashRouter
from repro.errors import ParameterError
from repro.stream.workload import KeyedEvent


class TestStableRouting:
    def test_deterministic_across_instances(self):
        keys = [f"page-{i}" for i in range(200)]
        a = StableHashRouter(8, salt=5)
        b = StableHashRouter(8, salt=5)
        assert [a.route(k) for k in keys] == [b.route(k) for k in keys]

    def test_salt_reshuffles(self):
        keys = [f"page-{i}" for i in range(200)]
        a = StableHashRouter(8, salt=1)
        b = StableHashRouter(8, salt=2)
        assert [a.route(k) for k in keys] != [b.route(k) for k in keys]

    def test_cold_keys_are_sticky(self):
        router = StableHashRouter(5)
        assert len({router.route("k") for _ in range(50)}) == 1

    def test_spreads_over_nodes(self):
        router = StableHashRouter(4)
        homes = [router.route(f"page-{i}") for i in range(1000)]
        loads = [homes.count(n) for n in range(4)]
        assert all(load > 150 for load in loads)

    def test_validation(self):
        with pytest.raises(ParameterError):
            StableHashRouter(0)
        with pytest.raises(ParameterError):
            StableHashRouter(2, hot_key_threshold=0)


class TestHotKeySplitting:
    def test_explicit_hot_key_rotates(self):
        router = StableHashRouter(4, hot_keys=["hot"])
        nodes = [router.route("hot") for _ in range(8)]
        assert sorted(set(nodes)) == [0, 1, 2, 3]
        # Round-robin: each node sees exactly 2 of the 8 events.
        assert all(nodes.count(n) == 2 for n in range(4))

    def test_auto_promotion_at_threshold(self):
        router = StableHashRouter(4, hot_key_threshold=100)
        for _ in range(99):
            router.route("popular")
        assert "popular" not in router.hot_keys
        router.route("popular")
        assert "popular" in router.hot_keys
        # After promotion, traffic spreads.
        nodes = {router.route("popular") for _ in range(8)}
        assert len(nodes) == 4

    def test_weighted_counts_speed_promotion(self):
        router = StableHashRouter(2, hot_key_threshold=100)
        router.route("bulk", count=100)
        assert "bulk" in router.hot_keys

    def test_partition_annotates_stream(self):
        router = StableHashRouter(3)
        events = [KeyedEvent(f"k{i}") for i in range(10)]
        pairs = list(router.partition(events))
        assert [event for _, event in pairs] == events
        assert all(0 <= node < 3 for node, _ in pairs)


class TestTrafficTableBound:
    def test_table_bounded_under_100k_distinct_cold_keys(self):
        """The ISSUE-3 leak regression: one entry per distinct cold key
        forever.  With the bound, 100k one-shot keys stay within it."""
        router = StableHashRouter(
            4, hot_key_threshold=1000, traffic_table_limit=1000
        )
        for i in range(100_000):
            router.route(f"cold-{i}")
        assert router.traffic_table_size <= 1000
        assert not router.hot_keys  # nothing ever crossed the threshold

    def test_surviving_keys_still_promote(self):
        """Eviction only forgets the coldest entries; a key hot enough
        to stay in the table promotes with unchanged semantics."""
        router = StableHashRouter(
            2, hot_key_threshold=50, traffic_table_limit=100
        )
        for round_ in range(49):
            router.route("warm")  # stays hottest in the table
            for i in range(400):
                router.route(f"noise-{round_}-{i}")
        assert "warm" not in router.hot_keys
        router.route("warm")  # 50th observation promotes
        assert "warm" in router.hot_keys

    def test_eviction_keeps_hottest_half(self):
        router = ClusterRouter(
            [0, 1], hot_key_threshold=10_000, traffic_table_limit=10
        )
        for i in range(10):
            for _ in range(i + 1):
                router.route(f"k{i}")  # k9 hottest ... k0 coldest
        router.route("overflow")  # 11th entry trips the eviction
        assert router.traffic_table_size == 5
        survivors = set(router._traffic)
        assert survivors == {"k9", "k8", "k7", "k6", "k5"}

    def test_unbounded_legacy_mode(self):
        router = StableHashRouter(
            2, hot_key_threshold=1000, traffic_table_limit=None
        )
        for i in range(5000):
            router.route(f"cold-{i}")
        assert router.traffic_table_size == 5000

    def test_eviction_is_deterministic(self):
        def fill():
            router = StableHashRouter(
                4, hot_key_threshold=500, traffic_table_limit=64
            )
            for i in range(3000):
                router.route(f"key-{i % 900}")
            return sorted(router._traffic.items())

        assert fill() == fill()

    def test_limit_validation(self):
        with pytest.raises(ParameterError):
            StableHashRouter(2, traffic_table_limit=0)


class TestRestoreTopology:
    def test_restores_epoch_and_salt(self):
        live = ClusterRouter([0, 1, 2], salt=77)
        live.add_node()
        live.remove_node(1)
        recovered = ClusterRouter([0], salt=77)
        recovered.restore_topology(live.nodes, epoch=live.epoch)
        assert recovered.epoch == live.epoch
        assert recovered.salt == live.salt
        keys = [f"page-{i}" for i in range(200)]
        assert [recovered.home_node(k) for k in keys] == [
            live.home_node(k) for k in keys
        ]

    def test_epoch_zero_restores_base_salt(self):
        router = ClusterRouter([0, 1], salt=5)
        router.add_node()
        router.restore_topology([0, 1], epoch=0)
        assert router.salt == 5

    def test_validation(self):
        router = ClusterRouter([0, 1])
        with pytest.raises(ParameterError):
            router.restore_topology([0, 1], epoch=-1)
        with pytest.raises(ParameterError):
            router.restore_topology([], epoch=0)
