"""Unit + property tests for self-healing membership.

`repro.cluster.membership` in isolation (the suspicion state machine,
the phase-based quorum, jump-ahead merges) and wired into the gossip
network and the simulation: kills the driver never heals must be
detected, quorum-confirmed, and healed by the cluster itself, with the
final exact-template global view bit-identical to a driver-healed
reference run of the same seed.

The hypothesis layer sweeps random topologies, seeds, fanouts, and kill
positions with ``derandomize=True`` (CI never sees a flaky draw), plus
the false-positive bound: a slow-but-alive node whose entry refreshes
within ``suspect_after`` rounds is never confirmed dead.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ALIVE,
    CONFIRMED_DEAD,
    SUSPECT,
    ClusterConfig,
    ClusterSimulation,
    FailureDetector,
    GossipNetwork,
    MembershipView,
    NodeFailure,
    default_template,
    view_fingerprint,
)
from repro.cluster.node import CounterTemplate, IngestNode
from repro.errors import ParameterError, StateError
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import KeyedEvent, zipf_workload


def _node(node_id: int) -> IngestNode:
    node = IngestNode(node_id, CounterTemplate("exact"), seed=100 + node_id)
    node.submit(KeyedEvent(f"k{node_id}", 1 + node_id))
    return node


def _detected_network(
    n_nodes: int,
    seed: int = 7,
    fanout: int = 1,
    suspect_after: int = 2,
    quorum: int | None = None,
) -> tuple[GossipNetwork, FailureDetector, dict[int, IngestNode]]:
    network = GossipNetwork(seed=seed, fanout=fanout)
    detector = FailureDetector(suspect_after=suspect_after, quorum=quorum)
    network.attach_detector(detector)
    nodes = {}
    for node_id in range(n_nodes):
        network.add_node(node_id)
        nodes[node_id] = _node(node_id)
    return network, detector, nodes


class TestMembershipView:
    def test_state_machine_alive_suspect_confirmed(self):
        view = MembershipView(0)
        assert view.status(1) == ALIVE
        assert view.suspect(1) is True  # new episode
        assert view.status(1) == SUSPECT
        assert view.phase(1) == 1
        assert view.votes(1) == frozenset({0})
        view.confirm(1)
        assert view.status(1) == CONFIRMED_DEAD

    def test_never_suspects_itself(self):
        view = MembershipView(3)
        with pytest.raises(ParameterError):
            view.suspect(3)

    def test_negative_node_id_refused(self):
        with pytest.raises(ParameterError):
            MembershipView(-1)

    def test_refute_drops_votes_keeps_phase_floor(self):
        view = MembershipView(0)
        view.suspect(1)
        assert view.refute(1) is True
        assert view.status(1) == ALIVE
        # The phase survives as a floor for the dead episode...
        assert view.phase(1) == 1
        # ...so the next episode is strictly newer.
        assert view.suspect(1) is True
        assert view.phase(1) == 2
        # Refuting an already-clear origin reports nothing.
        assert view.refute(1) is True
        assert view.refute(1) is False

    def test_repeat_suspicion_same_episode(self):
        view = MembershipView(0)
        assert view.suspect(1) is True
        assert view.suspect(1) is False  # same episode, same vote set
        assert view.phase(1) == 1

    def test_merge_jump_ahead_adopts_votes_and_recasts_own(self):
        ours, theirs = MembershipView(0), MembershipView(1)
        ours.suspect(2)  # phase 1, votes {0}
        theirs.suspect(2)
        theirs.refute(2)
        theirs.suspect(2)  # phase 2, votes {1}
        assert ours.merge_from(theirs, 2) is True
        assert ours.phase(2) == 2
        # We still held first-person staleness evidence, so our vote
        # re-casts at the adopted phase.
        assert ours.votes(2) == frozenset({0, 1})

    def test_merge_equal_phase_unions_votes(self):
        ours, theirs = MembershipView(0), MembershipView(1)
        ours.suspect(2)
        theirs.suspect(2)
        assert ours.merge_from(theirs, 2) is True
        assert ours.votes(2) == frozenset({0, 1})
        # Nothing new the second time.
        assert ours.merge_from(theirs, 2) is False

    def test_merge_ignores_lower_phase(self):
        ours, theirs = MembershipView(0), MembershipView(1)
        ours.suspect(2)
        ours.refute(2)
        ours.suspect(2)  # phase 2
        theirs.suspect(2)  # phase 1
        assert ours.merge_from(theirs, 2) is False
        assert ours.votes(2) == frozenset({0})

    def test_merge_propagates_refutation_at_higher_phase(self):
        ours, theirs = MembershipView(0), MembershipView(1)
        ours.suspect(2)  # phase 1, still suspecting
        ours.confirm(2)
        theirs.suspect(2)
        theirs.refute(2)
        theirs.suspect(2)
        theirs.refute(2)  # phase 2, refuted
        assert ours.merge_from(theirs, 2) is True
        assert ours.phase(2) == 2
        assert ours.status(2) == ALIVE

    def test_forget_and_drop_voter(self):
        view = MembershipView(0)
        view.suspect(2)
        other = MembershipView(1)
        other.suspect(2)
        view.merge_from(other, 2)
        view.drop_voter(1)
        assert view.votes(2) == frozenset({0})
        view.forget(2)
        assert view.status(2) == ALIVE
        assert view.phase(2) == 0


class TestFailureDetectorUnit:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            FailureDetector(suspect_after=0)
        with pytest.raises(ParameterError):
            FailureDetector(quorum=0)

    def test_unknown_view_is_loud(self):
        detector = FailureDetector()
        with pytest.raises(ParameterError):
            detector.view(9)

    def test_needed_votes_default_is_live_count(self):
        network, detector, nodes = _detected_network(4)
        network.run_round(nodes)
        assert detector.needed_votes() == 4
        del nodes[3]
        network.run_round(nodes)
        assert detector.needed_votes() == 3

    def test_needed_votes_explicit_quorum(self):
        _, detector, _ = _detected_network(4, quorum=2)
        assert detector.needed_votes() == 2


class TestDetectionOnNetwork:
    def test_all_live_nothing_suspected(self):
        network, detector, nodes = _detected_network(4)
        for _ in range(8):
            network.run_round(nodes)
        assert detector.confirmed() == ()
        for node_id in nodes:
            for origin in nodes:
                if origin != node_id:
                    assert detector.status(node_id, origin) == ALIVE

    def test_dead_node_is_suspected_then_confirmed(self):
        network, detector, nodes = _detected_network(4, suspect_after=2)
        for _ in range(3):
            network.run_round(nodes)
        del nodes[3]  # dead: refreshes stop, round stamps go stale
        confirmed_at = None
        for round_index in range(1, 12):
            network.run_round(nodes)
            if detector.confirmed():
                confirmed_at = round_index
                break
        assert detector.confirmed() == (3,)
        # Not before the staleness threshold allows suspicion at all.
        assert confirmed_at is not None and confirmed_at >= 3
        assert detector.take_confirmed() == (3,)
        assert detector.confirmed() == ()

    def test_single_survivor_confirms_without_exchanges(self):
        network, detector, nodes = _detected_network(2, suspect_after=1)
        network.run_round(nodes)
        del nodes[1]
        for _ in range(4):
            network.run_round(nodes)
        assert detector.take_confirmed() == (1,)

    def test_comeback_before_threshold_never_suspected(self):
        """The false-positive bound: refreshing within ``suspect_after``
        rounds keeps a slow node out of the suspicion machinery
        entirely."""
        network, detector, nodes = _detected_network(3, suspect_after=2)
        slow = nodes.pop(2)
        for _ in range(6):
            # The slow node misses exactly suspect_after consecutive
            # rounds (staleness == threshold, never above it)...
            network.run_round({**nodes, 2: slow})
            network.run_round(nodes)
            network.run_round(nodes)
        assert detector.confirmed() == ()
        for node_id in (0, 1):
            assert detector.status(node_id, 2) == ALIVE

    def test_comeback_after_suspicion_is_refuted(self):
        network, detector, nodes = _detected_network(
            3, suspect_after=1, quorum=5
        )
        network.run_round(nodes)
        slow = nodes.pop(2)
        for _ in range(3):
            network.run_round(nodes)
        assert any(
            detector.status(node_id, 2) == SUSPECT for node_id in (0, 1)
        )
        nodes[2] = slow
        for _ in range(2):
            network.run_round(nodes)
        assert detector.confirmed() == ()
        for node_id in (0, 1):
            assert detector.status(node_id, 2) == ALIVE

    def test_anti_entropy_rounds_run_no_detection(self):
        network, detector, nodes = _detected_network(3, suspect_after=1)
        network.run_round(nodes)
        del nodes[2]
        for _ in range(6):
            network.run_round(nodes, refresh=False)
        # Frozen-content rounds must not feed the detector: nothing
        # was suspected even though the entries went arbitrarily stale.
        assert detector.confirmed() == ()
        assert detector.status(0, 2) == ALIVE

    def test_default_quorum_cannot_confirm_live_origin(self):
        """No vote set for a live origin can reach the live-count
        quorum: the origin itself never votes, so the achievable count
        is one short while it participates."""
        network, detector, nodes = _detected_network(3, suspect_after=1)
        network.run_round(nodes)
        # Force both peers to suspect node 2 by hand (stronger than
        # anything staleness could produce while 2 participates).
        detector.view(0).suspect(2)
        detector.view(1).suspect(2)
        network.run_round(nodes)
        assert detector.confirmed() == ()

    def test_kill_before_first_round_is_detected(self):
        """The coordinator-side refresh table covers origins no digest
        ever learned: a node dead from round one still goes stale."""
        network, detector, nodes = _detected_network(3, suspect_after=2)
        del nodes[2]
        for _ in range(8):
            network.run_round(nodes)
        assert 2 in detector.take_confirmed()


def _membership_config(
    n_nodes: int,
    seed: int,
    kill_at: int,
    n_events: int,
    heal: bool,
    fanout: int = 1,
    heal_mode: str = "auto",
    quorum: int | None = None,
    workers: int = 1,
) -> ClusterConfig:
    return ClusterConfig(
        n_nodes=n_nodes,
        template=default_template("exact"),
        seed=seed,
        buffer_limit=64,
        checkpoint_every=max(n_events // 8, 50),
        aggregation="gossip",
        gossip_fanout=fanout,
        gossip_every=max(n_events // 10, 1),
        membership=not heal,
        membership_heal=heal_mode if not heal else "auto",
        membership_quorum=quorum if not heal else None,
        failures=(
            NodeFailure(at_event=kill_at, node_id=n_nodes - 1, heal=heal),
        ),
        ingest_workers=workers,
    )


def _run(config: ClusterConfig, seed: int, n_events: int):
    events = zipf_workload(
        BitBudgetedRandom(seed), n_keys=50, n_events=n_events
    )
    with ClusterSimulation(config) as simulation:
        result = simulation.run(events)
        return view_fingerprint(simulation.aggregator.global_view()), result


class TestSimulationSelfHealing:
    _EVENTS = 1200
    _SEED = 11

    def test_kill_without_heal_matches_driver_healed_reference(self):
        fp_self, result = _run(
            _membership_config(3, self._SEED, 600, self._EVENTS, False),
            self._SEED,
            self._EVENTS,
        )
        fp_ref, _ = _run(
            _membership_config(3, self._SEED, 600, self._EVENTS, True),
            self._SEED,
            self._EVENTS,
        )
        assert fp_self == fp_ref
        assert result.membership_kills == 1
        assert result.membership_suspicions >= 1
        assert result.membership_confirmations >= 1
        assert result.membership_heals == 1
        assert result.membership_detection_rounds >= 1
        assert result.recoveries >= 1

    def test_self_healing_is_deterministic(self):
        config = _membership_config(3, self._SEED, 600, self._EVENTS, False)
        first_fp, first = _run(config, self._SEED, self._EVENTS)
        replay_fp, replay = _run(config, self._SEED, self._EVENTS)
        assert first_fp == replay_fp
        assert first.membership_suspicions == replay.membership_suspicions
        assert (
            first.membership_detection_rounds
            == replay.membership_detection_rounds
        )
        assert first.node_stats == replay.node_stats

    def test_rebalance_heal_retires_the_node(self):
        fp_self, result = _run(
            _membership_config(
                3, self._SEED, 600, self._EVENTS, False,
                heal_mode="rebalance",
            ),
            self._SEED,
            self._EVENTS,
        )
        fp_ref, _ = _run(
            _membership_config(3, self._SEED, 600, self._EVENTS, True),
            self._SEED,
            self._EVENTS,
        )
        # Losslessness: the retired node's counts migrated, exactly.
        assert fp_self == fp_ref
        assert result.membership_heals == 1
        assert result.n_nodes == 2

    def test_explicit_low_quorum_still_lossless(self):
        fp_self, result = _run(
            _membership_config(
                4, self._SEED, 600, self._EVENTS, False, quorum=1
            ),
            self._SEED,
            self._EVENTS,
        )
        fp_ref, _ = _run(
            _membership_config(4, self._SEED, 600, self._EVENTS, True),
            self._SEED,
            self._EVENTS,
        )
        assert fp_self == fp_ref
        assert result.membership_heals >= 1

    def test_dead_node_refuses_checkpoint_and_second_crash(self):
        config = ClusterConfig(
            n_nodes=3,
            template=default_template("exact"),
            seed=self._SEED,
            aggregation="gossip",
            gossip_every=100,
            membership=True,
        )
        events = list(
            zipf_workload(
                BitBudgetedRandom(self._SEED), n_keys=50, n_events=300
            )
        )
        with ClusterSimulation(config) as simulation:
            for event in events:
                simulation.deliver_event(event)
            simulation.kill_node(2)
            assert simulation.dead_nodes == (2,)
            assert simulation.is_node_dead(2)
            with pytest.raises(StateError):
                simulation.checkpoint_node(2)
            with pytest.raises(StateError):
                simulation.crash_node(2)
            with pytest.raises(StateError):
                simulation.kill_node(2)

    def test_run_result_table_mentions_membership(self):
        _, result = _run(
            _membership_config(3, self._SEED, 600, self._EVENTS, False),
            self._SEED,
            self._EVENTS,
        )
        assert "membership" in result.table()


class TestConfigValidation:
    def test_membership_requires_gossip(self):
        with pytest.raises(ParameterError):
            ClusterConfig(
                n_nodes=2,
                template=default_template("exact"),
                seed=1,
                membership=True,
            )

    def test_kill_without_heal_requires_membership(self):
        with pytest.raises(ParameterError):
            ClusterConfig(
                n_nodes=2,
                template=default_template("exact"),
                seed=1,
                failures=(
                    NodeFailure(at_event=10, node_id=1, heal=False),
                ),
            )

    def test_membership_knobs_require_membership(self):
        base = dict(
            n_nodes=2, template=default_template("exact"), seed=1
        )
        with pytest.raises(ParameterError):
            ClusterConfig(suspect_after=5, **base)
        with pytest.raises(ParameterError):
            ClusterConfig(membership_quorum=1, **base)
        with pytest.raises(ParameterError):
            ClusterConfig(membership_heal="recover", **base)

    def test_invalid_membership_values(self):
        base = dict(
            n_nodes=2,
            template=default_template("exact"),
            seed=1,
            aggregation="gossip",
            gossip_every=10,
            membership=True,
        )
        with pytest.raises(ParameterError):
            ClusterConfig(suspect_after=0, **base)
        with pytest.raises(ParameterError):
            ClusterConfig(membership_quorum=0, **base)
        with pytest.raises(ParameterError):
            ClusterConfig(membership_heal="pray", **base)

    def test_kill_needs_a_live_survivor(self):
        with pytest.raises(ParameterError):
            ClusterConfig(
                n_nodes=1,
                template=default_template("exact"),
                seed=1,
                aggregation="gossip",
                gossip_every=10,
                membership=True,
                failures=(
                    NodeFailure(at_event=10, node_id=0, heal=False),
                ),
            )


class TestMembershipProperties:
    """The hypothesis layer: random topologies, seeds, and fanouts."""

    @given(
        n_nodes=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=2**20),
        fanout=st.integers(min_value=1, max_value=3),
        kill_fraction=st.integers(min_value=3, max_value=7),
    )
    @settings(max_examples=10, deadline=None, derandomize=True)
    def test_self_healed_equals_driver_healed(
        self, n_nodes, seed, fanout, kill_fraction
    ):
        n_events = 600
        kill_at = n_events * kill_fraction // 10
        fp_self, result = _run(
            _membership_config(
                n_nodes, seed, kill_at, n_events, False, fanout=fanout
            ),
            seed,
            n_events,
        )
        fp_ref, _ = _run(
            _membership_config(
                n_nodes, seed, kill_at, n_events, True, fanout=fanout
            ),
            seed,
            n_events,
        )
        assert fp_self == fp_ref
        assert result.membership_kills == result.membership_heals == 1

    @given(
        n_nodes=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=2**20),
        fanout=st.integers(min_value=1, max_value=3),
        rounds=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=10, deadline=None, derandomize=True)
    def test_all_live_cluster_never_confirms(
        self, n_nodes, seed, fanout, rounds
    ):
        network, detector, nodes = _detected_network(
            n_nodes, seed=seed, fanout=fanout
        )
        for _ in range(rounds):
            network.run_round(nodes)
        assert detector.confirmed() == ()

    @given(
        n_nodes=st.integers(min_value=3, max_value=6),
        seed=st.integers(min_value=0, max_value=2**20),
        fanout=st.integers(min_value=1, max_value=2),
        suspect_after=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=10, deadline=None, derandomize=True)
    def test_slow_but_alive_never_confirmed(
        self, n_nodes, seed, fanout, suspect_after
    ):
        """A node refreshing within ``suspect_after`` rounds is never
        confirmed dead, whatever the topology or fanout."""
        network, detector, nodes = _detected_network(
            n_nodes, seed=seed, fanout=fanout, suspect_after=suspect_after
        )
        slow = nodes.pop(n_nodes - 1)
        for _ in range(4):
            network.run_round({**nodes, slow.node_id: slow})
            for _ in range(suspect_after):
                network.run_round(nodes)
        assert slow.node_id not in detector.confirmed()

    @given(
        n_nodes=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=2**20),
        suspect_after=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=10, deadline=None, derandomize=True)
    def test_dead_node_always_confirmed_within_bound(
        self, n_nodes, seed, suspect_after
    ):
        network, detector, nodes = _detected_network(
            n_nodes, seed=seed, suspect_after=suspect_after
        )
        network.run_round(nodes)
        del nodes[n_nodes - 1]
        # suspect_after stale rounds + one to suspect + a generous
        # dissemination allowance.
        for _ in range(suspect_after + 2 + 4 * n_nodes):
            network.run_round(nodes)
            if (n_nodes - 1) in detector.confirmed():
                break
        assert (n_nodes - 1) in detector.confirmed()
