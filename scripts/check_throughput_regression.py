#!/usr/bin/env python3
"""Gate fresh throughput smoke runs against the committed trajectory.

The throughput bench's weighted arm measures how much faster geometric
skip-ahead consumption is than per-unit coin flips
(``skip_ahead_speedup``).  Full runs append that measurement to the
committed ``benchmarks/trajectory/BENCH_cluster_throughput_trajectory
.json``; this gate compares a *fresh* run's speedup against the latest
committed reference and fails loudly on a > 20% regression.

The speedup is a ratio of two runs on the same machine, so it transfers
across hardware far better than absolute events/sec — but it still
needs a comparable workload, which is why full-run trajectory rows also
record ``skip_ahead_speedup_smoke``: the same arm re-measured at smoke
size, the apples-to-apples reference for CI's smoke rows.

Unlike the bench's multi-worker bars, this gate does *not* skip on
single-core runners: the speedup under test is a ratio of two serial
runs of the same workload, meaningful on any core count.

Skips (exit 0, loudly) when:

* there is no committed trajectory yet (bootstrap — the first full run
  creates it);
* the fresh artifact is missing (run the bench smoke first).

Usage::

    python scripts/check_throughput_regression.py [--max-regression 0.2]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]
FRESH = REPO / "benchmarks" / "results" / "BENCH_cluster_throughput.json"
TRAJECTORY = (
    REPO
    / "benchmarks"
    / "trajectory"
    / "BENCH_cluster_throughput_trajectory.json"
)

#: Mirrors ``_THROUGHPUT_FULL_EVENTS`` in ``benchmarks/bench_cluster.py``.
FULL_RUN_EVENTS = 400_000


def _display(path: pathlib.Path) -> str:
    """Repo-relative when possible (the usual case), absolute otherwise."""
    try:
        return str(path.relative_to(REPO))
    except ValueError:
        return str(path)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.2,
        help="allowed fractional drop vs the reference (default: 0.2)",
    )
    args = parser.parse_args(argv)
    if not TRAJECTORY.exists():
        print(
            "throughput regression gate: no committed trajectory at "
            f"{_display(TRAJECTORY)} — bootstrap pending, "
            "skipping (a full '--scenario throughput' run creates it)"
        )
        return 0
    if not FRESH.exists():
        print(
            "throughput regression gate: no fresh artifact at "
            f"{_display(FRESH)} — run the bench smoke first "
            "(python benchmarks/bench_cluster.py -q "
            "--scenario throughput)"
        )
        return 1
    fresh = json.loads(FRESH.read_text(encoding="utf-8"))
    trajectory = json.loads(TRAJECTORY.read_text(encoding="utf-8"))
    rows = trajectory.get("rows") or []
    if not rows:
        print(
            "throughput regression gate: committed trajectory holds no "
            "rows — bootstrap pending, skipping"
        )
        return 0
    reference = rows[-1]
    full_run = int(fresh["workload"]["events"]) >= FULL_RUN_EVENTS
    # A fresh full run compares against the reference's full-size
    # measurement; a smoke run against the smoke-size re-measurement
    # the full run recorded alongside it.
    key = "skip_ahead_speedup" if full_run else "skip_ahead_speedup_smoke"
    measured = float(fresh["skip_ahead_speedup"])
    baseline = float(reference[key])
    floor = baseline * (1.0 - args.max_regression)
    verdict = (
        f"measured {measured:.2f}x vs committed {baseline:.2f}x "
        f"({reference.get('date', 'undated')} reference, "
        f"{'full' if full_run else 'smoke'} run, floor {floor:.2f}x)"
    )
    if measured < floor:
        print(
            "throughput regression gate: FAIL — skip-ahead speedup "
            f"regressed more than {100 * args.max_regression:.0f}%: "
            + verdict
        )
        return 1
    print(f"throughput regression gate: ok — {verdict}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
