#!/usr/bin/env python3
"""Docs link checker: every repo-relative reference must resolve.

Scans the documentation set (``README.md``, ``docs/*.md``, and the other
root-level ``*.md`` files) for

* markdown links ``[text](target)`` whose target is a relative path, and
* backtick references like ```src/repro/cluster/rebalance.py``` that
  look like repo paths,

and fails (exit 1) listing every target that does not exist on disk —
so renaming a module or example cannot silently strand the docs.
External (``http://``/``https://``), in-page (``#...``), and absolute
targets are skipped; so are backtick paths with glob or placeholder
characters.

Usage::

    python scripts/check_docs_links.py [--quiet]
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]

_MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_BACKTICK_PATH = re.compile(
    r"`((?:src|docs|tests|benchmarks|examples|scripts)/[A-Za-z0-9_\-./]+)`"
)
_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#", "/")
_PLACEHOLDER_CHARS = ("*", "<", ">", "{", "}")
#: Generated / externally-sourced inputs, not maintained documentation:
#: ISSUE.md is rewritten by the PR driver, PAPER(S).md and SNIPPETS.md
#: are retrieval artifacts that quote other repos' paths verbatim.
_EXCLUDED = {"ISSUE.md", "PAPER.md", "PAPERS.md", "SNIPPETS.md"}


def doc_files() -> list[pathlib.Path]:
    """The documentation set, deterministically ordered."""
    files = sorted(REPO.glob("*.md")) + sorted((REPO / "docs").glob("*.md"))
    return [
        path
        for path in files
        if path.is_file() and path.name not in _EXCLUDED
    ]


def references(text: str) -> set[str]:
    """All checkable repo-relative targets mentioned in a document."""
    found: set[str] = set()
    for match in _MARKDOWN_LINK.finditer(text):
        target = match.group(1).split("#", 1)[0]
        if not target or target.startswith(_SKIP_PREFIXES):
            continue
        found.add(target)
    for match in _BACKTICK_PATH.finditer(text):
        target = match.group(1)
        if any(ch in target for ch in _PLACEHOLDER_CHARS):
            continue
        found.add(target)
    return found


def unresolved(path: pathlib.Path, targets: set[str]) -> list[str]:
    """The subset of ``targets`` that do not resolve to files/dirs.

    Markdown-link targets resolve relative to the document's directory
    (standard markdown semantics); backtick paths resolve from the repo
    root, falling back to document-relative.
    """
    missing = []
    for target in sorted(targets):
        candidates = (path.parent / target, REPO / target)
        if not any(c.exists() for c in candidates):
            missing.append(target)
    return missing


def broken_references(path: pathlib.Path) -> list[str]:
    """Referenced targets in ``path`` that do not resolve."""
    return unresolved(path, references(path.read_text(encoding="utf-8")))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quiet", action="store_true", help="only print failures"
    )
    args = parser.parse_args(argv)
    failures = 0
    checked = 0
    for path in doc_files():
        targets = references(path.read_text(encoding="utf-8"))
        checked += len(targets)
        for target in unresolved(path, targets):
            failures += 1
            print(f"{path.relative_to(REPO)}: broken reference -> {target}")
    if failures:
        print(f"\n{failures} broken reference(s)")
        return 1
    if not args.quiet:
        print(
            f"docs links ok: {checked} references across "
            f"{len(doc_files())} documents"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
