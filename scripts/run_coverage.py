#!/usr/bin/env python3
"""Line-coverage report for the cluster subsystem, with a floor.

Runs the cluster test suite (``tests/cluster``, minus the bench-smoke
subprocess tests — child processes contribute no in-process coverage)
and measures line coverage of ``src/repro/cluster/``.  Two engines:

* **pytest-cov**, when installed (CI installs it): the standard
  ``pytest --cov=repro.cluster --cov-report=json`` run;
* a **stdlib fallback** otherwise: a ``sys.settrace`` /
  ``threading.settrace`` line collector restricted to the target
  directory, with executable lines derived from the compiled code
  objects (``co_lines``) minus ``pragma: no cover`` blocks and
  ``TYPE_CHECKING`` guards — no *coverage* packages required.  (The
  test suite itself still needs its own dependencies: pytest and
  hypothesis.)

Either way the script writes ``coverage/cluster_coverage.json`` (plus a
rendered ``.txt`` summary, both uploaded as CI artifacts) and exits 1
when overall coverage of ``src/repro/cluster/`` falls below the floor —
or when any module in the target directory has *no executed lines at
all* (pytest-cov silently omits never-imported modules; a brand-new
module must never pass the gate by shrinking the denominator).

Usage::

    PYTHONPATH=src python scripts/run_coverage.py [--floor 85]
        [--out coverage] [--engine auto|pytest-cov|stdlib]
"""

from __future__ import annotations

import argparse
import ast
import json
import pathlib
import subprocess
import sys
import types

REPO = pathlib.Path(__file__).resolve().parents[1]
TARGET_DIR = REPO / "src" / "repro" / "cluster"
TEST_ARGS = [
    str(REPO / "tests" / "cluster"),
    f"--ignore={REPO / 'tests' / 'cluster' / 'test_bench_smoke.py'}",
    "-q",
    "-p",
    "no:cacheprovider",
]
DEFAULT_FLOOR = 85.0


# ----------------------------------------------------------------------
# executable-line analysis (stdlib engine)
# ----------------------------------------------------------------------
def _pragma_excluded_lines(source: str, tree: ast.Module) -> set[int]:
    """Lines excluded from the denominator, coverage.py-style.

    A ``pragma: no cover`` comment excludes its own line; on a
    ``def`` / ``class`` / branch header it excludes the whole block.
    ``if TYPE_CHECKING:`` bodies never run by design and are excluded
    the same way.
    """
    lines = source.splitlines()
    pragma = {
        number
        for number, text in enumerate(lines, 1)
        if "pragma: no cover" in text
    }
    excluded = set(pragma)

    def _block(node: ast.AST) -> None:
        end = getattr(node, "end_lineno", None)
        if end is not None:
            excluded.update(range(node.lineno, end + 1))

    for node in ast.walk(tree):
        lineno = getattr(node, "lineno", None)
        if lineno is None:
            continue
        if isinstance(
            node,
            (
                ast.FunctionDef,
                ast.AsyncFunctionDef,
                ast.ClassDef,
                ast.If,
                ast.For,
                ast.While,
                ast.Try,
                ast.With,
            ),
        ):
            header_end = getattr(
                getattr(node, "body", [node])[0], "lineno", lineno
            )
            if any(n in pragma for n in range(lineno, header_end)):
                _block(node)
        if isinstance(node, ast.If):
            test = node.test
            name = (
                test.id
                if isinstance(test, ast.Name)
                else test.attr
                if isinstance(test, ast.Attribute)
                else None
            )
            if name == "TYPE_CHECKING":
                # The guard line itself runs; its body never does.
                for child in node.body:
                    _block(child)
    return excluded


def executable_lines(path: pathlib.Path) -> set[int]:
    """Line numbers the compiled module can actually execute."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    code = compile(source, str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        current = stack.pop()
        for const in current.co_consts:
            if isinstance(const, types.CodeType):
                stack.append(const)
        for _, _, line in current.co_lines():
            if line is not None:
                lines.add(line)
    return lines - _pragma_excluded_lines(source, tree)


# ----------------------------------------------------------------------
# stdlib engine: settrace collector around an in-process pytest run
# ----------------------------------------------------------------------
def _run_stdlib_engine() -> tuple[dict[str, dict], int]:
    """Trace the cluster tests; returns (per-file report, pytest rc)."""
    import threading

    import pytest

    prefix = str(TARGET_DIR) + "/"
    hits: dict[str, set[int]] = {}

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(prefix):
            return None
        if event == "line":
            hits.setdefault(filename, set()).add(frame.f_lineno)
        return tracer

    # Target modules may already be imported (pytest plugins, conftest);
    # purge them so their import-time lines (def/class statements) run
    # under the tracer like everything else.
    for name in [
        name for name in sys.modules if name.startswith("repro")
    ]:
        del sys.modules[name]

    threading.settrace(tracer)  # worker threads (the parallel plan)
    sys.settrace(tracer)
    try:
        return_code = pytest.main(TEST_ARGS)
    finally:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]

    report: dict[str, dict] = {}
    for path in sorted(TARGET_DIR.glob("*.py")):
        expected = executable_lines(path)
        covered = hits.get(str(path), set()) & expected
        missing = sorted(expected - covered)
        report[path.name] = {
            "statements": len(expected),
            "covered": len(covered),
            "percent": (
                round(100.0 * len(covered) / len(expected), 2)
                if expected
                else 100.0
            ),
            "missing_lines": missing,
        }
    return report, int(return_code)


# ----------------------------------------------------------------------
# pytest-cov engine
# ----------------------------------------------------------------------
def _run_pytest_cov_engine(
    out_dir: pathlib.Path,
) -> tuple[dict[str, dict], int]:
    """The real thing: ``pytest --cov`` in a subprocess, JSON report."""
    raw = out_dir / "pytest_cov_raw.json"
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            *TEST_ARGS,
            "--cov=repro.cluster",
            f"--cov-report=json:{raw}",
        ],
        cwd=REPO,
    )
    if not raw.exists():
        # pytest died before the plugin could write its report (missing
        # pytest-cov, collection error, ...): surface the pytest exit
        # code instead of an unrelated parse failure.
        return {}, completed.returncode or 1
    payload = json.loads(raw.read_text(encoding="utf-8"))
    report: dict[str, dict] = {}
    for filename, data in sorted(payload.get("files", {}).items()):
        path = pathlib.Path(filename)
        if TARGET_DIR not in (REPO / path).parents:
            continue
        summary = data["summary"]
        report[path.name] = {
            "statements": summary["num_statements"],
            "covered": summary["covered_lines"],
            "percent": round(summary["percent_covered"], 2),
            "missing_lines": data.get("missing_lines", []),
        }
    return report, completed.returncode


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def _render(report: dict[str, dict], overall: float, engine: str) -> str:
    width = max(len(name) for name in report)
    lines = [
        f"Coverage of src/repro/cluster/ (engine: {engine})",
        "",
        f"{'file'.ljust(width)}  stmts  covered  percent",
    ]
    for name, row in report.items():
        lines.append(
            f"{name.ljust(width)}  {row['statements']:5d}  "
            f"{row['covered']:7d}  {row['percent']:6.2f}%"
        )
    lines.append("")
    lines.append(f"TOTAL: {overall:.2f}%")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="cluster-subsystem coverage report with a floor"
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=DEFAULT_FLOOR,
        help=f"minimum overall percent (default {DEFAULT_FLOOR})",
    )
    parser.add_argument(
        "--out",
        default=str(REPO / "coverage"),
        help="artifact directory (default: <repo>/coverage)",
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "pytest-cov", "stdlib"),
        default="auto",
        help=(
            "auto picks pytest-cov when installed, else the stdlib "
            "settrace fallback"
        ),
    )
    args = parser.parse_args(argv)

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    engine = args.engine
    if engine == "auto":
        try:
            import pytest_cov  # noqa: F401

            engine = "pytest-cov"
        except ImportError:
            engine = "stdlib"

    if engine == "pytest-cov":
        report, test_rc = _run_pytest_cov_engine(out_dir)
    else:
        report, test_rc = _run_stdlib_engine()
    if test_rc != 0:
        print(f"cluster tests failed (pytest exit {test_rc})")
        return test_rc

    # Every module in the target directory belongs in the report with
    # at least one executed line.  pytest-cov silently omits modules
    # nothing imported, and a module the suite never executes would
    # otherwise shrink the denominator instead of failing the gate —
    # exactly how a new subsystem escapes coverage enforcement.
    unexecuted = sorted(
        path.name
        for path in TARGET_DIR.glob("*.py")
        if path.name not in report
        or (
            report[path.name]["statements"] > 0
            and report[path.name]["covered"] == 0
        )
    )
    if unexecuted:
        print(
            "FAIL: modules in src/repro/cluster/ with no executed "
            f"lines (missing from the suite entirely): {unexecuted}"
        )
        return 1

    total_statements = sum(row["statements"] for row in report.values())
    total_covered = sum(row["covered"] for row in report.values())
    overall = (
        100.0 * total_covered / total_statements if total_statements else 0.0
    )

    payload = {
        "target": "src/repro/cluster/",
        "engine": engine,
        "floor_percent": args.floor,
        "overall_percent": round(overall, 2),
        "files": report,
    }
    json_path = out_dir / "cluster_coverage.json"
    json_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
        + "\n",
        encoding="utf-8",
    )
    text = _render(report, overall, engine)
    (out_dir / "cluster_coverage.txt").write_text(
        text + "\n", encoding="utf-8"
    )
    print(text)
    print(f"\nwrote {json_path}")

    if overall < args.floor:
        print(
            f"FAIL: overall coverage {overall:.2f}% is below the "
            f"{args.floor:.2f}% floor"
        )
        return 1
    print(f"floor {args.floor:.2f}% met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
