#!/usr/bin/env python3
"""Validate every ``BENCH_*.json`` artifact: strict JSON + shared schema.

The benchmark suite writes machine-readable artifacts under
``benchmarks/results/`` with a shared schema (``benchmark`` / ``seed`` /
``workload`` / ``rows``).  This checker fails (exit 1) when any artifact

* is not *strict* JSON — ``NaN`` / ``Infinity`` / ``-Infinity`` are
  rejected with ``json.loads(..., parse_constant=...)``, the regression
  guard for the ``events_per_sec: Infinity`` bug, and a re-dump with
  ``allow_nan=False`` must round-trip;
* is missing a required key, or carries one with the wrong shape
  (``rows`` must be a non-empty list of objects, ``workload`` an
  object, ``seed`` an integer);
* names a different benchmark than its filename promises
  (``BENCH_<name>.json`` must carry ``"benchmark": "<name>"``);
* embeds a malformed telemetry snapshot — a row's optional
  ``metrics`` object (written by the cluster scenarios from
  ``repro.obs``) must carry ``counters`` (string → non-negative int),
  ``gauges`` (string → number), ``histograms`` (series →
  buckets/count/sum) and ``stages`` (stage → count/total_s/max_s);
* is a ``cluster_membership`` artifact whose rows break the scenario's
  own acceptance shape — every row must carry ``nodes`` (positive
  int), ``detection_rounds`` (non-negative int), and
  ``healed_equivalent`` exactly ``true`` (a self-healed run that is
  *not* bit-identical to its driver-healed reference must never ship);
* is a ``cluster_throughput`` artifact that breaks the plan-arm shape
  — ``parallel_bit_identical`` and ``process_bit_identical`` must be
  exactly ``true`` (an execution plan that diverged from the serial
  reference must never ship), and ``process_rows`` must be a
  non-empty list whose rows carry ``nodes`` (positive int), ``arm``
  (``serial`` / ``parallel`` / ``process``), and a positive
  ``events_per_sec``;
* is a ``cluster_throughput`` artifact whose weighted skip-ahead arm
  is malformed or dishonest — ``skipahead_rows`` must hold exactly a
  ``per_unit`` row then a ``skip_ahead`` row with positive rates,
  ``weighted_bit_identical`` must be exactly ``true``, and on full
  runs (≥ 400k events) the skip-ahead arm must not be slower than the
  per-unit arm (``skip_ahead_speedup >= 1``);
* is a ``cluster_throughput_trajectory`` artifact (the *committed*
  skip-ahead history under ``benchmarks/trajectory/``) whose rows
  lack the reference fields the CI regression gate needs, or record a
  full run where skip-ahead lost to per-unit;
* is a ``cluster_serving`` artifact whose rows break the serving
  scenario's acceptance shape — every row must carry ``replicas``
  (positive int), a positive ``queries_per_sec``, honest staleness
  fields (``staleness_lag_events`` non-negative int,
  ``staleness_bound_events`` positive int), and both
  ``replica_reads_bit_identical`` and ``served_equals_unserved``
  exactly ``true`` (a serving layer that changed what the cluster
  computes, or replica reads that diverged from ``global_view()``
  after convergence, must never ship).

Usage::

    python scripts/check_bench_json.py [paths...] [--quiet]

With no paths, checks every ``BENCH_*.json`` under
``benchmarks/results/`` plus the committed trajectory artifacts under
``benchmarks/trajectory/``, and fails if there are none (run the bench
smoke first; CI does).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]
RESULTS_DIR = REPO / "benchmarks" / "results"
TRAJECTORY_DIR = REPO / "benchmarks" / "trajectory"

#: Mirrors ``_THROUGHPUT_FULL_EVENTS`` in ``benchmarks/bench_cluster.py``
#: — below this the skip-ahead speedup is smoke-run noise and only the
#: shape is validated, not the win.
FULL_RUN_EVENTS = 400_000

_REQUIRED_KEYS = ("benchmark", "seed", "workload", "rows")


def _reject_constant(token: str) -> float:
    """Refuse the non-finite constants strict JSON does not allow."""
    raise ValueError(f"non-finite JSON constant {token!r}")


def _check_metrics(metrics: object, where: str) -> list[str]:
    """Schema problems with one embedded telemetry snapshot."""
    if not isinstance(metrics, dict):
        return [f"{where}: metrics must be an object"]
    problems: list[str] = []
    for family in ("counters", "gauges", "histograms", "stages"):
        if family not in metrics:
            problems.append(f"{where}: metrics missing {family!r}")
        elif not isinstance(metrics[family], dict):
            problems.append(f"{where}: metrics {family} must be an object")
    if problems:
        return problems
    for series, value in metrics["counters"].items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            problems.append(
                f"{where}: counter {series!r} must be a non-negative "
                f"integer, got {value!r}"
            )
    for series, value in metrics["gauges"].items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            problems.append(
                f"{where}: gauge {series!r} must be numeric, got {value!r}"
            )
    for series, histogram in metrics["histograms"].items():
        if not isinstance(histogram, dict) or not all(
            key in histogram for key in ("buckets", "count", "sum")
        ):
            problems.append(
                f"{where}: histogram {series!r} must carry "
                "buckets/count/sum"
            )
        elif not isinstance(histogram["buckets"], list):
            problems.append(
                f"{where}: histogram {series!r} buckets must be a list"
            )
    for stage, cell in metrics["stages"].items():
        if not isinstance(cell, dict) or not all(
            key in cell for key in ("count", "total_s", "max_s")
        ):
            problems.append(
                f"{where}: stage {stage!r} must carry count/total_s/max_s"
            )
    return problems


def _check_membership_row(row: dict, where: str) -> list[str]:
    """Schema problems with one ``cluster_membership`` scenario row."""
    problems: list[str] = []
    nodes = row.get("nodes")
    if not isinstance(nodes, int) or isinstance(nodes, bool) or nodes < 1:
        problems.append(
            f"{where}: nodes must be a positive integer, got {nodes!r}"
        )
    rounds = row.get("detection_rounds")
    if (
        not isinstance(rounds, int)
        or isinstance(rounds, bool)
        or rounds < 0
    ):
        problems.append(
            f"{where}: detection_rounds must be a non-negative "
            f"integer, got {rounds!r}"
        )
    if row.get("healed_equivalent") is not True:
        problems.append(
            f"{where}: healed_equivalent must be true — a self-healed "
            "run that diverged from its driver-healed reference must "
            "never ship"
        )
    return problems


def _check_serving_row(row: dict, where: str) -> list[str]:
    """Schema problems with one ``cluster_serving`` scenario row."""
    problems: list[str] = []
    replicas = row.get("replicas")
    if (
        not isinstance(replicas, int)
        or isinstance(replicas, bool)
        or replicas < 1
    ):
        problems.append(
            f"{where}: replicas must be a positive integer, "
            f"got {replicas!r}"
        )
    rate = row.get("queries_per_sec")
    if (
        isinstance(rate, bool)
        or not isinstance(rate, (int, float))
        or rate <= 0
    ):
        problems.append(
            f"{where}: queries_per_sec must be positive, got {rate!r}"
        )
    lag = row.get("staleness_lag_events")
    if not isinstance(lag, int) or isinstance(lag, bool) or lag < 0:
        problems.append(
            f"{where}: staleness_lag_events must be a non-negative "
            f"integer, got {lag!r}"
        )
    bound = row.get("staleness_bound_events")
    if not isinstance(bound, int) or isinstance(bound, bool) or bound < 1:
        problems.append(
            f"{where}: staleness_bound_events must be a positive "
            f"integer, got {bound!r}"
        )
    if row.get("replica_reads_bit_identical") is not True:
        problems.append(
            f"{where}: replica_reads_bit_identical must be true — a "
            "converged replica read that diverged from global_view() "
            "must never ship"
        )
    if row.get("served_equals_unserved") is not True:
        problems.append(
            f"{where}: served_equals_unserved must be true — a serving "
            "layer that changed what the cluster computes must never "
            "ship"
        )
    return problems


_PLAN_ARMS = ("serial", "parallel", "process")


def _check_throughput_extras(payload: dict) -> list[str]:
    """Schema problems with ``cluster_throughput``'s plan-arm shape."""
    problems: list[str] = []
    for flag in ("parallel_bit_identical", "process_bit_identical"):
        if payload.get(flag) is not True:
            problems.append(
                f"{flag} must be true — an execution plan that "
                "diverged from the serial reference must never ship"
            )
    process_rows = payload.get("process_rows")
    if not isinstance(process_rows, list) or not process_rows:
        problems.append("process_rows must be a non-empty list")
        return problems
    for index, row in enumerate(process_rows):
        where = f"process_rows[{index}]"
        if not isinstance(row, dict):
            problems.append(f"{where}: must be an object")
            continue
        nodes = row.get("nodes")
        if (
            not isinstance(nodes, int)
            or isinstance(nodes, bool)
            or nodes < 1
        ):
            problems.append(
                f"{where}: nodes must be a positive integer, "
                f"got {nodes!r}"
            )
        if row.get("arm") not in _PLAN_ARMS:
            problems.append(
                f"{where}: arm must be one of {_PLAN_ARMS}, "
                f"got {row.get('arm')!r}"
            )
        rate = row.get("events_per_sec")
        if (
            isinstance(rate, bool)
            or not isinstance(rate, (int, float))
            or rate <= 0
        ):
            problems.append(
                f"{where}: events_per_sec must be positive, "
                f"got {rate!r}"
            )
        if "metrics" in row:
            problems.extend(_check_metrics(row["metrics"], where))
    problems.extend(_check_skipahead_arm(payload))
    return problems


_CONSUME_ARMS = ("per_unit", "skip_ahead")


def _positive_rate(value: object) -> bool:
    return (
        not isinstance(value, bool)
        and isinstance(value, (int, float))
        and value > 0
    )


def _check_skipahead_arm(payload: dict) -> list[str]:
    """Problems with ``cluster_throughput``'s weighted skip-ahead arm."""
    problems: list[str] = []
    rows = payload.get("skipahead_rows")
    if not isinstance(rows, list) or [
        row.get("arm") if isinstance(row, dict) else None for row in rows
    ] != list(_CONSUME_ARMS):
        problems.append(
            "skipahead_rows must hold exactly a per_unit row then a "
            "skip_ahead row"
        )
        return problems
    for index, row in enumerate(rows):
        where = f"skipahead_rows[{index}]"
        if not _positive_rate(row.get("events_per_sec")):
            problems.append(
                f"{where}: events_per_sec must be positive, "
                f"got {row.get('events_per_sec')!r}"
            )
        if "metrics" in row:
            problems.extend(_check_metrics(row["metrics"], where))
    if payload.get("weighted_bit_identical") is not True:
        problems.append(
            "weighted_bit_identical must be true — a consume mode that "
            "changed what an exact cluster computes must never ship"
        )
    speedup = payload.get("skip_ahead_speedup")
    if not _positive_rate(speedup):
        problems.append(
            f"skip_ahead_speedup must be positive, got {speedup!r}"
        )
        return problems
    workload = payload.get("workload")
    events = workload.get("events") if isinstance(workload, dict) else 0
    if (
        isinstance(events, int)
        and events >= FULL_RUN_EVENTS
        and speedup < 1.0
    ):
        problems.append(
            f"skip_ahead_speedup {speedup} < 1 on a full run — the "
            "skip-ahead arm must never be slower than per-unit"
        )
    return problems


def _check_trajectory_row(row: dict, where: str) -> list[str]:
    """Problems with one committed ``cluster_throughput_trajectory`` row."""
    problems: list[str] = []
    cpus = row.get("cpus")
    if not isinstance(cpus, int) or isinstance(cpus, bool) or cpus < 1:
        problems.append(
            f"{where}: cpus must be a positive integer, got {cpus!r}"
        )
    for field in (
        "per_unit_events_per_sec",
        "skip_ahead_events_per_sec",
        "skip_ahead_speedup",
        "skip_ahead_speedup_smoke",
    ):
        if not _positive_rate(row.get(field)):
            problems.append(
                f"{where}: {field} must be positive, "
                f"got {row.get(field)!r}"
            )
    speedup = row.get("skip_ahead_speedup")
    if _positive_rate(speedup) and speedup < 1.0:
        problems.append(
            f"{where}: skip_ahead_speedup {speedup} < 1 — trajectory "
            "rows record full runs, where skip-ahead must win"
        )
    return problems


def check_payload(payload: object, expected_name: str | None) -> list[str]:
    """Schema problems with one parsed artifact (empty when valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be an object, got {type(payload).__name__}"]
    for key in _REQUIRED_KEYS:
        if key not in payload:
            problems.append(f"missing required key {key!r}")
    if problems:
        return problems
    if expected_name is not None and payload["benchmark"] != expected_name:
        problems.append(
            f"benchmark name {payload['benchmark']!r} does not match "
            f"the filename's {expected_name!r}"
        )
    if not isinstance(payload["seed"], int):
        problems.append("seed must be an integer")
    if not isinstance(payload["workload"], dict):
        problems.append("workload must be an object")
    rows = payload["rows"]
    if not isinstance(rows, list) or not rows:
        problems.append("rows must be a non-empty list")
    elif not all(isinstance(row, dict) for row in rows):
        problems.append("every row must be an object")
    else:
        for index, row in enumerate(rows):
            if "metrics" in row:
                problems.extend(
                    _check_metrics(row["metrics"], f"rows[{index}]")
                )
            if payload["benchmark"] == "cluster_membership":
                problems.extend(
                    _check_membership_row(row, f"rows[{index}]")
                )
            if payload["benchmark"] == "cluster_serving":
                problems.extend(
                    _check_serving_row(row, f"rows[{index}]")
                )
            if payload["benchmark"] == "cluster_throughput_trajectory":
                problems.extend(
                    _check_trajectory_row(row, f"rows[{index}]")
                )
    if payload["benchmark"] == "cluster_throughput":
        problems.extend(_check_throughput_extras(payload))
    return problems


def check_file(path: pathlib.Path) -> list[str]:
    """All problems with one artifact file (empty when valid)."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [f"unreadable: {exc}"]
    try:
        payload = json.loads(text, parse_constant=_reject_constant)
    except ValueError as exc:
        return [f"not strict JSON: {exc}"]
    name = path.name
    expected = (
        name[len("BENCH_"):-len(".json")]
        if name.startswith("BENCH_") and name.endswith(".json")
        else None
    )
    problems = check_payload(payload, expected)
    try:
        json.dumps(payload, allow_nan=False)
    except ValueError as exc:  # pragma: no cover - loads would fail first
        problems.append(f"does not re-serialize strictly: {exc}")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=pathlib.Path,
        help=(
            "artifact files to check (default: benchmarks/results/"
            "BENCH_*.json)"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true", help="only print failures"
    )
    args = parser.parse_args(argv)
    paths = args.paths or (
        sorted(RESULTS_DIR.glob("BENCH_*.json"))
        + sorted(TRAJECTORY_DIR.glob("BENCH_*.json"))
    )
    if not paths:
        print(
            f"no BENCH_*.json artifacts under {RESULTS_DIR} — run the "
            "bench smoke first (python benchmarks/bench_cluster.py -q)"
        )
        return 1
    failures = 0
    for path in paths:
        for problem in check_file(path):
            failures += 1
            try:
                shown = path.relative_to(REPO)
            except ValueError:
                shown = path
            print(f"{shown}: {problem}")
    if failures:
        print(f"\n{failures} problem(s) across {len(paths)} artifact(s)")
        return 1
    if not args.quiet:
        print(f"bench JSON ok: {len(paths)} artifact(s) validated")
    return 0


if __name__ == "__main__":
    sys.exit(main())
