#!/usr/bin/env bash
# The single entry point CI and humans share: everything the repo
# considers "green", in the order CI runs it.
#
#   scripts/run_checks.sh            # full check suite (~8 minutes)
#   scripts/run_checks.sh --no-bench # skip the bench smoke + JSON check
#   scripts/run_checks.sh --no-cov   # skip the coverage report + floor
#
# Steps:
#   1. tier-1 pytest  (includes the doctest pass, docs-link tests, and
#      the bench smoke rows that tier-1 already pins)
#   2. explicit doctest pass           (same tests, surfaced separately)
#   3. docs link check                 (scripts/check_docs_links.py)
#   4. bench smoke, every scenario     (scaling, elastic, durability,
#      throughput, gossip, membership, serving — writes BENCH_*.json)
#   5. strict-JSON artifact validation (scripts/check_bench_json.py)
#   5b. throughput regression gate     (smoke skip-ahead speedup vs the
#      committed benchmarks/trajectory/ reference; >20% drop fails,
#      single-core runners skip)
#   6. process-plan smoke              (a crash-bearing stream through
#      per-node worker processes plus a serve up/status/down round
#      trip, each under a hard 120 s timeout)
#   7. serving smoke                   (--serve-http over a real run:
#      all four JSON endpoints fetched and validated as strict JSON,
#      under a hard timeout)
#   8. cluster coverage report + floor (scripts/run_coverage.py —
#      pytest-cov when installed, stdlib tracer otherwise; fails below
#      the floor on src/repro/cluster/)
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

run_bench=1
run_cov=1
for arg in "$@"; do
  case "$arg" in
    --no-bench) run_bench=0 ;;
    --no-cov) run_cov=0 ;;
    *) echo "unknown option: $arg (supported: --no-bench, --no-cov)" >&2; exit 2 ;;
  esac
done

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== doctest pass =="
python -m pytest tests/test_doctests.py -q

echo
echo "== docs link check =="
python scripts/check_docs_links.py

if [ "$run_bench" -eq 1 ]; then
  echo
  echo "== bench smoke (every scenario) =="
  for scenario in scaling elastic durability throughput gossip membership serving; do
    echo "-- scenario: $scenario"
    python benchmarks/bench_cluster.py -q --scenario "$scenario" >/dev/null
  done

  echo
  echo "== bench JSON validation =="
  python scripts/check_bench_json.py

  echo
  echo "== throughput regression gate (vs committed trajectory) =="
  python scripts/check_throughput_regression.py

  echo
  echo "== process-plan smoke (2 workers, hard 120s budget) =="
  process_dir="$(mktemp -d)"
  timeout 120 python src/repro/cli.py cluster \
    --nodes 2 --events 8000 --keys 200 \
    --checkpoint-every 2000 --kill 1@4000 \
    --plan process \
    --storage file --storage-dir "$process_dir/store" >/dev/null
  timeout 120 python src/repro/cli.py \
    cluster serve up --dir "$process_dir/store" --nodes 2 >/dev/null
  python src/repro/cli.py \
    cluster serve status --dir "$process_dir/store" >/dev/null
  python src/repro/cli.py \
    cluster serve down --dir "$process_dir/store" >/dev/null
  rm -rf "$process_dir"

  echo
  echo "== serving smoke (HTTP over a finished run, hard timeout) =="
  serving_log="$(mktemp)"
  python src/repro/cli.py cluster \
    --nodes 2 --events 6000 --keys 100 \
    --aggregation gossip --gossip-every 1500 \
    --serve-http 0 >"$serving_log" &
  serving_pid=$!
  serving_url=""
  for _ in $(seq 1 120); do
    serving_url="$(sed -n 's/^serving: \(http:[^ ]*\).*/\1/p' "$serving_log")"
    [ -n "$serving_url" ] && break
    if ! kill -0 "$serving_pid" 2>/dev/null; then
      echo "serving smoke: server exited before binding" >&2
      cat "$serving_log" >&2
      exit 1
    fi
    sleep 0.5
  done
  if [ -z "$serving_url" ]; then
    echo "serving smoke: server never reported its URL" >&2
    kill "$serving_pid" 2>/dev/null || true
    exit 1
  fi
  for endpoint in "/healthz" "/v1/keys/page-000000" "/v1/topk?k=3" "/v1/view"; do
    timeout 30 python -c '
import json, sys, urllib.request
with urllib.request.urlopen(sys.argv[1], timeout=10) as reply:
    payload = json.loads(reply.read().decode("utf-8"))
json.dumps(payload, allow_nan=False)   # strict JSON or bust
' "$serving_url$endpoint"
  done
  kill "$serving_pid"
  wait "$serving_pid" || true
  rm -f "$serving_log"

  echo
  echo "== telemetry sample (metrics snapshot + structured trace) =="
  sample_dir="$(mktemp -d)"
  python src/repro/cli.py cluster \
    --nodes 3 --events 20000 --keys 200 \
    --checkpoint-every 5000 --kill 1@10000 \
    --storage file --storage-dir "$sample_dir/store" \
    --metrics-out benchmarks/results/TELEMETRY_metrics.json \
    --trace-out benchmarks/results/TELEMETRY_trace.jsonl >/dev/null
  rm -rf "$sample_dir"
fi

if [ "$run_cov" -eq 1 ]; then
  echo
  echo "== cluster coverage (floor on src/repro/cluster/) =="
  python scripts/run_coverage.py
fi

echo
echo "all checks passed"
