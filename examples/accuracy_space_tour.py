#!/usr/bin/env python3
"""A tour of the paper's quantitative landscape in three plots.

1. the Figure 1 CDF comparison (reduced trials);
2. the accuracy-vs-bits tradeoff (E8);
3. the δ-scaling table that is the paper's headline (E3).

Usage::

    python examples/accuracy_space_tour.py [trials]
"""

from __future__ import annotations

import sys

from repro.experiments.config import ExperimentContext
from repro.experiments.figure1 import Figure1Config, run_figure1
from repro.experiments.space_scaling import DeltaSweepConfig, run_delta_sweep
from repro.experiments.tradeoff import TradeoffConfig, run_tradeoff


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    context = ExperimentContext(seed=7)

    print("=== Figure 1: error CDFs at 17 bits ===\n")
    figure1 = run_figure1(Figure1Config(trials=trials), context)
    print(figure1.plot(width=64, height=16))
    print()
    print(figure1.table())
    print(f"\nKS distance: {figure1.ks_distance():.4f}\n")

    print("=== E8: RMS error vs bit budget ===\n")
    tradeoff = run_tradeoff(
        TradeoffConfig(trials=max(50, trials // 4)), context
    )
    print(tradeoff.table())

    print("\n=== E3: space vs failure probability ===\n")
    sweep = run_delta_sweep(DeltaSweepConfig(trials=10), context)
    print(sweep.table())
    ny_slope, cheb_slope = sweep.delta_slopes()
    print(
        f"\nbits per doubling of log(1/delta): NelsonYu {ny_slope:.2f}, "
        f"Chebyshev-Morris {cheb_slope:.2f} — the exponential separation "
        "of Theorem 1.1."
    )


if __name__ == "__main__":
    main()
