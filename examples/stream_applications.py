#!/usr/bin/env python3
"""Approximate counters as subroutines (the §1 cited applications).

Three demos in one script, each swapping an exact counter for the paper's
Morris+ inside a classical streaming algorithm:

1. frequency moments F_p for p = 0.5 ([AMS99]/[GS09]/[JW19] line);
2. ℓ1 heavy hitters via SpaceSaving with approximate cells ([BDW19]);
3. inversion counting with an approximate tally ([AJKS02]).

Usage::

    python examples/stream_applications.py
"""

from __future__ import annotations

from collections import Counter

from repro import MorrisPlusCounter
from repro.applications.heavy_hitters import ApproxSpaceSaving, SpaceSaving
from repro.applications.inversions import ApproxInversionCounter
from repro.applications.moments import FrequencyMomentEstimator
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import zipf_workload


def counter_factory(rng):
    """The approximate counter every demo plugs in."""
    return MorrisPlusCounter.for_optimal(0.05, 0.001, rng=rng)


def demo_moments() -> None:
    stream = [
        e.key
        for e in zipf_workload(BitBudgetedRandom(1), 60, 6000, exponent=1.2)
    ]
    truth = FrequencyMomentEstimator.exact_moment(Counter(stream), 0.5)
    estimator = FrequencyMomentEstimator(0.5, 150, counter_factory, seed=2)
    estimator.consume(stream)
    estimate = estimator.estimate()
    print("1) frequency moment F_0.5")
    print(f"   exact {truth:,.1f}  estimated {estimate:,.1f}  "
          f"rel. error {100 * abs(estimate - truth) / truth:.1f}%")


def demo_heavy_hitters() -> None:
    stream = [
        e.key
        for e in zipf_workload(BitBudgetedRandom(3), 200, 20_000, exponent=1.4)
    ]
    truth = Counter(stream)
    exact = SpaceSaving(k=20)
    exact.consume(stream)
    approx = ApproxSpaceSaving(20, counter_factory, seed=4)
    approx.consume(stream)
    print("\n2) l1 heavy hitters (phi = 0.02)")
    print("   item          truth   SpaceSaving   approx cells")
    for item, _ in truth.most_common(5):
        print(
            f"   {item}  {truth[item]:6d}   {exact.estimate(item):8d}"
            f"   {approx.estimate(item):10.0f}"
        )
    print(
        f"   approximate cell memory: {approx.total_state_bits()} bits "
        "for 20 cells"
    )


def demo_inversions() -> None:
    rng = BitBudgetedRandom(5)
    values = list(range(600))
    rng.shuffle(values)
    approx = ApproxInversionCounter(600, counter_factory, seed=6)
    estimate = approx.consume(values)
    print("\n3) inversions in a permutation stream")
    print(
        f"   exact {approx.exact():,}  estimated {estimate:,.0f}  "
        f"rel. error {100 * abs(estimate - approx.exact()) / approx.exact():.1f}%"
    )
    print(
        f"   tally counter: {approx.tally_counter.state_bits()} bits for a "
        f"count of {approx.exact():,}"
    )


def main() -> None:
    demo_moments()
    demo_heavy_hitters()
    demo_inversions()


if __name__ == "__main__":
    main()
