#!/usr/bin/env python3
"""Algorithm 1 on a finite machine: Remark 2.2 made physical.

Runs the NelsonYu register machine — whose entire mutable state is three
width-enforced registers and whose only randomness is fair coin flips —
side by side with the abstract counter from the same seed, and shows the
trajectories are *identical*.  Then prints the declared register layout
and the metered coin budget.

Usage::

    python examples/register_machine.py [N]
"""

from __future__ import annotations

import sys

from repro import NelsonYuCounter
from repro.machine.counters import NelsonYuMachine
from repro.rng.bitstream import BitBudgetedRandom


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000
    epsilon, delta_exponent, seed = 0.25, 10, 7

    machine_rng = BitBudgetedRandom(seed)
    machine = NelsonYuMachine(epsilon, delta_exponent, n_max=n, rng=machine_rng)
    counter = NelsonYuCounter(epsilon, delta_exponent, rng=BitBudgetedRandom(seed))

    divergences = 0
    for _ in range(n):
        machine.increment()
        counter.increment()
        if (machine.x, machine.y, machine.t) != (
            counter.x,
            counter.y,
            counter.t,
        ):
            divergences += 1

    print(f"ran {n:,} increments on both implementations (seed {seed})")
    print(f"state divergences: {divergences}  (must be 0)")
    print(
        f"\nfinal state: X={machine.x} Y={machine.y} t={machine.t}; "
        f"estimate {machine.estimate():,.0f} "
        f"(truth {n:,}, rel. error "
        f"{100 * abs(machine.estimate() - n) / n:.2f}%)"
    )
    print("\ndeclared register layout:")
    for register in machine._file:
        print(
            f"  {register.name}: {register.width} bits "
            f"(currently {register.value})"
        )
    print(f"  total: {machine.state_bits} bits of enforced state")
    print(
        f"\nrandom bits consumed: {machine_rng.bits_consumed:,} "
        f"({machine_rng.bits_consumed / n:.2f} per increment — the "
        "early-exit coin-AND protocol of Remark 2.2)"
    )


if __name__ == "__main__":
    main()
