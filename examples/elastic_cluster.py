#!/usr/bin/env python3
"""Elastic scaling of the counting cluster, end to end.

A production counting tier grows and shrinks under load.  This demo
starts a 2-node cluster on consistent-hash-ring routing, then — while a
heavy-tailed stream is in flight — scales it to 3, then 4 nodes, and
finally drains one node back out.  Every resize advances the router's
topology epoch and migrates exactly the keys whose ring arcs moved: each
migrating counter is drained from its old owner, shipped as a
codec-serialized batch, and *merged* into its new owner — which Remark
2.4 of the paper guarantees is distribution-exact, so elasticity costs
nothing in accuracy.

A tumbling retention policy collapses a window every quarter of the
stream, so long-running state stays bounded while the reported horizon
view still merges archived windows with the live one.

Usage::

    python examples/elastic_cluster.py [n_events]
"""

from __future__ import annotations

import sys

from repro.cluster import (
    ClusterConfig,
    ClusterSimulation,
    ScaleEvent,
    TumblingRetention,
    default_template,
)
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import zipf_workload


def main() -> None:
    n_events = int(sys.argv[1]) if len(sys.argv) > 1 else 400_000
    seed = 2024

    config = ClusterConfig(
        n_nodes=2,
        template=default_template("simplified_ny"),
        seed=seed,
        buffer_limit=512,
        checkpoint_every=max(n_events // 8, 1000),
        routing="ring",
        # Offset from the retention boundaries so each resize lands
        # mid-window, with live state to migrate.
        scale_events=(
            ScaleEvent(at_event=n_events // 8, action="add"),
            ScaleEvent(at_event=(3 * n_events) // 8, action="add"),
            ScaleEvent(
                at_event=(5 * n_events) // 8, action="remove", node_id=0
            ),
        ),
        retention=TumblingRetention(window_events=max(n_events // 4, 1)),
    )
    events = zipf_workload(
        BitBudgetedRandom(seed), n_keys=2000, n_events=n_events, exponent=1.1
    )

    print(
        f"2-node cluster ingesting {n_events:,} Zipf events on ring "
        "routing; it grows to 3, then 4 nodes, then drains node 0 — all "
        "mid-stream, all\nwhile a tumbling window collapses every "
        f"{config.retention.window_events:,} events\n"
    )
    result = ClusterSimulation(config).run(events)
    print(result.table())
    print(
        f"\nEvery resize was a merge (Remark 2.4): "
        f"{result.keys_migrated:,} counters crossed nodes in "
        f"{result.migration_batches} checksummed batches "
        f"({result.migration_bytes:,} wire bytes) and the horizon view "
        "is still distributed exactly as a single per-key counter that "
        "saw the whole retained stream."
    )


if __name__ == "__main__":
    main()
