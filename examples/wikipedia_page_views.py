#!/usr/bin/env python3
"""The paper's motivating scenario: per-page view counters at scale.

§1: "an analytics system may maintain many such counters (for example,
the number of visits to each page on Wikipedia) ... cutting the number of
bits per counter by even a constant factor could be of value."

This example gives every page a 13-bit simplified-Algorithm-1 counter
(resolution 512) over heavy Zipf traffic and compares total memory and
per-page error against exact counters.  It also shows the regime caveat
the paper is explicit about: the win comes from *hot* pages, because any
correct counter — including Algorithm 1, whose epoch 0 is an exact
counter — must spend ~log2(count) bits while counts are small.

Usage::

    python examples/wikipedia_page_views.py [n_pages] [total_views]
"""

from __future__ import annotations

import sys

from repro import SimplifiedNYCounter
from repro.analytics.counter_bank import CounterBank
from repro.experiments.records import TextTable


def zipf_counts(n_pages: int, total_views: int, exponent: float = 1.1) -> list[int]:
    """Deterministic Zipf traffic: page ranked r gets ~ total/(r^s W) views."""
    weights = [1.0 / (rank ** exponent) for rank in range(1, n_pages + 1)]
    total_weight = sum(weights)
    return [max(1, round(total_views * w / total_weight)) for w in weights]


def main() -> None:
    n_pages = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    total_views = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000_000

    bank = CounterBank(
        lambda rng: SimplifiedNYCounter(resolution=512, rng=rng), seed=42
    )
    counts = zipf_counts(n_pages, total_views)
    for rank, count in enumerate(counts):
        bank.record(f"page-{rank:06d}", count)

    report = bank.error_report()
    print(
        f"{sum(counts):,} page views over {n_pages:,} pages "
        "(Zipf popularity, 13-bit counters)\n"
    )

    table = TextTable(
        ["page", "true views", "estimate", "rel. error", "bits (vs exact)"]
    )
    for key, estimate in bank.top_keys(8):
        truth = bank.truth(key)
        error = abs(estimate - truth) / truth if truth else 0.0
        exact_bits = max(1, truth.bit_length())
        table.add_row(
            key,
            f"{truth:,}",
            f"{estimate:,.0f}",
            f"{100 * error:.2f}%",
            f"13 (vs {exact_bits})",
        )
    print(table.render())

    print(f"\nacross all pages: {report}")
    print(
        f"approximate memory: {bank.total_state_bits():,} bits; "
        f"exact counters would need {bank.total_exact_bits():,} bits "
        f"({bank.total_exact_bits() / bank.total_state_bits():.2f}x more)"
    )
    print(
        "\nwant per-page failure probability << 1/#pages? Theorem 1.1 says "
        "upgrading delta costs only log log(1/delta) extra bits — see "
        "examples/accuracy_space_tour.py for that sweep."
    )


if __name__ == "__main__":
    main()
