#!/usr/bin/env python3
"""Watch Theorem 3.1 break a counter in front of you.

Takes Morris(1) as an explicit automaton, derandomizes it exactly as the
§3 proof does (argmax transitions), finds the pumping collision, and
prints the two counts — one small, one 2000x larger — that the
derandomized counter cannot tell apart.  Then shows the survival
threshold for deterministic counters matching log2(T/2) bit for bit.

Usage::

    python examples/lower_bound_demo.py [T]
"""

from __future__ import annotations

import sys

from repro.experiments.lower_bound_exp import (
    LowerBoundConfig,
    run_lower_bound,
    run_survival_threshold,
)
from repro.lowerbound.automaton import morris_automaton
from repro.lowerbound.derandomize import derandomize
from repro.lowerbound.pumping import find_pumping_witness


def main() -> None:
    t_param = int(sys.argv[1]) if len(sys.argv) > 1 else 4096

    print(f"=== derandomizing Morris(1) against T = {t_param} ===\n")
    automaton = morris_automaton(1.0, x_cap=63)
    det = derandomize(automaton)
    print(
        "argmax transitions: once X >= 1 the stay-probability exceeds the "
        "move-probability, so C_det's trajectory is:"
    )
    trajectory = [det.state_after(n) for n in range(6)]
    print(f"  X after 0..5 increments: {trajectory}  (frozen at X = 1)")

    witness = find_pumping_witness(det, t_param)
    assert witness is not None
    print(
        f"\npumping witness: same memory state after N1 = {witness.n_small} "
        f"and N3 = {witness.n_large} increments"
    )
    print(
        f"the counter answers {witness.query_value:g} in both cases — but a "
        f"correct counter must answer < {t_param} at N1 and >= {t_param} "
        "at N3.  Contradiction; randomness was load-bearing."
    )

    print("\n=== full attack table ===\n")
    print(run_lower_bound(LowerBoundConfig(t_param=t_param)).table())

    print("\n=== Eq. (7): deterministic survival threshold ===\n")
    print(run_survival_threshold().table())


if __name__ == "__main__":
    main()
