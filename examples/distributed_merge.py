#!/usr/bin/env python3
"""Distributed counting with mergeable counters (Remark 2.4).

Simulates a fleet of ingest shards, each maintaining its own approximate
counter for the same metric, then merges them at the aggregator.  The
merged counter is distributed exactly as one counter that saw every event
(Remark 2.4), so nothing is lost in ε or δ — validated here by comparing
the merged estimate against the global truth.

Usage::

    python examples/distributed_merge.py [n_shards] [events_per_shard]
"""

from __future__ import annotations

import sys

from repro import SimplifiedNYCounter, merge_all
from repro.experiments.records import TextTable
from repro.rng.bitstream import BitBudgetedRandom


def main() -> None:
    n_shards = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    base_events = int(sys.argv[2]) if len(sys.argv) > 2 else 50_000

    workload_rng = BitBudgetedRandom(2024)
    shards = []
    table = TextTable(["shard", "events", "shard estimate", "rel. error"])
    total = 0
    for shard_id in range(n_shards):
        # Shards see uneven traffic: 0.5x to 1.5x the base rate.
        events = base_events // 2 + workload_rng.randint_below(base_events)
        counter = SimplifiedNYCounter(
            4096, mergeable=True, seed=1000 + shard_id
        )
        counter.add(events)
        shards.append(counter)
        total += events
        table.add_row(
            f"shard-{shard_id}",
            f"{events:,}",
            f"{counter.estimate():,.0f}",
            f"{100 * counter.relative_error():.3f}%",
        )

    merged = merge_all(shards)
    print(f"{n_shards} shards, {total:,} events total\n")
    print(table.render())
    print(
        f"\nmerged estimate: {merged.estimate():,.0f} "
        f"(truth {total:,}; rel. error "
        f"{100 * abs(merged.estimate() - total) / total:.3f}%)"
    )
    print(
        f"merged counter state: {merged.state_bits()} bits "
        "(same as any single shard's counter — merging is free in space)"
    )


if __name__ == "__main__":
    main()
