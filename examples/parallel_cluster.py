#!/usr/bin/env python3
"""Parallel ingest: worker-sharded delivery vs the serial event loop.

The cluster's event loop is pluggable (``repro.cluster.pipeline``): the
coordinator always routes in stream order, but with
``ingest_workers > 1`` per-node batches are applied — write-ahead-log
append plus buffer submit — by a pool of node workers.  On a durable
ingest tier (file-backed store with group-commit fsync) the workers
overlap the commit stalls that a serial loop pays end to end, which is
where the throughput comes from; and because each node still sees its
sub-stream in arrival order and merging is exact (Remark 2.4), the
parallel run computes *bit-identical* results.

This example runs the same fsync-heavy workload serially and with 4
workers, prints the throughput ratio, then proves bit-identity on
``exact`` counter templates with a crash and a live migration
mid-stream.

Usage::

    python examples/parallel_cluster.py [n_events]
"""

from __future__ import annotations

import sys
import tempfile

from repro.cluster import (
    ClusterConfig,
    ClusterSimulation,
    NodeFailure,
    ScaleEvent,
    default_template,
)
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import zipf_workload


def _events(seed: int, n_events: int):
    return zipf_workload(
        BitBudgetedRandom(seed), n_keys=2000, n_events=n_events, exponent=1.1
    )


def main() -> None:
    n_events = int(sys.argv[1]) if len(sys.argv) > 1 else 150_000
    seed = 2026

    print(
        f"durable ingest of {n_events:,} Zipf events — 8 nodes, "
        "file-backed WAL, fsync every 4 appends\n"
    )
    rates: dict[int, float] = {}
    fingerprints: dict[int, tuple] = {}
    with tempfile.TemporaryDirectory() as tmp:
        for workers in (1, 4):
            config = ClusterConfig(
                n_nodes=8,
                template=default_template("simplified_ny"),
                seed=seed,
                checkpoint_every=max(n_events // 8, 1000),
                storage="file",
                storage_dir=f"{tmp}/workers-{workers}",
                wal_fsync_every=4,
                ingest_workers=workers,
                delivery_batch=64,
            )
            with ClusterSimulation(config) as simulation:
                result = simulation.run(_events(seed, n_events))
            rates[workers] = result.events_per_sec
            fingerprints[workers] = (
                result.rms_relative_error,
                result.max_relative_error,
                result.total_state_bits,
                result.checkpoints,
            )
            label = "serial loop " if workers == 1 else "4 workers   "
            print(
                f"  {label} {result.events_per_sec:>10,.0f} events/s   "
                f"rms error {100 * result.rms_relative_error:.3f}%   "
                f"{result.checkpoints} checkpoints"
            )
    print(
        f"\nspeedup: {rates[4] / rates[1]:.2f}x — same accuracy, same "
        "checkpoints, same state bits: "
        f"{fingerprints[1] == fingerprints[4]}"
    )
    if fingerprints[1] != fingerprints[4]:
        raise SystemExit("plan changed the computation — invariant broken")

    print(
        "\nbit-identity proof (exact templates, crash + live migration "
        "mid-stream):"
    )
    views = []
    for workers in (1, 4):
        config = ClusterConfig(
            n_nodes=3,
            template=default_template("exact"),
            seed=seed,
            checkpoint_every=max(n_events // 6, 1000),
            routing="ring",
            scale_events=(
                ScaleEvent(at_event=n_events // 3, action="add"),
            ),
            failures=(
                NodeFailure(at_event=n_events // 2, node_id=0),
            ),
            ingest_workers=workers,
        )
        simulation = ClusterSimulation(config)
        simulation.run(_events(seed, n_events))
        view = simulation.aggregator.global_view()
        views.append(
            (
                {
                    key: counter.estimate()
                    for key, counter in view.counters.items()
                },
                view.truth,
            )
        )
    identical = views[0] == views[1]
    print(f"  serial GlobalView == 4-worker GlobalView: {identical}")
    if not identical:
        raise SystemExit("parallel run diverged — invariant broken")


if __name__ == "__main__":
    main()
