#!/usr/bin/env python3
"""Quickstart: count a million events in a handful of bits.

Runs the paper's three main counters side by side on the same task and
prints estimate, relative error, and state size — the entire point of the
paper in one table.

Usage::

    python examples/quickstart.py [N]
"""

from __future__ import annotations

import sys

from repro import (
    ExactCounter,
    MorrisCounter,
    MorrisPlusCounter,
    NelsonYuCounter,
    SimplifiedNYCounter,
)
from repro.experiments.records import TextTable


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1_000_000

    counters = [
        ("exact (baseline)", ExactCounter(seed=0)),
        ("Morris(a=2^-8)", MorrisCounter(2.0 ** -8, seed=1)),
        (
            "Morris+ (Thm 1.2, eps=0.05, delta=1e-6)",
            MorrisPlusCounter.for_optimal(0.05, 1e-6, seed=2),
        ),
        (
            "NelsonYu (Alg 1, eps=0.1, delta=2^-20)",
            NelsonYuCounter(0.1, 20, seed=3),
        ),
        (
            "SimplifiedNY (17-bit budget)",
            SimplifiedNYCounter.for_bits(17, n, seed=4),
        ),
    ]

    table = TextTable(
        ["counter", "estimate", "rel. error", "state bits", "random bits"]
    )
    for label, counter in counters:
        counter.add(n)
        table.add_row(
            label,
            f"{counter.estimate():,.0f}",
            f"{100 * counter.relative_error():.3f}%",
            counter.state_bits(),
            counter.rng.bits_consumed,
        )
    print(f"counting N = {n:,} increments\n")
    print(table.render())
    print(
        "\nThe exact counter needs log2(N) bits; the approximate counters "
        "need ~log log N + accuracy terms (Theorems 1.1/1.2)."
    )


if __name__ == "__main__":
    main()
