#!/usr/bin/env python3
"""The distributed counting cluster, end to end.

Simulates the deployment the paper's §1 motivates: a router spreads a
heavy-tailed keyed event stream over N ingest nodes, each node coalesces
increments in a write buffer and flushes batches into its bank of
approximate counters, checkpoints bound the blast radius of a crash, and
a merge-tree aggregator assembles the global view — exact in distribution
by Remark 2.4.  Halfway through, one node is killed and recovers from its
last checkpoint plus durable-log replay; the run stays deterministic.

Usage::

    python examples/cluster_simulation.py [n_nodes] [n_events]
"""

from __future__ import annotations

import sys

from repro.cluster import (
    ClusterConfig,
    ClusterSimulation,
    NodeFailure,
    default_template,
)
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import zipf_workload


def main() -> None:
    n_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    n_events = int(sys.argv[2]) if len(sys.argv) > 2 else 500_000
    seed = 2024

    victim = n_nodes - 1
    config = ClusterConfig(
        n_nodes=n_nodes,
        template=default_template("simplified_ny"),
        seed=seed,
        buffer_limit=512,
        checkpoint_every=max(n_events // (4 * n_nodes), 1000),
        hot_key_threshold=max(n_events // 20, 100),
        failures=(NodeFailure(at_event=n_events // 2, node_id=victim),),
    )
    events = zipf_workload(
        BitBudgetedRandom(seed), n_keys=2000, n_events=n_events, exponent=1.1
    )

    print(
        f"cluster of {n_nodes} nodes ingesting {n_events:,} Zipf events; "
        f"node {victim} is killed at event {n_events // 2:,} and recovers "
        "from its checkpoint\n"
    )
    result = ClusterSimulation(config).run(events)
    print(result.table())
    print(
        "\nThe merged view is distributed exactly as a single counter per "
        "key that saw the\nglobal stream (Remark 2.4) — sharding, hot-key "
        "splitting, and recovery cost\nnothing in ε or δ."
    )


if __name__ == "__main__":
    main()
