#!/usr/bin/env python3
"""Gossip aggregation: every node answers locally, exactly.

The central merge tree answers global queries by pulling every bank to
one aggregator.  With ``aggregation="gossip"`` each node additionally
keeps an epoch-stamped *digest* — a map of origin node id to a
versioned snapshot of that origin's bank — and on scheduled push-pull
rounds exchanges digests with seeded-random peers.  Because digests
merge by version (never by sum), forwarding an entry through many hops
can never double-count, so a node's local read is stale-but-bounded
while the stream runs and **bit-identical to the central answer** once
the entries have propagated (Remark 2.4 makes the per-key merge exact).

This example runs a gossip cluster with a mid-stream crash, shows how
each node's local view lags and then converges, and finishes with the
crash-recovery story: the recovered node rebuilds its digest entry from
checkpoint + WAL replay and anti-entropy repairs the staleness.

Usage::

    python examples/gossip_cluster.py [n_events]
"""

from __future__ import annotations

import sys

from repro.cluster import (
    ClusterConfig,
    ClusterSimulation,
    NodeFailure,
    default_template,
    view_fingerprint,
)
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import zipf_workload


def _events(seed: int, n_events: int):
    return zipf_workload(
        BitBudgetedRandom(seed), n_keys=1000, n_events=n_events, exponent=1.1
    )


def main() -> None:
    n_events = int(sys.argv[1]) if len(sys.argv) > 1 else 120_000
    seed = 2026
    config = ClusterConfig(
        n_nodes=4,
        template=default_template("exact"),
        seed=seed,
        checkpoint_every=max(n_events // 8, 1000),
        aggregation="gossip",
        gossip_fanout=1,
        gossip_every=max(n_events // 6, 1),
        failures=(NodeFailure(at_event=n_events // 2, node_id=2),),
    )
    print(
        f"gossip cluster: 4 nodes, {n_events:,} Zipf events, fanout 1, "
        f"round every {config.gossip_every:,} events, node 2 crashes "
        "mid-run\n"
    )
    simulation = ClusterSimulation(config)
    result = simulation.run(_events(seed, n_events))

    central = view_fingerprint(simulation.aggregator.global_view())
    print(
        f"stream done: {result.gossip_rounds} push-pull rounds total, "
        f"{result.gossip_convergence_rounds} needed to converge after "
        "the stream"
    )
    print(
        f"worst pre-convergence staleness: "
        f"{result.gossip_max_staleness:,} events "
        "(bounded by traffic since each origin's last refresh)\n"
    )

    print("per-node decentralized reads after convergence:")
    all_equal = True
    for node in simulation.nodes:
        local = view_fingerprint(simulation.node_view(node.node_id))
        equal = local == central
        all_equal = all_equal and equal
        total = sum(local[1].values()) if local[1] else 0
        print(
            f"  node {node.node_id}: {len(local[0]):,} keys, "
            f"{total:,} events covered — "
            + ("bit-identical to central" if equal else "DIVERGED")
        )
    if not all_equal:
        raise SystemExit("gossip read diverged — invariant broken")

    print(
        "\ncrash recovery: a fresh crash wipes node 0's digest; its own "
        "entry rebuilds from checkpoint + WAL replay and one "
        "anti-entropy round repairs the rest:"
    )
    simulation.crash_node(0)
    digest = simulation.gossip.digest(0)
    print(f"  after recovery, node 0 knows origins {list(digest.origins)}")
    rounds = simulation.gossip.converge(
        {node.node_id: node for node in simulation.nodes},
        epoch=simulation.router.epoch,
    )
    local = view_fingerprint(simulation.node_view(0))
    central = view_fingerprint(simulation.aggregator.global_view())
    print(
        f"  {rounds} round(s) later it knows "
        f"{list(simulation.gossip.digest(0).origins)} — local read "
        "bit-identical to central: "
        f"{local == central}"
    )
    if local != central:
        raise SystemExit("recovered gossip read diverged")


if __name__ == "__main__":
    main()
