#!/usr/bin/env python3
"""Durable cluster storage: persist a run, then recover it from disk.

A file-backed cluster writes every checkpoint, a segmented write-ahead
log, and a topology manifest under one directory.  This example runs a
crash-recovery workload against that store, then *throws the simulation
away* and rebuilds the whole cluster from the directory alone with
``recover_cluster`` — topology epoch, per-node checkpoints, and
durable-log replay.  With ``exact`` counter templates the recovered
global view reproduces the pre-crash view bit for bit, which is the
recovery-losslessness invariant made visible.

The write-ahead log segments also bound memory: even with periodic
checkpointing disabled, a filled segment forces a fence checkpoint, so
the retained log never grows with stream length.

Usage::

    python examples/durable_cluster.py [n_events]
"""

from __future__ import annotations

import sys
import tempfile

from repro.cluster import (
    ClusterConfig,
    ClusterSimulation,
    NodeFailure,
    ScaleEvent,
    default_template,
    recover_cluster,
)
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import zipf_workload


def main() -> None:
    n_events = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000
    seed = 2024

    with tempfile.TemporaryDirectory() as storage_dir:
        config = ClusterConfig(
            n_nodes=3,
            template=default_template("exact"),
            seed=seed,
            checkpoint_every=max(n_events // 6, 1000),
            wal_segment_events=max(n_events // 12, 500),
            routing="ring",
            scale_events=(
                ScaleEvent(at_event=n_events // 3, action="add"),
            ),
            failures=(
                # Crash right after the migration: recovery must come
                # from a post-fence checkpoint plus log replay.
                NodeFailure(at_event=n_events // 3 + 1, node_id=0),
                NodeFailure(at_event=(2 * n_events) // 3, node_id=2),
            ),
            storage="file",
            storage_dir=storage_dir,
        )
        events = zipf_workload(
            BitBudgetedRandom(seed),
            n_keys=1500,
            n_events=n_events,
            exponent=1.1,
        )

        print(
            f"file-backed cluster ingesting {n_events:,} Zipf events "
            f"into {storage_dir}\n(scale 3→4 mid-stream, two crashes, "
            "checkpoints + segmented WAL on disk)\n"
        )
        with ClusterSimulation(config) as simulation:
            result = simulation.run(events)
            print(result.table())

            before = simulation.aggregator.global_view()
            max_retained = max(
                simulation.store.wal.retained_events(node.node_id)
                for node in simulation.nodes
            )
        print(
            f"\nretained WAL after the run: <= {max_retained:,} events "
            f"per node (segment bound {config.wal_segment_events:,})"
        )

        print("\nrebuilding the cluster from the store directory alone…")
        with recover_cluster(storage_dir) as recovered:
            after = recovered.aggregator.global_view()
            n_recovered = len(recovered.nodes)
            epoch = recovered.router.epoch
        identical = (
            {k: c.estimate() for k, c in before.counters.items()}
            == {k: c.estimate() for k, c in after.counters.items()}
            and before.truth == after.truth
        )
        print(
            f"recovered {n_recovered} nodes at topology epoch "
            f"{epoch}; global view bit-identical to the "
            f"pre-crash run: {identical}"
        )
        if not identical:
            raise SystemExit("recovery mismatch — invariant broken")


if __name__ == "__main__":
    main()
