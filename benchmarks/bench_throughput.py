"""E9 — update throughput of every counter (increment vs fast-forward)."""

from __future__ import annotations

from _bench_utils import write_result

from repro.core.csuros import CsurosCounter
from repro.core.morris import MorrisCounter
from repro.core.nelson_yu import NelsonYuCounter
from repro.core.simplified_ny import SimplifiedNYCounter
from repro.experiments.throughput import ThroughputConfig, run_throughput


def test_throughput_table(benchmark):
    """The E9 ops/sec table."""
    config = ThroughputConfig()
    result = benchmark.pedantic(
        lambda: run_throughput(config), rounds=1, iterations=1
    )
    write_result(
        "E9_throughput",
        "E9 / update throughput\n\n" + result.table(),
    )
    for row in result.rows:
        assert row.increments_per_second > 0


def test_morris_increment(benchmark):
    counter = MorrisCounter(2.0 ** -8, seed=0)
    benchmark(counter.increment)


def test_simplified_increment(benchmark):
    counter = SimplifiedNYCounter(4096, seed=0)
    benchmark(counter.increment)


def test_csuros_increment(benchmark):
    counter = CsurosCounter(12, seed=0)
    benchmark(counter.increment)


def test_nelson_yu_increment(benchmark):
    counter = NelsonYuCounter(0.1, 20, seed=0)
    benchmark(counter.increment)


def test_morris_bulk_add(benchmark):
    """Fast-forward through 100k stream positions."""
    counter = MorrisCounter(2.0 ** -8, seed=0)
    benchmark(lambda: counter.add(100_000))
