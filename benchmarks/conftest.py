"""Pytest path setup for the benchmark suite.

Makes ``_bench_utils`` importable from the bench modules regardless of
the invocation directory.
"""

from __future__ import annotations

import pathlib
import sys

_HERE = pathlib.Path(__file__).parent
if str(_HERE) not in sys.path:
    sys.path.insert(0, str(_HERE))
