"""E3/E4 — regenerate the space- and failure-scaling tables."""

from __future__ import annotations

from _bench_utils import write_result

from repro.experiments.config import scaled_trials
from repro.experiments.space_scaling import (
    DeltaSweepConfig,
    FailureCheckConfig,
    NSweepConfig,
    run_delta_sweep,
    run_failure_check,
    run_n_sweep,
)


def test_delta_sweep(benchmark):
    """E3: bits vs log(1/δ) — the paper's headline scaling."""
    config = DeltaSweepConfig(trials=scaled_trials(30))
    result = benchmark.pedantic(
        lambda: run_delta_sweep(config), rounds=1, iterations=1
    )
    ny_slope, chebyshev_slope = result.delta_slopes()
    text = "\n".join(
        [
            "E3 / Theorems 1.1+2.3 vs classical — space vs delta",
            f"N = {config.n}, eps = {config.epsilon}, "
            f"{config.trials} trials per point",
            "",
            result.table(),
            "",
            f"bits added per doubling of log(1/delta): "
            f"NelsonYu {ny_slope:.2f} (log log: ~1 expected), "
            f"Chebyshev-Morris {chebyshev_slope:.2f} (log: grows until the "
            "log N ceiling)",
        ]
    )
    write_result("E3_delta_sweep", text)
    assert ny_slope < chebyshev_slope


def test_n_sweep(benchmark):
    """E3: bits vs N — log log N for the randomized counters."""
    config = NSweepConfig(trials=scaled_trials(20))
    result = benchmark.pedantic(
        lambda: run_n_sweep(config), rounds=1, iterations=1
    )
    text = "\n".join(
        [
            "E3 / space vs N (eps = {}, delta = 2^-{})".format(
                config.epsilon, config.delta_exponent
            ),
            "",
            result.table(),
            "",
            "Shape check: exact counter bits double across the sweep "
            "(log N); the randomized counters add only a few bits "
            "(log log N).",
        ]
    )
    write_result("E3_n_sweep", text)


def test_failure_check(benchmark):
    """E4: Morris+ with Theorem 1.2 tuning stays within 2δ."""
    config = FailureCheckConfig(trials=scaled_trials(4000))
    result = benchmark.pedantic(
        lambda: run_failure_check(config), rounds=1, iterations=1
    )
    text = "\n".join(
        [
            "E4 / Theorem 1.2 — empirical failure of optimal Morris+",
            "",
            result.table(),
        ]
    )
    write_result("E4_failure_check", text)
    assert result.empirical_rate <= 2 * config.delta
