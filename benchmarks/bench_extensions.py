"""E10/E11 — extension experiments beyond the paper's figures.

E10 measures the §1 "δ ≪ 1/M" argument over a bank of M counters; E11
measures random-bit budgets, which the library's metered RNG makes
observable.
"""

from __future__ import annotations

from _bench_utils import write_result

from repro.experiments.bank_exp import BankConfig, run_bank_experiment
from repro.experiments.config import scaled_trials
from repro.experiments.randomness import (
    RandomnessConfig,
    run_randomness_budget,
)


def test_bank_delta_sweep(benchmark):
    """E10: failures and memory across a bank of M counters vs δ."""
    config = BankConfig(n_counters=scaled_trials(2000, minimum=200))
    result = benchmark.pedantic(
        lambda: run_bank_experiment(config), rounds=1, iterations=1
    )
    text = "\n".join(
        [
            "E10 / §1 motivation — M counters want delta << 1/M",
            f"M = {config.n_counters}, count = {config.count}, "
            f"eps = {config.epsilon} (failure radius eps)",
            "",
            result.table(),
            "",
            f"exact counter would use {result.exact_bits} bits; note the "
            "Chebyshev column approaching it as delta shrinks (the 'no "
            "benefit' regime) while the optimal column grows ~1 bit per "
            "doubling of log(1/delta).",
        ]
    )
    write_result("E10_bank", text)
    last = result.rows[-1]
    assert last.optimal_bad_fraction == 0.0
    assert last.chebyshev_bad_fraction == 0.0


def test_randomness_budget(benchmark):
    """E11: random bits per increment and per fast-forwarded stream."""
    config = RandomnessConfig()
    result = benchmark.pedantic(
        lambda: run_randomness_budget(config), rounds=1, iterations=1
    )
    text = "\n".join(
        [
            "E11 / randomness budgets (library extension)",
            "",
            result.table(),
            "",
            "The coin-AND protocol costs ~2 bits/increment regardless of "
            "the sampling exponent; the geometric fast-forward needs only "
            "~53 bits per state change, so whole-stream randomness is "
            "polylogarithmic in N.",
        ]
    )
    write_result("E11_randomness", text)
    morris2 = result.rows[0]
    assert morris2.increment_bits_per_op < 3.0
