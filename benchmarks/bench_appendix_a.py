"""E2 — regenerate the Appendix A tweak-necessity table (exact DP)."""

from __future__ import annotations

from _bench_utils import write_result

from repro.experiments.appendix_a import AppendixAConfig, run_appendix_a
from repro.theory.failure import vanilla_small_n_failure_exact


def test_appendix_a_table(benchmark):
    """Vanilla Morris(a) vs Morris+ failure at small counts, exactly."""
    config = AppendixAConfig(scan_points=12)
    result = benchmark.pedantic(
        lambda: run_appendix_a(config), rounds=1, iterations=1
    )
    text = "\n".join(
        [
            "E2 / Appendix A — the Morris+ tweak is necessary",
            f"eps = {config.epsilon}, delta = {config.delta:g}, "
            f"c = {config.c:g}",
            f"a = {result.a:g}; adversarial N' = {result.adversarial_n}; "
            f"Morris+ transition 8/a = {result.transition}",
            "",
            result.table(),
            "",
            "Shape check: vanilla failure exceeds delta by "
            f"{result.adversarial_row.ratio_to_delta:.3g}x at N'; Morris+ "
            "is exact (failure 0) through the deterministic prefix.",
        ]
    )
    write_result("E2_appendix_a", text)
    assert result.adversarial_row.vanilla_failure > 100 * config.delta


def test_one_exact_failure_evaluation(benchmark):
    """Micro: one exact DP failure evaluation at N = 500."""
    benchmark(lambda: vanilla_small_n_failure_exact(2.4e-4, 0.2, 500))
