"""Shared helpers for the benchmark suite.

Each ``bench_*.py`` module regenerates one paper artifact (table/figure)
at a benchmark-friendly scale and writes the rendered output under
``benchmarks/results/``, while pytest-benchmark records the runtime.
Scale the trial counts with ``REPRO_TRIALS_SCALE`` (e.g. the Figure 1
bench defaults to 1,500 trials; ``REPRO_TRIALS_SCALE=3.34`` reproduces
the paper's 5,000).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_result(name: str, text: str) -> pathlib.Path:
    """Persist one experiment's rendered output; returns the path."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def write_json_result(name: str, payload: dict[str, Any]) -> pathlib.Path:
    """Persist one benchmark's machine-readable output.

    Writes ``benchmarks/results/BENCH_<name>.json`` with the shared
    schema: ``{"benchmark": name, "seed": ..., "workload": {...},
    "rows": [...]}`` — ``rows`` is the per-configuration sweep.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    # allow_nan=False keeps the artifact strict JSON: a NaN/Infinity
    # metric (e.g. an unclamped events/sec) fails the write loudly
    # instead of emitting a file most parsers reject.
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
        + "\n",
        encoding="utf-8",
    )
    return path
