"""E7 — regenerate the Remark 2.4 mergeability validation."""

from __future__ import annotations

from _bench_utils import write_result

from repro.core.morris import MorrisCounter
from repro.experiments.config import scaled_trials
from repro.experiments.merge_exp import (
    MergeConfig,
    run_morris_merge,
    run_nelson_yu_merge,
    run_simplified_merge,
)


def test_morris_merge_vs_exact_dp(benchmark):
    """Merged Morris counters fit the exact N1+N2 distribution."""
    config = MergeConfig(n1=300, n2=500, trials=scaled_trials(4000))
    result = benchmark.pedantic(
        lambda: run_morris_merge(config), rounds=1, iterations=1
    )
    text = "\n".join(
        [
            "E7 / Remark 2.4 + CY20 — Morris merge vs exact DP",
            "",
            result.table(),
            "",
            "Shape check: chi^2 within the dof band means the merged "
            "counter is indistinguishable from a directly-run counter.",
        ]
    )
    write_result("E7_morris_merge", text)
    assert result.plausible


def test_simplified_merge(benchmark):
    """Simplified-NY merged vs direct (two-sample TV)."""
    config = MergeConfig(n1=300, n2=500, trials=scaled_trials(800))
    result = benchmark.pedantic(
        lambda: run_simplified_merge(config), rounds=1, iterations=1
    )
    write_result(
        "E7_simplified_merge",
        "E7 / simplified-NY merge\n\n" + result.table(),
    )
    assert result.consistent


def test_nelson_yu_merge(benchmark):
    """Algorithm 1 merged vs direct (two-sample TV on coarse state)."""
    config = MergeConfig(n1=4000, n2=7000, trials=scaled_trials(250))
    result = benchmark.pedantic(
        lambda: run_nelson_yu_merge(config), rounds=1, iterations=1
    )
    write_result(
        "E7_nelson_yu_merge",
        "E7 / Algorithm 1 merge (Remark 2.4)\n\n" + result.table(),
    )
    assert result.consistent


def test_one_morris_merge(benchmark):
    """Micro: one CY20 merge of two Morris counters."""

    def merge_once():
        a = MorrisCounter(0.25, seed=1)
        b = MorrisCounter(0.25, seed=2)
        a.add(300)
        b.add(500)
        a.merge_from(b)
        return a.x

    benchmark(merge_once)
