"""E5 — regenerate the Morris(a=1) failure-floor table (exact DP)."""

from __future__ import annotations

from _bench_utils import write_result

from repro.experiments.flajolet_floor import FloorConfig, run_flajolet_floor
from repro.theory.flajolet import morris_state_distribution


def test_flajolet_floor_table(benchmark):
    """The a = 1 constant failure floor ([Fla85] Prop. 3 via §1.1)."""
    config = FloorConfig()
    result = benchmark.pedantic(
        lambda: run_flajolet_floor(config), rounds=1, iterations=1
    )
    text = "\n".join(
        [
            "E5 / §1.1, [Fla85] Prop. 3 — Morris(1) failure floor is "
            "constant in N",
            "",
            result.table(),
            "",
            f"flatness (max-min of the C=1 column): "
            f"{result.floor_spread(0):.4f} — a constant floor, while the "
            "a = Θ(1/log N) column keeps falling.",
        ]
    )
    write_result("E5_flajolet_floor", text)
    assert result.floor_spread(0) < 0.01


def test_one_dp_pass(benchmark):
    """Micro: one exact DP pass for Morris(1) at N = 4096."""
    benchmark(lambda: morris_state_distribution(1.0, 4096))
