"""A1-A3 — ablations of the paper's design choices."""

from __future__ import annotations

from _bench_utils import write_result

from repro.experiments.ablations import (
    ChernoffAblationConfig,
    run_chernoff_ablation,
    run_rounding_ablation,
    run_transition_ablation,
)
from repro.experiments.config import scaled_trials


def test_chernoff_ablation(benchmark):
    """A1: the Chernoff constant C trades epoch reliability for Y bits."""
    config = ChernoffAblationConfig(trials=scaled_trials(600))
    result = benchmark.pedantic(
        lambda: run_chernoff_ablation(config), rounds=1, iterations=1
    )
    text = "\n".join(
        [
            "A1 / Chernoff constant of Algorithm 1 "
            f"(eps={config.epsilon}, delta=2^-{config.delta_exponent}, "
            f"N={config.n}, {config.trials} trials per C)",
            "",
            result.table(),
            "",
            "Theorem 2.1 needs C >= 3; the table shows why — below it the "
            "epoch transitions disperse; above the default C = 6 only Y "
            "bits grow (~1 per doubling).",
        ]
    )
    write_result("A1_chernoff", text)
    dispersions = [row[1] for row in result.rows]
    assert dispersions[0] > dispersions[-1]
    assert result.default_row[1] <= 0.01


def test_rounding_ablation(benchmark):
    """A2: dyadic α costs <= 1 Y bit and no accuracy."""
    result = benchmark.pedantic(
        lambda: run_rounding_ablation(trials=scaled_trials(600)),
        rounds=1,
        iterations=1,
    )
    text = "\n".join(
        [
            "A2 / dyadic rounding of alpha (Remark 2.2)",
            "",
            result.table(),
            "",
            "Rounding alpha up to 2^-t (required for the coin protocol) "
            "leaves accuracy unchanged and costs at most one Y bit.",
        ]
    )
    write_result("A2_rounding", text)
    dyadic, exact = result.rows
    assert abs(dyadic[1] - exact[1]) < 0.05  # same rms error
    assert dyadic[2] - exact[2] <= 1.5  # <= ~1 extra Y bit


def test_transition_ablation(benchmark):
    """A3: the Morris+ transition must be Θ(1/a) (Appendix A, exact)."""
    result = benchmark.pedantic(
        lambda: run_transition_ablation(), rounds=1, iterations=1
    )
    text = "\n".join(
        [
            "A3 / Morris+ deterministic-prefix length (Appendix A), "
            f"a = {result.a:g}, delta = {result.config.delta:g}",
            "",
            result.table(),
            "",
            "The Appendix-A-scale transition leaks ~1e6x delta; 1/a and "
            "8/a are safe — the paper's 'almost optimal up to 3x memory' "
            "claim, computed exactly.",
        ]
    )
    write_result("A3_transition", text)
    appendix_scale = result.rows[0]
    paper_choice = result.rows[2]
    assert appendix_scale[3] > 1000.0
    assert paper_choice[3] < 1.0
