"""E12 — error-trajectory envelopes across the stream."""

from __future__ import annotations

from _bench_utils import write_result

from repro.experiments.config import scaled_trials
from repro.experiments.trajectory import TrajectoryConfig, run_trajectory


def test_trajectory_envelopes(benchmark):
    """p90 relative error vs stream position for the three main counters."""
    config = TrajectoryConfig(trials=scaled_trials(40, minimum=10))
    result = benchmark.pedantic(
        lambda: run_trajectory(config), rounds=1, iterations=1
    )
    text = "\n".join(
        [
            "E12 / error trajectories "
            f"(eps={config.epsilon}, delta={config.delta}, "
            f"{config.trials} trials)",
            "",
            result.table(),
            "",
            result.plot(),
            "",
            "Shape check: every counter is exact through its small-count "
            "regime (Morris+ prefix, Algorithm 1 epoch 0, simplified "
            "counter below 2s), then settles at its stationary noise.",
        ]
    )
    write_result("E12_trajectory", text)
    for name, envelope in result.envelopes.items():
        assert envelope[0] == 0.0, name  # exact at N = 1
        assert max(envelope) < 2.0 * config.epsilon, name
