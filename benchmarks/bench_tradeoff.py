"""E8 — regenerate the accuracy-vs-space tradeoff table."""

from __future__ import annotations

from _bench_utils import write_result

from repro.experiments.config import scaled_trials
from repro.experiments.tradeoff import TradeoffConfig, run_tradeoff


def test_tradeoff_table(benchmark):
    """RMS relative error at equal bit budgets, all algorithms."""
    config = TradeoffConfig(trials=scaled_trials(300))
    result = benchmark.pedantic(
        lambda: run_tradeoff(config), rounds=1, iterations=1
    )
    text = "\n".join(
        [
            "E8 / accuracy vs space at equal bit budgets "
            f"({config.trials} trials per cell, N ~ U[{config.n_low}, "
            f"{config.n_high}])",
            "",
            result.table(),
            "",
            "Shape check: the three randomized counters track each other "
            "(error roughly halves per bit); the deterministic counter is "
            "useless below log2(N) ~ 20 bits and exact above.",
        ]
    )
    write_result("E8_tradeoff", text)
    for row in result.rows:
        if row.bits < 20:
            assert row.morris_rms < row.saturating_rms
