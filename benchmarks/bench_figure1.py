"""E1 — regenerate Figure 1 (relative-error CDFs at 17 bits).

Paper protocol: 5,000 trials per algorithm, N ~ Uniform[500000, 999999],
both algorithms at 17 bits of state.  The benchmark default runs 1,500
trials (set REPRO_TRIALS_SCALE to scale) and also micro-benchmarks one
trial of each simulator.
"""

from __future__ import annotations

from _bench_utils import write_result

from repro.core.params import morris_a_for_bits
from repro.experiments.config import scaled_trials
from repro.experiments.fastsim import (
    make_generator,
    morris_final_x,
    simplified_final_state,
)
from repro.experiments.figure1 import Figure1Config, run_figure1


def test_figure1_full(benchmark):
    """Regenerate the Figure 1 CDF comparison."""
    config = Figure1Config(trials=scaled_trials(1500))
    result = benchmark.pedantic(
        lambda: run_figure1(config), rounds=1, iterations=1
    )
    text = "\n".join(
        [
            f"E1 / Figure 1 — {config.trials} trials, {config.bits} bits",
            f"Morris a = {result.morris_a:g}; simplified s = "
            f"{result.simplified_resolution}, t_max = {result.simplified_t_max}",
            "",
            result.table(),
            "",
            result.plot(),
            "",
            f"KS distance between CDFs: {result.ks_distance():.4f}",
            f"max rel. error: Morris {100 * result.morris_summary.max:.3f}%, "
            f"SimplifiedNY {100 * result.simplified_summary.max:.3f}% "
            "(paper: neither algorithm exceeded 2.37%)",
        ]
    )
    write_result("E1_figure1", text)
    assert result.morris_summary.max < 0.05


def test_one_morris_trial(benchmark):
    """Micro: one Morris 17-bit trial at N = 750k."""
    a = morris_a_for_bits(17, 999_999)
    rng = make_generator(0)
    benchmark(lambda: morris_final_x(a, 750_000, rng))


def test_one_simplified_trial(benchmark):
    """Micro: one simplified-NY 17-bit trial at N = 750k."""
    rng = make_generator(1)
    benchmark(lambda: simplified_final_state(8192, 7, 750_000, rng))
