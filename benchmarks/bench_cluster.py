"""Cluster benchmark: events/sec and global error vs node count.

Runs the distributed counting cluster over the Zipf workload at 1, 2, 4
and 8 nodes, measuring ingest throughput, merged-view relative error, and
state bits — the scaling story of Remark 2.4 (sharding is free in
accuracy) made measurable.  Results land in
``benchmarks/results/BENCH_cluster.json`` with the shared schema
(``benchmark`` / ``seed`` / ``workload`` / ``rows``).

A second scenario measures *elasticity*: a cluster that scales 2→4→3
mid-stream (with live key migration and a tumbling retention policy)
against a static 3-node run of the same workload — rebalancing must stay
within 1.5× of the static topology's rms error at equal state bits,
because key migration is just merging (Remark 2.4).  Results land in
``benchmarks/results/BENCH_cluster_elastic.json``.

A third scenario measures *durability*: the same crash-recovery workload
on the in-process ``memory`` store versus the persisted ``file`` store
(checkpoints + segmented write-ahead log on disk), at provably equal
accuracy — the backend may only change where durable state lives, never
what the cluster computes, so both rows must report bit-identical error.
It also re-opens the file store with ``recover_cluster`` and asserts the
recovered ``exact``-template view reproduces the pre-crash run bit for
bit, crashes mid-migration included.  Results land in
``benchmarks/results/BENCH_cluster_durability.json``.

A fourth scenario measures *parallel ingest throughput*: the same
durable (group-commit fsync) ingest workload delivered by the serial
event loop versus worker-sharded delivery at 2, 4, and 8 ingest
workers.  The worker count may only change wall-clock numbers — every
row must report bit-identical accuracy, and a separate
``exact``-template run (crash + live migration included) pins the
parallel ``GlobalView`` bit-for-bit against serial.  The full run must
show ≥ 1.5× events/sec at 4 workers, and a calibrated op-accounting
estimate over an instrumented serial run must show the observability
layer costs ≤ 5% (``telemetry_overhead_pct``).  A weighted-feed arm compares per-unit
coin flips against the geometric skip-ahead fast-forward
(``consume_mode``) on a heavy-count stream — ≥ 5× on full runs, with
an exact-template fingerprint proof that the mode never changes what
any plan computes — and full runs append the measurement to the
committed trajectory file
``benchmarks/trajectory/BENCH_cluster_throughput_trajectory.json``.
Results land in ``benchmarks/results/BENCH_cluster_throughput.json``.

Every scenario row embeds the run's end-of-run telemetry snapshot
(``row["metrics"]``: counters / gauges / histograms / stages from
:mod:`repro.obs`), so benchmark artifacts double as metrics exports;
``scripts/check_bench_json.py`` validates the embedded schema.

A fifth scenario measures *gossip aggregation*: clusters of 2, 4 and 8
nodes running ``aggregation="gossip"`` on ``exact`` templates (a crash
mid-run included), recording rounds-to-convergence after the stream,
the maximum pre-convergence staleness in events, and whether every
node's decentralized read equals the central merge-tree answer bit for
bit (it must).  Results land in
``benchmarks/results/BENCH_cluster_gossip.json``.

A sixth scenario measures *self-healing membership*: clusters of 2, 4
and 8 nodes with ``membership=True`` lose their last node mid-stream to
a kill the driver never heals (``NodeFailure(heal=False)``) — the
gossip-driven failure detector must suspect it, confirm the failure by
quorum vote, and heal it on the cluster's own authority.  Per node
count the payload records detection latency in gossip rounds (bounded
by ``suspect_after`` + O(log n) dissemination) and whether the
self-healed run's ``exact``-template global view is bit-identical to a
driver-healed reference run of the same seed (it must be — recovery is
lossless either way).  Results land in
``benchmarks/results/BENCH_cluster_membership.json``.

A seventh scenario measures *serving*: the finished cluster behind the
PR-9 read surface (:class:`~repro.cluster.query.ClusterReader` plus the
:mod:`~repro.cluster.httpd` HTTP/SSE frontend) at 1, 2 and 4 replicas
on ``exact`` templates with gossip aggregation.  Per replica count it
records replica-read queries/sec and the read-cache hit rate, asserts
the reported staleness bound never exceeds the configured
``gossip_every`` window, pins every replica's digest read bit-identical
to ``global_view()`` after convergence, and proves serving is inert: a
run that was served (every HTTP endpoint exercised, SSE included) ends
with a fingerprint identical to an unserved run of the same seed.
Results land in ``benchmarks/results/BENCH_cluster_serving.json``.

Entry points:

* pytest-benchmark (``pytest benchmarks/bench_cluster.py``) — the full
  sweep plus crash-recovery, elasticity, durability, throughput,
  gossip, membership, and serving benchmarks;
* script mode (``python benchmarks/bench_cluster.py [-q] [--scenario
  scaling|elastic|durability|throughput|gossip|membership|serving]``)
  — the same runs standalone;
  ``-q`` is the smoke path used by tier-1 tests (reduced workload, same
  schema, seconds not minutes).  Scenarios live in the ``_SCENARIOS``
  registry; an unknown ``--scenario`` is a clean argparse error listing
  the valid names.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import tempfile
import time
import urllib.request
from pathlib import Path
from typing import Callable, NamedTuple

from _bench_utils import write_json_result, write_result

from repro.cluster import (
    ClusterConfig,
    ClusterReader,
    ClusterSimulation,
    NodeFailure,
    ScaleEvent,
    TumblingRetention,
    default_template,
    recover_cluster,
    view_fingerprint,
)
from repro.cluster.httpd import serve_http
from repro.experiments.records import TextTable
from repro.obs import Telemetry
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import weighted_zipf_workload, zipf_workload

_SEED = 2020_10_06
_FULL_EVENTS = 1_000_000
_QUICK_EVENTS = 20_000
_KEYS = 2000
_EXPONENT = 1.1
_NODE_SWEEP = (1, 2, 4, 8)


def _run_sweep(n_events: int) -> dict:
    """Sweep node counts over the same workload; returns the JSON payload."""
    rows = []
    for n_nodes in _NODE_SWEEP:
        config = ClusterConfig(
            n_nodes=n_nodes,
            template=default_template("simplified_ny"),
            seed=_SEED,
            buffer_limit=512,
            checkpoint_every=max(n_events // (4 * n_nodes), 1000),
            failures=(
                # Crash the last node mid-run in every multi-node config:
                # recovery is part of the steady state being measured.
                (NodeFailure(at_event=n_events // 2, node_id=n_nodes - 1),)
                if n_nodes > 1
                else ()
            ),
        )
        events = zipf_workload(
            BitBudgetedRandom(_SEED),
            n_keys=_KEYS,
            n_events=n_events,
            exponent=_EXPONENT,
        )
        with ClusterSimulation(config) as simulation:
            result = simulation.run(events)
            metrics = simulation.metrics_snapshot()
        rows.append(
            {
                "nodes": n_nodes,
                "events": result.total_events,
                "keys": result.n_keys,
                "events_per_sec": round(result.events_per_sec, 1),
                "mean_relative_error": result.mean_relative_error,
                "rms_relative_error": result.rms_relative_error,
                "max_relative_error": result.max_relative_error,
                "state_bits": result.total_state_bits,
                "merge_rounds": result.merge_rounds,
                "checkpoints": result.checkpoints,
                "recoveries": result.recoveries,
                "metrics": metrics,
            }
        )
    return {
        "benchmark": "cluster",
        "seed": _SEED,
        "workload": {
            "kind": "zipf",
            "events": n_events,
            "keys": _KEYS,
            "exponent": _EXPONENT,
        },
        "rows": rows,
    }


def _render(payload: dict) -> str:
    table = TextTable(
        ["nodes", "events/s", "rms err", "max err", "state bits", "recov"]
    )
    for row in payload["rows"]:
        table.add_row(
            str(row["nodes"]),
            f"{row['events_per_sec']:,.0f}",
            f"{100 * row['rms_relative_error']:.3f}%",
            f"{100 * row['max_relative_error']:.3f}%",
            f"{row['state_bits']:,}",
            str(row["recoveries"]),
        )
    workload = payload["workload"]
    return "\n".join(
        [
            "Cluster scaling — events/sec and merged-view error vs nodes",
            f"zipf({workload['exponent']}) {workload['events']:,} events "
            f"over {workload['keys']:,} keys, seed {payload['seed']}",
            "",
            table.render(),
            "",
            "Remark 2.4 check: error stays flat as node count grows — "
            "sharded merge is exact.",
        ]
    )


def _check(payload: dict) -> None:
    """The invariants any sweep (full or quick) must satisfy."""
    rows = payload["rows"]
    assert [row["nodes"] for row in rows] == list(_NODE_SWEEP)
    single = rows[0]
    for row in rows:
        assert row["events"] == payload["workload"]["events"]
        # Sharding must not degrade accuracy (Remark 2.4): every
        # multi-node rms error stays within noise of the single node's.
        assert row["rms_relative_error"] < max(
            3 * single["rms_relative_error"], 0.02
        )
        if row["nodes"] > 1:
            assert row["recoveries"] >= 1


# ----------------------------------------------------------------------
# elastic scenario: 2→4→3 with retention vs a static 3-node run
# ----------------------------------------------------------------------
def _elastic_row(label: str, result, metrics: dict) -> dict:
    return {
        "scenario": label,
        "nodes_final": result.n_nodes,
        "events": result.total_events,
        "keys": result.n_keys,
        "events_per_sec": round(result.events_per_sec, 1),
        "rms_relative_error": result.rms_relative_error,
        "max_relative_error": result.max_relative_error,
        "state_bits": result.total_state_bits,
        "epoch": result.epoch,
        "keys_migrated": result.keys_migrated,
        "migration_bytes": result.migration_bytes,
        "windows_collapsed": result.windows_collapsed,
        "recoveries": result.recoveries,
        "metrics": metrics,
    }


def _run_elastic(n_events: int) -> dict:
    """Elastic 2→4→3 run vs static 3-node run; returns the JSON payload.

    Both runs see the identical workload, counter template, and tumbling
    retention policy, so the only difference is live topology change —
    which Remark 2.4 says should cost nothing in accuracy.
    """
    retention = lambda: TumblingRetention(  # noqa: E731 - fresh per run
        window_events=max(n_events // 3, 1)
    )
    shared = dict(
        template=default_template("simplified_ny"),
        seed=_SEED,
        buffer_limit=512,
        checkpoint_every=max(n_events // 8, 1000),
        routing="ring",
    )
    static_config = ClusterConfig(
        n_nodes=3, retention=retention(), **shared
    )
    elastic_config = ClusterConfig(
        n_nodes=2,
        retention=retention(),
        scale_events=(
            ScaleEvent(at_event=n_events // 4, action="add"),
            ScaleEvent(at_event=n_events // 2, action="add"),
            ScaleEvent(
                at_event=(3 * n_events) // 4, action="remove", node_id=1
            ),
        ),
        **shared,
    )
    rows = []
    for label, config in (
        ("static", static_config),
        ("elastic", elastic_config),
    ):
        events = zipf_workload(
            BitBudgetedRandom(_SEED),
            n_keys=_KEYS,
            n_events=n_events,
            exponent=_EXPONENT,
        )
        with ClusterSimulation(config) as simulation:
            result = simulation.run(events)
            metrics = simulation.metrics_snapshot()
        rows.append(_elastic_row(label, result, metrics))
    return {
        "benchmark": "cluster_elastic",
        "seed": _SEED,
        "workload": {
            "kind": "zipf",
            "events": n_events,
            "keys": _KEYS,
            "exponent": _EXPONENT,
        },
        "rows": rows,
    }


def _render_elastic(payload: dict) -> str:
    table = TextTable(
        [
            "scenario",
            "final nodes",
            "rms err",
            "state bits",
            "migrated",
            "windows",
        ]
    )
    for row in payload["rows"]:
        table.add_row(
            row["scenario"],
            str(row["nodes_final"]),
            f"{100 * row['rms_relative_error']:.3f}%",
            f"{row['state_bits']:,}",
            f"{row['keys_migrated']:,}",
            str(row["windows_collapsed"]),
        )
    workload = payload["workload"]
    return "\n".join(
        [
            "Elastic scaling — 2→4→3 live rebalance vs static 3-node run",
            f"zipf({workload['exponent']}) {workload['events']:,} events "
            f"over {workload['keys']:,} keys, seed {payload['seed']}",
            "",
            table.render(),
            "",
            "Remark 2.4 check: live key migration (merge-based) keeps rms "
            "error within 1.5x of the static topology at equal state bits.",
        ]
    )


def _check_elastic(payload: dict) -> None:
    """The elastic-scenario invariants (full or quick)."""
    rows = {row["scenario"]: row for row in payload["rows"]}
    static, elastic = rows["static"], rows["elastic"]
    assert static["events"] == elastic["events"]
    assert elastic["nodes_final"] == static["nodes_final"] == 3
    assert elastic["epoch"] == 3 and elastic["keys_migrated"] > 0
    assert elastic["windows_collapsed"] >= 2
    # Rebalancing is merge-based, so it must not degrade accuracy:
    # within 1.5x of the static run (with an absolute floor for runs
    # where both errors are within sampling noise of zero).
    assert elastic["rms_relative_error"] <= max(
        1.5 * static["rms_relative_error"], 0.005
    )
    # ... at comparable state: same template, same key horizon.
    assert elastic["state_bits"] <= 1.5 * static["state_bits"]


# ----------------------------------------------------------------------
# durability scenario: memory vs file stores at equal accuracy
# ----------------------------------------------------------------------
def _run_durability(n_events: int) -> dict:
    """Memory vs file durability run + recovery-from-disk check.

    Both rows drive the identical crash-recovery workload; the only
    difference is the storage backend, so accuracy must match *bit for
    bit* while events/sec and retained bytes show what persistence
    costs.  A second, ``exact``-template file run with a crash right
    after a migration is then re-opened from disk via
    :func:`~repro.cluster.simulation.recover_cluster` and its recovered
    global view compared with the pre-crash view.
    """
    shared = dict(
        n_nodes=4,
        template=default_template("simplified_ny"),
        seed=_SEED,
        buffer_limit=512,
        checkpoint_every=max(n_events // 8, 1000),
        wal_segment_events=max(n_events // 16, 512),
        failures=(NodeFailure(at_event=n_events // 2, node_id=3),),
    )
    rows = []
    with tempfile.TemporaryDirectory() as tmp:
        for label in ("memory", "file"):
            config = ClusterConfig(
                storage=label,
                storage_dir=(f"{tmp}/bench" if label == "file" else None),
                **shared,
            )
            events = zipf_workload(
                BitBudgetedRandom(_SEED),
                n_keys=_KEYS,
                n_events=n_events,
                exponent=_EXPONENT,
            )
            with ClusterSimulation(config) as simulation:
                result = simulation.run(events)
                metrics = simulation.metrics_snapshot()
            rows.append(
                {
                    "scenario": label,
                    "events": result.total_events,
                    "events_per_sec": round(result.events_per_sec, 1),
                    "rms_relative_error": result.rms_relative_error,
                    "max_relative_error": result.max_relative_error,
                    "storage_bytes": result.storage_bytes,
                    "checkpoints": result.checkpoints,
                    "recoveries": result.recoveries,
                    "metrics": metrics,
                }
            )
        # Recovery-from-disk proof on exact templates: crash one node
        # right after a migration, run to the end, then rebuild the
        # whole cluster from the store directory alone.
        exact_dir = f"{tmp}/exact"
        config = ClusterConfig(
            n_nodes=2,
            template=default_template("exact"),
            seed=_SEED,
            checkpoint_every=max(n_events // 8, 1000),
            routing="ring",
            scale_events=(
                ScaleEvent(at_event=n_events // 3, action="add"),
            ),
            failures=(
                NodeFailure(at_event=n_events // 3 + 1, node_id=0),
            ),
            storage="file",
            storage_dir=exact_dir,
        )
        events = zipf_workload(
            BitBudgetedRandom(_SEED),
            n_keys=_KEYS,
            n_events=n_events,
            exponent=_EXPONENT,
        )
        with ClusterSimulation(config) as simulation:
            simulation.run(events)
            before = simulation.aggregator.global_view()
        with recover_cluster(exact_dir) as recovered:
            after = recovered.aggregator.global_view()
        recovery_bit_identical = view_fingerprint(
            before
        ) == view_fingerprint(after)
    return {
        "benchmark": "cluster_durability",
        "seed": _SEED,
        "workload": {
            "kind": "zipf",
            "events": n_events,
            "keys": _KEYS,
            "exponent": _EXPONENT,
        },
        "rows": rows,
        "recovery_bit_identical": recovery_bit_identical,
    }


def _render_durability(payload: dict) -> str:
    table = TextTable(
        [
            "scenario",
            "events/s",
            "rms err",
            "store bytes",
            "ckpts",
            "recov",
        ]
    )
    for row in payload["rows"]:
        table.add_row(
            row["scenario"],
            f"{row['events_per_sec']:,.0f}",
            f"{100 * row['rms_relative_error']:.3f}%",
            f"{row['storage_bytes']:,}",
            str(row["checkpoints"]),
            str(row["recoveries"]),
        )
    workload = payload["workload"]
    return "\n".join(
        [
            "Durability — in-process memory store vs on-disk file store",
            f"zipf({workload['exponent']}) {workload['events']:,} events "
            f"over {workload['keys']:,} keys, seed {payload['seed']}",
            "",
            table.render(),
            "",
            "Equal-accuracy check: the storage backend changes where "
            "durable state lives, never what the cluster computes.",
            "recovery from disk (exact templates, crash mid-migration): "
            + (
                "bit-identical"
                if payload["recovery_bit_identical"]
                else "MISMATCH"
            ),
        ]
    )


def _check_durability(payload: dict) -> None:
    """The durability-scenario invariants (full or quick)."""
    rows = {row["scenario"]: row for row in payload["rows"]}
    memory, file = rows["memory"], rows["file"]
    assert memory["events"] == file["events"]
    # The backend must not change the computation: bit-identical error.
    assert memory["rms_relative_error"] == file["rms_relative_error"]
    assert memory["max_relative_error"] == file["max_relative_error"]
    assert memory["checkpoints"] == file["checkpoints"]
    assert memory["recoveries"] == file["recoveries"] >= 1
    assert file["storage_bytes"] > 0
    assert payload["recovery_bit_identical"] is True


# ----------------------------------------------------------------------
# throughput scenario: serial vs worker-sharded durable ingest
# ----------------------------------------------------------------------
_WORKER_SWEEP = (1, 2, 4, 8)
_THROUGHPUT_NODES = 8
#: Group-commit cadence.  fsync releases the GIL, so this is the stall
#: the worker pool overlaps — the honest source of thread speedup for a
#: pure-Python ingest path.
_THROUGHPUT_FSYNC = 4
_THROUGHPUT_BATCH = 64
#: The full throughput run is scenario-specific: fsync-per-4-appends
#: makes 1M-event rows needlessly slow without changing the story.
_THROUGHPUT_FULL_EVENTS = 400_000
#: The process arm compares serial / thread-parallel / process plans
#: at these node counts (one worker process per node).
_PROCESS_NODE_SWEEP = (2, 4)
#: Pipe IPC makes full-length process rows needlessly slow without
#: changing the comparison; cap the process arm's stream length.
_PROCESS_ARM_EVENTS_CAP = _THROUGHPUT_FULL_EVENTS // 4
#: The weighted (heavy-count) arm: every event carries ~256 increments,
#: so per-unit ingestion pays ~256 coin flips per event while skip-ahead
#: pays O(1) expected draws per *state change*.
_SKIPAHEAD_MEAN_COUNT = 256
#: At mean weight 256 a 50k-event stream is ~12.8M increments — enough
#: to dominate fixed costs without making the per-unit arm take minutes.
_SKIPAHEAD_EVENTS_CAP = _THROUGHPUT_FULL_EVENTS // 8
#: Smoke runs (and the smoke-size re-measurement a full run records for
#: CI's regression gate) use a shorter stream: at ~1.3M increments the
#: ratio is already stable and the per-unit arm stays in seconds.
_SKIPAHEAD_SMOKE_EVENTS = 5_000
#: Committed (not gitignored) history of the skip-ahead arm: full runs
#: append one row here; smoke runs never touch it.  CI's regression
#: gate compares fresh smoke rows against the latest committed row.
_TRAJECTORY_PATH = (
    Path(__file__).resolve().parent
    / "trajectory"
    / "BENCH_cluster_throughput_trajectory.json"
)


def _run_skipahead_arms(n_events: int) -> tuple[list[dict], float]:
    """Per-unit vs skip-ahead consumption of the weighted workload.

    Identical serial memory-store clusters and identical pre-aggregated
    (weighted) event streams; only ``consume_mode`` differs.  Returns
    the two rows plus the skip-ahead arm's speedup over per-unit.

    The arm runs the ``morris`` template: its accept probability decays
    geometrically with the counter value, so the expected gap between
    state changes *grows* with the stream and the skip-ahead advantage
    compounds at scale (shallow-decay templates like ``simplified_ny``
    at resolution 1024, or ``nelson_yu`` at epsilon 0.1, keep their
    accept rates high enough that the capped bit-identical coin
    protocol — computationally per-unit — bounds the win to ~2-3x).
    """
    rows = []
    for arm in ("per_unit", "skip_ahead"):
        config = ClusterConfig(
            n_nodes=_THROUGHPUT_NODES,
            template=default_template("morris"),
            seed=_SEED,
            buffer_limit=512,
            checkpoint_every=None,
            plan="serial",
            consume_mode=arm,
        )
        events = weighted_zipf_workload(
            BitBudgetedRandom(_SEED),
            n_keys=_KEYS,
            n_events=n_events,
            exponent=_EXPONENT,
            mean_count=_SKIPAHEAD_MEAN_COUNT,
        )
        with ClusterSimulation(
            config, telemetry=Telemetry.disabled()
        ) as simulation:
            result = simulation.run(events)
            metrics = simulation.metrics_snapshot()
        rows.append(
            {
                "arm": arm,
                "events": n_events,
                "increments": result.total_events,
                "events_per_sec": round(result.events_per_sec, 1),
                "rms_relative_error": result.rms_relative_error,
                "max_relative_error": result.max_relative_error,
                "state_bits": result.total_state_bits,
                "metrics": metrics,
            }
        )
    speedup = round(
        rows[1]["events_per_sec"] / rows[0]["events_per_sec"], 3
    )
    for row in rows:
        row["speedup_vs_per_unit"] = round(
            row["events_per_sec"] / rows[0]["events_per_sec"], 3
        )
    return rows, speedup


def _run_throughput(n_events: int) -> dict:
    """Serial vs 2/4/8-worker delivery on a durable ingest tier.

    Every row drives the identical workload and config except
    ``ingest_workers`` — a file-backed store whose WAL group-commits
    (fsyncs) every ``_THROUGHPUT_FSYNC`` appends, i.e. the deployment
    where delivery actually blocks.  Accuracy must be bit-identical
    across rows (the plan may never change what the cluster computes);
    a second, ``exact``-template comparison with a crash and a live
    migration mid-stream pins serial-vs-parallel bit-identity of the
    full ``GlobalView``.

    A third arm compares execution *plans* — serial vs thread-parallel
    vs per-node OS worker processes (``plan="process"``) — on a
    CPU-bound memory-store configuration at 2 and 4 nodes, and extends
    the exact-template bit-identity proof to the process plan.  The
    process speedup bar (>1x vs thread-parallel at 4 nodes) only
    applies to full runs on multi-core machines; the payload records
    ``cpus`` so the gate is auditable.

    The sweep arms run with the wall-clock telemetry layers disabled so
    the 1.5× speedup bar measures only the execution plan; a separate
    instrumented serial run plus in-situ per-op calibration (see
    :func:`_measure_telemetry_overhead`) reports
    ``telemetry_overhead_pct`` — the observability layer's acceptance
    bar is ≤ 5% on full runs.
    """
    throughput_events = min(n_events, _THROUGHPUT_FULL_EVENTS)
    rows = []
    with tempfile.TemporaryDirectory() as tmp:
        for workers in _WORKER_SWEEP:
            config = ClusterConfig(
                n_nodes=_THROUGHPUT_NODES,
                template=default_template("simplified_ny"),
                seed=_SEED,
                buffer_limit=512,
                checkpoint_every=max(throughput_events // 8, 1000),
                storage="file",
                storage_dir=f"{tmp}/workers-{workers}",
                wal_fsync_every=_THROUGHPUT_FSYNC,
                ingest_workers=workers,
                delivery_batch=_THROUGHPUT_BATCH,
            )
            events = zipf_workload(
                BitBudgetedRandom(_SEED),
                n_keys=_KEYS,
                n_events=throughput_events,
                exponent=_EXPONENT,
            )
            with ClusterSimulation(
                config, telemetry=Telemetry.disabled()
            ) as simulation:
                result = simulation.run(events)
                metrics = simulation.metrics_snapshot()
            rows.append(
                {
                    "workers": workers,
                    "mode": "serial" if workers == 1 else "parallel",
                    "events": result.total_events,
                    "events_per_sec": round(result.events_per_sec, 1),
                    "rms_relative_error": result.rms_relative_error,
                    "max_relative_error": result.max_relative_error,
                    "checkpoints": result.checkpoints,
                    "state_bits": result.total_state_bits,
                    "metrics": metrics,
                }
            )
        overhead_pct, overhead_detail = _measure_telemetry_overhead(
            min(throughput_events, _THROUGHPUT_FULL_EVENTS // 4), tmp
        )
        serial_eps = rows[0]["events_per_sec"]
        for row in rows:
            row["speedup_vs_serial"] = round(
                row["events_per_sec"] / serial_eps, 3
            )
        # Process arm: per-node OS worker processes on a CPU-bound
        # (memory-store) configuration — the deployment where real
        # cores, not overlapped fsync stalls, are the only speedup
        # source.  Serial, thread-parallel, and process plans drive
        # the identical workload at each node count; the plans may
        # only move wall-clock numbers, never accuracy.
        process_events = min(throughput_events, _PROCESS_ARM_EVENTS_CAP)
        process_rows = []
        for n_nodes in _PROCESS_NODE_SWEEP:
            for arm, plan_fields in (
                ("serial", {"plan": "serial"}),
                (
                    "parallel",
                    {"plan": "parallel", "ingest_workers": n_nodes},
                ),
                ("process", {"plan": "process"}),
            ):
                config = ClusterConfig(
                    n_nodes=n_nodes,
                    template=default_template("simplified_ny"),
                    seed=_SEED,
                    buffer_limit=512,
                    checkpoint_every=max(process_events // 4, 1000),
                    delivery_batch=_THROUGHPUT_BATCH,
                    **plan_fields,
                )
                events = zipf_workload(
                    BitBudgetedRandom(_SEED),
                    n_keys=_KEYS,
                    n_events=process_events,
                    exponent=_EXPONENT,
                )
                with ClusterSimulation(
                    config, telemetry=Telemetry.disabled()
                ) as simulation:
                    result = simulation.run(events)
                    metrics = simulation.metrics_snapshot()
                process_rows.append(
                    {
                        "nodes": n_nodes,
                        "arm": arm,
                        "events": result.total_events,
                        "events_per_sec": round(
                            result.events_per_sec, 1
                        ),
                        "rms_relative_error": result.rms_relative_error,
                        "max_relative_error": result.max_relative_error,
                        "checkpoints": result.checkpoints,
                        "state_bits": result.total_state_bits,
                        "metrics": metrics,
                    }
                )
        by_arm = {
            (row["nodes"], row["arm"]): row for row in process_rows
        }
        for row in process_rows:
            base_serial = by_arm[(row["nodes"], "serial")]
            base_parallel = by_arm[(row["nodes"], "parallel")]
            row["speedup_vs_serial"] = round(
                row["events_per_sec"] / base_serial["events_per_sec"], 3
            )
            row["speedup_vs_parallel"] = round(
                row["events_per_sec"]
                / base_parallel["events_per_sec"],
                3,
            )
        # Bit-identity proof on exact templates: a crash and a live
        # migration mid-stream, serial vs 4 workers vs per-node worker
        # processes, same seed.  All three arms drive one stream
        # (capped with the process arm: the property is length-free,
        # the pipe IPC is not).
        proof_events = process_events
        fingerprints = []
        for plan, workers in (
            ("serial", 1),
            ("parallel", 4),
            ("process", 1),
        ):
            config = ClusterConfig(
                n_nodes=4,
                template=default_template("exact"),
                seed=_SEED,
                checkpoint_every=max(proof_events // 8, 1000),
                routing="ring",
                scale_events=(
                    ScaleEvent(
                        at_event=proof_events // 3, action="add"
                    ),
                ),
                failures=(
                    NodeFailure(
                        at_event=proof_events // 2, node_id=1
                    ),
                ),
                plan=plan,
                ingest_workers=workers,
                delivery_batch=_THROUGHPUT_BATCH,
            )
            events = zipf_workload(
                BitBudgetedRandom(_SEED),
                n_keys=_KEYS,
                n_events=proof_events,
                exponent=_EXPONENT,
            )
            simulation = ClusterSimulation(config)
            simulation.run(events)
            fingerprints.append(
                view_fingerprint(simulation.aggregator.global_view())
            )
        parallel_bit_identical = fingerprints[0] == fingerprints[1]
        process_bit_identical = fingerprints[0] == fingerprints[2]
        # Weighted (heavy-count) arm: the same cluster consuming a
        # pre-aggregated feed per-unit vs via the geometric skip-ahead
        # fast-forward.  The modes may only move wall-clock numbers on
        # approximate templates (statistically equivalent streams,
        # pinned by the hypothesis sweep); on exact templates they are
        # bit-identical, which the weighted proof below pins across all
        # three execution plans with a crash and a migration mid-run.
        full_run = throughput_events >= _THROUGHPUT_FULL_EVENTS
        skipahead_events = min(
            throughput_events,
            _SKIPAHEAD_EVENTS_CAP if full_run else _SKIPAHEAD_SMOKE_EVENTS,
        )
        skipahead_rows, skip_ahead_speedup = _run_skipahead_arms(
            skipahead_events
        )
        if full_run:
            # Full runs also measure the arm at smoke size: CI's
            # regression gate compares fresh smoke runs against this
            # committed reference, so it must be apples to apples.
            _, skip_ahead_speedup_smoke = _run_skipahead_arms(
                _SKIPAHEAD_SMOKE_EVENTS
            )
        else:
            skip_ahead_speedup_smoke = skip_ahead_speedup
        weighted_fingerprints = []
        for plan, workers, mode in (
            ("serial", 1, "skip_ahead"),
            ("parallel", 4, "skip_ahead"),
            ("process", 1, "skip_ahead"),
            ("serial", 1, "per_unit"),
        ):
            config = ClusterConfig(
                n_nodes=4,
                template=default_template("exact"),
                seed=_SEED,
                checkpoint_every=max(skipahead_events // 8, 1000),
                routing="ring",
                scale_events=(
                    ScaleEvent(
                        at_event=skipahead_events // 3, action="add"
                    ),
                ),
                failures=(
                    NodeFailure(
                        at_event=skipahead_events // 2, node_id=1
                    ),
                ),
                plan=plan,
                ingest_workers=workers,
                delivery_batch=_THROUGHPUT_BATCH,
                consume_mode=mode,
            )
            events = weighted_zipf_workload(
                BitBudgetedRandom(_SEED),
                n_keys=_KEYS,
                n_events=skipahead_events,
                exponent=_EXPONENT,
                mean_count=_SKIPAHEAD_MEAN_COUNT,
            )
            simulation = ClusterSimulation(config)
            simulation.run(events)
            weighted_fingerprints.append(
                view_fingerprint(simulation.aggregator.global_view())
            )
        weighted_bit_identical = all(
            fp == weighted_fingerprints[0]
            for fp in weighted_fingerprints[1:]
        )
    return {
        "benchmark": "cluster_throughput",
        "seed": _SEED,
        "workload": {
            "kind": "zipf",
            "events": throughput_events,
            "keys": _KEYS,
            "exponent": _EXPONENT,
        },
        "config": {
            "nodes": _THROUGHPUT_NODES,
            "wal_fsync_every": _THROUGHPUT_FSYNC,
            "delivery_batch": _THROUGHPUT_BATCH,
            "process_nodes": list(_PROCESS_NODE_SWEEP),
            "process_events": process_events,
            "skipahead_events": skipahead_events,
            "skipahead_mean_count": _SKIPAHEAD_MEAN_COUNT,
        },
        "cpus": os.cpu_count() or 1,
        "rows": rows,
        "process_rows": process_rows,
        "skipahead_rows": skipahead_rows,
        "skip_ahead_speedup": skip_ahead_speedup,
        "skip_ahead_speedup_smoke": skip_ahead_speedup_smoke,
        "parallel_bit_identical": parallel_bit_identical,
        "process_bit_identical": process_bit_identical,
        "weighted_bit_identical": weighted_bit_identical,
        "telemetry_overhead_pct": overhead_pct,
        "telemetry_overhead_detail": overhead_detail,
    }


def _append_trajectory(payload: dict) -> Path | None:
    """Append one committed trajectory row after a *full* throughput run.

    Smoke runs return ``None`` without touching the file — the committed
    history only ever holds full-run measurements.  The row records the
    skip-ahead arm (full and smoke-size speedups) plus the worker-sweep
    headline, so CI can gate fresh smoke runs against it.
    """
    if payload["workload"]["events"] < _THROUGHPUT_FULL_EVENTS:
        return None
    by_workers = {row["workers"]: row for row in payload["rows"]}
    per_unit, skip = payload["skipahead_rows"]
    row = {
        "date": time.strftime("%Y-%m-%d"),
        "cpus": payload["cpus"],
        "events": payload["config"]["skipahead_events"],
        "mean_count": payload["config"]["skipahead_mean_count"],
        "per_unit_events_per_sec": per_unit["events_per_sec"],
        "skip_ahead_events_per_sec": skip["events_per_sec"],
        "skip_ahead_speedup": payload["skip_ahead_speedup"],
        "skip_ahead_speedup_smoke": payload["skip_ahead_speedup_smoke"],
        "speedup_4_workers": by_workers[4]["speedup_vs_serial"],
    }
    if _TRAJECTORY_PATH.exists():
        doc = json.loads(_TRAJECTORY_PATH.read_text(encoding="utf-8"))
    else:
        doc = {
            "benchmark": "cluster_throughput_trajectory",
            "seed": _SEED,
            "workload": {
                "kind": "weighted_zipf",
                "keys": _KEYS,
                "exponent": _EXPONENT,
                "mean_count": _SKIPAHEAD_MEAN_COUNT,
            },
            "rows": [],
        }
    doc["rows"].append(row)
    _TRAJECTORY_PATH.parent.mkdir(parents=True, exist_ok=True)
    _TRAJECTORY_PATH.write_text(
        json.dumps(doc, indent=2, sort_keys=True, allow_nan=False) + "\n",
        encoding="utf-8",
    )
    return _TRAJECTORY_PATH


def _event_timing_shape(iters: int) -> None:
    """The per-event enabled-path delta: four clock readings plus three
    inline stage-cell folds — mirrors the ``telemetry.enabled`` branch
    of ``ClusterSimulation.deliver_event`` line for line."""
    perf = time.perf_counter
    route_cell = [0, 0.0, 0.0]
    deliver_cell = [0, 0.0, 0.0]
    consume_cell = [0, 0.0, 0.0]
    for _ in range(iters):
        started = perf()
        routed = perf()
        appended = perf()
        consumed = perf()
        seconds = routed - started
        route_cell[0] += 1
        route_cell[1] += seconds
        if seconds > route_cell[2]:
            route_cell[2] = seconds
        seconds = appended - routed
        deliver_cell[0] += 1
        deliver_cell[1] += seconds
        if seconds > deliver_cell[2]:
            deliver_cell[2] = seconds
        seconds = consumed - appended
        consume_cell[0] += 1
        consume_cell[1] += seconds
        if seconds > consume_cell[2]:
            consume_cell[2] = seconds


def _make_observe_shape(telemetry: Telemetry):
    """The per-observation delta: a clock pair, one histogram
    observation, one stage-cell fold, one trace guard — mirrors the
    fsync accounting in ``FileWal._sync_handle``/``_record_fsync``
    (checkpoint observations share the shape)."""
    perf = time.perf_counter
    registry = telemetry.registry
    timer = telemetry.stage_timer()

    def shape(iters: int) -> None:
        for _ in range(iters):
            start = perf()
            seconds = perf() - start
            registry.observe("wal_fsync_seconds", seconds)
            timer.add("fsync", seconds)
            if telemetry.trace_active:
                telemetry.trace("wal_fsync", node=0)

    return shape


def _calibrate_shape(shape, iters: int = 20_000, batches: int = 9) -> float:
    """Median per-iteration cost of one instrumentation code shape.

    Each batch is a few milliseconds of the exact code the hot path
    runs — granular enough that a scheduler stall poisons a minority of
    batches, which the median rejects.  The surrounding ``for`` loop
    adds ~30 ns per iteration, biasing the estimate *high* (the real
    sites are straight-line code), so the calibration is conservative.
    """
    perf = time.perf_counter
    samples = []
    for _ in range(batches):
        start = perf()
        shape(iters)
        samples.append((perf() - start) / iters)
    samples.sort()
    return samples[len(samples) // 2]


def _measure_telemetry_overhead(
    n_events: int, tmp: str
) -> tuple[float, dict]:
    """Calibrated accounting estimate of the wall-clock telemetry tax.

    Earlier revisions measured this as the elapsed-time ratio of paired
    enabled/disabled runs.  On a shared single-core box that estimator
    is structurally broken: adjacent *identical* runs differ by ±10-15%
    wall clock (scheduler steal, page-cache state), so the noise floor
    of any two-run ratio exceeds the 5% acceptance bar itself and the
    gate flaps on machine weather, not on the instrumentation.

    The quantity under test is measurable directly instead.  The
    enabled-vs-disabled delta is, by the inertness contract, a fixed
    set of extra operations — per delivered event the serial loop takes
    four clock readings and folds three stage cells; per fsync (and per
    checkpoint) the storage layer takes a clock pair and feeds one
    histogram observation, one stage cell, and a trace guard.  The
    deterministic counters run in *both* arms, so they are not part of
    the delta.  Both op counts are exact — read from the instrumented
    run's own accumulators — and the per-op costs are calibrated on
    the spot with short loops of the identical code shape
    (:func:`_calibrate_shape`).  The estimate is

        overhead = extra_s / (elapsed_s - extra_s)

    with every term measured on this machine during this run.  The
    residual wall noise sits only in the denominator, where ±10%
    perturbs a ~2% estimate by ~±0.2 points — versus ±10 points when
    it hits a two-run numerator.
    """
    config = ClusterConfig(
        n_nodes=_THROUGHPUT_NODES,
        template=default_template("simplified_ny"),
        seed=_SEED,
        buffer_limit=512,
        checkpoint_every=max(n_events // 8, 1000),
        storage="file",
        storage_dir=f"{tmp}/overhead-instrumented",
        wal_fsync_every=_THROUGHPUT_FSYNC,
    )
    events = zipf_workload(
        BitBudgetedRandom(_SEED),
        n_keys=_KEYS,
        n_events=n_events,
        exponent=_EXPONENT,
    )
    telemetry = Telemetry()
    with ClusterSimulation(config, telemetry=telemetry) as simulation:
        result = simulation.run(events)
    stages = telemetry.stage_snapshot()
    timed_events = int(stages.get("route", {}).get("count", 0))
    observations = sum(
        int(cell["count"])
        for cell in telemetry.registry.snapshot()["histograms"].values()
    )

    per_event_s = _calibrate_shape(_event_timing_shape)
    per_observe_s = _calibrate_shape(_make_observe_shape(Telemetry()))
    extra_s = timed_events * per_event_s + observations * per_observe_s
    base_s = max(result.elapsed_s - extra_s, 1e-9)
    detail = {
        "elapsed_s": round(result.elapsed_s, 4),
        "extra_s": round(extra_s, 4),
        "timed_events": timed_events,
        "observations": observations,
        "per_event_us": round(per_event_s * 1e6, 3),
        "per_observation_us": round(per_observe_s * 1e6, 3),
    }
    return round(100.0 * extra_s / base_s, 2), detail


def _render_throughput(payload: dict) -> str:
    table = TextTable(
        ["workers", "events/s", "speedup", "rms err", "ckpts"]
    )
    for row in payload["rows"]:
        table.add_row(
            f"{row['workers']} ({row['mode']})",
            f"{row['events_per_sec']:,.0f}",
            f"{row['speedup_vs_serial']:.2f}x",
            f"{100 * row['rms_relative_error']:.3f}%",
            str(row["checkpoints"]),
        )
    process_table = TextTable(
        ["nodes", "plan", "events/s", "vs serial", "vs parallel"]
    )
    for row in payload["process_rows"]:
        process_table.add_row(
            str(row["nodes"]),
            row["arm"],
            f"{row['events_per_sec']:,.0f}",
            f"{row['speedup_vs_serial']:.2f}x",
            f"{row['speedup_vs_parallel']:.2f}x",
        )
    skipahead_table = TextTable(
        ["consume mode", "increments/s", "speedup", "rms err"]
    )
    for row in payload["skipahead_rows"]:
        skipahead_table.add_row(
            row["arm"],
            f"{row['events_per_sec']:,.0f}",
            f"{row['speedup_vs_per_unit']:.2f}x",
            f"{100 * row['rms_relative_error']:.3f}%",
        )
    workload = payload["workload"]
    config = payload["config"]
    return "\n".join(
        [
            "Parallel ingest — serial loop vs worker-sharded delivery",
            f"zipf({workload['exponent']}) {workload['events']:,} events "
            f"over {workload['keys']:,} keys, seed {payload['seed']}; "
            f"{config['nodes']} nodes, file store, "
            f"fsync every {config['wal_fsync_every']} appends",
            "",
            table.render(),
            "",
            "Process plans — per-node OS workers on a CPU-bound "
            "(memory-store) config",
            f"{config['process_events']:,} events, "
            f"{payload['cpus']} CPU core(s) available",
            "",
            process_table.render(),
            "",
            "Plan-invariance check: every row reports bit-identical "
            "accuracy — workers only move wall-clock.",
            "serial vs 4-worker GlobalView (exact templates, crash + "
            "migration mid-stream): "
            + (
                "bit-identical"
                if payload["parallel_bit_identical"]
                else "MISMATCH"
            ),
            "serial vs process-plan GlobalView (same crash + "
            "migration stream): "
            + (
                "bit-identical"
                if payload["process_bit_identical"]
                else "MISMATCH"
            ),
            "",
            "Skip-ahead arm — weighted feed "
            f"(~{config['skipahead_mean_count']} increments/event, "
            f"{config['skipahead_events']:,} events), per-unit coin "
            "flips vs geometric fast-forward",
            "",
            skipahead_table.render(),
            "",
            "weighted exact-template GlobalView across serial / "
            "parallel / process plans and both consume modes: "
            + (
                "bit-identical"
                if payload["weighted_bit_identical"]
                else "MISMATCH"
            ),
            "telemetry overhead (calibrated op accounting): "
            f"{payload['telemetry_overhead_pct']:+.2f}% "
            "(acceptance bar: <= 5% on full runs)",
        ]
    )


def _check_throughput(payload: dict) -> None:
    """The throughput-scenario invariants (full or quick)."""
    rows = payload["rows"]
    assert [row["workers"] for row in rows] == list(_WORKER_SWEEP)
    serial = rows[0]
    assert serial["mode"] == "serial"
    for row in rows:
        assert row["events"] == payload["workload"]["events"]
        # The execution plan must never change what the cluster
        # computes: bit-identical accuracy and state at every width.
        assert row["rms_relative_error"] == serial["rms_relative_error"]
        assert row["max_relative_error"] == serial["max_relative_error"]
        assert row["checkpoints"] == serial["checkpoints"]
        assert row["state_bits"] == serial["state_bits"]
        assert row["events_per_sec"] > 0
    process_rows = payload["process_rows"]
    assert [(row["nodes"], row["arm"]) for row in process_rows] == [
        (nodes, arm)
        for nodes in _PROCESS_NODE_SWEEP
        for arm in ("serial", "parallel", "process")
    ]
    by_arm = {(row["nodes"], row["arm"]): row for row in process_rows}
    for row in process_rows:
        base = by_arm[(row["nodes"], "serial")]
        assert row["events"] == payload["config"]["process_events"]
        # Same plan-invariance bar as the worker sweep: serial,
        # thread-parallel, and process plans compute the same thing.
        assert row["rms_relative_error"] == base["rms_relative_error"]
        assert row["max_relative_error"] == base["max_relative_error"]
        assert row["checkpoints"] == base["checkpoints"]
        assert row["state_bits"] == base["state_bits"]
        assert row["events_per_sec"] > 0
    assert payload["parallel_bit_identical"] is True
    assert payload["process_bit_identical"] is True
    skip_rows = payload["skipahead_rows"]
    assert [row["arm"] for row in skip_rows] == ["per_unit", "skip_ahead"]
    per_unit_row, skip_row = skip_rows
    # Identical weighted streams: both arms saw the same increments.
    assert per_unit_row["increments"] == skip_row["increments"]
    assert per_unit_row["increments"] > per_unit_row["events"]
    for row in skip_rows:
        assert row["events"] == payload["config"]["skipahead_events"]
        assert row["events_per_sec"] > 0
    assert payload["skip_ahead_speedup"] == skip_row["speedup_vs_per_unit"]
    # The consume mode may never change *what* an exact cluster
    # computes, any plan, crash + migration in the mix.
    assert payload["weighted_bit_identical"] is True
    if payload["workload"]["events"] >= _THROUGHPUT_FULL_EVENTS:
        # The tentpole acceptance bar: the geometric fast-forward must
        # beat per-unit coin flips >= 5x on the heavy-count workload.
        assert payload["skip_ahead_speedup"] >= 5.0, (
            f"skip-ahead speedup {payload['skip_ahead_speedup']}x "
            "below the 5x acceptance bar"
        )
    if (
        payload["workload"]["events"] >= _THROUGHPUT_FULL_EVENTS
        and payload["cpus"] >= 2
    ):
        # The acceptance bar for the process arm (full runs on a
        # multi-core box only — with one core, worker processes just
        # time-slice and the comparison measures nothing): per-node OS
        # workers must beat thread-parallel delivery on the CPU-bound
        # template, where the GIL caps what threads can overlap.
        speedup = by_arm[(4, "process")]["speedup_vs_parallel"]
        assert speedup > 1.0, (
            f"4-node process-plan speedup {speedup}x vs parallel "
            "below the 1x acceptance bar"
        )
    # The telemetry layer must be cheap on the delivery path.  Smoke
    # runs only pin that the measurement exists and is finite (20k-event
    # timings are scheduler noise); full runs enforce the 5% bar.
    overhead = payload["telemetry_overhead_pct"]
    assert isinstance(overhead, float) and math.isfinite(overhead)
    if payload["workload"]["events"] >= _THROUGHPUT_FULL_EVENTS:
        assert overhead <= 5.0, (
            f"telemetry overhead {overhead}% above the 5% "
            "acceptance bar"
        )
    if payload["workload"]["events"] >= _THROUGHPUT_FULL_EVENTS:
        # The acceptance bar (full runs only — smoke timings are noise):
        # worker-sharded delivery must overlap enough commit stall to
        # reach 1.5x serial at 4 workers.
        by_workers = {row["workers"]: row for row in rows}
        assert by_workers[4]["speedup_vs_serial"] >= 1.5, (
            f"4-worker speedup {by_workers[4]['speedup_vs_serial']}x "
            "below the 1.5x acceptance bar"
        )


# ----------------------------------------------------------------------
# gossip scenario: decentralized reads converge to the central answer
# ----------------------------------------------------------------------
_GOSSIP_SWEEP = (2, 4, 8)
_GOSSIP_FANOUT = 1


def _run_gossip(n_events: int) -> dict:
    """Gossip aggregation at 2/4/8 nodes on ``exact`` templates.

    Each run schedules a push-pull round every eighth of the stream and
    crashes the last node mid-run (so the digest-rebuild path is part
    of what is measured).  Per node count the payload records the
    rounds the end-of-stream anti-entropy pass needed (the O(log n)
    claim made measurable), the worst pre-convergence staleness in
    events (the "stale but bounded" guarantee), and whether every
    node's decentralized read equals the central merge tree's answer
    bit for bit — the gossip counterpart of Remark 2.4's exactness.
    """
    gossip_every = max(n_events // 8, 1)
    rows = []
    for n_nodes in _GOSSIP_SWEEP:
        config = ClusterConfig(
            n_nodes=n_nodes,
            template=default_template("exact"),
            seed=_SEED,
            buffer_limit=512,
            checkpoint_every=max(n_events // (4 * n_nodes), 1000),
            aggregation="gossip",
            gossip_fanout=_GOSSIP_FANOUT,
            gossip_every=gossip_every,
            failures=(
                NodeFailure(at_event=n_events // 2, node_id=n_nodes - 1),
            ),
        )
        events = zipf_workload(
            BitBudgetedRandom(_SEED),
            n_keys=_KEYS,
            n_events=n_events,
            exponent=_EXPONENT,
        )
        with ClusterSimulation(config) as simulation:
            result = simulation.run(events)
            central = view_fingerprint(
                simulation.aggregator.global_view()
            )
            equivalent = all(
                view_fingerprint(simulation.node_view(node.node_id))
                == central
                for node in simulation.nodes
            )
            metrics = simulation.metrics_snapshot()
        rows.append(
            {
                "nodes": n_nodes,
                "metrics": metrics,
                "events": result.total_events,
                "events_per_sec": round(result.events_per_sec, 1),
                "gossip_rounds": result.gossip_rounds,
                "rounds_to_convergence": (
                    result.gossip_convergence_rounds
                ),
                "max_staleness_events": result.gossip_max_staleness,
                "central_read_equivalent": equivalent,
                "max_relative_error": result.max_relative_error,
                "recoveries": result.recoveries,
            }
        )
    return {
        "benchmark": "cluster_gossip",
        "seed": _SEED,
        "workload": {
            "kind": "zipf",
            "events": n_events,
            "keys": _KEYS,
            "exponent": _EXPONENT,
        },
        "config": {
            "fanout": _GOSSIP_FANOUT,
            "gossip_every": gossip_every,
            "template": "exact",
        },
        "rows": rows,
    }


def _render_gossip(payload: dict) -> str:
    table = TextTable(
        [
            "nodes",
            "events/s",
            "rounds (stream)",
            "rounds to converge",
            "max staleness",
            "local == central",
        ]
    )
    for row in payload["rows"]:
        table.add_row(
            str(row["nodes"]),
            f"{row['events_per_sec']:,.0f}",
            str(row["gossip_rounds"]),
            str(row["rounds_to_convergence"]),
            f"{row['max_staleness_events']:,}",
            "yes" if row["central_read_equivalent"] else "NO",
        )
    workload = payload["workload"]
    config = payload["config"]
    return "\n".join(
        [
            "Gossip aggregation — decentralized reads vs the central "
            "merge tree",
            f"zipf({workload['exponent']}) {workload['events']:,} events "
            f"over {workload['keys']:,} keys, seed {payload['seed']}; "
            f"fanout {config['fanout']}, round every "
            f"{config['gossip_every']:,} events, exact templates",
            "",
            table.render(),
            "",
            "Exactness check: after convergence every node's gossiped "
            "view is bit-identical to the central answer — digests "
            "merge by version, never by sum, so epidemic exchange "
            "costs nothing in accuracy (Remark 2.4).",
        ]
    )


def _check_gossip(payload: dict) -> None:
    """The gossip-scenario invariants (full or quick)."""
    rows = payload["rows"]
    assert [row["nodes"] for row in rows] == list(_GOSSIP_SWEEP)
    for row in rows:
        assert row["events"] == payload["workload"]["events"]
        # Every node's decentralized read must equal the central
        # merge-tree answer bit for bit on exact templates.
        assert row["central_read_equivalent"] is True
        assert row["max_relative_error"] == 0.0
        # Convergence is O(log n) rounds: generous constant, but the
        # bound must scale logarithmically, not linearly.
        bound = 3 * (math.ceil(math.log2(row["nodes"])) + 1)
        assert 1 <= row["rounds_to_convergence"] <= bound, (
            f"{row['nodes']} nodes took "
            f"{row['rounds_to_convergence']} rounds (bound {bound})"
        )
        assert row["max_staleness_events"] >= 0
        assert row["recoveries"] >= 1  # the crash is part of the run


# ----------------------------------------------------------------------
# membership scenario: self-healed kills match driver-healed runs
# ----------------------------------------------------------------------
_MEMBERSHIP_SWEEP = (2, 4, 8)
_MEMBERSHIP_SUSPECT_AFTER = 2


def _run_membership(n_events: int) -> dict:
    """Self-healing membership at 2/4/8 nodes on ``exact`` templates.

    Each sweep arm kills the last node at mid-stream with
    ``NodeFailure(heal=False)`` — the driver walks away and the
    membership layer must notice (digest staleness), agree (quorum
    vote), and heal (checkpoint + WAL replay) on its own.  A paired
    reference run of the identical seed and workload uses the classic
    driver-healed crash instead; its global view is the ground the
    self-healed run is held to, bit for bit.  Detection latency in
    gossip rounds is recorded per arm and must stay within
    ``suspect_after`` plus an O(log n) dissemination allowance.
    """
    gossip_every = max(n_events // 8, 1)
    rows = []
    for n_nodes in _MEMBERSHIP_SWEEP:
        shared = dict(
            n_nodes=n_nodes,
            template=default_template("exact"),
            seed=_SEED,
            buffer_limit=512,
            checkpoint_every=max(n_events // (4 * n_nodes), 1000),
            aggregation="gossip",
            gossip_fanout=_GOSSIP_FANOUT,
            gossip_every=gossip_every,
        )
        kill_at = n_events // 2
        fingerprints = {}
        for arm in ("self-healed", "driver-healed"):
            config = ClusterConfig(
                membership=(arm == "self-healed"),
                suspect_after=(
                    _MEMBERSHIP_SUSPECT_AFTER
                    if arm == "self-healed"
                    else 2
                ),
                failures=(
                    NodeFailure(
                        at_event=kill_at,
                        node_id=n_nodes - 1,
                        heal=(arm == "driver-healed"),
                    ),
                ),
                **shared,
            )
            events = zipf_workload(
                BitBudgetedRandom(_SEED),
                n_keys=_KEYS,
                n_events=n_events,
                exponent=_EXPONENT,
            )
            with ClusterSimulation(config) as simulation:
                result = simulation.run(events)
                fingerprints[arm] = view_fingerprint(
                    simulation.aggregator.global_view()
                )
                if arm == "self-healed":
                    metrics = simulation.metrics_snapshot()
                    healed = result
        rows.append(
            {
                "nodes": n_nodes,
                "events": healed.total_events,
                "events_per_sec": round(healed.events_per_sec, 1),
                "kills": healed.membership_kills,
                "suspicions": healed.membership_suspicions,
                "confirmations": healed.membership_confirmations,
                "heals": healed.membership_heals,
                "detection_rounds": healed.membership_detection_rounds,
                "healed_equivalent": (
                    fingerprints["self-healed"]
                    == fingerprints["driver-healed"]
                ),
                "max_relative_error": healed.max_relative_error,
                "recoveries": healed.recoveries,
                "metrics": metrics,
            }
        )
    return {
        "benchmark": "cluster_membership",
        "seed": _SEED,
        "workload": {
            "kind": "zipf",
            "events": n_events,
            "keys": _KEYS,
            "exponent": _EXPONENT,
        },
        "config": {
            "fanout": _GOSSIP_FANOUT,
            "gossip_every": gossip_every,
            "suspect_after": _MEMBERSHIP_SUSPECT_AFTER,
            "membership_heal": "auto",
            "template": "exact",
        },
        "rows": rows,
    }


def _render_membership(payload: dict) -> str:
    table = TextTable(
        [
            "nodes",
            "events/s",
            "suspicions",
            "confirms",
            "heals",
            "detect rounds",
            "healed == driver",
        ]
    )
    for row in payload["rows"]:
        table.add_row(
            str(row["nodes"]),
            f"{row['events_per_sec']:,.0f}",
            str(row["suspicions"]),
            str(row["confirmations"]),
            str(row["heals"]),
            str(row["detection_rounds"]),
            "yes" if row["healed_equivalent"] else "NO",
        )
    workload = payload["workload"]
    config = payload["config"]
    return "\n".join(
        [
            "Self-healing membership — gossip-detected kills vs "
            "driver-healed crashes",
            f"zipf({workload['exponent']}) {workload['events']:,} events "
            f"over {workload['keys']:,} keys, seed {payload['seed']}; "
            f"suspect after {config['suspect_after']} stale rounds, "
            f"round every {config['gossip_every']:,} events, "
            "exact templates",
            "",
            table.render(),
            "",
            "Losslessness check: a kill the driver never heals "
            "converges to the same exact global view as the classic "
            "driver-healed crash — detection, quorum, and recovery "
            "change when healing happens, never what the cluster "
            "computes.",
        ]
    )


def _check_membership(payload: dict) -> None:
    """The membership-scenario invariants (full or quick)."""
    rows = payload["rows"]
    assert [row["nodes"] for row in rows] == list(_MEMBERSHIP_SWEEP)
    suspect_after = payload["config"]["suspect_after"]
    for row in rows:
        assert row["events"] == payload["workload"]["events"]
        # The one kill was detected, quorum-confirmed, and healed by
        # the cluster itself (the heal shows up as a recovery too).
        assert row["kills"] == 1
        assert row["suspicions"] >= 1
        assert row["confirmations"] >= 1
        assert row["heals"] == 1
        assert row["recoveries"] >= 1
        # The self-healed run must be bit-identical to the
        # driver-healed reference on exact templates.
        assert row["healed_equivalent"] is True
        assert row["max_relative_error"] == 0.0
        # Detection latency: the suspicion threshold plus an O(log n)
        # allowance for vote dissemination across the quorum.
        bound = suspect_after + 2 + 3 * (
            math.ceil(math.log2(row["nodes"])) + 1
        )
        assert 1 <= row["detection_rounds"] <= bound, (
            f"{row['nodes']} nodes took "
            f"{row['detection_rounds']} rounds to heal (bound {bound})"
        )


# ----------------------------------------------------------------------
# serving scenario: queries/sec over replica digest reads, inertly
# ----------------------------------------------------------------------
_SERVING_SWEEP = (1, 2, 4)
#: Timed replica reads per row — enough to exercise the read cache,
#: cheap enough to keep even the quick path in seconds.
_SERVING_QUERIES = 2_000
#: Serving rows measure the read path, not ingest; the full sweep runs
#: each replica count twice (served + unserved arms), so cap the stream
#: length — the properties being pinned are length-free.
_SERVING_FULL_EVENTS = 250_000


def _http_get(url: str, timeout: float = 10.0) -> tuple[int, bytes]:
    with urllib.request.urlopen(url, timeout=timeout) as reply:
        return reply.status, reply.read()


def _serve_http_round(reader: ClusterReader, hot_key: str) -> int:
    """Exercise every HTTP endpoint against a live server once.

    Returns the number of 200 responses; JSON endpoints must parse as
    strict JSON.  This is what makes the served arm *served* — the
    inertness fingerprint is taken after these requests have run.
    """
    ok = 0
    server = serve_http(reader)
    try:
        json_endpoints = (
            "/healthz",
            f"/v1/keys/{hot_key}",
            "/v1/topk?k=5",
            "/v1/view",
            "/v1/view?consistency=consistent",
        )
        for endpoint in json_endpoints:
            status, body = _http_get(server.url + endpoint)
            json.loads(body.decode("utf-8"))
            ok += status == 200
        status, body = _http_get(
            server.url + "/v1/stream?limit=1&poll_ms=1"
        )
        ok += status == 200 and b"event: count" in body
        status, body = _http_get(server.url + "/metrics")
        ok += status == 200 and b"http_requests_total" in body
    finally:
        server.close()
    return ok


def _run_serving(n_events: int) -> dict:
    """The serving layer at 1/2/4 replicas on ``exact`` templates.

    Each replica count runs the identical gossip-aggregated workload
    twice: once untouched, once served after the stream ends — a
    :class:`~repro.cluster.query.ClusterReader` answering a timed burst
    of replica-consistency reads (queries/sec and cache hit rate), a
    per-replica bit-identity check of every digest read against
    ``global_view()``, and one full HTTP/SSE round through
    :func:`~repro.cluster.httpd.serve_http`.  Both arms must end with
    identical view fingerprints: serving reads never change what the
    cluster computes.  Every staleness stamp's reported bound must stay
    within the configured ``gossip_every`` window, and a converged
    replica must report zero lag — the honesty half of the "stale but
    bounded" guarantee.
    """
    serving_events = min(n_events, _SERVING_FULL_EVENTS)
    gossip_every = max(serving_events // 8, 1)
    rows = []
    for n_nodes in _SERVING_SWEEP:
        config = ClusterConfig(
            n_nodes=n_nodes,
            template=default_template("exact"),
            seed=_SEED,
            buffer_limit=512,
            checkpoint_every=max(serving_events // (4 * n_nodes), 1000),
            aggregation="gossip",
            gossip_fanout=_GOSSIP_FANOUT,
            gossip_every=gossip_every,
        )
        fingerprints = {}
        for arm in ("unserved", "served"):
            events = zipf_workload(
                BitBudgetedRandom(_SEED),
                n_keys=_KEYS,
                n_events=serving_events,
                exponent=_EXPONENT,
            )
            with ClusterSimulation(config) as simulation:
                simulation.run(events)
                if arm == "served":
                    reader = ClusterReader.from_simulation(simulation)
                    central = view_fingerprint(
                        simulation.aggregator.global_view()
                    )
                    replica_reads_identical = all(
                        reader.view(
                            consistency="replica", replica=node_id
                        ).fingerprint()
                        == central
                        for node_id in reader.replicas
                    )
                    staleness = reader.staleness(consistency="replica")
                    hot_keys = [
                        key
                        for key, _ in reader.raw_view(
                            consistency="replica"
                        ).top_keys(32)
                    ]
                    started = time.perf_counter()
                    for index in range(_SERVING_QUERIES):
                        reader.get(
                            hot_keys[index % len(hot_keys)],
                            consistency="replica",
                        )
                    elapsed = max(
                        time.perf_counter() - started, 1e-9
                    )
                    # Snapshot both counters before the HTTP round
                    # adds its own lookups to the same reader.
                    hits = reader.cache_hits
                    lookups = hits + reader.cache_misses
                    http_ok = _serve_http_round(reader, hot_keys[0])
                    metrics = simulation.metrics_snapshot()
                fingerprints[arm] = view_fingerprint(
                    simulation.aggregator.global_view()
                )
        rows.append(
            {
                "replicas": n_nodes,
                "events": serving_events,
                "queries": _SERVING_QUERIES,
                "queries_per_sec": round(
                    _SERVING_QUERIES / elapsed, 1
                ),
                "cache_hit_rate": round(hits / max(lookups, 1), 4),
                "staleness_lag_events": staleness.lag_events,
                "staleness_bound_events": staleness.bound_events,
                "replica_reads_bit_identical": replica_reads_identical,
                "served_equals_unserved": (
                    fingerprints["served"] == fingerprints["unserved"]
                ),
                "http_ok": http_ok,
                "metrics": metrics,
            }
        )
    return {
        "benchmark": "cluster_serving",
        "seed": _SEED,
        "workload": {
            "kind": "zipf",
            "events": serving_events,
            "keys": _KEYS,
            "exponent": _EXPONENT,
        },
        "config": {
            "fanout": _GOSSIP_FANOUT,
            "gossip_every": gossip_every,
            "template": "exact",
            "queries": _SERVING_QUERIES,
        },
        "rows": rows,
    }


def _render_serving(payload: dict) -> str:
    table = TextTable(
        [
            "replicas",
            "queries/s",
            "cache hit",
            "lag",
            "bound",
            "replica == central",
            "served == unserved",
        ]
    )
    for row in payload["rows"]:
        table.add_row(
            str(row["replicas"]),
            f"{row['queries_per_sec']:,.0f}",
            f"{100 * row['cache_hit_rate']:.1f}%",
            f"{row['staleness_lag_events']:,}",
            f"{row['staleness_bound_events']:,}",
            "yes" if row["replica_reads_bit_identical"] else "NO",
            "yes" if row["served_equals_unserved"] else "NO",
        )
    workload = payload["workload"]
    config = payload["config"]
    return "\n".join(
        [
            "Serving — HTTP/SSE query service over replica digest reads",
            f"zipf({workload['exponent']}) {workload['events']:,} events "
            f"over {workload['keys']:,} keys, seed {payload['seed']}; "
            f"{config['queries']:,} replica reads per row, round every "
            f"{config['gossip_every']:,} events, exact templates",
            "",
            table.render(),
            "",
            "Inertness check: a run that was served — every endpoint, "
            "SSE included — fingerprints identically to an unserved "
            "run of the same seed, and every converged replica read is "
            "bit-identical to global_view().",
        ]
    )


def _check_serving(payload: dict) -> None:
    """The serving-scenario invariants (full or quick)."""
    rows = payload["rows"]
    assert [row["replicas"] for row in rows] == list(_SERVING_SWEEP)
    gossip_every = payload["config"]["gossip_every"]
    for row in rows:
        assert row["events"] == payload["workload"]["events"]
        # Serving reads must never change what the cluster computes.
        assert row["served_equals_unserved"] is True
        # Every replica's digest read equals the central fold bit for
        # bit once the end-of-stream anti-entropy pass has converged.
        assert row["replica_reads_bit_identical"] is True
        # The reported staleness bound is the configured cadence, and a
        # converged replica owes nothing.
        assert row["staleness_bound_events"] <= gossip_every
        assert row["staleness_lag_events"] == 0
        assert row["queries_per_sec"] > 0
        # A burst of reads against a quiescent cluster folds once.
        assert row["cache_hit_rate"] > 0.5
        # healthz, key, topk, two views, SSE, metrics — all served.
        assert row["http_ok"] == 7


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_cluster_scaling(benchmark):
    """Full node-count sweep; writes BENCH_cluster.json."""
    payload = benchmark.pedantic(
        lambda: _run_sweep(_FULL_EVENTS), rounds=1, iterations=1
    )
    _check(payload)
    write_json_result("cluster", payload)
    write_result("BENCH_cluster", _render(payload))


def test_cluster_recovery_determinism(benchmark):
    """Crash-heavy run is bit-deterministic across replays."""

    def run_once():
        config = ClusterConfig(
            n_nodes=4,
            template=default_template("simplified_ny"),
            seed=_SEED,
            checkpoint_every=5000,
            failures=(
                NodeFailure(10_000, 0),
                NodeFailure(25_000, 2),
                NodeFailure(40_000, 0),
            ),
        )
        events = zipf_workload(
            BitBudgetedRandom(_SEED), n_keys=500, n_events=50_000
        )
        return ClusterSimulation(config).run(events)

    first = benchmark.pedantic(run_once, rounds=1, iterations=1)
    replay = run_once()
    assert first.node_stats == replay.node_stats
    assert first.top == replay.top
    assert first.rms_relative_error == replay.rms_relative_error


def test_cluster_elastic(benchmark):
    """Elastic 2→4→3 vs static; writes BENCH_cluster_elastic.json."""
    payload = benchmark.pedantic(
        lambda: _run_elastic(_FULL_EVENTS), rounds=1, iterations=1
    )
    _check_elastic(payload)
    write_json_result("cluster_elastic", payload)
    write_result("BENCH_cluster_elastic", _render_elastic(payload))


def test_cluster_durability(benchmark):
    """Memory vs file stores; writes BENCH_cluster_durability.json."""
    payload = benchmark.pedantic(
        lambda: _run_durability(_FULL_EVENTS), rounds=1, iterations=1
    )
    _check_durability(payload)
    write_json_result("cluster_durability", payload)
    write_result("BENCH_cluster_durability", _render_durability(payload))


def test_cluster_throughput(benchmark):
    """Serial vs parallel ingest; writes BENCH_cluster_throughput.json."""
    payload = benchmark.pedantic(
        lambda: _run_throughput(_FULL_EVENTS), rounds=1, iterations=1
    )
    _check_throughput(payload)
    write_json_result("cluster_throughput", payload)
    write_result("BENCH_cluster_throughput", _render_throughput(payload))
    _append_trajectory(payload)


def test_cluster_gossip(benchmark):
    """Gossip aggregation sweep; writes BENCH_cluster_gossip.json."""
    payload = benchmark.pedantic(
        lambda: _run_gossip(_FULL_EVENTS), rounds=1, iterations=1
    )
    _check_gossip(payload)
    write_json_result("cluster_gossip", payload)
    write_result("BENCH_cluster_gossip", _render_gossip(payload))


def test_cluster_membership(benchmark):
    """Self-healing sweep; writes BENCH_cluster_membership.json."""
    payload = benchmark.pedantic(
        lambda: _run_membership(_FULL_EVENTS), rounds=1, iterations=1
    )
    _check_membership(payload)
    write_json_result("cluster_membership", payload)
    write_result(
        "BENCH_cluster_membership", _render_membership(payload)
    )


def test_cluster_serving(benchmark):
    """Serving-layer sweep; writes BENCH_cluster_serving.json."""
    payload = benchmark.pedantic(
        lambda: _run_serving(_FULL_EVENTS), rounds=1, iterations=1
    )
    _check_serving(payload)
    write_json_result("cluster_serving", payload)
    write_result("BENCH_cluster_serving", _render_serving(payload))


# ----------------------------------------------------------------------
# script mode (the tier-1 smoke path)
# ----------------------------------------------------------------------
class _Scenario(NamedTuple):
    """One registered scenario: how to run, validate, and persist it."""

    run: Callable[[int], dict]
    check: Callable[[dict], None]
    render: Callable[[dict], str]
    artifact: str  # BENCH_<artifact>.json / .txt
    #: Optional step after a checked run (e.g. append the committed
    #: trajectory row); returns a written path or None.
    post: Callable[[dict], "Path | None"] | None = None


#: The scenario registry — ``--scenario`` choices come from here, so an
#: unknown name is a clean argparse error listing the valid scenarios
#: instead of a traceback, and adding a scenario is one entry.
_SCENARIOS: dict[str, _Scenario] = {
    "scaling": _Scenario(_run_sweep, _check, _render, "cluster"),
    "elastic": _Scenario(
        _run_elastic, _check_elastic, _render_elastic, "cluster_elastic"
    ),
    "durability": _Scenario(
        _run_durability,
        _check_durability,
        _render_durability,
        "cluster_durability",
    ),
    "throughput": _Scenario(
        _run_throughput,
        _check_throughput,
        _render_throughput,
        "cluster_throughput",
        post=_append_trajectory,
    ),
    "gossip": _Scenario(
        _run_gossip, _check_gossip, _render_gossip, "cluster_gossip"
    ),
    "membership": _Scenario(
        _run_membership,
        _check_membership,
        _render_membership,
        "cluster_membership",
    ),
    "serving": _Scenario(
        _run_serving,
        _check_serving,
        _render_serving,
        "cluster_serving",
    ),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Cluster benchmark scenarios (scaling, elasticity, "
            "durability, parallel-ingest throughput, gossip "
            "aggregation, self-healing membership, serving)"
        )
    )
    parser.add_argument(
        "-q",
        "--quick",
        action="store_true",
        help="smoke path: reduced workload, same schema and checks",
    )
    parser.add_argument(
        "--scenario",
        choices=sorted(_SCENARIOS),
        default="scaling",
        help="which scenario to run (default: scaling)",
    )
    args = parser.parse_args(argv)
    scenario = _SCENARIOS[args.scenario]
    n_events = _QUICK_EVENTS if args.quick else _FULL_EVENTS
    payload = scenario.run(n_events)
    scenario.check(payload)
    path = write_json_result(scenario.artifact, payload)
    write_result(f"BENCH_{scenario.artifact}", scenario.render(payload))
    print(scenario.render(payload))
    print(f"\nwrote {path}")
    if scenario.post is not None:
        extra = scenario.post(payload)
        if extra is not None:
            print(f"appended trajectory row to {extra}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
