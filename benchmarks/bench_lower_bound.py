"""E6 — regenerate the Theorem 3.1 derandomize-and-pump tables."""

from __future__ import annotations

from _bench_utils import write_result

from repro.experiments.lower_bound_exp import (
    LowerBoundConfig,
    run_lower_bound,
    run_survival_threshold,
)
from repro.lowerbound.automaton import morris_automaton
from repro.lowerbound.verify import verify_theorem_3_1


def test_lower_bound_attack(benchmark):
    """Break every sub-√T counter; large exact counter survives."""
    config = LowerBoundConfig()
    result = benchmark.pedantic(
        lambda: run_lower_bound(config), rounds=1, iterations=1
    )
    text = "\n".join(
        [
            f"E6 / Theorem 3.1 — derandomize-and-pump at T = {config.t_param}",
            "",
            result.table(),
            "",
            "Shape check: every randomized counter with < log2(T/2) state "
            "bits is broken by the pumping witness; the wide exact counter "
            "survives (matching the min's log n branch).",
        ]
    )
    write_result("E6_lower_bound", text)
    assert result.all_small_broken


def test_survival_threshold(benchmark):
    """Measured vs predicted Ω(log T) survival bits."""
    result = benchmark.pedantic(
        lambda: run_survival_threshold(), rounds=1, iterations=1
    )
    text = "\n".join(
        [
            "E6 / Eq. (7) — minimal deterministic-counter bits vs T",
            "",
            result.table(),
            "",
            "Measured thresholds match ceil(log2(T/2 + 1)) exactly.",
        ]
    )
    write_result("E6_survival", text)
    for row in result.rows:
        assert row.smallest_surviving_cap_bits == row.predicted_bits


def test_one_attack(benchmark):
    """Micro: one derandomize-and-pump attack."""
    automaton = morris_automaton(1.0, 63)
    benchmark(lambda: verify_theorem_3_1(automaton, 4096))
