"""Exact state distributions by dynamic programming ([Fla85]).

Flajolet's detailed analysis of approximate counting works with the exact
probabilities ``P_{n,l} = P[X = l after n increments]``.  They satisfy the
recurrence

    P_{n+1,l} = P_{n,l} · (1 - q_l) + P_{n,l-1} · q_{l-1},

where ``q_l = (1+a)^{-l}`` is Morris(a)'s accept probability in state l
(Eq. (46) of [Fla85] is the closed-form solution of this recurrence).  We
evaluate the recurrence directly with numpy — an O(n · x_max) computation
that is exact up to float rounding and serves as the library's strongest
correctness oracle:

* the simulated state distribution must match it (chi-square tests);
* the estimator must be exactly unbiased under it
  (``sum_l P_{n,l} · estimate(l) = n``);
* failure probabilities derived from it drive experiments E2 and E5.

The same machinery covers the subsample (simplified-NY) counter, whose
state is the pair ``(Y, t)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.estimators import morris_estimate, subsample_estimate
from repro.errors import ParameterError

__all__ = [
    "morris_state_distribution",
    "morris_estimate_moments",
    "morris_failure_probability",
    "morris_x_window_probability",
    "subsample_state_distribution",
    "subsample_estimate_moments",
]


def _morris_x_cap(a: float, n: int, margin: int = 64) -> int:
    """A state bound L with negligible probability mass above it.

    X is stochastically dominated by a pure birth chain that steps every
    increment, so X <= n; we also know X concentrates near
    ``log_{1+a}(an+1)``.  Use the concentration value plus a generous
    additive margin, capped at n.
    """
    if n == 0:
        return 1
    center = math.log1p(a * n) / math.log1p(a)
    return int(min(n, math.ceil(center + margin + 8 * math.sqrt(center + 1)))) + 1


def morris_state_distribution(
    a: float, n: int, x_cap: int | None = None
) -> np.ndarray:
    """Exact distribution of Morris(a)'s state X after ``n`` increments.

    Returns an array ``P`` with ``P[l] = P[X = l]`` for
    ``l = 0..len(P)-1``.  ``x_cap`` truncates the support; the default cap
    keeps the truncated mass below float precision (verified by the tests
    summing the result to 1).
    """
    if a <= 0.0:
        raise ParameterError(f"a must be positive, got {a}")
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    cap = _morris_x_cap(a, n) if x_cap is None else x_cap
    if cap < 1:
        raise ParameterError(f"x_cap must be >= 1, got {cap}")
    # Accept probabilities q_l = (1+a)^-l, clamped to the cap (mass at the
    # cap state never leaves; with the default cap it is ~0 anyway).
    levels = np.arange(cap + 1, dtype=np.float64)
    q = np.exp(-levels * math.log1p(a))
    p = np.zeros(cap + 1, dtype=np.float64)
    p[0] = 1.0
    for _ in range(n):
        flow = p * q
        flow[-1] = 0.0  # truncation: the cap state absorbs
        p = p - flow
        p[1:] += flow[:-1]
    return p


def morris_estimate_moments(a: float, n: int) -> tuple[float, float]:
    """Exact (mean, variance) of the Morris estimator after n increments.

    The paper states the closed forms ``E = N`` and
    ``Var = a N (N-1) / 2`` (§1.2); this computes them from the exact DP,
    so tests can confirm the closed forms independently.
    """
    p = morris_state_distribution(a, n)
    estimates = np.array(
        [morris_estimate(level, a) for level in range(len(p))]
    )
    mean = float(np.dot(p, estimates))
    second = float(np.dot(p, estimates * estimates))
    return mean, second - mean * mean


def morris_failure_probability(a: float, n: int, epsilon: float) -> float:
    """Exact ``P[|estimate - n| > ε n]`` for Morris(a) at count n."""
    if n <= 0:
        raise ParameterError(f"n must be positive, got {n}")
    if epsilon <= 0.0:
        raise ParameterError(f"epsilon must be positive, got {epsilon}")
    p = morris_state_distribution(a, n)
    estimates = np.array(
        [morris_estimate(level, a) for level in range(len(p))]
    )
    bad = np.abs(estimates - n) > epsilon * n
    return float(p[bad].sum())


def morris_x_window_probability(
    a: float, n: int, low: float, high: float
) -> float:
    """Exact ``P[low <= X <= high]`` after n increments.

    §1.1's discussion of [Fla85] Prop. 3: for a = 1 the probability that X
    lies in ``[log2 N - C, log2 N + C]`` is a constant bounded away from 1,
    independent of N — the reason vanilla Morris(1) cannot give small
    failure probability.
    """
    p = morris_state_distribution(a, n)
    levels = np.arange(len(p))
    inside = (levels >= low) & (levels <= high)
    return float(p[inside].sum())


def subsample_state_distribution(
    resolution: int, n: int, t_cap: int
) -> np.ndarray:
    """Exact distribution of the simplified-NY state ``(Y, t)``.

    Returns a 2-D array ``P`` of shape ``(t_cap + 1, 2 * resolution)``
    with ``P[t, y] = P[state = (y, t)]`` after ``n`` increments.  The
    transition is: with probability ``2^-t`` move ``y -> y+1``, folding
    ``y = 2s`` into ``(s, t+1)``; otherwise stay.

    ``t_cap`` must be high enough that the top rate is effectively never
    exceeded for the given ``n`` (tests assert total mass 1); complexity
    is ``O(n · t_cap · resolution)``, so use small resolutions in tests.
    """
    if resolution < 1:
        raise ParameterError(f"resolution must be >= 1, got {resolution}")
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    if t_cap < 0:
        raise ParameterError(f"t_cap must be non-negative, got {t_cap}")
    width = 2 * resolution
    p = np.zeros((t_cap + 1, width), dtype=np.float64)
    p[0, 0] = 1.0
    rates = 2.0 ** -np.arange(t_cap + 1, dtype=np.float64)
    for _ in range(n):
        nxt = p * (1.0 - rates)[:, None]
        moved = p * rates[:, None]
        # y -> y + 1 within a row.
        nxt[:, 1:] += moved[:, :-1]
        # y = 2s - 1 accepting one more folds to (s, t + 1).
        nxt[1:, resolution] += moved[:-1, -1]
        # At the cap the fold has nowhere to go; keep the mass in place so
        # truncation error is visible as mass at (t_cap, 2s-1).
        nxt[-1, -1] += moved[-1, -1]
        p = nxt
    return p


def subsample_estimate_moments(
    resolution: int, n: int, t_cap: int
) -> tuple[float, float]:
    """Exact (mean, variance) of the simplified-NY estimator ``Y·2^t``."""
    p = subsample_state_distribution(resolution, n, t_cap)
    t_values, y_values = np.indices(p.shape)
    estimates = np.array(
        [
            [
                subsample_estimate(int(y_values[t, y]), int(t_values[t, y]))
                for y in range(p.shape[1])
            ]
            for t in range(p.shape[0])
        ],
        dtype=np.float64,
    )
    mean = float((p * estimates).sum())
    second = float((p * estimates * estimates).sum())
    return mean, second - mean * mean
