"""Closed-form Morris state probabilities ([Fla85] Eq. (46) style).

§1.1 notes that "[Fla85] Equation (46) does give an explicit sum-product
formula for the exact probabilities P_{n,l}".  This module implements that
closed form as an *independent* second oracle against the dynamic program
in :mod:`repro.theory.flajolet` — two derivations agreeing to 1e-12 is
strong evidence both are right.

Derivation used here (equivalent to Flajolet's): ``X >= l`` after n
increments iff the waiting-time sum ``S_l = Z_0 + ... + Z_{l-1}`` is at
most n, with ``Z_i ~ Geometric(p_i)``, ``p_i = (1+a)^{-i}``.  For distinct
``p_i`` the generating function ``Π_i p_i z / (1 - r_i z)`` (``r_i = 1 -
p_i``) splits into partial fractions, giving

    P[S_l > n] = Σ_{i=1}^{l-1} (Π_{j=0}^{l-1} p_j / p_i) · D_i · r_i^{n-l+1} / p_i ...

concretely implemented below with the degenerate ``p_0 = 1`` term (Z_0 is
deterministically 1) factored out.

Two evaluation modes:

* **exact rationals** for ``a = 1`` (base 2): every ``p_i = 2^-i`` is
  dyadic, so :mod:`fractions` arithmetic is exact — no cancellation issues
  ever, at the cost of big integers (use n up to a few hundred).
* **floats** for general ``a``: the partial-fraction sum alternates and
  loses precision as ``l`` grows; results are reliable for ``l ≤ ~30``,
  which covers every a ≥ ~0.5 use case.  The tests quantify this against
  the DP.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.errors import ParameterError

__all__ = [
    "morris_tail_exact_base2",
    "morris_pmf_exact_base2",
    "morris_tail_float",
]


def _validate(l: int, n: int) -> None:
    if l < 0:
        raise ParameterError(f"l must be non-negative, got {l}")
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")


def morris_tail_exact_base2(l: int, n: int) -> Fraction:
    """Exact ``P[X >= l]`` after n increments for Morris(1), as a Fraction.

    Uses exact rational partial fractions over ``r_i = 1 - 2^-i``.
    """
    _validate(l, n)
    if l == 0:
        return Fraction(1)
    if n == 0:
        return Fraction(0)
    # Z_0 = 1 deterministically; X >= 1 after the first increment.
    if l == 1:
        return Fraction(1)
    # Now S_l = 1 + Z_1 + ... + Z_{l-1}; need Z_1+...+Z_{l-1} <= n - 1.
    budget = n - 1
    terms = l - 1  # geometrics with p_i = 2^-i for i = 1..l-1
    if terms > budget:
        # Each Z_i >= 1: the sum cannot fit.
        return Fraction(0)
    p = [Fraction(1, 1 << i) for i in range(1, l)]
    r = [1 - pi for pi in p]
    # P[sum > m] = Π p_i · Σ_i D_i · r_i^{m - terms + 1} / (p_i) where
    # D_i = Π_{j != i} 1/(1 - r_j / r_i); derived from the PGF
    # Π p_i z / (1 - r_i z) — the z^terms shift moves m to m - terms.
    product_p = Fraction(1)
    for pi in p:
        product_p *= pi
    tail = Fraction(0)
    for i in range(terms):
        coefficient = Fraction(1)
        for j in range(terms):
            if j != i:
                coefficient *= r[i] / (r[i] - r[j])
        tail += coefficient * r[i] ** (budget - terms + 1) / p[i]
    survival = product_p * tail
    return 1 - survival


def morris_pmf_exact_base2(l: int, n: int) -> Fraction:
    """Exact ``P[X = l]`` after n increments for Morris(1)."""
    _validate(l, n)
    return morris_tail_exact_base2(l, n) - morris_tail_exact_base2(l + 1, n)


def morris_tail_float(a: float, l: int, n: int) -> float:
    """Floating-point ``P[X >= l]`` for general Morris(a).

    Same partial-fraction formula in floats.  Numerically reliable for
    small ``l`` (the alternating coefficients grow like the inverse
    q-Pochhammer); prefer the DP beyond ``l ≈ 30``.
    """
    if a <= 0.0:
        raise ParameterError(f"a must be positive, got {a}")
    _validate(l, n)
    if l == 0:
        return 1.0
    if n == 0:
        return 0.0
    if l == 1:
        return 1.0
    budget = n - 1
    terms = l - 1
    if terms > budget:
        return 0.0
    p = [math.exp(-i * math.log1p(a)) for i in range(1, l)]
    r = [1.0 - pi for pi in p]
    log_product_p = sum(math.log(pi) for pi in p)
    tail = 0.0
    for i in range(terms):
        coefficient = 1.0
        for j in range(terms):
            if j != i:
                coefficient *= r[i] / (r[i] - r[j])
        tail += coefficient * r[i] ** (budget - terms + 1) / p[i]
    survival = math.exp(log_product_p) * tail
    return min(1.0, max(0.0, 1.0 - survival))
