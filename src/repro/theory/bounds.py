"""Probability-bound helpers: Chernoff, Chebyshev, union, exact binomials.

These are the inequalities the paper's proofs run on; the experiments use
them to draw "predicted" lines next to measured points, and the tests use
the exact binomial tail to validate the sampling primitives.
"""

from __future__ import annotations

import math

from repro.errors import ParameterError

__all__ = [
    "chernoff_upper_tail",
    "chernoff_lower_tail",
    "chebyshev_failure",
    "union_bound",
    "binomial_tail_upper_exact",
    "binomial_pmf",
]


def chernoff_upper_tail(mean: float, epsilon: float) -> float:
    """Chernoff bound ``P[S >= (1+ε) mean] <= exp(-ε² mean / (2+ε))``.

    Valid for sums of independent [0,1] variables with expectation
    ``mean``; this is the multiplicative form used in Theorem 2.1.
    """
    if mean < 0.0:
        raise ParameterError(f"mean must be non-negative, got {mean}")
    if epsilon <= 0.0:
        raise ParameterError(f"epsilon must be positive, got {epsilon}")
    return math.exp(-(epsilon * epsilon) * mean / (2.0 + epsilon))


def chernoff_lower_tail(mean: float, epsilon: float) -> float:
    """Chernoff bound ``P[S <= (1-ε) mean] <= exp(-ε² mean / 2)``."""
    if mean < 0.0:
        raise ParameterError(f"mean must be non-negative, got {mean}")
    if not 0.0 < epsilon <= 1.0:
        raise ParameterError(f"epsilon must be in (0, 1], got {epsilon}")
    return math.exp(-(epsilon * epsilon) * mean / 2.0)


def chebyshev_failure(variance: float, deviation: float) -> float:
    """Chebyshev: ``P[|S - E S| > d] <= Var/d²`` (capped at 1)."""
    if variance < 0.0:
        raise ParameterError(f"variance must be non-negative, got {variance}")
    if deviation <= 0.0:
        raise ParameterError(f"deviation must be positive, got {deviation}")
    return min(1.0, variance / (deviation * deviation))


def union_bound(probabilities: list[float]) -> float:
    """Sum of failure probabilities, capped at 1."""
    total = math.fsum(probabilities)
    if total < 0.0:
        raise ParameterError("negative probability in union bound")
    return min(1.0, total)


def binomial_pmf(n: int, k: int, p: float) -> float:
    """Exact ``P[Binomial(n, p) = k]`` via log-gamma (stable for large n)."""
    if n < 0 or not 0 <= k <= n:
        raise ParameterError(f"invalid (n, k) = ({n}, {k})")
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"p must be in [0, 1], got {p}")
    if p == 0.0:
        return 1.0 if k == 0 else 0.0
    if p == 1.0:
        return 1.0 if k == n else 0.0
    log_choose = (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )
    return math.exp(
        log_choose + k * math.log(p) + (n - k) * math.log1p(-p)
    )


def binomial_tail_upper_exact(n: int, k: int, p: float) -> float:
    """Exact ``P[Binomial(n, p) >= k]`` by direct summation.

    Sums at most ``n - k + 1`` pmf terms; use for validation-scale n.
    """
    if n < 0 or k < 0:
        raise ParameterError(f"invalid (n, k) = ({n}, {k})")
    if k > n:
        return 0.0
    return min(1.0, math.fsum(binomial_pmf(n, j, p) for j in range(k, n + 1)))
