"""Predicted space curves — the shapes of Theorems 1.1, 1.2, 2.3 and 3.1.

The reproduction brief compares *shapes*, not constants: doubling
``log(1/δ)`` should add ~1 bit to the new algorithm (``log log(1/δ)``
scaling) but a constant number of bits to the Chebyshev-tuned Morris
Counter (``log(1/δ)`` scaling).  These functions provide both the
constant-free asymptotic skeletons and concrete per-algorithm predictions
derived from the parameter formulas in :mod:`repro.core.params`.
"""

from __future__ import annotations

import math

from repro.core.params import (
    morris_a_chebyshev,
    morris_a_optimal,
    morris_transition_point,
    morris_x_capacity,
    nelson_yu_alpha_raw,
    nelson_yu_x0,
    validate_epsilon_delta,
)
from repro.errors import ParameterError

__all__ = [
    "log2_safe",
    "optimal_space_bits",
    "classical_space_bits",
    "lower_bound_bits",
    "morris_space_bits",
    "morris_plus_space_bits",
    "nelson_yu_space_bits",
]


def log2_safe(value: float) -> float:
    """``log2(max(value, 2))`` — keeps the skeleton formulas positive."""
    return math.log2(max(value, 2.0))


def optimal_space_bits(n: int, epsilon: float, delta: float) -> float:
    """Skeleton ``log log n + log(1/ε) + log log(1/δ)`` (Theorems 1.1/1.2)."""
    validate_epsilon_delta(epsilon, delta)
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    return (
        log2_safe(log2_safe(n))
        + log2_safe(1.0 / epsilon)
        + log2_safe(log2_safe(1.0 / delta))
    )


def classical_space_bits(n: int, epsilon: float, delta: float) -> float:
    """Skeleton ``log log n + log(1/ε) + log(1/δ)`` (pre-paper analyses)."""
    validate_epsilon_delta(epsilon, delta)
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    return (
        log2_safe(log2_safe(n))
        + log2_safe(1.0 / epsilon)
        + log2_safe(1.0 / delta)
    )


def lower_bound_bits(n: int, epsilon: float, delta: float) -> float:
    """Skeleton ``min(log n, log log n + log(1/ε) + log log(1/δ))``
    (Theorem 3.1)."""
    validate_epsilon_delta(epsilon, delta)
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    return min(log2_safe(n), optimal_space_bits(n, epsilon, delta))


def morris_space_bits(a: float, n: int, headroom: float = 4.0) -> int:
    """Predicted bits for Morris(a)'s X at count n (register sized for the
    concentration value with headroom)."""
    capacity = morris_x_capacity(a, n, headroom)
    return max(1, capacity.bit_length())


def morris_plus_space_bits(
    epsilon: float, delta: float, n: int, headroom: float = 4.0
) -> int:
    """Predicted bits for the Theorem 1.2 Morris+ instantiation.

    The deterministic prefix needs ``ceil(log2(8/a + 2))`` bits and the
    Morris part :func:`morris_space_bits` with ``a = ε²/(8 ln(1/δ))``.
    """
    a = morris_a_optimal(epsilon, delta)
    prefix_bits = max(1, (morris_transition_point(a) + 1).bit_length())
    return prefix_bits + morris_space_bits(a, n, headroom)


def nelson_yu_space_bits(
    epsilon: float,
    delta: float,
    n: int,
    chernoff_c: float = 6.0,
) -> int:
    """Predicted bits for Algorithm 1's state ``(X, Y)`` at count n.

    X concentrates at ``max(X0, log_{1+ε} n)`` and Y is bounded by its
    epoch threshold ``floor(αT) + 1`` with ``α`` one rounding step above
    ``C ln(X²/δ)/(ε³ T)``.
    """
    validate_epsilon_delta(epsilon, delta)
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    x0 = nelson_yu_x0(epsilon, delta, chernoff_c)
    x = max(x0, math.ceil(math.log1p(epsilon * n) / math.log1p(epsilon)) + 1)
    threshold = math.ceil(math.exp(x * math.log1p(epsilon)))
    alpha_raw = nelson_yu_alpha_raw(epsilon, delta, chernoff_c, x, threshold)
    # One dyadic rounding step up, as the implementation does.
    alpha = 2.0 ** -max(0, math.floor(-math.log2(alpha_raw)))
    y_max = int(alpha * threshold) + 1
    return max(1, x.bit_length()) + max(1, y_max.bit_length())
