"""Exact and asymptotic analysis of the counters.

This package is the library's ground truth:

* :mod:`~repro.theory.flajolet` — the *exact* state distribution of
  Morris(a) and of the subsample counter by dynamic programming (the
  recurrence behind [Fla85] Eq. 46), with exact estimator moments.  The
  property-based tests validate every simulator against it.
* :mod:`~repro.theory.bounds` — Chernoff/Chebyshev/union-bound helpers and
  exact binomial tails.
* :mod:`~repro.theory.mgf` — the §2.2 moment-generating-function
  concentration bounds for prefix sums of geometric waiting times.
* :mod:`~repro.theory.space` — predicted space curves for each algorithm
  (the shapes experiments E3/E4 compare against).
* :mod:`~repro.theory.failure` — failure-probability predictions: the
  Chebyshev δ, the Theorem 1.2 bound ``2e^{-ε²/8a}``, and the Morris(a=1)
  constant failure floor of [Fla85] Prop. 3 / §1.1.
"""

from repro.theory.closed_form import (
    morris_pmf_exact_base2,
    morris_tail_exact_base2,
    morris_tail_float,
)
from repro.theory.flajolet import (
    morris_estimate_moments,
    morris_failure_probability,
    morris_state_distribution,
    subsample_state_distribution,
)
from repro.theory.space import (
    classical_space_bits,
    lower_bound_bits,
    morris_space_bits,
    nelson_yu_space_bits,
    optimal_space_bits,
)

__all__ = [
    "morris_state_distribution",
    "morris_estimate_moments",
    "morris_failure_probability",
    "subsample_state_distribution",
    "morris_pmf_exact_base2",
    "morris_tail_exact_base2",
    "morris_tail_float",
    "morris_space_bits",
    "nelson_yu_space_bits",
    "optimal_space_bits",
    "classical_space_bits",
    "lower_bound_bits",
]
