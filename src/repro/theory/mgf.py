"""The §2.2 MGF concentration bounds for Morris(a) waiting times.

§2.2 analyzes Morris(a) through the waiting times
``Z_i ~ Geometric((1+a)^{-i})`` between state transitions and proves, via
the moment generating function of their prefix sums, that for ``k > 1/a``

    P[ |Σ_{i<=k} Z_i − ((1+a)^{k+1}−1)/a| > ε·((1+a)^{k+1}−1)/a ]
        <= 2·exp(−ε²/(8a)).

This module exposes the pieces of that argument so the experiments can draw
the predicted failure curves (E4) and the tests can check the inequality
against simulation:

* :func:`prefix_sum_mean` — ``E Σ Z_i = ((1+a)^{k+1}−1)/a``;
* :func:`prefix_tail_bound` — the end-to-end two-sided tail bound
  ``e^{−ε²(1+a)^{−k}((1+a)^{k+1}−1)/(4a)}`` per side (the paper's final
  displayed inequality before specializing to ``k > 1/a``);
* :func:`theorem_1_2_failure_bound` — ``2 e^{−ε²/(8a)}``;
* :func:`k_window` — the indices ``(k1, k2)`` the proof unions over.
"""

from __future__ import annotations

import math

from repro.errors import ParameterError

__all__ = [
    "prefix_sum_mean",
    "prefix_sum_variance",
    "prefix_tail_bound",
    "theorem_1_2_failure_bound",
    "k_window",
]


def _validate(a: float, k: int | None = None) -> None:
    if not 0.0 < a < 1.0:
        raise ParameterError(f"a must be in (0, 1), got {a}")
    if k is not None and k < 0:
        raise ParameterError(f"k must be non-negative, got {k}")


def prefix_sum_mean(a: float, k: int) -> float:
    """``E[Σ_{i=0}^{k} Z_i] = ((1+a)^{k+1} - 1)/a`` (geometric series)."""
    _validate(a, k)
    return math.expm1((k + 1) * math.log1p(a)) / a


def prefix_sum_variance(a: float, k: int) -> float:
    """Exact variance ``Σ (1-p_i)/p_i²`` of the prefix sum."""
    _validate(a, k)
    total = 0.0
    for i in range(k + 1):
        p = math.exp(-i * math.log1p(a))
        total += (1.0 - p) / (p * p)
    return total


def prefix_tail_bound(a: float, k: int, epsilon: float) -> float:
    """One-sided tail bound ``exp(−ε²(1+a)^{−k}((1+a)^{k+1}−1)/(4a))``.

    This is the final bound §2.2 derives (for each side) before
    simplifying; it is valid for ``ε < 1/2``.
    """
    _validate(a, k)
    if not 0.0 < epsilon < 0.5:
        raise ParameterError(f"epsilon must be in (0, 1/2), got {epsilon}")
    exponent = (
        0.25
        * epsilon
        * epsilon
        * math.exp(-k * math.log1p(a))
        * prefix_sum_mean(a, k)
    )
    return math.exp(-exponent)


def theorem_1_2_failure_bound(a: float, epsilon: float) -> float:
    """Two-sided failure bound ``2 e^{−ε²/(8a)}`` for ``k > 1/a`` (§2.2).

    With ``a = ε²/(8 ln(1/δ))`` this equals ``2δ`` — the tuning behind
    Theorem 1.2.
    """
    _validate(a)
    if not 0.0 < epsilon < 0.5:
        raise ParameterError(f"epsilon must be in (0, 1/2), got {epsilon}")
    return min(1.0, 2.0 * math.exp(-epsilon * epsilon / (8.0 * a)))


def k_window(a: float, epsilon: float, n: int) -> tuple[int, int]:
    """The indices ``(k1, k2)`` from the end of the §2.2 proof.

    ``k1`` is the largest k with ``(1+ε)·mean(k) < n`` and ``k2`` the
    smallest k with ``(1-ε)·mean(k) >= n``; concentration at both implies
    ``k1 < X <= k2`` after n increments, which squeezes the estimator into
    ``(1 ± 2ε) n``.
    """
    _validate(a)
    if not 0.0 < epsilon < 0.5:
        raise ParameterError(f"epsilon must be in (0, 1/2), got {epsilon}")
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    # mean(k) is increasing in k; solve by direct scan from the center.
    log1pa = math.log1p(a)

    def mean(k: int) -> float:
        return math.expm1((k + 1) * log1pa) / a

    center = max(0, int(math.log1p(a * n) / log1pa))
    k1 = center
    while k1 > 0 and (1.0 + epsilon) * mean(k1) >= n:
        k1 -= 1
    while (1.0 + epsilon) * mean(k1 + 1) < n:
        k1 += 1
    k2 = max(center, k1 + 1)
    while (1.0 - epsilon) * mean(k2) < n:
        k2 += 1
    while k2 > 0 and (1.0 - epsilon) * mean(k2 - 1) >= n:
        k2 -= 1
    return k1, k2
