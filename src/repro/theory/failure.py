"""Failure-probability predictions for each tuning of each counter.

Three regimes matter in the paper:

* **Chebyshev Morris** (§1.2): with ``a = 2ε²δ`` the failure probability
  is at most ``Var/(εN)² ≈ a/(2ε²) = δ`` — the classical guarantee whose
  space cost is ``log(1/δ)``.
* **Optimal Morris / Morris+** (§2.2): ``2 e^{−ε²/(8a)}``, valid once
  ``N > 8/a`` — the Theorem 1.2 guarantee.
* **Morris(a = 1)** (§1.1): *no* tuning of the query can push the failure
  probability of a ``2^C``-approximation below a constant, because
  [Fla85] Prop. 3 pins ``P[X ∈ [log2 N − C, log2 N + C]]`` to a constant
  < 1 independent of N.  :func:`morris_a1_window_failure` computes that
  constant exactly from the DP; experiment E5 shows it flat in N.

Appendix A's lower bound on vanilla Morris' failure at small N is also
here, both the paper's analytic event bound and the exact DP value.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.estimators import morris_estimate
from repro.errors import ParameterError
from repro.theory.flajolet import (
    morris_state_distribution,
    morris_x_window_probability,
)
from repro.theory.mgf import theorem_1_2_failure_bound

__all__ = [
    "chebyshev_predicted_failure",
    "optimal_predicted_failure",
    "morris_a1_window_failure",
    "appendix_a_adversarial_n",
    "appendix_a_event_probability",
    "vanilla_small_n_failure_exact",
]


def chebyshev_predicted_failure(a: float, epsilon: float, n: int) -> float:
    """Chebyshev bound ``a(n-1)/(2ε²n) ≈ a/(2ε²)`` on Morris(a) failure."""
    if a <= 0.0:
        raise ParameterError(f"a must be positive, got {a}")
    if epsilon <= 0.0:
        raise ParameterError(f"epsilon must be positive, got {epsilon}")
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    return min(1.0, a * (n - 1) / (2.0 * epsilon * epsilon * n))


def optimal_predicted_failure(a: float, epsilon: float) -> float:
    """Theorem 1.2 bound ``2 e^{−ε²/(8a)}`` (valid for N > 8/a)."""
    return theorem_1_2_failure_bound(a, epsilon)


def morris_a1_window_failure(n: int, c: float) -> float:
    """Exact ``P[X ∉ [log2 n − c, log2 n + c]]`` for Morris(1).

    §1.1: this stays a constant as n grows — the precise sense in which
    Morris(1) cannot be a high-probability ``2^c``-approximation.
    """
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    if c <= 0.0:
        raise ParameterError(f"c must be positive, got {c}")
    center = math.log2(n)
    return 1.0 - morris_x_window_probability(1.0, n, center - c, center + c)


def appendix_a_adversarial_n(a: float, epsilon: float, c: float) -> int:
    """The adversarial count ``N'_a = c ε^{4/3} / a`` of Appendix A."""
    if a <= 0.0:
        raise ParameterError(f"a must be positive, got {a}")
    if not 0.0 < epsilon < 0.25:
        raise ParameterError(f"epsilon must be in (0, 1/4), got {epsilon}")
    if not 0.0 < c <= 2.0 ** -8:
        raise ParameterError(f"c must be in (0, 2^-8], got {c}")
    return max(2, math.ceil(c * epsilon ** (4.0 / 3.0) / a))


def appendix_a_event_probability(a: float, epsilon: float, c: float) -> float:
    """Appendix A's lower bound ``(ε^{4/3} c / 4)·√δ``-style event bound.

    The appendix exhibits an event E (X rises for t steps then freezes)
    under which the estimate is below ``(1−ε)N``, and lower-bounds
    ``P[E] >= (ε^{4/3} c / 4) · e^{−ε²/(16a)}``.  Returned as stated.
    """
    if a <= 0.0:
        raise ParameterError(f"a must be positive, got {a}")
    if not 0.0 < epsilon < 0.25:
        raise ParameterError(f"epsilon must be in (0, 1/4), got {epsilon}")
    if not 0.0 < c <= 2.0 ** -8:
        raise ParameterError(f"c must be in (0, 2^-8], got {c}")
    return (
        (epsilon ** (4.0 / 3.0)) * c / 4.0
    ) * math.exp(-epsilon * epsilon / (16.0 * a))


def morris_low_failure_scan(
    a: float, epsilon: float, checkpoints: list[int]
) -> list[float]:
    """Exact ``P[estimate < (1−ε) n]`` at several counts, one DP pass.

    Equivalent to calling :func:`vanilla_small_n_failure_exact` per
    checkpoint but advances the Flajolet DP incrementally, so the cost is
    one pass to ``max(checkpoints)``.
    """
    if not checkpoints:
        raise ParameterError("need at least one checkpoint")
    ordered = sorted(set(checkpoints))
    if ordered[0] < 1:
        raise ParameterError("checkpoints must be >= 1")
    if not 0.0 < epsilon < 1.0:
        raise ParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    n_max = ordered[-1]
    # Reuse the DP cap logic for the largest count.
    from repro.theory.flajolet import _morris_x_cap

    cap = _morris_x_cap(a, n_max)
    levels = np.arange(cap + 1, dtype=np.float64)
    q = np.exp(-levels * math.log1p(a))
    estimates = np.array(
        [morris_estimate(level, a) for level in range(cap + 1)]
    )
    p = np.zeros(cap + 1, dtype=np.float64)
    p[0] = 1.0
    results: list[float] = []
    want = iter(ordered)
    target = next(want)
    for n in range(1, n_max + 1):
        flow = p * q
        flow[-1] = 0.0
        p = p - flow
        p[1:] += flow[:-1]
        if n == target:
            results.append(float(p[estimates < (1.0 - epsilon) * n].sum()))
            target = next(want, None)
            if target is None:
                break
    ordered_to_result = dict(zip(ordered, results))
    return [ordered_to_result[c] for c in checkpoints]


def vanilla_small_n_failure_exact(
    a: float, epsilon: float, n: int
) -> float:
    """Exact ``P[estimate < (1−ε) n]`` for vanilla Morris(a) at count n.

    Computed from the Flajolet DP; Appendix A predicts this exceeds δ by a
    large factor at ``n = N'_a`` when Morris(a) is run without the
    deterministic prefix.
    """
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    if not 0.0 < epsilon < 1.0:
        raise ParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    p = morris_state_distribution(a, n)
    estimates = np.array(
        [morris_estimate(level, a) for level in range(len(p))]
    )
    return float(p[estimates < (1.0 - epsilon) * n].sum())
