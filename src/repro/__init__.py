"""repro — reproduction of Nelson & Yu, "Optimal bounds for approximate
counting" (PODS 2022; arXiv:2010.02116).

The package implements the paper's new optimal approximate counter
(Algorithm 1), the Morris Counter family it improves on, the matching
lower-bound machinery, exact distributional analysis, and every experiment
in the paper's evaluation.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import NelsonYuCounter

    counter = NelsonYuCounter(epsilon=0.1, delta_exponent=20, seed=42)
    counter.add(1_000_000)
    print(counter.estimate(), counter.state_bits())
"""

from repro.core import (
    ApproximateCounter,
    CounterSnapshot,
    CsurosCounter,
    ExactCounter,
    MorrisCounter,
    MorrisPlusCounter,
    NelsonYuCounter,
    SaturatingCounter,
    SimplifiedNYCounter,
    counter_for_bits,
    make_counter,
    merge_all,
    merge_counters,
)
from repro.errors import (
    BudgetError,
    ExperimentError,
    MergeError,
    ParameterError,
    ReproError,
    StateError,
)
from repro.memory import SpaceModel
from repro.rng import BitBudgetedRandom

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # counters
    "ApproximateCounter",
    "CounterSnapshot",
    "CsurosCounter",
    "ExactCounter",
    "MorrisCounter",
    "MorrisPlusCounter",
    "NelsonYuCounter",
    "SaturatingCounter",
    "SimplifiedNYCounter",
    "counter_for_bits",
    "make_counter",
    "merge_all",
    "merge_counters",
    # infrastructure
    "BitBudgetedRandom",
    "SpaceModel",
    # errors
    "ReproError",
    "ParameterError",
    "StateError",
    "MergeError",
    "BudgetError",
    "ExperimentError",
]
