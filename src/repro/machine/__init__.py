"""Finite-register execution model (Remark 2.2's automaton view).

Remark 2.2 observes that in models of computation other than word RAM —
a finite automaton or branching program — only the variables ``X, Y``
constitute program state, and the ``Bernoulli(α)`` draw is realized by at
most ``t`` physical coin flips.  This package makes that model executable:

* :mod:`~repro.machine.registers` — :class:`BoundedRegister`, a register
  with a *hard* width: any operation whose result does not fit raises
  :class:`~repro.errors.BudgetError`.  A machine built from bounded
  registers cannot silently use more space than it declares.
* :mod:`~repro.machine.counters` — the paper's counters re-implemented as
  register machines: :class:`Morris2Machine` (Morris(1): accept by X coin
  flips), :class:`SimplifiedNYMachine`, and :class:`NelsonYuMachine`
  (Algorithm 1 with state registers X, Y, t).

The machines consume randomness through the same
:class:`~repro.rng.bitstream.BitBudgetedRandom` primitives as the
:mod:`repro.core` counters, so the test suite can drive a machine and a
counter from identical bit streams and require *state-identical*
trajectories — the strongest possible equivalence between the abstract
algorithm and its finite implementation.
"""

from repro.machine.counters import (
    Morris2Machine,
    NelsonYuMachine,
    SimplifiedNYMachine,
)
from repro.machine.registers import BoundedRegister, RegisterFile

__all__ = [
    "BoundedRegister",
    "RegisterFile",
    "Morris2Machine",
    "SimplifiedNYMachine",
    "NelsonYuMachine",
]
