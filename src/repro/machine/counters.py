"""The paper's counters as finite register machines.

Each machine's mutable state lives exclusively in
:class:`~repro.machine.registers.BoundedRegister` objects, so space usage
is *declared up front* and enforced on every write; each increment
consumes randomness only through fair coin flips
(:meth:`~repro.rng.bitstream.BitBudgetedRandom.bernoulli_pow2`), exactly
as Remark 2.2 prescribes.

Equivalence with the abstract counters: :class:`SimplifiedNYMachine` and
:class:`NelsonYuMachine` draw randomness through the *same* primitive in
the same order as their :mod:`repro.core` twins, so driving both from one
seed yields identical state trajectories — checked step for step by
``tests/machine/test_equivalence.py``.
"""

from __future__ import annotations

import math

from repro.core.params import (
    DEFAULT_CHERNOFF_C,
    morris_x_capacity,
    nelson_yu_alpha_raw,
    nelson_yu_x0,
    validate_epsilon_delta,
)
from repro.errors import BudgetError, ParameterError
from repro.machine.registers import BoundedRegister, RegisterFile
from repro.rng.bernoulli import DyadicProbability
from repro.rng.bitstream import BitBudgetedRandom

__all__ = ["Morris2Machine", "SimplifiedNYMachine", "NelsonYuMachine"]


class Morris2Machine:
    """Morris(1) as a finite automaton.

    The accept decision at state X is made by flipping X fair coins and
    accepting iff all are heads — probability exactly ``2^-X``, no real
    arithmetic anywhere.

    Parameters
    ----------
    x_width:
        Register width for X.  ``for_stream`` sizes it for a workload.
    """

    def __init__(self, x_width: int, rng: BitBudgetedRandom) -> None:
        self._x = BoundedRegister("X", x_width)
        self._file = RegisterFile(self._x)
        self._rng = rng

    @classmethod
    def for_stream(
        cls, n_max: int, rng: BitBudgetedRandom, headroom: float = 4.0
    ) -> "Morris2Machine":
        """Size the X register for streams up to ``n_max``."""
        capacity = morris_x_capacity(1.0, n_max, headroom)
        return cls(max(1, capacity.bit_length()), rng)

    @property
    def x(self) -> int:
        """Current state X."""
        return self._x.value

    @property
    def state_bits(self) -> int:
        """Declared state size."""
        return self._file.total_bits

    def increment(self) -> None:
        """One increment: X coin flips, advance on all-heads."""
        if self._rng.bernoulli_pow2(self._x.value):
            self._x.increment()

    def estimate(self) -> float:
        """``2^X - 1`` (the query may use transient word-RAM registers)."""
        return float((1 << self._x.value) - 1)


class SimplifiedNYMachine:
    """The simplified (Figure 1) counter as a register machine.

    State: a ``Y`` register of width ``log2(2s)`` and a ``t`` register of
    width ``bits(t_max)``.  Mirrors
    :class:`~repro.core.simplified_ny.SimplifiedNYCounter` increment for
    increment.
    """

    def __init__(
        self, resolution: int, t_max: int, rng: BitBudgetedRandom
    ) -> None:
        if resolution < 1:
            raise ParameterError(f"resolution must be >= 1, got {resolution}")
        if t_max < 0:
            raise ParameterError(f"t_max must be non-negative, got {t_max}")
        self._resolution = resolution
        self._y = BoundedRegister(
            "Y", max(1, (2 * resolution - 1).bit_length())
        )
        self._t = BoundedRegister("t", max(1, t_max.bit_length()))
        self._t_max = t_max
        self._file = RegisterFile(self._y, self._t)
        self._rng = rng

    @property
    def y(self) -> int:
        """Current Y."""
        return self._y.value

    @property
    def t(self) -> int:
        """Current sampling exponent."""
        return self._t.value

    @property
    def state_bits(self) -> int:
        """Declared state size (``log2(2s) + bits(t_max)``)."""
        return self._file.total_bits

    def increment(self) -> None:
        """One increment: t coin flips; halve at Y = 2s."""
        if not self._rng.bernoulli_pow2(self._t.value):
            return
        new_y = self._y.value + 1
        if new_y >= 2 * self._resolution:
            # Halve: Y <- s via shift, t <- t + 1 (overflow-checked, and
            # additionally guarded against the configured cap).
            if self._t.value >= self._t_max:
                raise BudgetError(
                    f"machine capacity exhausted at t_max={self._t_max}"
                )
            self._y.store(new_y >> 1)
            self._t.increment()
        else:
            self._y.store(new_y)

    def estimate(self) -> float:
        """``Y * 2^t`` (query-time transient arithmetic)."""
        return float(self._y.value << self._t.value)


class NelsonYuMachine:
    """Algorithm 1 as a register machine (the Remark 2.2 implementation).

    State registers: ``X`` (epoch exponent), ``Y`` (sampled count), ``t``
    (sampling exponent with ``α = 2^-t``).  The threshold ``T =
    ceil((1+ε)^X)`` and the new α after an epoch advance are recomputed in
    transient registers — they never persist, exactly as the remark
    prescribes.  δ is supplied as the exponent ∆; ε and C parameterize the
    transition function.

    Register widths are derived by walking the *deterministic* epoch
    schedule up to the X needed for ``n_max`` — the schedule (thresholds
    and t values) depends only on the parameters, not on coin flips.
    """

    def __init__(
        self,
        epsilon: float,
        delta_exponent: int,
        n_max: int,
        rng: BitBudgetedRandom,
        chernoff_c: float = DEFAULT_CHERNOFF_C,
        x_slack: int = 32,
    ) -> None:
        delta = 2.0 ** -delta_exponent
        validate_epsilon_delta(epsilon, delta)
        if n_max < 1:
            raise ParameterError(f"n_max must be >= 1, got {n_max}")
        self._epsilon = epsilon
        self._delta = delta
        self._chernoff_c = chernoff_c
        self._log1pe = math.log1p(epsilon)
        self._x0 = nelson_yu_x0(epsilon, delta, chernoff_c)

        x_needed, y_needed, t_needed = self._walk_schedule(n_max, x_slack)
        self._x = BoundedRegister(
            "X", max(1, x_needed.bit_length()), value=self._x0
        )
        self._y = BoundedRegister("Y", max(1, y_needed.bit_length()))
        self._t = BoundedRegister("t", max(1, max(1, t_needed).bit_length()))
        self._file = RegisterFile(self._x, self._y, self._t)
        self._rng = rng
        self._threshold = self._compute_threshold(self._x0)

    def _walk_schedule(self, n_max: int, x_slack: int) -> tuple[int, int, int]:
        """Largest X, Y, t reachable for streams up to ``n_max``.

        X concentrates at ``log_{1+ε} n`` (Theorem 2.3's tail makes the
        slack astronomically safe); Y is bounded by each epoch's trigger
        value; t follows the deterministic schedule.
        """
        x_cap = (
            max(
                self._x0,
                math.ceil(math.log(max(2, n_max)) / self._log1pe),
            )
            + x_slack
        )
        y_cap, t_value = 0, 0
        for x in range(self._x0, x_cap + 1):
            threshold = self._compute_threshold(x)
            if x > self._x0:
                alpha_raw = nelson_yu_alpha_raw(
                    self._epsilon,
                    self._delta,
                    self._chernoff_c,
                    x,
                    threshold,
                )
                t_value = max(
                    t_value, DyadicProbability.at_least(alpha_raw).t
                )
            y_cap = max(y_cap, (threshold >> t_value) + 1)
        return x_cap, y_cap, t_value

    def _compute_threshold(self, x: int) -> int:
        return math.ceil(math.exp(x * self._log1pe))

    @property
    def x(self) -> int:
        """Current X."""
        return self._x.value

    @property
    def y(self) -> int:
        """Current Y."""
        return self._y.value

    @property
    def t(self) -> int:
        """Current sampling exponent."""
        return self._t.value

    @property
    def state_bits(self) -> int:
        """Declared state size across the X, Y, t registers."""
        return self._file.total_bits

    def increment(self) -> None:
        """One increment of Algorithm 1, coin flips only."""
        if not self._rng.bernoulli_pow2(self._t.value):
            return
        self._y.increment()
        while (self._y.value << self._t.value) > self._threshold:
            self._advance_epoch()

    def _advance_epoch(self) -> None:
        """Lines 8-12, with all derived quantities transient."""
        self._x.increment()
        self._threshold = self._compute_threshold(self._x.value)
        alpha_raw = nelson_yu_alpha_raw(
            self._epsilon,
            self._delta,
            self._chernoff_c,
            self._x.value,
            self._threshold,
        )
        t_new = max(
            self._t.value, DyadicProbability.at_least(alpha_raw).t
        )
        self._y.shift_right(t_new - self._t.value)
        self._t.store(t_new)

    def estimate(self) -> float:
        """Query(): Y exactly in epoch 0, T afterwards."""
        if self._x.value == self._x0:
            return float(self._y.value)
        return float(self._threshold)
