"""Width-enforced registers.

A :class:`BoundedRegister` stores an unsigned integer in a declared number
of bits and refuses — by raising :class:`~repro.errors.BudgetError` — any
write that does not fit.  Machines composed of bounded registers therefore
*prove by execution* that they respect their declared space budget; the
tests drive them through millions of increments and any silent overflow
would surface immediately.
"""

from __future__ import annotations

from repro.errors import BudgetError, ParameterError

__all__ = ["BoundedRegister", "RegisterFile"]


class BoundedRegister:
    """An unsigned register of a fixed bit width.

    Parameters
    ----------
    name:
        Identifier used in error messages.
    width:
        Bit width; values must stay in ``[0, 2**width)``.
    """

    __slots__ = ("name", "width", "_value")

    def __init__(self, name: str, width: int, value: int = 0) -> None:
        if width < 1:
            raise ParameterError(f"register width must be >= 1, got {width}")
        self.name = name
        self.width = width
        self._value = 0
        self.store(value)

    @property
    def value(self) -> int:
        """Current contents."""
        return self._value

    @property
    def capacity(self) -> int:
        """Largest storable value, ``2**width - 1``."""
        return (1 << self.width) - 1

    def store(self, value: int) -> None:
        """Write ``value``; raises :class:`BudgetError` on overflow."""
        if value < 0:
            raise BudgetError(
                f"register {self.name}: negative value {value}"
            )
        if value > self.capacity:
            raise BudgetError(
                f"register {self.name} ({self.width} bits) cannot hold "
                f"{value}"
            )
        self._value = value

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` with overflow checking."""
        self.store(self._value + amount)

    def shift_right(self, bits: int) -> None:
        """Logical right shift (never overflows)."""
        if bits < 0:
            raise ParameterError(f"shift must be non-negative, got {bits}")
        self._value >>= bits

    def clear(self) -> None:
        """Reset to zero."""
        self._value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BoundedRegister({self.name}={self._value}/{self.width}b)"


class RegisterFile:
    """A named collection of bounded registers with a total budget."""

    def __init__(self, *registers: BoundedRegister) -> None:
        names = [r.name for r in registers]
        if len(set(names)) != len(names):
            raise ParameterError(f"duplicate register names in {names}")
        self._registers = {r.name: r for r in registers}

    def __getitem__(self, name: str) -> BoundedRegister:
        try:
            return self._registers[name]
        except KeyError:
            raise ParameterError(f"no register named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._registers

    def __iter__(self):
        return iter(self._registers.values())

    @property
    def total_bits(self) -> int:
        """Sum of declared register widths (the machine's state size)."""
        return sum(r.width for r in self._registers.values())

    def snapshot(self) -> dict[str, int]:
        """Current contents of every register."""
        return {name: r.value for name, r in self._registers.items()}
