"""Algorithm 1 of the paper — the new optimal approximate counter.

The counter runs a sequence of promise decision problems (§1.2): in epoch
``k`` it holds a threshold ``T = ceil((1+ε)^X)`` and a sampling rate
``α``, counts sampled increments in an auxiliary counter ``Y``, and
advances the epoch when ``Y > αT``, rescaling ``Y`` by ``α_new/α_old``.
Queries return ``Y`` exactly during epoch 0 (where ``α = 1``) and ``T``
afterwards.

State representation (Remark 2.2)
---------------------------------
The algorithm never stores ``T``, ``α`` or ``η`` as reals:

* ``T`` is recomputed from ``X`` on demand;
* ``α`` is rounded **up** to an inverse power of two and stored as the
  exponent ``t`` (rounding up keeps the Chernoff argument valid — the
  analysis only needs α at least the computed rate);
* δ enters as the exponent ``∆`` with ``δ = 2^-∆`` and is an immutable
  input, not state;
* ``η = δ/X²`` is implicit in ``X`` and ``∆``.

So the mutable state is exactly ``(X, Y)`` under the automaton accounting
and ``(X, Y, t)`` under word-RAM accounting.  The trigger test ``Y > αT``
is the integer comparison ``(Y << t) > T``.

Space behaviour (Theorem 2.3): ``X ≈ log_{1+ε} N`` contributes
``O(log log N + log(1/ε))`` bits and ``Y ≤ αT + 1 = O(C ln(X²/δ)/ε³)``
contributes ``O(log(1/ε) + log log(1/δ) + log log N)`` bits.

Mergeability (Remark 2.4)
-------------------------
With ``mergeable=True`` the counter additionally records, per epoch, how
many increments survived the sampling.  Merging inserts the smaller
counter's surviving increments into the larger counter, re-subsampling each
epoch-``i`` survivor with probability ``α_now/α_i = 2^(t_i - t_now)``
(an exact dyadic coin).  The history is auxiliary experiment state and is
excluded from ``state_bits`` — the paper's merge argument assumes the
survivor counts are available, which costs extra memory it does not count.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from repro.core.base import ApproximateCounter
from repro.core.params import (
    DEFAULT_CHERNOFF_C,
    nelson_yu_alpha_raw,
    nelson_yu_x0,
    validate_epsilon_delta,
)
from repro.errors import MergeError, ParameterError
from repro.memory.model import SpaceModel, uint_bits
from repro.rng.bernoulli import DyadicProbability
from repro.rng.skip import GeometricSkipper

__all__ = ["NelsonYuCounter"]


class NelsonYuCounter(ApproximateCounter):
    """Algorithm 1: the optimal ``O(log log N + log 1/ε + log log 1/δ)`` counter.

    Parameters
    ----------
    epsilon:
        Relative accuracy target, in ``(0, 1/2)``.
    delta_exponent:
        The integer ``∆`` with failure probability ``δ = 2^-∆``
        (Remark 2.2's input convention).  ``∆ >= 2`` so that ``δ < 1/2``.
    chernoff_c:
        The constant ``C`` in the sampling rate; Theorem 2.1 needs
        ``C >= 3``, default 6 for rounding slack.
    mergeable:
        Keep the per-epoch survivor history needed by Remark 2.4 merging.
    """

    algorithm_name = "nelson_yu"

    def __init__(
        self,
        epsilon: float,
        delta_exponent: int,
        chernoff_c: float = DEFAULT_CHERNOFF_C,
        mergeable: bool = False,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        if delta_exponent < 2:
            raise ParameterError(
                f"delta_exponent must be >= 2 (so δ < 1/2), got {delta_exponent}"
            )
        delta = 2.0 ** -delta_exponent
        validate_epsilon_delta(epsilon, delta)
        if chernoff_c < 1.0:
            raise ParameterError(f"chernoff_c must be >= 1, got {chernoff_c}")
        self._epsilon = epsilon
        self._delta_exponent = delta_exponent
        self._delta = delta
        self._chernoff_c = chernoff_c
        self._log1pe = math.log1p(epsilon)
        self._mergeable = mergeable

        # Init() (lines 2-4 of Algorithm 1).
        self._x0 = nelson_yu_x0(epsilon, delta, chernoff_c)
        self._x = self._x0
        self._y = 0
        self._t = 0  # α = 2^-t; epoch 0 samples at rate 1.
        self._threshold = self._compute_threshold(self._x)

        self._skipper = GeometricSkipper(self._rng)
        # Mergeable mode: per-epoch (t, survivors) history, current epoch last.
        self._epoch_history: list[list[int]] = [[0, 0]] if mergeable else []
        self._observe_space()

    @classmethod
    def from_delta(
        cls, epsilon: float, delta: float, **kwargs: Any
    ) -> "NelsonYuCounter":
        """Build from a real δ by rounding it down to a power of two.

        Rounding δ *down* (``∆ = ceil(log2(1/δ))``) only strengthens the
        guarantee.
        """
        validate_epsilon_delta(epsilon, delta)
        exponent = max(2, math.ceil(-math.log2(delta)))
        return cls(epsilon, exponent, **kwargs)

    # ------------------------------------------------------------------
    # parameters and derived quantities
    # ------------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        """Relative accuracy parameter ε."""
        return self._epsilon

    @property
    def delta(self) -> float:
        """Failure probability ``δ = 2^-∆``."""
        return self._delta

    @property
    def delta_exponent(self) -> int:
        """The stored exponent ∆."""
        return self._delta_exponent

    @property
    def chernoff_c(self) -> float:
        """The Chernoff constant C."""
        return self._chernoff_c

    @property
    def x(self) -> int:
        """Current exponent state X (≈ log_{1+ε} N once past epoch 0)."""
        return self._x

    @property
    def y(self) -> int:
        """Current auxiliary counter Y."""
        return self._y

    @property
    def t(self) -> int:
        """Current sampling exponent (α = 2^-t)."""
        return self._t

    @property
    def epoch(self) -> int:
        """Epoch index ``k = X - X0``."""
        return self._x - self._x0

    @property
    def alpha(self) -> float:
        """Current sampling rate α as a float."""
        return 2.0 ** -self._t

    def _compute_threshold(self, x: int) -> int:
        """``T = ceil((1+ε)^X)``, recomputed from X (never stored as state)."""
        return math.ceil(math.exp(x * self._log1pe))

    def _trigger_y(self) -> int:
        """Smallest Y that triggers the epoch advance: ``floor(T/2^t) + 1``.

        The pseudocode's ``Y > αT`` with ``α = 2^-t`` is the integer test
        ``(Y << t) > T``, first satisfied at ``Y = (T >> t) + 1``.
        """
        return (self._threshold >> self._t) + 1

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------
    def increment(self) -> None:
        if self._rng.bernoulli_pow2(self._t):
            self._accept_survivor()
        self._n_increments += 1

    def add(self, n: int) -> None:
        if n < 0:
            raise ParameterError(f"cannot add a negative count: {n}")
        remaining = n
        while remaining > 0:
            if self._t == 0:
                # Epoch 0 (and any epoch with α = 1): every increment
                # survives, so advance in bulk with no randomness.
                room = self._trigger_y() - self._y
                take = min(remaining, room)
                self._y += take
                remaining -= take
                if self._mergeable:
                    self._epoch_history[-1][1] += take
                if self._y >= self._trigger_y():
                    self._advance_epoch()
                elif take:
                    self._observe_space()
            else:
                outcome = self._skipper.step_pow2(self._t, remaining)
                remaining -= outcome.consumed
                if outcome.accepted:
                    self._accept_survivor()
        self._n_increments += n

    def _accept_survivor(self) -> None:
        """Record one sampled increment and advance the epoch if triggered."""
        self._y += 1
        if self._mergeable:
            self._epoch_history[-1][1] += 1
        if (self._y << self._t) > self._threshold:
            self._advance_epoch()
        else:
            self._observe_space()

    def _advance_epoch(self) -> None:
        """Lines 8-12 of Algorithm 1, with Remark 2.2's dyadic rounding."""
        # Rescaling can in principle re-trigger on pathological rounding;
        # loop until the invariant Y <= αT holds.
        while (self._y << self._t) > self._threshold:
            self._x += 1
            self._threshold = self._compute_threshold(self._x)
            alpha_raw = nelson_yu_alpha_raw(
                self._epsilon,
                self._delta,
                self._chernoff_c,
                self._x,
                self._threshold,
            )
            t_new = DyadicProbability.at_least(alpha_raw).t
            # The schedule must keep α non-increasing (Remark 2.4 relies on
            # it); dyadic rounding already guarantees this, but enforce it.
            t_new = max(t_new, self._t)
            self._y >>= t_new - self._t
            self._t = t_new
            if self._mergeable:
                self._epoch_history.append([self._t, 0])
        self._observe_space()

    def estimate(self) -> float:
        # Query(): exact in epoch 0, T afterwards (lines 14-19).
        if self._x == self._x0:
            return float(self._y)
        return float(self._threshold)

    def log_estimate(self) -> int:
        """The query of Remark 2.2: X, an additive-O(1) approximation of
        ``log_{1+ε} N`` (only meaningful past epoch 0)."""
        return self._x

    def state_bits(self, model: SpaceModel = SpaceModel.AUTOMATON) -> int:
        bits = uint_bits(self._x) + uint_bits(self._y)
        if model is SpaceModel.WORD_RAM:
            bits += uint_bits(self._t)
        return bits

    # ------------------------------------------------------------------
    # merging (Remark 2.4)
    # ------------------------------------------------------------------
    def merge_from(self, other: ApproximateCounter) -> None:
        """Merge another mergeable NelsonYuCounter into this one.

        Implements Remark 2.4: the counter with smaller X streams its
        per-epoch survivors into the other, re-subsampling each epoch-``i``
        survivor with the dyadic probability ``2^(t_i - t_now)``.  The
        result is distributed as a single counter run on ``N1 + N2``
        increments (E7 validates this empirically).
        """
        if not isinstance(other, NelsonYuCounter):
            raise MergeError(
                f"cannot merge {type(other).__name__} into NelsonYuCounter"
            )
        if not (self._mergeable and other._mergeable):
            raise MergeError(
                "both counters must be constructed with mergeable=True "
                "(Remark 2.4 needs the per-epoch survivor history)"
            )
        same_params = (
            math.isclose(self._epsilon, other._epsilon, rel_tol=1e-12)
            and self._delta_exponent == other._delta_exponent
            and math.isclose(self._chernoff_c, other._chernoff_c, rel_tol=1e-12)
        )
        if not same_params:
            raise MergeError("NelsonYu parameters differ; cannot merge")

        if self._x < other._x:
            # Remark 2.4 streams the smaller counter's survivors into the
            # larger one.  We are the smaller: adopt a copy of the other's
            # state as the absorber, and donate our own history.  ``other``
            # is never mutated.
            donor_history = [tuple(e) for e in self._epoch_history]
            donor_n = self._n_increments
            self._x, self._y, self._t = other._x, other._y, other._t
            self._threshold = other._threshold
            self._epoch_history = [list(e) for e in other._epoch_history]
            self._n_increments = other._n_increments
        else:
            donor_history = [tuple(e) for e in other._epoch_history]
            donor_n = other._n_increments
        self._absorb_survivors(donor_history)
        self._n_increments += donor_n
        self._observe_space()

    def _absorb_survivors(self, history: list[tuple[int, int]]) -> None:
        """Insert a donor's per-epoch survivors, re-subsampled dyadically."""
        for t_src, survivors in history:
            remaining = survivors
            while remaining > 0:
                if t_src > self._t:
                    raise MergeError(
                        "donor sampling rate below absorber's; epochs "
                        "inconsistent (internal error)"
                    )
                gap_exponent = self._t - t_src
                outcome = self._skipper.step_pow2(gap_exponent, remaining)
                remaining -= outcome.consumed
                if outcome.accepted:
                    self._accept_survivor()

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def _state_dict(self) -> dict[str, Any]:
        state: dict[str, Any] = {"x": self._x, "y": self._y, "t": self._t}
        if self._mergeable:
            state["epoch_history"] = [tuple(e) for e in self._epoch_history]
        return state

    def _params_dict(self) -> dict[str, Any]:
        return {
            "epsilon": self._epsilon,
            "delta_exponent": self._delta_exponent,
            "chernoff_c": self._chernoff_c,
            "mergeable": self._mergeable,
        }

    def _restore_state(self, state: Mapping[str, Any]) -> None:
        x, y, t = int(state["x"]), int(state["y"]), int(state["t"])
        if x < self._x0:
            raise ParameterError(f"x must be >= X0={self._x0}, got {x}")
        if y < 0 or t < 0:
            raise ParameterError("y and t must be non-negative")
        self._x, self._y, self._t = x, y, t
        self._threshold = self._compute_threshold(x)
        if self._mergeable:
            self._epoch_history = [list(e) for e in state["epoch_history"]]
