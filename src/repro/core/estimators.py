"""Estimator and variance formulas shared across counters and tests.

Keeping these as free functions lets the theory module and the property
tests check the algebra independently of any counter object.
"""

from __future__ import annotations

import math

from repro.errors import ParameterError

__all__ = [
    "morris_estimate",
    "morris_inverse_estimate",
    "morris_estimator_variance",
    "subsample_estimate",
    "csuros_estimate",
    "csuros_increment_exponent",
    "relative_error",
]


def morris_estimate(x: int, a: float) -> float:
    """Morris estimator ``((1+a)^X - 1) / a`` (unbiased for N).

    Computed as ``expm1(X * log1p(a)) / a`` for numerical stability with
    tiny ``a`` and large ``X``.
    """
    if a <= 0.0:
        raise ParameterError(f"a must be positive, got {a}")
    if x < 0:
        raise ParameterError(f"x must be non-negative, got {x}")
    return math.expm1(x * math.log1p(a)) / a


def morris_inverse_estimate(n: float, a: float) -> float:
    """The (real-valued) state X whose Morris estimate equals ``n``."""
    if a <= 0.0:
        raise ParameterError(f"a must be positive, got {a}")
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    return math.log1p(a * n) / math.log1p(a)


def morris_estimator_variance(n: int, a: float) -> float:
    """Exact variance ``a N (N-1) / 2`` of the Morris estimator (§1.2)."""
    if a <= 0.0:
        raise ParameterError(f"a must be positive, got {a}")
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    return a * n * (n - 1) / 2.0


def subsample_estimate(y: int, t: int) -> int:
    """Estimator ``Y * 2**t`` of the subsample (simplified-NY) counter.

    Each survivor at sampling rate ``2**-t`` stands for ``2**t`` expected
    increments, and the halving step (Y even -> Y/2, t+1) preserves the
    product exactly, so the estimator is an exact martingale: E[Y*2^t] = N.
    """
    if y < 0:
        raise ParameterError(f"y must be non-negative, got {y}")
    if t < 0:
        raise ParameterError(f"t must be non-negative, got {t}")
    return y << t


def csuros_increment_exponent(x: int, d: int) -> int:
    """Exponent ``e = X >> d`` governing the Csűrös accept rate ``2**-e``."""
    if x < 0:
        raise ParameterError(f"x must be non-negative, got {x}")
    if d < 0:
        raise ParameterError(f"d must be non-negative, got {d}")
    return x >> d


def csuros_estimate(x: int, d: int) -> int:
    """Csűrös estimator ``(M + mantissa) * 2**e - M`` with ``M = 2**d``.

    Unbiased for N ([Csu10] Proposition 1): each accepted increment at
    exponent ``e`` raises the estimate by ``2**e``, matching the expected
    number of raw increments per accept.
    """
    m = 1 << d
    e = csuros_increment_exponent(x, d)
    mantissa = x & (m - 1)
    return ((m + mantissa) << e) - m


def relative_error(estimate: float, truth: float) -> float:
    """``|estimate - truth| / truth``; infinite when truth is 0 but estimate isn't."""
    if truth == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(estimate - truth) / abs(truth)
