"""The simplified variant of Algorithm 1 used in the Figure 1 experiment.

Section 4 of the paper compares the Morris Counter against "(a simplified
version of) the algorithm of Subsection 2.1 (and this simplified algorithm
is itself similar to the algorithm of [Csu10])".  The natural
simplification keeps Algorithm 1's two mechanisms — subsampled counting in
``Y`` and geometric rescaling — but fixes the geometry to base 2:

* state is ``(Y, t)`` with sampling rate ``α = 2^-t``;
* each increment survives with probability ``2^-t`` and raises ``Y``;
* when ``Y`` reaches ``2s`` (``s`` is the *resolution*), halve:
  ``Y ← s``, ``t ← t + 1``.

The estimator is ``N̂ = Y · 2^t``.  It is an exact martingale: a survivor
at rate ``2^-t`` contributes ``2^t`` to ``N̂`` (expected contribution 1 per
raw increment), and the halving step maps ``2s·2^t → s·2^(t+1)``, leaving
``N̂`` unchanged.  Hence ``E[N̂] = N`` for every N — property-tested against
the exact DP in :mod:`repro.theory.flajolet`.

With ``t_max`` capping the exponent register the state is a fixed
``log2(2s) + bits(t_max)`` bits, which is how the "17 bits of memory"
parameterization of Figure 1 is expressed
(:func:`repro.core.params.simplified_ny_for_bits`).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.base import ApproximateCounter
from repro.core.estimators import subsample_estimate
from repro.core.params import SimplifiedNYConfig, simplified_ny_for_bits
from repro.errors import BudgetError, MergeError, ParameterError
from repro.memory.model import SpaceModel, uint_bits, uint_capacity_bits
from repro.rng.skip import GeometricSkipper

__all__ = ["SimplifiedNYCounter"]


class SimplifiedNYCounter(ApproximateCounter):
    """Subsample-and-halve counter (Figure 1's "simplified" algorithm).

    Parameters
    ----------
    resolution:
        The value ``s``; ``Y`` is halved back to ``s`` upon reaching
        ``2s``.  Larger resolution = lower variance = more Y bits.
    t_max:
        Optional cap on the sampling exponent.  When set, the counter has
        a hard capacity of ``(2s-1)·2^t_max``; exceeding it raises
        :class:`~repro.errors.BudgetError`.  ``None`` means unbounded
        (state grows as ``log log N``).
    mergeable:
        Keep the per-rate survivor history needed for exact merging
        (same Remark 2.4 mechanism as the full algorithm).
    """

    algorithm_name = "simplified_ny"

    def __init__(
        self,
        resolution: int,
        t_max: int | None = None,
        mergeable: bool = False,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        if resolution < 1:
            raise ParameterError(f"resolution must be >= 1, got {resolution}")
        if t_max is not None and t_max < 0:
            raise ParameterError(f"t_max must be non-negative, got {t_max}")
        self._resolution = resolution
        self._t_max = t_max
        self._mergeable = mergeable
        self._y = 0
        self._t = 0
        self._skipper = GeometricSkipper(self._rng)
        self._epoch_history: list[list[int]] = [[0, 0]] if mergeable else []
        self._observe_space()

    @classmethod
    def for_bits(
        cls, bits: int, n_max: int, headroom: float = 2.0, **kwargs: Any
    ) -> "SimplifiedNYCounter":
        """Most accurate configuration fitting a ``bits``-bit state budget."""
        config = simplified_ny_for_bits(bits, n_max, headroom)
        return cls(config.resolution, t_max=config.t_max, **kwargs)

    @classmethod
    def from_config(
        cls, config: SimplifiedNYConfig, **kwargs: Any
    ) -> "SimplifiedNYCounter":
        """Build from an explicit :class:`SimplifiedNYConfig`."""
        return cls(config.resolution, t_max=config.t_max, **kwargs)

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------
    @property
    def resolution(self) -> int:
        """The halving resolution ``s``."""
        return self._resolution

    @property
    def t_max(self) -> int | None:
        """The exponent cap, if any."""
        return self._t_max

    @property
    def y(self) -> int:
        """Current subsampled count Y."""
        return self._y

    @property
    def t(self) -> int:
        """Current sampling exponent (α = 2^-t)."""
        return self._t

    def increment(self) -> None:
        if self._rng.bernoulli_pow2(self._t):
            self._accept_survivor()
        self._n_increments += 1

    def add(self, n: int) -> None:
        if n < 0:
            raise ParameterError(f"cannot add a negative count: {n}")
        remaining = n
        while remaining > 0:
            if self._t == 0:
                room = 2 * self._resolution - self._y
                take = min(remaining, room)
                self._y += take
                remaining -= take
                if self._mergeable:
                    self._epoch_history[-1][1] += take
                if self._y >= 2 * self._resolution:
                    self._halve()
                elif take:
                    self._observe_space()
            else:
                outcome = self._skipper.step_pow2(self._t, remaining)
                remaining -= outcome.consumed
                if outcome.accepted:
                    self._accept_survivor()
        self._n_increments += n

    def _accept_survivor(self) -> None:
        self._y += 1
        if self._mergeable:
            self._epoch_history[-1][1] += 1
        if self._y >= 2 * self._resolution:
            self._halve()
        else:
            self._observe_space()

    def _halve(self) -> None:
        """``Y ← Y/2, t ← t+1`` — the base-2 analogue of lines 8-12."""
        if self._t_max is not None and self._t >= self._t_max:
            raise BudgetError(
                f"counter capacity exhausted: t_max={self._t_max}, "
                f"resolution={self._resolution} caps the estimate at "
                f"{subsample_estimate(2 * self._resolution - 1, self._t_max)}"
            )
        self._y >>= 1
        self._t += 1
        if self._mergeable:
            self._epoch_history.append([self._t, 0])
        self._observe_space()

    def estimate(self) -> float:
        return float(subsample_estimate(self._y, self._t))

    def state_bits(self, model: SpaceModel = SpaceModel.AUTOMATON) -> int:
        # Unlike Algorithm 1's parameter exponent, t here *is* the
        # exponent part of the stored value (the counter is literally a
        # floating-point number), so it counts in both conventions.
        if self._t_max is not None:
            # Fixed-width registers sized by the configuration.
            return uint_capacity_bits(2 * self._resolution - 1) + (
                uint_capacity_bits(self._t_max)
            )
        return uint_bits(self._y) + uint_bits(self._t)

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------
    def merge_from(self, other: ApproximateCounter) -> None:
        """Merge another mergeable SimplifiedNYCounter (Remark 2.4 style)."""
        if not isinstance(other, SimplifiedNYCounter):
            raise MergeError(
                f"cannot merge {type(other).__name__} into SimplifiedNYCounter"
            )
        if not (self._mergeable and other._mergeable):
            raise MergeError(
                "both counters must be constructed with mergeable=True"
            )
        if self._resolution != other._resolution or self._t_max != other._t_max:
            raise MergeError("simplified-NY parameters differ; cannot merge")
        if self._t < other._t:
            donor_history = [tuple(e) for e in self._epoch_history]
            donor_n = self._n_increments
            self._y, self._t = other._y, other._t
            self._epoch_history = [list(e) for e in other._epoch_history]
            self._n_increments = other._n_increments
        else:
            donor_history = [tuple(e) for e in other._epoch_history]
            donor_n = other._n_increments
        for t_src, survivors in donor_history:
            remaining = survivors
            while remaining > 0:
                if t_src > self._t:
                    raise MergeError(
                        "donor rate below absorber's (internal error)"
                    )
                outcome = self._skipper.step_pow2(self._t - t_src, remaining)
                remaining -= outcome.consumed
                if outcome.accepted:
                    self._accept_survivor()
        self._n_increments += donor_n
        self._observe_space()

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def _state_dict(self) -> dict[str, Any]:
        state: dict[str, Any] = {"y": self._y, "t": self._t}
        if self._mergeable:
            state["epoch_history"] = [tuple(e) for e in self._epoch_history]
        return state

    def _params_dict(self) -> dict[str, Any]:
        return {
            "resolution": self._resolution,
            "t_max": self._t_max,
            "mergeable": self._mergeable,
        }

    def _restore_state(self, state: Mapping[str, Any]) -> None:
        y, t = int(state["y"]), int(state["t"])
        if not 0 <= y < 2 * self._resolution:
            raise ParameterError(f"y={y} out of range for resolution")
        if t < 0 or (self._t_max is not None and t > self._t_max):
            raise ParameterError(f"t={t} out of range")
        self._y, self._t = y, t
        if self._mergeable:
            self._epoch_history = [list(e) for e in state["epoch_history"]]
