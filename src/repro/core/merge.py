"""Merging helpers (Remark 2.4 of the paper).

Counters implement in-place merging via
:meth:`~repro.core.base.ApproximateCounter.merge_from`; this module adds
the non-destructive conveniences used by the analytics layer and the merge
experiment: merge into a fresh counter, and fold a whole collection.

Which counters merge exactly:

========================  =======================================
Counter                   Mechanism
========================  =======================================
ExactCounter              integer addition
MorrisCounter             CY20 §2.1 level-by-level procedure
MorrisPlusCounter         CY20 on the Morris half + saturating add
NelsonYuCounter           Remark 2.4 (requires ``mergeable=True``)
SimplifiedNYCounter       Remark 2.4 (requires ``mergeable=True``)
CsurosCounter             not mergeable (history is not retained)
========================  =======================================
"""

from __future__ import annotations

from typing import Sequence

from repro.core.base import ApproximateCounter
from repro.errors import MergeError

__all__ = ["merge_counters", "merge_all"]


def _clone(counter: ApproximateCounter) -> ApproximateCounter:
    """Create a fresh counter with the same parameters and state.

    The clone gets an independent random stream split off the original's
    source, so merging a clone does not perturb the original's stream.
    """
    snap = counter.snapshot()
    clone = type(counter)(
        **snap.params, rng=counter.rng.split(0x6D65726765)
    )
    clone.restore(snap)
    return clone


def merge_counters(
    left: ApproximateCounter, right: ApproximateCounter
) -> ApproximateCounter:
    """Return a new counter distributed as one run on ``N_left + N_right``.

    Neither input is mutated.

    Parameters
    ----------
    left, right:
        Counters of the same mergeable family.

    Returns
    -------
    ApproximateCounter
        A fresh counter; for exact counters the merge is plain addition.

    >>> from repro.core.factory import make_counter
    >>> a = make_counter("exact", seed=1); a.add(10)
    >>> b = make_counter("exact", seed=2); b.add(5)
    >>> merge_counters(a, b).estimate()
    15.0
    >>> a.estimate()  # inputs are untouched
    10.0
    """
    merged = _clone(left)
    merged.merge_from(right)
    return merged


def merge_all(counters: Sequence[ApproximateCounter]) -> ApproximateCounter:
    """Fold a non-empty collection of counters into a single new counter.

    Merging is associative in distribution (each merge is distributed as a
    freshly-run counter), so the fold order does not matter statistically;
    we fold left for determinism.

    Parameters
    ----------
    counters:
        Non-empty sequence of same-family mergeable counters.

    Returns
    -------
    ApproximateCounter
        A fresh counter distributed as one run on the summed stream.

    Raises
    ------
    MergeError
        On an empty sequence (and, from ``merge_from``, on mismatched
        or unmergeable counter families).

    >>> from repro.core.factory import make_counter
    >>> shards = []
    >>> for shard_seed in (1, 2, 3):
    ...     shard = make_counter("exact", seed=shard_seed)
    ...     shard.add(4)
    ...     shards.append(shard)
    >>> merge_all(shards).estimate()
    12.0
    >>> merge_all([])
    Traceback (most recent call last):
        ...
    repro.errors.MergeError: cannot merge an empty collection of counters
    """
    if not counters:
        raise MergeError("cannot merge an empty collection of counters")
    result = _clone(counters[0])
    for counter in counters[1:]:
        result.merge_from(counter)
    return result
