"""Merging helpers (Remark 2.4 of the paper).

Counters implement in-place merging via
:meth:`~repro.core.base.ApproximateCounter.merge_from`; this module adds
the non-destructive conveniences used by the analytics layer and the merge
experiment: merge into a fresh counter, and fold a whole collection.

Which counters merge exactly:

========================  =======================================
Counter                   Mechanism
========================  =======================================
ExactCounter              integer addition
MorrisCounter             CY20 §2.1 level-by-level procedure
MorrisPlusCounter         CY20 on the Morris half + saturating add
NelsonYuCounter           Remark 2.4 (requires ``mergeable=True``)
SimplifiedNYCounter       Remark 2.4 (requires ``mergeable=True``)
CsurosCounter             not mergeable (history is not retained)
========================  =======================================
"""

from __future__ import annotations

from typing import Sequence

from repro.core.base import ApproximateCounter
from repro.errors import MergeError

__all__ = ["merge_counters", "merge_all"]


def _clone(counter: ApproximateCounter) -> ApproximateCounter:
    """Create a fresh counter with the same parameters and state.

    The clone gets an independent random stream split off the original's
    source, so merging a clone does not perturb the original's stream.
    """
    snap = counter.snapshot()
    clone = type(counter)(
        **snap.params, rng=counter.rng.split(0x6D65726765)
    )
    clone.restore(snap)
    return clone


def merge_counters(
    left: ApproximateCounter, right: ApproximateCounter
) -> ApproximateCounter:
    """Return a new counter distributed as one run on ``N_left + N_right``.

    Neither input is mutated.
    """
    merged = _clone(left)
    merged.merge_from(right)
    return merged


def merge_all(counters: Sequence[ApproximateCounter]) -> ApproximateCounter:
    """Fold a non-empty collection of counters into a single new counter.

    Merging is associative in distribution (each merge is distributed as a
    freshly-run counter), so the fold order does not matter statistically;
    we fold left for determinism.
    """
    if not counters:
        raise MergeError("cannot merge an empty collection of counters")
    result = _clone(counters[0])
    for counter in counters[1:]:
        result.merge_from(counter)
    return result
