"""Csűrös' floating-point counter ([Csu10]), cited by §4 of the paper.

The counter keeps a single integer ``X`` interpreted as a floating-point
number with a ``d``-bit mantissa (``M = 2^d``):

* exponent ``e = X >> d``, mantissa ``m = X & (M-1)``;
* each increment raises ``X`` by one with probability ``2^-e``;
* the estimate ``(M + m)·2^e - M`` is unbiased ([Csu10] Prop. 1).

It is the closest published relative of the simplified Algorithm 1 variant
(the paper notes the similarity explicitly), differing in that the
"mantissa" and "exponent" are packed into one register and the mantissa is
*not* halved at epoch boundaries — it wraps.  Included as an evaluation
baseline for E8 and as a second implementation to cross-check the
subsample-counter math.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.base import ApproximateCounter
from repro.core.estimators import csuros_estimate
from repro.core.params import csuros_d_for_bits
from repro.errors import MergeError, ParameterError
from repro.memory.model import SpaceModel, uint_bits
from repro.rng.skip import GeometricSkipper

__all__ = ["CsurosCounter"]


class CsurosCounter(ApproximateCounter):
    """Floating-point counter with a ``d``-bit mantissa.

    Parameters
    ----------
    d:
        Mantissa width; ``M = 2^d``.  ``d = 0`` degenerates to the Morris
        base-2 counter.
    """

    algorithm_name = "csuros"

    def __init__(self, d: int, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        if d < 0:
            raise ParameterError(f"d must be non-negative, got {d}")
        self._d = d
        self._x = 0
        self._skipper = GeometricSkipper(self._rng)
        self._observe_space()

    @classmethod
    def for_bits(
        cls, bits: int, n_max: int, headroom: float = 2.0, **kwargs: Any
    ) -> "CsurosCounter":
        """Largest-mantissa counter whose X fits in ``bits`` bits."""
        return cls(csuros_d_for_bits(bits, n_max, headroom), **kwargs)

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------
    @property
    def d(self) -> int:
        """Mantissa width."""
        return self._d

    @property
    def x(self) -> int:
        """Raw state X."""
        return self._x

    @property
    def exponent(self) -> int:
        """Current exponent ``e = X >> d``."""
        return self._x >> self._d

    def increment(self) -> None:
        if self._rng.bernoulli_pow2(self.exponent):
            self._x += 1
            self._observe_space()
        self._n_increments += 1

    def add(self, n: int) -> None:
        if n < 0:
            raise ParameterError(f"cannot add a negative count: {n}")
        remaining = n
        while remaining > 0:
            outcome = self._skipper.step_pow2(self.exponent, remaining)
            remaining -= outcome.consumed
            if outcome.accepted:
                self._x += 1
                self._observe_space()
        self._n_increments += n

    def estimate(self) -> float:
        return float(csuros_estimate(self._x, self._d))

    def state_bits(self, model: SpaceModel = SpaceModel.AUTOMATON) -> int:
        return uint_bits(self._x)

    def merge_from(self, other: ApproximateCounter) -> None:
        """Merging packed floating-point counters exactly needs the
        per-exponent survivor history, which [Csu10] does not keep."""
        raise MergeError(
            "CsurosCounter does not support exact merging; use "
            "SimplifiedNYCounter(mergeable=True) for a mergeable "
            "floating-point counter"
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def _state_dict(self) -> dict[str, Any]:
        return {"x": self._x}

    def _params_dict(self) -> dict[str, Any]:
        return {"d": self._d}

    def _restore_state(self, state: Mapping[str, Any]) -> None:
        x = int(state["x"])
        if x < 0:
            raise ParameterError(f"x must be non-negative, got {x}")
        self._x = x
