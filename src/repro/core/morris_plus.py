"""Morris+ — the Morris Counter with the necessary deterministic prefix.

Appendix A of the paper proves that vanilla Morris(a) with the optimal
tuning ``a = ε²/(8 ln(1/δ))`` *fails* for small counts: at
``N ≈ c ε^{4/3}/a`` its failure probability exceeds δ by a large factor.
The fix ("Morris+", §1 and §2.2) runs a deterministic counter X' in
parallel, saturating at ``N_a + 1`` with ``N_a = ceil(8/a)``:

* every increment goes to both the Morris counter and X' (unless X' is
  already saturated);
* queries return X' exactly while ``X' <= N_a``, and the Morris estimate
  once the deterministic counter has saturated.

The deterministic prefix costs ``ceil(log2(N_a + 2))`` extra bits — an
``O(log(1/ε) + log log(1/δ))`` overhead that does not change the optimal
asymptotics of Theorem 1.2.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from repro.core.base import ApproximateCounter
from repro.core.morris import MorrisCounter
from repro.core.params import morris_a_optimal, morris_transition_point
from repro.errors import MergeError, ParameterError
from repro.memory.model import SpaceModel, uint_capacity_bits

__all__ = ["MorrisPlusCounter"]


class MorrisPlusCounter(ApproximateCounter):
    """Morris(a) plus a saturating deterministic prefix counter.

    Parameters
    ----------
    a:
        Morris base parameter.
    transition:
        Saturation point ``N_a`` of the deterministic prefix.  Defaults to
        ``ceil(8/a)`` per §2.2; Appendix A shows much smaller transition
        points break the δ guarantee.
    """

    algorithm_name = "morris_plus"

    def __init__(
        self,
        a: float,
        transition: int | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        if a <= 0.0:
            raise ParameterError(f"a must be positive, got {a}")
        self._a = a
        self._transition = (
            morris_transition_point(a) if transition is None else transition
        )
        if self._transition < 1:
            raise ParameterError(
                f"transition must be >= 1, got {self._transition}"
            )
        # The Morris part shares our rng so the whole counter is one stream.
        self._morris = MorrisCounter(a, rng=self._rng)
        self._prefix = 0  # X' in the paper; saturates at transition + 1.
        self._observe_space()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_optimal(
        cls, epsilon: float, delta: float, **kwargs: Any
    ) -> "MorrisPlusCounter":
        """Theorem 1.2 instantiation: ``a = ε²/(8 ln(1/δ))``, prefix 8/a."""
        return cls(morris_a_optimal(epsilon, delta), **kwargs)

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------
    @property
    def a(self) -> float:
        """Morris base parameter."""
        return self._a

    @property
    def transition(self) -> int:
        """Deterministic prefix saturation point ``N_a``."""
        return self._transition

    @property
    def prefix_value(self) -> int:
        """Current value of the deterministic prefix counter X'."""
        return self._prefix

    @property
    def morris(self) -> MorrisCounter:
        """The embedded Morris counter (shared random stream)."""
        return self._morris

    @property
    def in_deterministic_phase(self) -> bool:
        """True while queries are answered by the exact prefix."""
        return self._prefix <= self._transition

    def increment(self) -> None:
        if self._prefix <= self._transition:
            self._prefix += 1
        self._morris.increment()
        self._n_increments += 1
        self._observe_space()

    def add(self, n: int) -> None:
        if n < 0:
            raise ParameterError(f"cannot add a negative count: {n}")
        self._prefix = min(self._transition + 1, self._prefix + n)
        self._morris.add(n)
        self._n_increments += n
        self._observe_space()

    def estimate(self) -> float:
        if self._prefix <= self._transition:
            return float(self._prefix)
        return self._morris.estimate()

    def state_bits(self, model: SpaceModel = SpaceModel.AUTOMATON) -> int:
        # X' is a fixed-width register sized for its saturation value.
        prefix_bits = uint_capacity_bits(self._transition + 1)
        return prefix_bits + self._morris.state_bits(model)

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------
    def merge_from(self, other: ApproximateCounter) -> None:
        """Merge another Morris+ counter with identical parameters.

        The Morris halves merge exactly (CY20 procedure); the prefixes add
        with saturation.  Exactness caveat: once either prefix has
        saturated the combined prefix is saturated too, so the merged
        counter answers from the Morris estimate exactly as a directly-run
        counter on ``N1 + N2 > N_a`` increments would.
        """
        if not isinstance(other, MorrisPlusCounter):
            raise MergeError(
                f"cannot merge {type(other).__name__} into MorrisPlusCounter"
            )
        if self._transition != other._transition or not math.isclose(
            self._a, other._a, rel_tol=1e-12
        ):
            raise MergeError("Morris+ parameters differ; cannot merge")
        self._prefix = min(
            self._transition + 1, self._prefix + other._prefix
        )
        self._morris.merge_from(other._morris)
        self._n_increments += other._n_increments
        self._observe_space()

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def _state_dict(self) -> dict[str, Any]:
        return {"prefix": self._prefix, "x": self._morris.x}

    def _params_dict(self) -> dict[str, Any]:
        return {"a": self._a, "transition": self._transition}

    def _restore_state(self, state: Mapping[str, Any]) -> None:
        prefix = int(state["prefix"])
        if not 0 <= prefix <= self._transition + 1:
            raise ParameterError(f"prefix {prefix} out of range")
        self._prefix = prefix
        self._morris._restore_state({"x": state["x"]})
