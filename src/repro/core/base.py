"""Abstract interface shared by every counter in the library.

An *approximate counter* supports three operations — ``increment()``,
``add(n)`` (distributionally identical to ``n`` increments, but allowed to
fast-forward), and ``estimate()`` — plus space introspection.

Design notes
------------
* **Ground truth bookkeeping.**  Counters track ``n_increments``, the true
  number of increments fed in.  That is *experiment* bookkeeping for
  computing errors; it is never part of the algorithm's state and is
  excluded from all space accounting.
* **Space accounting.**  ``state_bits(model)`` reports the bits of the
  current algorithm state under a :class:`~repro.memory.model.SpaceModel`;
  a :class:`~repro.memory.tracker.SpaceTracker` records the running
  maximum, since the paper treats space as a random variable and the
  operationally relevant quantity is its maximum over the stream.
* **Serialization.**  ``snapshot()`` / ``restore()`` round-trip the full
  state (used by :class:`~repro.analytics.counter_bank.CounterBank` and the
  lower-bound automaton wrappers, which need to enumerate and reset state).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import MergeError, ParameterError
from repro.memory.model import SpaceModel
from repro.memory.tracker import SpaceTracker
from repro.rng.bitstream import BitBudgetedRandom

__all__ = ["ApproximateCounter", "CounterSnapshot"]


@dataclass(frozen=True, slots=True)
class CounterSnapshot:
    """A serializable snapshot of a counter.

    Attributes
    ----------
    algorithm:
        The counter class's :attr:`~ApproximateCounter.algorithm_name`.
    params:
        Constructor parameters (immutable inputs like ε, a, s).
    state:
        The mutable algorithm state (the bits the paper counts).
    n_increments:
        Ground-truth increments fed so far (bookkeeping, not state).
    """

    algorithm: str
    params: Mapping[str, Any]
    state: Mapping[str, Any]
    n_increments: int


class ApproximateCounter(abc.ABC):
    """Base class for all counters.

    Parameters
    ----------
    rng:
        The random source; pass ``seed`` instead to create one.
    seed:
        Convenience: seed for a fresh :class:`BitBudgetedRandom`.
        Exactly one of ``rng``/``seed`` may be given; a deterministic
        default seed of 0 is used when neither is.
    """

    #: Stable identifier used by snapshots and the factory.
    algorithm_name: str = "abstract"

    def __init__(
        self,
        *,
        rng: BitBudgetedRandom | None = None,
        seed: int | None = None,
    ) -> None:
        if rng is not None and seed is not None:
            raise ParameterError("pass either rng or seed, not both")
        if rng is None:
            rng = BitBudgetedRandom(0 if seed is None else seed)
        self._rng = rng
        self._n_increments = 0
        self._tracker = SpaceTracker()

    # ------------------------------------------------------------------
    # counting interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def increment(self) -> None:
        """Process one increment."""

    def add(self, n: int) -> None:
        """Process ``n`` increments.

        The default implementation loops over :meth:`increment`; counters
        override it with a distribution-exact geometric fast-forward.
        """
        if n < 0:
            raise ParameterError(f"cannot add a negative count: {n}")
        for _ in range(n):
            self.increment()

    def add_per_unit(self, n: int) -> None:
        """Process ``n`` increments one at a time — never fast-forwarded.

        The per-unit reference arm: every unit pays its own coin flip(s),
        exactly as a naive stream simulation would.  Benchmarks and the
        skip-ahead equivalence tests compare :meth:`add` against this; it
        is not a production ingest path.
        """
        if n < 0:
            raise ParameterError(f"cannot add a negative count: {n}")
        for _ in range(n):
            self.increment()

    @abc.abstractmethod
    def estimate(self) -> float:
        """Return the current estimate of the true count N."""

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_increments(self) -> int:
        """Ground-truth number of increments processed (bookkeeping only)."""
        return self._n_increments

    @property
    def rng(self) -> BitBudgetedRandom:
        """The counter's random source."""
        return self._rng

    @property
    def space_tracker(self) -> SpaceTracker:
        """Running space tracker (observes after every state change)."""
        return self._tracker

    @property
    def max_state_bits(self) -> int:
        """Maximum state size observed so far, in bits."""
        return self._tracker.max_bits

    @abc.abstractmethod
    def state_bits(self, model: SpaceModel = SpaceModel.AUTOMATON) -> int:
        """Bits of the current algorithm state under ``model``."""

    def relative_error(self) -> float:
        """``|estimate - N| / N`` against the ground-truth count.

        Defined as 0 when no increments have been processed and the
        estimate is also 0.
        """
        n = self._n_increments
        est = self.estimate()
        if n == 0:
            return 0.0 if est == 0 else float("inf")
        return abs(est - n) / n

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _state_dict(self) -> dict[str, Any]:
        """Return the mutable state fields."""

    @abc.abstractmethod
    def _params_dict(self) -> dict[str, Any]:
        """Return the constructor parameters."""

    @abc.abstractmethod
    def _restore_state(self, state: Mapping[str, Any]) -> None:
        """Install state fields previously produced by :meth:`_state_dict`."""

    def snapshot(self) -> CounterSnapshot:
        """Capture the counter's full state."""
        return CounterSnapshot(
            algorithm=self.algorithm_name,
            params=dict(self._params_dict()),
            state=dict(self._state_dict()),
            n_increments=self._n_increments,
        )

    def restore(self, snap: CounterSnapshot) -> None:
        """Restore state from a snapshot taken from a compatible counter."""
        if snap.algorithm != self.algorithm_name:
            raise ParameterError(
                f"snapshot is for {snap.algorithm!r}, "
                f"this counter is {self.algorithm_name!r}"
            )
        if dict(snap.params) != self._params_dict():
            raise ParameterError(
                "snapshot parameters do not match this counter's parameters"
            )
        self._restore_state(snap.state)
        self._n_increments = snap.n_increments
        self._observe_space()

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------
    def merge_from(self, other: "ApproximateCounter") -> None:
        """Fold ``other``'s count into this counter (Remark 2.4).

        Subclasses that support merging override this; the default reports
        the capability gap explicitly.
        """
        raise MergeError(
            f"{type(self).__name__} does not support merging"
        )

    # ------------------------------------------------------------------
    # helpers for subclasses
    # ------------------------------------------------------------------
    def _observe_space(self) -> None:
        """Record the current state size with the space tracker."""
        self._tracker.observe(self.state_bits(SpaceModel.AUTOMATON))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(n={self._n_increments}, "
            f"estimate={self.estimate():.6g}, "
            f"bits={self.state_bits(SpaceModel.AUTOMATON)})"
        )
