"""Counter construction conveniences.

Two entry points:

* :func:`make_counter` — build any counter by its ``algorithm_name`` with
  explicit parameters (used by snapshots, experiments and the CLI-ish
  example scripts).
* :func:`counter_for_bits` — the Figure 1 parameterization: "give me the
  most accurate <algorithm> that fits in B bits of state for streams up to
  n_max" (only meaningful for the fixed-budget algorithms).
"""

from __future__ import annotations

from typing import Any

from repro.core.base import ApproximateCounter
from repro.core.csuros import CsurosCounter
from repro.core.deterministic import ExactCounter, SaturatingCounter
from repro.core.morris import MorrisCounter
from repro.core.morris_plus import MorrisPlusCounter
from repro.core.nelson_yu import NelsonYuCounter
from repro.core.simplified_ny import SimplifiedNYCounter
from repro.errors import ParameterError

__all__ = ["COUNTER_TYPES", "make_counter", "counter_for_bits"]

#: Registry of every counter class by its stable algorithm name.
COUNTER_TYPES: dict[str, type[ApproximateCounter]] = {
    cls.algorithm_name: cls
    for cls in (
        ExactCounter,
        SaturatingCounter,
        MorrisCounter,
        MorrisPlusCounter,
        NelsonYuCounter,
        SimplifiedNYCounter,
        CsurosCounter,
    )
}


def make_counter(algorithm: str, **params: Any) -> ApproximateCounter:
    """Instantiate a counter by algorithm name.

    ``params`` are passed to the class constructor; see each class for its
    parameters.  Unknown names raise :class:`~repro.errors.ParameterError`
    listing the registry.
    """
    try:
        cls = COUNTER_TYPES[algorithm]
    except KeyError:
        known = ", ".join(sorted(COUNTER_TYPES))
        raise ParameterError(
            f"unknown algorithm {algorithm!r}; known: {known}"
        ) from None
    return cls(**params)


def counter_for_bits(
    algorithm: str,
    bits: int,
    n_max: int,
    headroom: float | None = None,
    **kwargs: Any,
) -> ApproximateCounter:
    """Most accurate counter of the given kind within a state bit budget.

    Supported algorithms: ``morris``, ``simplified_ny``, ``csuros``,
    ``saturating`` (the deterministic baseline simply uses all its bits).
    """
    if algorithm == "morris":
        if headroom is None:
            headroom = 4.0
        return MorrisCounter.for_bits(bits, n_max, headroom, **kwargs)
    if algorithm == "simplified_ny":
        if headroom is None:
            headroom = 2.0
        return SimplifiedNYCounter.for_bits(bits, n_max, headroom, **kwargs)
    if algorithm == "csuros":
        if headroom is None:
            headroom = 2.0
        return CsurosCounter.for_bits(bits, n_max, headroom, **kwargs)
    if algorithm == "saturating":
        return SaturatingCounter(bits, **kwargs)
    raise ParameterError(
        f"no bit-budget parameterization for algorithm {algorithm!r}"
    )
