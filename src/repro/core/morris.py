"""The Morris Counter, Morris(a) (§1.2 of the paper; [Mor78], [Fla85]).

State is a single integer X.  Each increment raises X with probability
``(1+a)^-X``; the estimate is the unbiased ``((1+a)^X - 1)/a``.

Two classic parameterizations are provided as constructors:

* :meth:`MorrisCounter.for_chebyshev` — ``a = 2ε²δ`` (the pre-paper
  analysis, ``O(log(1/δ))`` space dependence).
* :meth:`MorrisCounter.for_optimal` — ``a = ε²/(8 ln(1/δ))`` (the paper's
  Theorem 1.2 tuning; pair it with the Morris+ deterministic prefix,
  otherwise Appendix A applies and small counts fail).

``add(n)`` fast-forwards through rejected increments with exact geometric
gaps (see :mod:`repro.rng.skip`): while X is fixed the accept probability
is constant, so the time to the next accept is Geometric((1+a)^-X).  This
is what makes 5,000-trial million-increment experiments feasible.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from repro.core.base import ApproximateCounter
from repro.core.estimators import morris_estimate
from repro.core.params import (
    morris_a_chebyshev,
    morris_a_for_bits,
    morris_a_optimal,
)
from repro.errors import MergeError, ParameterError
from repro.memory.model import SpaceModel, uint_bits
from repro.rng.skip import GeometricSkipper

__all__ = ["MorrisCounter"]


class MorrisCounter(ApproximateCounter):
    """Morris(a): increment X with probability ``(1+a)^-X``.

    Parameters
    ----------
    a:
        Base parameter; the counter effectively counts in base ``1+a``.
        ``a = 1`` is Morris' original 1978 algorithm.
    """

    algorithm_name = "morris"

    def __init__(self, a: float, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        if a <= 0.0:
            raise ParameterError(f"a must be positive, got {a}")
        self._a = a
        self._log1pa = math.log1p(a)
        self._x = 0
        self._skipper = GeometricSkipper(self._rng)
        self._observe_space()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_chebyshev(
        cls, epsilon: float, delta: float, **kwargs: Any
    ) -> "MorrisCounter":
        """Classical tuning ``a = 2ε²δ`` (§1.2)."""
        return cls(morris_a_chebyshev(epsilon, delta), **kwargs)

    @classmethod
    def for_optimal(
        cls, epsilon: float, delta: float, **kwargs: Any
    ) -> "MorrisCounter":
        """Theorem 1.2 tuning ``a = ε²/(8 ln(1/δ))``.

        Valid for large counts only — wrap in
        :class:`~repro.core.morris_plus.MorrisPlusCounter` to cover small N.
        """
        return cls(morris_a_optimal(epsilon, delta), **kwargs)

    @classmethod
    def for_bits(
        cls, bits: int, n_max: int, headroom: float = 4.0, **kwargs: Any
    ) -> "MorrisCounter":
        """Most accurate Morris counter whose X fits in ``bits`` bits."""
        return cls(morris_a_for_bits(bits, n_max, headroom), **kwargs)

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------
    @property
    def a(self) -> float:
        """The base parameter."""
        return self._a

    @property
    def x(self) -> int:
        """The current state X."""
        return self._x

    def accept_probability(self) -> float:
        """Current accept probability ``(1+a)^-X``."""
        return math.exp(-self._x * self._log1pa)

    def increment(self) -> None:
        if self._rng.bernoulli(self.accept_probability()):
            self._x += 1
            self._observe_space()
        self._n_increments += 1

    def add(self, n: int) -> None:
        if n < 0:
            raise ParameterError(f"cannot add a negative count: {n}")
        remaining = n
        while remaining > 0:
            outcome = self._skipper.step(self.accept_probability(), remaining)
            remaining -= outcome.consumed
            if outcome.accepted:
                self._x += 1
                self._observe_space()
        self._n_increments += n

    def estimate(self) -> float:
        return morris_estimate(self._x, self._a)

    def state_bits(self, model: SpaceModel = SpaceModel.AUTOMATON) -> int:
        # X is the entire state in either accounting convention; a is an
        # immutable input (it parameterizes the transition function).
        return uint_bits(self._x)

    # ------------------------------------------------------------------
    # merging (CY20 §2.1 level-by-level procedure; see Remark 2.4)
    # ------------------------------------------------------------------
    def merge_from(self, other: ApproximateCounter) -> None:
        """Merge another Morris(a) counter into this one.

        Implements the Cormode-Yi procedure: for each level
        ``i = 1..X_other`` of the incoming counter, raise this counter's X
        with probability ``(1+a)^(i - 1 - X)`` (capped at 1).  The result
        is distributed exactly as a single Morris(a) counter run on the
        combined ``N_self + N_other`` increments; experiment E7 checks this
        empirically and ``tests/core/test_merge.py`` checks it against the
        exact Flajolet DP.
        """
        if not isinstance(other, MorrisCounter):
            raise MergeError(
                f"cannot merge {type(other).__name__} into MorrisCounter"
            )
        if not math.isclose(other._a, self._a, rel_tol=1e-12):
            raise MergeError(
                f"base parameters differ: {self._a} vs {other._a}"
            )
        for i in range(1, other._x + 1):
            exponent = i - 1 - self._x
            if exponent >= 0:
                accept = True
            else:
                accept = self._rng.bernoulli(
                    math.exp(exponent * self._log1pa)
                )
            if accept:
                self._x += 1
        self._n_increments += other._n_increments
        self._observe_space()

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def _state_dict(self) -> dict[str, Any]:
        return {"x": self._x}

    def _params_dict(self) -> dict[str, Any]:
        return {"a": self._a}

    def _restore_state(self, state: Mapping[str, Any]) -> None:
        x = int(state["x"])
        if x < 0:
            raise ParameterError(f"x must be non-negative, got {x}")
        self._x = x
