"""Core counters — the paper's contribution and its baselines.

========================  ====================================================
Class                     Paper reference
========================  ====================================================
:class:`NelsonYuCounter`  Algorithm 1 (§2.1) — the new optimal counter
:class:`SimplifiedNYCounter`  §4's simplified variant (Figure 1, ~[Csu10])
:class:`MorrisCounter`    Morris(a) (§1.2; [Mor78], [Fla85])
:class:`MorrisPlusCounter`  Morris+ (§1, §2.2, Appendix A)
:class:`CsurosCounter`    floating-point counter baseline ([Csu10])
:class:`ExactCounter`     the ``ceil(log2 N)``-bit deterministic baseline
:class:`SaturatingCounter`  fixed-width deterministic baseline (E8)
========================  ====================================================
"""

from repro.core.base import ApproximateCounter, CounterSnapshot
from repro.core.codec import decode_snapshot, encode_snapshot, restore_counter
from repro.core.csuros import CsurosCounter
from repro.core.deterministic import ExactCounter, SaturatingCounter
from repro.core.factory import COUNTER_TYPES, counter_for_bits, make_counter
from repro.core.merge import merge_all, merge_counters
from repro.core.morris import MorrisCounter
from repro.core.morris_plus import MorrisPlusCounter
from repro.core.nelson_yu import NelsonYuCounter
from repro.core.simplified_ny import SimplifiedNYCounter

__all__ = [
    "ApproximateCounter",
    "CounterSnapshot",
    "CsurosCounter",
    "ExactCounter",
    "SaturatingCounter",
    "MorrisCounter",
    "MorrisPlusCounter",
    "NelsonYuCounter",
    "SimplifiedNYCounter",
    "COUNTER_TYPES",
    "make_counter",
    "counter_for_bits",
    "merge_counters",
    "merge_all",
    "encode_snapshot",
    "decode_snapshot",
    "restore_counter",
]
