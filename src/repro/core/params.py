"""Parameter selection for every counter in the library.

This module centralizes the parameter formulas scattered through the paper:

* Morris(a) via Chebyshev (§1.2): ``a = 2 ε² δ`` gives the classical
  ``O(log log N + log(1/ε) + log(1/δ))`` bound.
* Morris(a) via the new §2.2 analysis (Theorem 1.2): ``a = ε²/(8 ln(1/δ))``
  gives the optimal ``O(log log N + log(1/ε) + log log(1/δ))`` bound; the
  deterministic prefix runs up to ``N_a = 8/a`` (Appendix A shows this
  transition point is necessary and near-optimal).
* Algorithm 1 (§2.1): the epoch schedule ``T_j = ceil((1+ε)^X)``,
  ``η_j = δ / X²``, ``α_j = C ln(1/η_j) / (ε³ T_j)`` rounded up to an
  inverse power of two (Remark 2.2).
* Bit-budget fitting for the Figure 1 experiment: given a state budget in
  bits and a maximum stream length, choose the accuracy parameter that
  fills the budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ParameterError

__all__ = [
    "validate_epsilon_delta",
    "morris_a_chebyshev",
    "morris_a_optimal",
    "morris_transition_point",
    "morris_x_capacity",
    "morris_a_for_bits",
    "morris_expected_std",
    "SimplifiedNYConfig",
    "simplified_ny_for_bits",
    "csuros_d_for_bits",
    "DEFAULT_CHERNOFF_C",
    "nelson_yu_x0",
    "nelson_yu_alpha_raw",
]

#: Default Chernoff constant C for Algorithm 1.  Theorem 2.1's Chernoff
#: step needs C >= 3; 6 gives margin for the ±O(1) rounding terms.
DEFAULT_CHERNOFF_C = 6.0


def validate_epsilon_delta(epsilon: float, delta: float) -> None:
    """Check ``ε, δ ∈ (0, 1/2)`` as required by Theorems 1.1/1.2."""
    if not 0.0 < epsilon < 0.5:
        raise ParameterError(f"epsilon must be in (0, 1/2), got {epsilon}")
    if not 0.0 < delta < 0.5:
        raise ParameterError(f"delta must be in (0, 1/2), got {delta}")


# ----------------------------------------------------------------------
# Morris(a)
# ----------------------------------------------------------------------
def morris_a_chebyshev(epsilon: float, delta: float) -> float:
    """Base parameter ``a = 2 ε² δ`` from the Chebyshev analysis (§1.2).

    ``Var[estimator] = a N(N-1)/2``, so Chebyshev gives failure
    probability ``a/(2ε²) = δ``.
    """
    validate_epsilon_delta(epsilon, delta)
    return 2.0 * epsilon * epsilon * delta


def morris_a_optimal(epsilon: float, delta: float) -> float:
    """Base parameter ``a = ε²/(8 ln(1/δ))`` from §2.2 (Theorem 1.2).

    With this choice Morris(a) is a ``(1 ± 2ε)``-approximation with
    probability ``1 - 2δ`` once ``N > 8/a`` — exponentially better δ
    dependence than the Chebyshev tuning.
    """
    validate_epsilon_delta(epsilon, delta)
    return epsilon * epsilon / (8.0 * math.log(1.0 / delta))


def morris_transition_point(a: float) -> int:
    """Deterministic-prefix length ``N_a = ceil(8/a)`` for Morris+ (§2.2).

    Appendix A shows switching at ``Θ(ε^{4/3}/a)`` already fails, so 8/a is
    necessary up to the constant.
    """
    if a <= 0.0:
        raise ParameterError(f"a must be positive, got {a}")
    return math.ceil(8.0 / a)


def morris_x_capacity(a: float, n_max: int, headroom: float = 4.0) -> int:
    """Largest Morris state X needed to represent counts up to ``n_max``.

    The estimator ``((1+a)^X - 1)/a`` must be able to reach
    ``headroom * n_max`` (the state overshoots its expectation by small
    factors with non-negligible probability), so
    ``X = ceil(log_{1+a}(a * headroom * n_max + 1))``.
    """
    if a <= 0.0:
        raise ParameterError(f"a must be positive, got {a}")
    if n_max <= 0:
        raise ParameterError(f"n_max must be positive, got {n_max}")
    if headroom < 1.0:
        raise ParameterError(f"headroom must be >= 1, got {headroom}")
    return math.ceil(math.log1p(a * headroom * n_max) / math.log1p(a))


def morris_a_for_bits(bits: int, n_max: int, headroom: float = 4.0) -> float:
    """Smallest ``a`` whose Morris state fits in a ``bits``-bit register.

    Smaller ``a`` means lower variance but a larger state X; this finds (by
    bisection on ``log a``) the most accurate Morris counter whose X stays
    below ``2**bits`` while counting up to ``headroom * n_max``.  Used to
    parameterize the Figure 1 experiment ("17 bits of memory").
    """
    if bits < 2:
        raise ParameterError(f"need at least 2 bits, got {bits}")
    if n_max <= 0:
        raise ParameterError(f"n_max must be positive, got {n_max}")
    x_max = (1 << bits) - 1

    def fits(a: float) -> bool:
        return morris_x_capacity(a, n_max, headroom) <= x_max

    hi = 1.0
    if not fits(hi):
        raise ParameterError(
            f"{bits} bits cannot hold a Morris counter for n_max={n_max}"
        )
    lo = 1e-18
    if fits(lo):
        return lo
    # Bisect on log(a): fits() is monotone increasing in a.
    log_lo, log_hi = math.log(lo), math.log(hi)
    for _ in range(200):
        mid = 0.5 * (log_lo + log_hi)
        if fits(math.exp(mid)):
            log_hi = mid
        else:
            log_lo = mid
    return math.exp(log_hi)


def morris_expected_std(a: float, n: int) -> float:
    """Standard deviation ``sqrt(a n (n-1) / 2)`` of the Morris estimator."""
    if a <= 0.0:
        raise ParameterError(f"a must be positive, got {a}")
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    return math.sqrt(a * n * (n - 1) / 2.0) if n > 1 else 0.0


# ----------------------------------------------------------------------
# Simplified Nelson-Yu (Figure 1 variant)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class SimplifiedNYConfig:
    """Configuration of the simplified counter: resolution and exponent cap.

    ``resolution`` is the value Y is halved back to (Y lives in
    ``[0, 2*resolution)``), and ``t_max`` caps the sampling exponent so the
    ``t`` register has a fixed width.  Total state:
    ``log2(2*resolution) + bits(t_max)`` bits.
    """

    resolution: int
    t_max: int

    def __post_init__(self) -> None:
        if self.resolution < 1:
            raise ParameterError(
                f"resolution must be >= 1, got {self.resolution}"
            )
        if self.t_max < 0:
            raise ParameterError(f"t_max must be >= 0, got {self.t_max}")

    @property
    def y_bits(self) -> int:
        """Width of the Y register (holds values up to 2*resolution - 1)."""
        return max(1, (2 * self.resolution - 1).bit_length())

    @property
    def t_bits(self) -> int:
        """Width of the t register."""
        return max(1, self.t_max.bit_length())

    @property
    def total_bits(self) -> int:
        """Total fixed register width of the counter's state."""
        return self.y_bits + self.t_bits

    @property
    def capacity(self) -> int:
        """Largest representable estimate ``(2*resolution - 1) * 2**t_max``."""
        return (2 * self.resolution - 1) << self.t_max


def simplified_ny_for_bits(
    bits: int, n_max: int, headroom: float = 2.0
) -> SimplifiedNYConfig:
    """Most accurate simplified-NY configuration within a bit budget.

    Accuracy improves with ``resolution`` (variance of the estimator scales
    like ``N * 2**t`` and ``2**t ≈ N/resolution``), so we maximize the Y
    register width subject to the capacity constraint
    ``(2s - 1) * 2**t_max >= headroom * n_max``.
    """
    if bits < 3:
        raise ParameterError(f"need at least 3 bits, got {bits}")
    if n_max <= 0:
        raise ParameterError(f"n_max must be positive, got {n_max}")
    target = math.ceil(headroom * n_max)
    best: SimplifiedNYConfig | None = None
    # y_bits = 1 (resolution 1) degenerates to a pure base-2 Morris
    # counter but is a valid last resort for very tight budgets.
    for y_bits in range(bits - 1, 0, -1):
        t_bits = bits - y_bits
        config = SimplifiedNYConfig(
            resolution=1 << (y_bits - 1), t_max=(1 << t_bits) - 1
        )
        if config.capacity >= target:
            best = config
            break
    if best is None:
        raise ParameterError(
            f"{bits} bits cannot hold a simplified-NY counter "
            f"for n_max={n_max}"
        )
    return best


# ----------------------------------------------------------------------
# Csűrös floating-point counter
# ----------------------------------------------------------------------
def csuros_d_for_bits(bits: int, n_max: int, headroom: float = 2.0) -> int:
    """Largest mantissa width ``d`` fitting a Csűrös counter in ``bits``.

    The Csűrös state is a single integer X with value up to
    ``(e_max + 1) * M`` where ``M = 2**d`` and ``e_max`` is the exponent
    needed to represent ``headroom * n_max``; accuracy improves with
    ``d``, so take the largest feasible one.
    """
    if bits < 3:
        raise ParameterError(f"need at least 3 bits, got {bits}")
    if n_max <= 0:
        raise ParameterError(f"n_max must be positive, got {n_max}")
    target = headroom * n_max
    for d in range(bits - 1, 0, -1):
        m = 1 << d
        # Estimate (M + m')*2^e - M reaches target at exponent e_need.
        e_need = max(0, math.ceil(math.log2((target + m) / (2 * m))) + 1)
        x_max = (e_need + 1) * m - 1
        if x_max.bit_length() <= bits:
            return d
    raise ParameterError(
        f"{bits} bits cannot hold a Csűrös counter for n_max={n_max}"
    )


# ----------------------------------------------------------------------
# Algorithm 1 (Nelson-Yu)
# ----------------------------------------------------------------------
def nelson_yu_x0(epsilon: float, delta: float, chernoff_c: float) -> int:
    """Initial exponent ``X0 = ceil(ln_{1+ε}(C ln(1/η)/ε³))`` with η = δ.

    This makes the epoch-0 threshold ``T = ceil((1+ε)^X0)`` large enough
    that every later epoch's Chernoff bound has the sample size it needs.
    """
    validate_epsilon_delta(epsilon, delta)
    if chernoff_c <= 0.0:
        raise ParameterError(f"chernoff_c must be positive, got {chernoff_c}")
    body = chernoff_c * math.log(1.0 / delta) / epsilon**3
    return max(1, math.ceil(math.log(body) / math.log1p(epsilon)))


def nelson_yu_alpha_raw(
    epsilon: float, delta: float, chernoff_c: float, x: int, threshold: int
) -> float:
    """Un-rounded sampling rate ``α = C ln(1/η)/(ε³ T)`` with ``η = δ/X²``.

    The caller rounds the result *up* to an inverse power of two
    (Remark 2.2) and caps it at 1.
    """
    validate_epsilon_delta(epsilon, delta)
    if threshold <= 0:
        raise ParameterError(f"threshold must be positive, got {threshold}")
    if x <= 0:
        raise ParameterError(f"x must be positive, got {x}")
    eta = delta / (x * x)
    # η < 1 always (δ < 1/2 and X >= 1); ln(1/η) > 0.
    alpha = chernoff_c * math.log(1.0 / eta) / (epsilon**3 * threshold)
    return min(alpha, 1.0)
