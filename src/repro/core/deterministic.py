"""Deterministic baselines: the exact counter and a saturating counter.

The exact counter is the ``ceil(log2 N)``-bit baseline the paper's first
sentence starts from; the lower bound's first branch (``Ω(log n)``) is
matched by it.  The saturating counter is the fair deterministic competitor
at a *fixed* bit budget, used in the accuracy-space tradeoff experiment
(E8): with ``b`` bits it counts exactly to ``2**b - 1`` and then sticks.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.base import ApproximateCounter
from repro.errors import ParameterError
from repro.memory.model import SpaceModel, uint_bits

__all__ = ["ExactCounter", "SaturatingCounter"]


class ExactCounter(ApproximateCounter):
    """Exact deterministic counter (zero error, ``Θ(log N)`` bits)."""

    algorithm_name = "exact"

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self._value = 0
        self._observe_space()

    def increment(self) -> None:
        self._value += 1
        self._n_increments += 1
        self._observe_space()

    def add(self, n: int) -> None:
        if n < 0:
            raise ParameterError(f"cannot add a negative count: {n}")
        self._value += n
        self._n_increments += n
        self._observe_space()

    def estimate(self) -> float:
        return float(self._value)

    def state_bits(self, model: SpaceModel = SpaceModel.AUTOMATON) -> int:
        return uint_bits(self._value)

    def merge_from(self, other: ApproximateCounter) -> None:
        """Merging exact counters is plain addition."""
        if not isinstance(other, ExactCounter):
            raise ParameterError(
                f"cannot merge {type(other).__name__} into ExactCounter"
            )
        self._value += other._value
        self._n_increments += other._n_increments
        self._observe_space()

    def _state_dict(self) -> dict[str, Any]:
        return {"value": self._value}

    def _params_dict(self) -> dict[str, Any]:
        return {}

    def _restore_state(self, state: Mapping[str, Any]) -> None:
        self._value = int(state["value"])


class SaturatingCounter(ApproximateCounter):
    """Deterministic counter clamped to a fixed register width.

    Parameters
    ----------
    bits:
        Register width; the counter saturates at ``2**bits - 1``.
    """

    algorithm_name = "saturating"

    def __init__(self, bits: int, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        if bits < 1:
            raise ParameterError(f"bits must be >= 1, got {bits}")
        self._bits = bits
        self._cap = (1 << bits) - 1
        self._value = 0
        self._observe_space()

    @property
    def bits(self) -> int:
        """Configured register width."""
        return self._bits

    @property
    def saturated(self) -> bool:
        """True once the register has hit its cap."""
        return self._value >= self._cap

    def increment(self) -> None:
        if self._value < self._cap:
            self._value += 1
        self._n_increments += 1
        self._observe_space()

    def add(self, n: int) -> None:
        if n < 0:
            raise ParameterError(f"cannot add a negative count: {n}")
        self._value = min(self._cap, self._value + n)
        self._n_increments += n
        self._observe_space()

    def estimate(self) -> float:
        return float(self._value)

    def state_bits(self, model: SpaceModel = SpaceModel.AUTOMATON) -> int:
        # Fixed-width register by construction.
        return self._bits

    def _state_dict(self) -> dict[str, Any]:
        return {"value": self._value}

    def _params_dict(self) -> dict[str, Any]:
        return {"bits": self._bits}

    def _restore_state(self, state: Mapping[str, Any]) -> None:
        value = int(state["value"])
        if not 0 <= value <= self._cap:
            raise ParameterError(f"value {value} out of range for {self._bits} bits")
        self._value = value
