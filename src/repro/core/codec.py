"""Compact serialization of counter snapshots.

The analytics motivation (§1) is storage: a system holding millions of
counters checkpoints them to disk or ships them between nodes for merging
(Remark 2.4).  This codec turns a
:class:`~repro.core.base.CounterSnapshot` into a single JSON-safe line and
back, with integrity checks:

* a format version, so future layouts can evolve;
* the algorithm name and parameters, validated on decode;
* a checksum over the payload (SplitMix64-based, from this library's own
  mixer) so truncated or corrupted records fail loudly with
  :class:`~repro.errors.StateError` instead of resurrecting a silently
  wrong counter.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.base import ApproximateCounter, CounterSnapshot
from repro.core.factory import COUNTER_TYPES
from repro.errors import StateError
from repro.rng.splitmix import mix64

__all__ = [
    "encode_snapshot",
    "decode_snapshot",
    "restore_counter",
    "encode_checksummed_line",
    "decode_checksummed_line",
]

_FORMAT_VERSION = 1


_CHECKSUM_SEED = 0xA5A5A5A5A5A5A5A5


def _checksum(payload: str, seed: int) -> int:
    """64-bit checksum over a canonical string, via the library mixer."""
    h = seed
    for byte in payload.encode("utf-8"):
        h = mix64(h ^ byte)
    return h


def encode_checksummed_line(body: dict[str, Any], seed: int) -> str:
    """Wrap a JSON-safe body in the library's checksummed line framing.

    The body is canonicalized (sorted keys, no whitespace), checksummed
    with the caller's ``seed`` (distinct per record kind, so a record
    cannot be decoded as the wrong kind), and emitted as one
    ``{"payload": ..., "checksum": ...}`` JSON line.  All durable /
    wire formats — counter snapshots, bank checkpoints, migration
    batches — share this framing via :func:`decode_checksummed_line`.
    """
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return json.dumps(
        {"payload": body, "checksum": _checksum(payload, seed)},
        sort_keys=True,
        separators=(",", ":"),
    )


def decode_checksummed_line(
    line: str, seed: int, kind: str
) -> dict[str, Any]:
    """Unwrap and verify a :func:`encode_checksummed_line` record.

    Returns the body.  Raises :class:`~repro.errors.StateError` (naming
    ``kind``) on malformed input or checksum mismatch; version checks
    stay with the caller, which owns its body schema.
    """
    try:
        wrapper = json.loads(line)
        body = wrapper["payload"]
        claimed = wrapper["checksum"]
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise StateError(f"malformed {kind}: {exc}") from exc
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    if _checksum(payload, seed) != claimed:
        raise StateError(f"{kind} checksum mismatch (corrupted record)")
    if not isinstance(body, dict):
        raise StateError(f"malformed {kind}: payload is not an object")
    return body


def encode_snapshot(snapshot: CounterSnapshot) -> str:
    """Serialize a snapshot to a single JSON line."""
    body = {
        "v": _FORMAT_VERSION,
        "algorithm": snapshot.algorithm,
        "params": dict(snapshot.params),
        "state": _jsonable(dict(snapshot.state)),
        "n": snapshot.n_increments,
    }
    return encode_checksummed_line(body, _CHECKSUM_SEED)


def decode_snapshot(line: str) -> CounterSnapshot:
    """Parse a line produced by :func:`encode_snapshot`.

    Raises :class:`~repro.errors.StateError` on malformed input, version
    mismatch, checksum mismatch, or unknown algorithm.
    """
    body = decode_checksummed_line(
        line, _CHECKSUM_SEED, kind="snapshot record"
    )
    if body.get("v") != _FORMAT_VERSION:
        raise StateError(
            f"unsupported snapshot format version {body.get('v')!r}"
        )
    algorithm = body.get("algorithm")
    if algorithm not in COUNTER_TYPES:
        raise StateError(f"unknown algorithm {algorithm!r} in snapshot")
    return CounterSnapshot(
        algorithm=algorithm,
        params=_dejsonable(body["params"]),
        state=_dejsonable(body["state"]),
        n_increments=int(body["n"]),
    )


def restore_counter(line: str, seed: int = 0) -> ApproximateCounter:
    """Decode a snapshot line and build a live counter from it.

    The counter gets a fresh random stream from ``seed`` (randomness is
    not part of the serialized state — two restored replicas should not
    share coin flips).
    """
    snapshot = decode_snapshot(line)
    cls = COUNTER_TYPES[snapshot.algorithm]
    try:
        counter = cls(**snapshot.params, seed=seed)
        counter.restore(snapshot)
    except (TypeError, ValueError) as exc:
        raise StateError(f"snapshot incompatible with {cls.__name__}: {exc}") from exc
    return counter


def _jsonable(mapping: dict[str, Any]) -> dict[str, Any]:
    """Convert tuples (epoch histories) into lists for JSON."""
    out: dict[str, Any] = {}
    for key, value in mapping.items():
        if isinstance(value, tuple):
            out[key] = list(value)
        elif isinstance(value, list):
            out[key] = [list(v) if isinstance(v, tuple) else v for v in value]
        else:
            out[key] = value
    return out


def _dejsonable(mapping: dict[str, Any]) -> dict[str, Any]:
    """Restore tuple-of-tuples shapes used by mergeable histories."""
    out: dict[str, Any] = {}
    for key, value in mapping.items():
        if key == "epoch_history" and isinstance(value, list):
            out[key] = [tuple(entry) for entry in value]
        else:
            out[key] = value
    return out
