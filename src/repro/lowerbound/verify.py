"""End-to-end Theorem 3.1 verification.

For a counter automaton and a target ``T``:

1. derandomize it (argmax transitions);
2. search for a pumping witness within ``T``;
3. if one exists, check that the witness genuinely breaks correctness —
   the shared query value cannot simultaneously be within a factor 2 of
   ``N₁ ≤ T/2`` (when ``N₁ ≥ 1``) and of ``N₃ ≥ 2T``.

The report also evaluates the theorem's quantitative side: an automaton
that distinguishes ``[1, T/2]`` from ``[2T, 4T]`` must have more than
``T/2 + 1`` reachable... precisely, must avoid a collision, hence needs
more than ``⌊T/2⌋ + 1`` distinct visited states, i.e.
``S ≥ log2(T/2)`` bits — the ``Ω(log T)`` of Eq. (7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.lowerbound.automaton import CounterAutomaton
from repro.lowerbound.derandomize import DeterministicCounter, derandomize
from repro.lowerbound.pumping import PumpingWitness, find_pumping_witness

__all__ = ["LowerBoundReport", "verify_theorem_3_1", "min_bits_to_survive"]


@dataclass(frozen=True, slots=True)
class LowerBoundReport:
    """Outcome of the derandomize-and-pump attack on one counter."""

    label: str
    t_param: int
    state_bits: int
    witness: PumpingWitness | None
    broken: bool

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.witness is None:
            return (
                f"{self.label}: survives T={self.t_param} "
                f"(no state collision within T/2; S={self.state_bits} bits)"
            )
        w = self.witness
        return (
            f"{self.label}: BROKEN at T={self.t_param} — same state "
            f"{w.state} after N1={w.n_small} and N3={w.n_large} "
            f"(query {w.query_value:.3g}; S={self.state_bits} bits)"
        )


def _witness_breaks(witness: PumpingWitness, t_param: int) -> bool:
    """Check the witness against the paper's decision problem.

    Correctness requires the answer to be ``< T`` at counts ``≤ T/2`` and
    ``≥ T`` at counts in ``[2T, 4T]``.  The derandomized counter gives the
    single value ``query_value`` at both N₁ and N₃, so it must fail at
    least one side; we verify that concretely rather than assume it.
    """
    wrong_at_small = witness.query_value >= t_param
    wrong_at_large = witness.query_value < t_param
    return wrong_at_small or wrong_at_large


def verify_theorem_3_1(
    automaton: CounterAutomaton, t_param: int
) -> LowerBoundReport:
    """Run the derandomize-and-pump attack against one automaton."""
    if t_param < 4:
        raise ParameterError(f"t_param must be >= 4, got {t_param}")
    det = derandomize(automaton)
    witness = find_pumping_witness(det, t_param)
    broken = witness is not None and _witness_breaks(witness, t_param)
    return LowerBoundReport(
        label=automaton.label,
        t_param=t_param,
        state_bits=automaton.state_bits,
        witness=witness,
        broken=broken,
    )


def min_bits_to_survive(t_param: int) -> int:
    """Bits needed for a deterministic counter to avoid a collision.

    Avoiding a repeat among counts ``0..⌊T/2⌋`` needs at least
    ``⌊T/2⌋ + 1`` states, i.e. ``ceil(log2(T/2 + 1))`` bits — the
    quantitative content of Eq. (7)'s ``Ω(log T)``.
    """
    if t_param < 4:
        raise ParameterError(f"t_param must be >= 4, got {t_param}")
    states_needed = t_param // 2 + 1
    return max(1, (states_needed - 1).bit_length())


def survives(det: DeterministicCounter, t_param: int) -> bool:
    """True when no pumping witness exists within ``T`` for ``det``."""
    return find_pumping_witness(det, t_param) is None
