"""Counters as explicit stochastic automata.

§3 views an S-bit counter as a machine with at most ``2^S`` memory states,
a (possibly random) initial state, a stochastic transition applied per
increment, and a query map from states to outputs.  This module makes that
view concrete:

* :class:`CounterAutomaton` holds the transition matrix (rows = current
  state, columns = next state), the initial distribution, and the query
  values, and can compute exact state distributions after N increments.
* Builders convert each library counter into its automaton, which is what
  lets experiment E6 derandomize *the paper's own algorithms* and watch
  them break, exactly as the proof predicts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.estimators import (
    csuros_estimate,
    morris_estimate,
    subsample_estimate,
)
from repro.errors import ParameterError

__all__ = [
    "CounterAutomaton",
    "morris_automaton",
    "simplified_ny_automaton",
    "csuros_automaton",
    "exact_automaton",
]


@dataclass(frozen=True)
class CounterAutomaton:
    """An explicit finite randomized counter.

    Attributes
    ----------
    transition:
        ``(n_states, n_states)`` row-stochastic matrix; entry ``(i, j)``
        is the probability an increment moves state i to state j.
    initial:
        Length-``n_states`` initial distribution.
    query:
        Length-``n_states`` array of query outputs per state.
    label:
        Human-readable description for reports.
    """

    transition: np.ndarray
    initial: np.ndarray
    query: np.ndarray
    label: str = "automaton"

    def __post_init__(self) -> None:
        t, ini, q = self.transition, self.initial, self.query
        if t.ndim != 2 or t.shape[0] != t.shape[1]:
            raise ParameterError("transition must be a square matrix")
        n = t.shape[0]
        if ini.shape != (n,) or q.shape != (n,):
            raise ParameterError("initial/query shapes must match transition")
        if not np.allclose(t.sum(axis=1), 1.0, atol=1e-9):
            raise ParameterError("transition rows must sum to 1")
        if not math.isclose(float(ini.sum()), 1.0, abs_tol=1e-9):
            raise ParameterError("initial distribution must sum to 1")

    @property
    def n_states(self) -> int:
        """Number of memory states."""
        return self.transition.shape[0]

    @property
    def state_bits(self) -> int:
        """``ceil(log2(n_states))`` — the S of §3."""
        return max(1, (self.n_states - 1).bit_length())

    def distribution_after(self, n: int) -> np.ndarray:
        """Exact state distribution after ``n`` increments.

        Uses repeated squaring over the transition matrix, so large n cost
        ``O(log n)`` matrix products.
        """
        if n < 0:
            raise ParameterError(f"n must be non-negative, got {n}")
        result = self.initial.copy()
        power = self.transition
        k = n
        while k:
            if k & 1:
                result = result @ power
            k >>= 1
            if k:
                power = power @ power
        return result

    def estimate_distribution(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """(query values, their probabilities) after n increments."""
        dist = self.distribution_after(n)
        return self.query, dist

    def failure_probability(self, n: int, epsilon: float) -> float:
        """Exact ``P[|query - n| > ε n]`` after n increments."""
        if n < 1:
            raise ParameterError(f"n must be >= 1, got {n}")
        dist = self.distribution_after(n)
        bad = np.abs(self.query - n) > epsilon * n
        return float(dist[bad].sum())


def morris_automaton(a: float, x_cap: int) -> CounterAutomaton:
    """Morris(a) truncated to states ``X ∈ [0, x_cap]``.

    The cap state is absorbing (the real counter would leave it with
    vanishing probability when the cap is sized to the workload).
    """
    if a <= 0.0:
        raise ParameterError(f"a must be positive, got {a}")
    if x_cap < 1:
        raise ParameterError(f"x_cap must be >= 1, got {x_cap}")
    n = x_cap + 1
    t = np.zeros((n, n))
    for x in range(n):
        p = math.exp(-x * math.log1p(a))
        if x < x_cap:
            t[x, x + 1] = p
            t[x, x] = 1.0 - p
        else:
            t[x, x] = 1.0
    initial = np.zeros(n)
    initial[0] = 1.0
    query = np.array([morris_estimate(x, a) for x in range(n)])
    return CounterAutomaton(t, initial, query, label=f"morris(a={a:g})")


def simplified_ny_automaton(
    resolution: int, t_cap: int
) -> CounterAutomaton:
    """The simplified-NY counter on states ``(y, t)``.

    State index is ``t * 2s + y`` with ``y ∈ [0, 2s)``; the top rate's
    last state absorbs (capacity exhausted).
    """
    if resolution < 1:
        raise ParameterError(f"resolution must be >= 1, got {resolution}")
    if t_cap < 0:
        raise ParameterError(f"t_cap must be non-negative, got {t_cap}")
    width = 2 * resolution
    n = (t_cap + 1) * width

    def index(y: int, t: int) -> int:
        return t * width + y

    t_matrix = np.zeros((n, n))
    query = np.zeros(n)
    for t in range(t_cap + 1):
        rate = 2.0 ** -t
        for y in range(width):
            i = index(y, t)
            query[i] = subsample_estimate(y, t)
            if y < width - 1:
                t_matrix[i, index(y + 1, t)] = rate
                t_matrix[i, i] = 1.0 - rate
            elif t < t_cap:
                # Accepting at y = 2s - 1 folds to (s, t + 1).
                t_matrix[i, index(resolution, t + 1)] = rate
                t_matrix[i, i] = 1.0 - rate
            else:
                t_matrix[i, i] = 1.0
    initial = np.zeros(n)
    initial[index(0, 0)] = 1.0
    return CounterAutomaton(
        t_matrix,
        initial,
        query,
        label=f"simplified_ny(s={resolution}, t_cap={t_cap})",
    )


def csuros_automaton(d: int, x_cap: int) -> CounterAutomaton:
    """Csűrös counter truncated to ``X ∈ [0, x_cap]``."""
    if d < 0:
        raise ParameterError(f"d must be non-negative, got {d}")
    if x_cap < 1:
        raise ParameterError(f"x_cap must be >= 1, got {x_cap}")
    n = x_cap + 1
    t = np.zeros((n, n))
    for x in range(n):
        p = 2.0 ** -(x >> d)
        if x < x_cap:
            t[x, x + 1] = p
            t[x, x] = 1.0 - p
        else:
            t[x, x] = 1.0
    initial = np.zeros(n)
    initial[0] = 1.0
    query = np.array([float(csuros_estimate(x, d)) for x in range(n)])
    return CounterAutomaton(t, initial, query, label=f"csuros(d={d})")


def exact_automaton(cap: int) -> CounterAutomaton:
    """The saturating exact counter on ``[0, cap]`` (deterministic)."""
    if cap < 1:
        raise ParameterError(f"cap must be >= 1, got {cap}")
    n = cap + 1
    t = np.zeros((n, n))
    for v in range(cap):
        t[v, v + 1] = 1.0
    t[cap, cap] = 1.0
    initial = np.zeros(n)
    initial[0] = 1.0
    query = np.arange(n, dtype=np.float64)
    return CounterAutomaton(t, initial, query, label=f"exact(cap={cap})")
