"""Lower-bound machinery (§3 of the paper, Theorem 3.1).

The proof has two moving parts, both implemented here as executable
objects:

1. **Derandomization.**  Any randomized counter using ``S`` bits is a
   distribution over walks on ``2^S`` memory states.  ``C_det`` replaces
   every random transition by its most likely outcome (ties broken toward
   the lexicographically smallest state); the paper shows ``C_det`` errs
   with probability at most ``δ·2^{S(N+1)}`` whenever the randomized
   counter errs with probability δ.
2. **Pumping.**  A deterministic automaton on ``2^S ≤ √T`` states must
   revisit a state within the first ``T/2`` increments; the revisit pumps
   to some ``N₃ ∈ [2T, 4T]`` reaching the *same* state as some
   ``N₁ ≤ T/2`` — so the automaton cannot distinguish counts it is
   required to distinguish.

:mod:`~repro.lowerbound.automaton` represents counters as explicit
stochastic transition matrices (with builders for every counter in
:mod:`repro.core`); :mod:`~repro.lowerbound.derandomize` performs step 1;
:mod:`~repro.lowerbound.pumping` performs step 2; and
:mod:`~repro.lowerbound.verify` packages the end-to-end Theorem 3.1 check
used by experiment E6.
"""

from repro.lowerbound.automaton import (
    CounterAutomaton,
    exact_automaton,
    morris_automaton,
    simplified_ny_automaton,
)
from repro.lowerbound.derandomize import DeterministicCounter, derandomize
from repro.lowerbound.pumping import PumpingWitness, find_pumping_witness
from repro.lowerbound.verify import LowerBoundReport, verify_theorem_3_1

__all__ = [
    "CounterAutomaton",
    "morris_automaton",
    "simplified_ny_automaton",
    "exact_automaton",
    "DeterministicCounter",
    "derandomize",
    "PumpingWitness",
    "find_pumping_witness",
    "LowerBoundReport",
    "verify_theorem_3_1",
]
