"""Derandomization of a counter automaton (§3's first step).

Given a randomized counter ``C`` on ``2^S`` states, ``C_det`` keeps the
same query map but replaces the random initial state and every random
transition by the most likely outcome, breaking ties toward the
lexicographically smallest state — exactly the construction in the proof
of Theorem 3.1.

The proof's accounting: each derandomized step follows the randomized walk
with probability at least ``2^{-S}``, so over ``N + 1`` steps the real
walk follows ``C_det``'s path with probability at least ``2^{-S(N+1)}``,
and conditioned on that path ``C_det``'s error probability is at most
``δ · 2^{S(N+1)}``.  :meth:`DeterministicCounter.error_amplification`
computes that factor so experiments can show where it stays below 1/3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.lowerbound.automaton import CounterAutomaton

__all__ = ["DeterministicCounter", "derandomize"]


@dataclass(frozen=True)
class DeterministicCounter:
    """The argmax-derandomized version of a counter automaton."""

    next_state: np.ndarray  # int array: next_state[i] = transition argmax
    initial_state: int
    query: np.ndarray
    label: str

    @property
    def n_states(self) -> int:
        """Number of memory states."""
        return len(self.next_state)

    def state_after(self, n: int) -> int:
        """State reached after ``n`` increments (cycle-accelerated).

        A deterministic walk on a finite state set is eventually periodic
        (tail ``μ``, cycle ``λ``); we detect the cycle once and answer any
        n in O(1) afterwards — this is the "pumping" structure itself.
        """
        if n < 0:
            raise ParameterError(f"n must be non-negative, got {n}")
        tail, cycle = self._orbit()
        if n < len(tail):
            return tail[n]
        return cycle[(n - len(tail)) % len(cycle)]

    def estimate_after(self, n: int) -> float:
        """Query output after ``n`` increments."""
        return float(self.query[self.state_after(n)])

    def _orbit(self) -> tuple[list[int], list[int]]:
        """(tail states, cycle states) of the walk from the initial state."""
        seen: dict[int, int] = {}
        order: list[int] = []
        state = self.initial_state
        while state not in seen:
            seen[state] = len(order)
            order.append(state)
            state = int(self.next_state[state])
        start = seen[state]
        return order[:start], order[start:]

    def error_amplification(self, s_bits: int, n: int) -> float:
        """The proof's amplification factor ``2^{S(N+1)}``.

        ``C_det``'s error probability at count n is at most the randomized
        counter's δ times this factor.
        """
        if s_bits < 1 or n < 0:
            raise ParameterError("need s_bits >= 1 and n >= 0")
        return 2.0 ** (s_bits * (n + 1))


def derandomize(automaton: CounterAutomaton) -> DeterministicCounter:
    """Build ``C_det`` from a randomized counter automaton.

    ``np.argmax`` returns the first maximizer, which is the
    lexicographically-smallest tie-break the paper specifies.
    """
    next_state = np.argmax(automaton.transition, axis=1).astype(np.int64)
    initial = int(np.argmax(automaton.initial))
    return DeterministicCounter(
        next_state=next_state,
        initial_state=initial,
        query=automaton.query.copy(),
        label=f"det({automaton.label})",
    )
