"""The pumping argument (§3's second step).

A deterministic counter on few states must revisit a state among the
counts ``0..⌊T/2⌋``; say it is in the same state after ``N₁`` and ``N₂``
increments (``N₁ < N₂``).  Determinism then forces the same state after
``N₁ + k(N₂ − N₁)`` increments for every k, and some such count ``N₃``
lands in ``[2T, 4T]`` (possible because ``N₂ − N₁ ≤ T/2 < 2T``).  The
counter answers identically at ``N₁ ≤ T/2`` and ``N₃ ≥ 2T``, so it cannot
be a correct (even 2-approximate) counter on both.

:func:`find_pumping_witness` produces the explicit ``(N₁, N₂, N₃)``
witness, or reports that no collision exists (which requires more than
``T/2`` states — the content of the ``Ω(log T)`` bound).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.lowerbound.derandomize import DeterministicCounter

__all__ = ["PumpingWitness", "find_pumping_witness"]


@dataclass(frozen=True, slots=True)
class PumpingWitness:
    """An explicit indistinguishable pair of counts.

    ``state`` is the shared memory state; the counter's answer at
    ``n_small`` and ``n_large`` is necessarily identical, yet a correct
    counter must separate ``n_small ≤ T/2`` from ``n_large ∈ [2T, 4T]``.
    """

    n_small: int
    n_collide: int
    n_large: int
    state: int
    query_value: float

    @property
    def period(self) -> int:
        """The pumping period ``N₂ − N₁``."""
        return self.n_collide - self.n_small


def find_pumping_witness(
    counter: DeterministicCounter, t_param: int
) -> PumpingWitness | None:
    """Find ``N₁ < N₂ ≤ T/2`` colliding and pump to ``N₃ ∈ [2T, 4T]``.

    Returns ``None`` when no state repeats within ``0..⌊T/2⌋`` — i.e. the
    counter has enough states to survive this T (as the exact counter
    does whenever its register covers T/2).
    """
    if t_param < 4:
        raise ParameterError(f"t_param must be >= 4, got {t_param}")
    half = t_param // 2
    seen: dict[int, int] = {}
    state = counter.initial_state
    n1 = n2 = None
    for n in range(half + 1):
        if state in seen:
            n1, n2 = seen[state], n
            break
        seen[state] = n
        state = int(counter.next_state[state])
    if n1 is None or n2 is None:
        return None
    period = n2 - n1
    # Smallest k with N1 + k*period >= 2T; since period <= T/2, the value
    # N1 + k*period then also lies within [2T, 2T + T/2] ⊆ [2T, 4T].
    k = -(-(2 * t_param - n1) // period)
    n3 = n1 + k * period
    if not 2 * t_param <= n3 <= 4 * t_param:
        raise ParameterError(
            f"internal error: pumped count {n3} outside [2T, 4T]"
        )
    shared_state = counter.state_after(n1)
    return PumpingWitness(
        n_small=n1,
        n_collide=n2,
        n_large=n3,
        state=shared_state,
        query_value=float(counter.query[shared_state]),
    )
