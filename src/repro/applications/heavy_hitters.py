"""ℓ1 heavy hitters in insertion-only streams ([BDW19] flavour).

An item is a ``φ``-heavy hitter when its frequency exceeds ``φ m``.  The
classical small-space solution is SpaceSaving (a Misra-Gries variant): keep
``k`` (item, count) cells; on a miss, evict the minimum cell and inherit
its count plus one.  SpaceSaving guarantees every item with
``f_i > m/k`` is retained and each cell overestimates by at most ``m/k``.

[BDW19]'s observation, which this module demonstrates, is that the cells'
counts — the dominant ``Θ(k log m)`` bits of state — can themselves be
approximate counters: a ``(1±ε)`` count keeps the heavy-hitter guarantee
up to ``(1±O(ε))`` slack while each cell shrinks to ``O(log log m)`` bits.

* :class:`SpaceSaving` — exact cells (baseline, also the ground truth
  structure for tests);
* :class:`ApproxSpaceSaving` — cells backed by approximate counters, with
  eviction by estimated minimum and count inheritance via ``add``.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

from repro.core.base import ApproximateCounter
from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom

__all__ = ["SpaceSaving", "ApproxSpaceSaving"]


class SpaceSaving:
    """Exact SpaceSaving summary with ``k`` cells."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        self._k = k
        self._counts: dict[Hashable, int] = {}
        self._length = 0

    @property
    def stream_length(self) -> int:
        """Items processed so far."""
        return self._length

    def update(self, item: Hashable) -> None:
        """Process one item."""
        self._length += 1
        if item in self._counts:
            self._counts[item] += 1
            return
        if len(self._counts) < self._k:
            self._counts[item] = 1
            return
        # Evict the minimum cell; the newcomer inherits its count + 1.
        victim = min(self._counts, key=lambda key: (self._counts[key], str(key)))
        inherited = self._counts.pop(victim)
        self._counts[item] = inherited + 1

    def consume(self, items: Iterable[Hashable]) -> None:
        """Process a whole stream."""
        for item in items:
            self.update(item)

    def estimate(self, item: Hashable) -> int:
        """Estimated frequency (upper bound; 0 if not tracked)."""
        return self._counts.get(item, 0)

    def heavy_hitters(self, phi: float) -> list[tuple[Hashable, int]]:
        """Items whose estimated frequency exceeds ``φ · m``, descending."""
        if not 0.0 < phi < 1.0:
            raise ParameterError(f"phi must be in (0, 1), got {phi}")
        threshold = phi * self._length
        ranked = sorted(
            (
                (item, count)
                for item, count in self._counts.items()
                if count > threshold
            ),
            key=lambda pair: (-pair[1], str(pair[0])),
        )
        return ranked


class ApproxSpaceSaving:
    """SpaceSaving whose cells are approximate counters.

    Parameters
    ----------
    k:
        Number of cells.
    counter_factory:
        Builds one cell's approximate counter, given a random source.
    seed:
        Seed for per-cell counter streams.
    """

    def __init__(
        self,
        k: int,
        counter_factory: Callable[[BitBudgetedRandom], ApproximateCounter],
        seed: int = 0,
    ) -> None:
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        self._k = k
        self._factory = counter_factory
        self._rng = BitBudgetedRandom(seed)
        self._cells: dict[Hashable, ApproximateCounter] = {}
        self._length = 0
        self._cells_created = 0

    @property
    def stream_length(self) -> int:
        """Items processed so far."""
        return self._length

    def _new_cell(self) -> ApproximateCounter:
        self._cells_created += 1
        return self._factory(self._rng.split(self._cells_created))

    def update(self, item: Hashable) -> None:
        """Process one item."""
        self._length += 1
        cell = self._cells.get(item)
        if cell is not None:
            cell.increment()
            return
        if len(self._cells) < self._k:
            cell = self._new_cell()
            cell.increment()
            self._cells[item] = cell
            return
        victim = min(
            self._cells,
            key=lambda key: (self._cells[key].estimate(), str(key)),
        )
        inherited = self._cells.pop(victim)
        inherited.increment()
        self._cells[item] = inherited

    def consume(self, items: Iterable[Hashable]) -> None:
        """Process a whole stream."""
        for item in items:
            self.update(item)

    def estimate(self, item: Hashable) -> float:
        """Estimated frequency (0 if not tracked)."""
        cell = self._cells.get(item)
        return cell.estimate() if cell is not None else 0.0

    def heavy_hitters(self, phi: float) -> list[tuple[Hashable, float]]:
        """Items whose estimated frequency exceeds ``φ · m``, descending."""
        if not 0.0 < phi < 1.0:
            raise ParameterError(f"phi must be in (0, 1), got {phi}")
        threshold = phi * self._length
        ranked = sorted(
            (
                (item, cell.estimate())
                for item, cell in self._cells.items()
                if cell.estimate() > threshold
            ),
            key=lambda pair: (-pair[1], str(pair[0])),
        )
        return ranked

    def total_state_bits(self) -> int:
        """Total bits across all cell counters (the [BDW19] win)."""
        return sum(cell.state_bits() for cell in self._cells.values())
