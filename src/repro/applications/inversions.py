"""Inversion counting over permutation streams ([AJKS02] flavour).

Streaming over a permutation of ``{0..n-1}``, the number of inversions is
``Σ_j #{i < j : π(i) > π(j)}``.  The classical exact offline method uses a
Fenwick (binary indexed) tree: when value ``v`` arrives, the number of
already-seen values greater than ``v`` is ``seen_so_far − prefix_count(v)``.

We implement the Fenwick tree substrate from scratch and two counters on
top of it:

* :class:`InversionCounter` — exact (the baseline);
* :class:`ApproxInversionCounter` — the same algorithm with the running
  inversion tally kept in an approximate counter, demonstrating the
  counter-as-subroutine pattern: the tally is the only ``Θ(log n²)``-bit
  piece of state that the approximate counter shrinks, and a ``(1±ε)``
  tally stays a ``(1±ε)`` inversion estimate because the tally is a pure
  sum of increments.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.base import ApproximateCounter
from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom

__all__ = ["FenwickTree", "InversionCounter", "ApproxInversionCounter"]


class FenwickTree:
    """Binary indexed tree over ``[0, size)`` supporting point add /
    prefix sum in ``O(log size)``."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ParameterError(f"size must be >= 1, got {size}")
        self._size = size
        self._tree = [0] * (size + 1)

    @property
    def size(self) -> int:
        """Number of addressable positions."""
        return self._size

    def add(self, index: int, amount: int = 1) -> None:
        """Add ``amount`` at ``index``."""
        if not 0 <= index < self._size:
            raise ParameterError(f"index {index} out of range")
        i = index + 1
        while i <= self._size:
            self._tree[i] += amount
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of positions ``0..index`` inclusive (0 for index < 0)."""
        if index >= self._size:
            raise ParameterError(f"index {index} out of range")
        total = 0
        i = index + 1
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total

    def total(self) -> int:
        """Sum over all positions."""
        return self.prefix_sum(self._size - 1)


class InversionCounter:
    """Exact streaming inversion counter over a permutation of [0, n)."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ParameterError(f"n must be >= 1, got {n}")
        self._tree = FenwickTree(n)
        self._seen = 0
        self._inversions = 0

    @property
    def inversions(self) -> int:
        """Exact inversion count so far."""
        return self._inversions

    @property
    def items_seen(self) -> int:
        """Number of stream positions consumed."""
        return self._seen

    def update(self, value: int) -> int:
        """Consume one permutation value; returns new inversions added."""
        greater_before = self._seen - self._tree.prefix_sum(value)
        self._tree.add(value)
        self._seen += 1
        self._inversions += greater_before
        return greater_before

    def consume(self, values: Iterable[int]) -> int:
        """Consume a whole stream; returns the final inversion count."""
        for value in values:
            self.update(value)
        return self._inversions


class ApproxInversionCounter:
    """Inversion counting with the tally in an approximate counter.

    The Fenwick tree is still exact (it stores *which* values arrived);
    what the approximate counter replaces is the inversion tally, which
    grows to ``Θ(n²)`` and is exactly the "large counter incremented many
    times" shape the paper targets.
    """

    def __init__(
        self,
        n: int,
        counter_factory: Callable[[BitBudgetedRandom], ApproximateCounter],
        seed: int = 0,
    ) -> None:
        self._exact_structure = InversionCounter(n)
        self._tally = counter_factory(BitBudgetedRandom(seed))

    @property
    def tally_counter(self) -> ApproximateCounter:
        """The approximate inversion tally."""
        return self._tally

    def update(self, value: int) -> None:
        """Consume one permutation value."""
        added = self._exact_structure.update(value)
        if added:
            self._tally.add(added)

    def consume(self, values: Iterable[int]) -> float:
        """Consume a whole stream; returns the estimated inversion count."""
        for value in values:
            self.update(value)
        return self.estimate()

    def estimate(self) -> float:
        """Estimated inversion count."""
        return self._tally.estimate()

    def exact(self) -> int:
        """Ground-truth inversions (kept for evaluation)."""
        return self._exact_structure.inversions
