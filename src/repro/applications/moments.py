"""Frequency-moment estimation with approximate-counter subroutines.

For an insertion-only stream of items with frequencies ``f_i``, the p-th
frequency moment is ``F_p = Σ_i f_i^p``.  The classical AMS estimator
[AMS99] samples a uniformly random stream position, counts the occurrences
``r`` of that position's item in the *rest* of the stream, and outputs
``m · (r^p − (r−1)^p)`` — an unbiased estimate of ``F_p`` (telescoping
over each item's occurrences).

[GS09] and [JW19] observed that for ``p ∈ (0, 1]`` the tail count ``r``
(and the stream length ``m``) need only be known approximately, so both
can be kept in Morris-style counters — which is where this library's
counters plug in.  Each basic estimator therefore stores: the sampled
item, a reservoir position, and an approximate counter of occurrences
since sampling.

Averaging ``k`` independent basic estimators reduces the variance the
standard way; the class exposes both the mean estimate and the raw basic
estimates for variance diagnostics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable

from repro.core.base import ApproximateCounter
from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom

__all__ = ["FrequencyMomentEstimator"]


@dataclass
class _BasicEstimator:
    """One AMS sample: a sampled item and its (approximate) tail count."""

    item: Hashable | None = None
    counter: ApproximateCounter | None = None


class FrequencyMomentEstimator:
    """Estimate ``F_p`` for ``p ∈ (0, 1]`` over an insertion-only stream.

    Parameters
    ----------
    p:
        The moment order, in ``(0, 1]``.  ``p = 1`` gives the stream
        length (useful as a correctness anchor: the estimator is then
        exactly ``m``).
    n_estimators:
        Number of independent basic estimators to average.
    counter_factory:
        Builds the approximate counter used for each tail count, given a
        random source — e.g.
        ``lambda rng: MorrisPlusCounter.for_optimal(0.05, 1e-4, rng=rng)``.
    seed:
        Seed for position sampling and counter streams.
    """

    def __init__(
        self,
        p: float,
        n_estimators: int,
        counter_factory: Callable[[BitBudgetedRandom], ApproximateCounter],
        seed: int = 0,
    ) -> None:
        if not 0.0 < p <= 1.0:
            raise ParameterError(f"p must be in (0, 1], got {p}")
        if n_estimators < 1:
            raise ParameterError(
                f"n_estimators must be >= 1, got {n_estimators}"
            )
        self._p = p
        self._rng = BitBudgetedRandom(seed)
        self._factory = counter_factory
        self._basics = [_BasicEstimator() for _ in range(n_estimators)]
        self._length = 0

    @property
    def stream_length(self) -> int:
        """Number of items processed."""
        return self._length

    def update(self, item: Hashable) -> None:
        """Process one stream item."""
        self._length += 1
        for index, basic in enumerate(self._basics):
            # Reservoir-sample the position: replace with probability 1/m,
            # which leaves each position uniformly likely.
            if basic.item is None or self._rng.bernoulli(1.0 / self._length):
                basic.item = item
                basic.counter = self._factory(
                    self._rng.split(index, self._length)
                )
                basic.counter.increment()
            elif item == basic.item:
                basic.counter.increment()

    def consume(self, items: Iterable[Hashable]) -> None:
        """Process a whole stream."""
        for item in items:
            self.update(item)

    def basic_estimates(self) -> list[float]:
        """The raw per-sample estimates ``m (r̂^p − (r̂−1)^p)``."""
        if self._length == 0:
            raise ParameterError("no items processed yet")
        estimates = []
        for basic in self._basics:
            r = max(1.0, basic.counter.estimate())
            estimates.append(
                self._length * (r ** self._p - (r - 1.0) ** self._p)
            )
        return estimates

    def estimate(self) -> float:
        """The averaged ``F_p`` estimate."""
        basics = self.basic_estimates()
        return math.fsum(basics) / len(basics)

    @staticmethod
    def exact_moment(frequencies: dict[Hashable, int], p: float) -> float:
        """Ground-truth ``F_p`` from an exact frequency table."""
        if not 0.0 < p <= 1.0:
            raise ParameterError(f"p must be in (0, 1], got {p}")
        return math.fsum(f ** p for f in frequencies.values() if f > 0)
