"""Approximate reservoir sampling ([GS09]'s cited application).

Classic reservoir sampling keeps item ``m`` with probability ``k/m``,
which requires knowing the exact stream position ``m`` — a ``log m``-bit
counter.  The approximate variant replaces it with an approximate counter:
item ``m`` is kept with probability ``min(1, k/N̂)`` where ``N̂`` is the
approximate stream length.  With a ``(1±ε)`` counter every item's
inclusion probability is within ``(1±O(ε))`` of uniform, so the sample is
near-uniform while the position counter costs only ``O(log log m)`` bits.

The class tracks inclusion decisions honestly (the random slot eviction of
standard reservoir sampling) and exposes the position counter so
experiments can report its memory.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

from repro.core.base import ApproximateCounter
from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom

__all__ = ["ApproximateReservoir"]


class ApproximateReservoir:
    """A size-``k`` reservoir whose position counter is approximate.

    Parameters
    ----------
    k:
        Reservoir capacity.
    counter_factory:
        Builds the approximate position counter, given a random source.
    seed:
        Seed for inclusion/eviction randomness and the counter stream.
    """

    def __init__(
        self,
        k: int,
        counter_factory: Callable[[BitBudgetedRandom], ApproximateCounter],
        seed: int = 0,
    ) -> None:
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        self._k = k
        self._rng = BitBudgetedRandom(seed)
        self._counter = counter_factory(self._rng.split(0x7265736572766F69))
        self._sample: list[Hashable] = []

    @property
    def k(self) -> int:
        """Reservoir capacity."""
        return self._k

    @property
    def sample(self) -> list[Hashable]:
        """The current reservoir contents (at most k items)."""
        return list(self._sample)

    @property
    def position_counter(self) -> ApproximateCounter:
        """The approximate stream-position counter."""
        return self._counter

    def update(self, item: Hashable) -> None:
        """Process one stream item."""
        self._counter.increment()
        if len(self._sample) < self._k:
            self._sample.append(item)
            return
        estimated_position = max(float(self._k), self._counter.estimate())
        if self._rng.bernoulli(min(1.0, self._k / estimated_position)):
            slot = self._rng.randint_below(self._k)
            self._sample[slot] = item

    def consume(self, items: Iterable[Hashable]) -> int:
        """Process a whole stream; returns the number of items seen."""
        n = 0
        for item in items:
            self.update(item)
            n += 1
        return n
