"""Streaming applications built on approximate counters.

§1 of the paper motivates approximate counting through its uses as a
subroutine; this package implements a representative of each cited use,
with the counter type pluggable so the paper's new algorithm can be
dropped in anywhere a Morris counter was used:

* :mod:`~repro.applications.moments` — frequency-moment estimation
  ``F_p = Σ f_i^p`` for ``p ∈ (0, 1]`` in insertion-only streams
  (the [AMS99]/[GS09]/[JW19] line): AMS-style position sampling with the
  per-position tail counts maintained by approximate counters.
* :mod:`~repro.applications.reservoir` — approximate reservoir sampling
  ([GS09]): a uniform-ish sample of the stream using an approximate
  counter for the stream length.
* :mod:`~repro.applications.inversions` — inversion counting over
  permutation streams ([AJKS02] flavour), with a from-scratch Fenwick-tree
  substrate and a variant whose tree nodes are approximate counters.
* :mod:`~repro.applications.heavy_hitters` — ℓ1 heavy hitters in
  insertion-only streams ([BDW19] flavour): SpaceSaving with exact cells
  as the baseline and approximate-counter cells as the space-saving
  variant.
"""

from repro.applications.heavy_hitters import ApproxSpaceSaving, SpaceSaving
from repro.applications.inversions import (
    ApproxInversionCounter,
    FenwickTree,
    InversionCounter,
)
from repro.applications.moments import FrequencyMomentEstimator
from repro.applications.reservoir import ApproximateReservoir

__all__ = [
    "FrequencyMomentEstimator",
    "ApproximateReservoir",
    "FenwickTree",
    "InversionCounter",
    "ApproxInversionCounter",
    "SpaceSaving",
    "ApproxSpaceSaving",
]
