"""Space cost model for counter state.

Two accounting conventions, per Remark 2.2 of the paper:

* ``AUTOMATON``: only the variables that change during execution count
  (e.g. ``X`` and ``Y`` for Algorithm 1; ``X`` for Morris).  Program
  constants such as ε or ∆ live in the transition function of the automaton
  and cost nothing.
* ``WORD_RAM``: stored parameter *state* also counts — for Algorithm 1 the
  exponent ``t`` of the sampling rate ``α = 2**-t`` is genuinely mutable
  state and costs ``O(log t)`` bits.  Immutable inputs (ε as a rational,
  ∆ with δ = 2**-∆) are still excluded, as the paper prescribes: they are
  inputs, not state.

The difference between the two conventions is ``O(log log (N ε³))`` bits
and never changes any asymptotic conclusion; experiments report the
convention they use.
"""

from __future__ import annotations

import enum

from repro.errors import ParameterError

__all__ = ["SpaceModel", "uint_bits"]


class SpaceModel(enum.Enum):
    """Which fields count toward a counter's reported state size."""

    #: Count only execution-mutable variables (X, Y, ...).
    AUTOMATON = "automaton"
    #: Additionally count mutable parameter exponents (t with α = 2**-t).
    WORD_RAM = "word_ram"


def uint_bits(value: int) -> int:
    """Bits needed to store the non-negative integer ``value``.

    Zero occupies one bit (a register must exist to be read).  This is the
    standard ``max(1, ceil(log2(value + 1)))``.
    """
    if value < 0:
        raise ParameterError(f"value must be non-negative, got {value}")
    return max(1, value.bit_length())


def uint_capacity_bits(max_value: int) -> int:
    """Bits of a fixed-width register able to hold any value in ``[0, max_value]``."""
    if max_value < 0:
        raise ParameterError(f"max_value must be non-negative, got {max_value}")
    return max(1, max_value.bit_length())


def fields_bits(*values: int) -> int:
    """Total bits of several independently-stored unsigned fields."""
    return sum(uint_bits(v) for v in values)
