"""Cross-trial space statistics.

Experiments E3/E4 run a counter many times and need the distribution of its
maximum space usage: Theorem 2.3 predicts a doubly-exponential tail
``P(M > S) < exp(-exp(C·S))``, so the histogram should be extremely
concentrated.  :class:`SpaceHistogram` aggregates per-trial maxima and
reports quantiles and tail mass above a threshold.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

from repro.errors import ParameterError

__all__ = ["SpaceHistogram", "SpaceSummary"]


@dataclass(frozen=True, slots=True)
class SpaceSummary:
    """Summary statistics of max-space over a set of trials."""

    trials: int
    min_bits: int
    max_bits: int
    mean_bits: float
    p50_bits: int
    p99_bits: int

    def __str__(self) -> str:
        return (
            f"trials={self.trials} min={self.min_bits}b "
            f"p50={self.p50_bits}b p99={self.p99_bits}b "
            f"max={self.max_bits}b mean={self.mean_bits:.2f}b"
        )


@dataclass(slots=True)
class SpaceHistogram:
    """Histogram of per-trial maximum state sizes (in bits)."""

    counts: Counter = field(default_factory=Counter)
    trials: int = 0

    def add(self, max_bits: int) -> None:
        """Record the maximum space of one completed trial."""
        if max_bits < 0:
            raise ParameterError(f"max_bits must be non-negative, got {max_bits}")
        self.counts[max_bits] += 1
        self.trials += 1

    def quantile(self, q: float) -> int:
        """Smallest bit value ``b`` with at least a ``q`` fraction of trials ``<= b``."""
        if not 0.0 <= q <= 1.0:
            raise ParameterError(f"quantile must be in [0, 1], got {q}")
        if self.trials == 0:
            raise ParameterError("no trials recorded")
        needed = math.ceil(q * self.trials)
        running = 0
        for bits in sorted(self.counts):
            running += self.counts[bits]
            if running >= needed:
                return bits
        return max(self.counts)

    def tail_fraction(self, threshold_bits: int) -> float:
        """Fraction of trials whose max space exceeded ``threshold_bits``."""
        if self.trials == 0:
            raise ParameterError("no trials recorded")
        above = sum(c for bits, c in self.counts.items() if bits > threshold_bits)
        return above / self.trials

    def summary(self) -> SpaceSummary:
        """Return summary statistics over all recorded trials."""
        if self.trials == 0:
            raise ParameterError("no trials recorded")
        total_bits = sum(bits * c for bits, c in self.counts.items())
        return SpaceSummary(
            trials=self.trials,
            min_bits=min(self.counts),
            max_bits=max(self.counts),
            mean_bits=total_bits / self.trials,
            p50_bits=self.quantile(0.5),
            p99_bits=self.quantile(0.99),
        )
