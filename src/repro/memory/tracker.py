"""Running maximum-space tracker.

Theorems 1.1 and 2.3 bound the *random variable* "bits of memory used";
what matters operationally is the maximum over the whole stream (a counter
that briefly needed 40 bits needed a 40-bit register).  Counters call
:meth:`SpaceTracker.observe` after every state change; experiments read
:attr:`SpaceTracker.max_bits`.
"""

from __future__ import annotations

from repro.errors import ParameterError

__all__ = ["SpaceTracker"]


class SpaceTracker:
    """Tracks the current and maximum state size of one counter."""

    __slots__ = ("current_bits", "max_bits", "observations")

    def __init__(self) -> None:
        self.current_bits = 0
        self.max_bits = 0
        #: Number of observations recorded (state changes, not increments).
        self.observations = 0

    def observe(self, bits: int) -> None:
        """Record that the counter's state currently occupies ``bits``."""
        if bits < 0:
            raise ParameterError(f"bits must be non-negative, got {bits}")
        self.current_bits = bits
        if bits > self.max_bits:
            self.max_bits = bits
        self.observations += 1

    def reset(self) -> None:
        """Forget all observations."""
        self.current_bits = 0
        self.max_bits = 0
        self.observations = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SpaceTracker(current={self.current_bits}, "
            f"max={self.max_bits}, n={self.observations})"
        )
