"""Bit-level space accounting.

The paper's subject is the number of bits of *program state* a counter must
maintain (Remark 2.2 distinguishes this from transient word-RAM registers
used while processing an update).  This package provides:

* :mod:`~repro.memory.model` — the cost model: how many bits an integer
  field occupies, and the two accounting conventions (automaton state only
  vs. word-RAM including stored parameter exponents).
* :mod:`~repro.memory.tracker` — a running tracker that counters call after
  every state change, so experiments can report the *maximum* space used
  over a stream (space is a random variable in Theorems 1.1 and 2.3).
* :mod:`~repro.memory.accounting` — cross-trial aggregation: histograms and
  quantiles of max-space over many runs.
"""

from repro.memory.model import SpaceModel, uint_bits
from repro.memory.tracker import SpaceTracker
from repro.memory.accounting import SpaceHistogram

__all__ = ["SpaceModel", "uint_bits", "SpaceTracker", "SpaceHistogram"]
