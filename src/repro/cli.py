"""Command-line interface: run any experiment from the shell.

Usage::

    python -m repro.cli figure1 --trials 1000
    python -m repro.cli appendix-a
    python -m repro.cli space --sweep delta
    python -m repro.cli floor
    python -m repro.cli lowerbound --t 4096
    python -m repro.cli merge --family morris
    python -m repro.cli tradeoff
    python -m repro.cli throughput
    python -m repro.cli cluster --nodes 4 --events 1000000 --kill 2@500000
    python -m repro.cli cluster --routing ring --grow 300000 \\
        --shrink 1@600000 --window-every 250000 --retain 3
    python -m repro.cli cluster --storage file --storage-dir /tmp/cluster \\
        --wal-segment 4096
    python -m repro.cli cluster --workers 4 --batch 64 --storage file \\
        --storage-dir /tmp/cluster --wal-fsync 8
    python -m repro.cli cluster --aggregation gossip --gossip-fanout 2 \\
        --gossip-every 25000
    python -m repro.cli cluster --aggregation gossip --membership \\
        --kill-dead 2@500000 --suspect-after 2 --membership-heal auto
    python -m repro.cli cluster --plan process --nodes 4 \\
        --events 1000000 --kill 2@500000
    python -m repro.cli cluster --aggregation gossip --serve-http 8080
    python -m repro.cli cluster serve up --dir /tmp/cluster --nodes 2
    python -m repro.cli cluster serve ps --dir /tmp/cluster
    python -m repro.cli cluster serve status --dir /tmp/cluster
    python -m repro.cli cluster serve query up --dir /tmp/cluster
    python -m repro.cli cluster serve query status --dir /tmp/cluster
    python -m repro.cli cluster serve query down --dir /tmp/cluster
    python -m repro.cli cluster serve down --dir /tmp/cluster
    python -m repro.cli count --algorithm nelson_yu --n 1000000

Every subcommand prints the same tables the benchmark suite writes to
``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.core.factory import make_counter
from repro.experiments.appendix_a import AppendixAConfig, run_appendix_a
from repro.experiments.config import ExperimentContext
from repro.experiments.figure1 import Figure1Config, run_figure1
from repro.experiments.flajolet_floor import FloorConfig, run_flajolet_floor
from repro.experiments.lower_bound_exp import (
    LowerBoundConfig,
    run_lower_bound,
    run_survival_threshold,
)
from repro.experiments.merge_exp import (
    MergeConfig,
    run_morris_merge,
    run_nelson_yu_merge,
    run_simplified_merge,
)
from repro.experiments.space_scaling import (
    DeltaSweepConfig,
    FailureCheckConfig,
    NSweepConfig,
    run_delta_sweep,
    run_failure_check,
    run_n_sweep,
)
from repro.experiments.throughput import ThroughputConfig, run_throughput
from repro.experiments.tradeoff import TradeoffConfig, run_tradeoff

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Nelson & Yu, 'Optimal bounds for approximate "
            "counting' — experiment runner"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=2020_10_06, help="experiment seed"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    figure1 = subparsers.add_parser(
        "figure1", help="E1: Figure 1 error CDFs at 17 bits"
    )
    figure1.add_argument("--trials", type=int, default=1000)
    figure1.add_argument("--bits", type=int, default=17)

    subparsers.add_parser(
        "appendix-a", help="E2: Morris+ tweak necessity (exact DP)"
    )

    space = subparsers.add_parser(
        "space", help="E3/E4: space and failure scaling"
    )
    space.add_argument(
        "--sweep",
        choices=("delta", "n", "failure"),
        default="delta",
        help="which sweep to run",
    )
    space.add_argument("--trials", type=int, default=20)

    subparsers.add_parser(
        "floor", help="E5: Morris(a=1) constant failure floor"
    )

    lowerbound = subparsers.add_parser(
        "lowerbound", help="E6: Theorem 3.1 derandomize-and-pump"
    )
    lowerbound.add_argument("--t", type=int, default=4096)

    merge = subparsers.add_parser("merge", help="E7: merge validation")
    merge.add_argument(
        "--family",
        choices=("morris", "simplified", "nelson-yu"),
        default="morris",
    )
    merge.add_argument("--trials", type=int, default=1500)

    tradeoff = subparsers.add_parser(
        "tradeoff", help="E8: accuracy vs bits"
    )
    tradeoff.add_argument("--trials", type=int, default=150)

    subparsers.add_parser("throughput", help="E9: update throughput")

    bank = subparsers.add_parser(
        "bank", help="E10: M-counter bank, delta << 1/M"
    )
    bank.add_argument("--counters", type=int, default=500)

    subparsers.add_parser(
        "randomness", help="E11: random-bit budgets"
    )

    ablation = subparsers.add_parser(
        "ablation", help="A1-A3: design-choice ablations"
    )
    ablation.add_argument(
        "--which",
        choices=("chernoff", "rounding", "transition"),
        default="transition",
    )
    ablation.add_argument("--trials", type=int, default=400)

    cluster = subparsers.add_parser(
        "cluster", help="simulate the distributed counting cluster"
    )
    cluster.add_argument("--nodes", type=int, default=4)
    cluster.add_argument("--events", type=int, default=200_000)
    cluster.add_argument("--keys", type=int, default=2000)
    cluster.add_argument("--exponent", type=float, default=1.1)
    cluster.add_argument(
        "--algorithm",
        choices=(
            "exact",
            "morris",
            "morris_plus",
            "simplified_ny",
            "nelson_yu",
        ),
        default="simplified_ny",
        help="mergeable counter preset for every node",
    )
    cluster.add_argument("--buffer", type=int, default=512)
    cluster.add_argument("--checkpoint-every", type=int, default=50_000)
    cluster.add_argument(
        "--hot-threshold",
        type=int,
        default=None,
        help="split keys across nodes once they reach this many events",
    )
    cluster.add_argument(
        "--kill",
        action="append",
        default=[],
        metavar="NODE@EVENT",
        help="crash NODE at stream position EVENT (repeatable)",
    )
    cluster.add_argument(
        "--routing",
        choices=("hash", "ring"),
        default="hash",
        help=(
            "placement strategy: salted stable hash (full reshuffle per "
            "resize) or consistent hash ring (minimal key movement)"
        ),
    )
    cluster.add_argument(
        "--ring-points",
        type=int,
        default=64,
        help="virtual nodes per physical node for --routing ring",
    )
    cluster.add_argument(
        "--grow",
        action="append",
        default=[],
        metavar="EVENT",
        type=int,
        help="add one ingest node at stream position EVENT (repeatable)",
    )
    cluster.add_argument(
        "--shrink",
        action="append",
        default=[],
        metavar="NODE@EVENT",
        help=(
            "drain and remove node NODE at stream position EVENT "
            "(repeatable)"
        ),
    )
    cluster.add_argument(
        "--window-every",
        type=int,
        default=None,
        metavar="EVENTS",
        help="tumbling retention: collapse a window every EVENTS events",
    )
    cluster.add_argument(
        "--retain",
        type=int,
        default=None,
        metavar="WINDOWS",
        help=(
            "retain only the last WINDOWS collapsed windows "
            "(default: keep all; requires --window-every)"
        ),
    )
    cluster.add_argument(
        "--storage",
        choices=("memory", "file"),
        default="memory",
        help=(
            "durability backend: in-process (memory) or persisted "
            "checkpoints + write-ahead log under --storage-dir (file)"
        ),
    )
    cluster.add_argument(
        "--storage-dir",
        default=None,
        metavar="DIR",
        help=(
            "cluster storage directory for --storage file; a finished "
            "run can be re-opened with repro.cluster.recover_cluster"
        ),
    )
    cluster.add_argument(
        "--wal-segment",
        type=int,
        default=None,
        metavar="EVENTS",
        help=(
            "roll write-ahead-log segments every EVENTS events; a "
            "filled segment forces a fence checkpoint, bounding the "
            "retained log even with --checkpoint-every 0"
        ),
    )
    cluster.add_argument(
        "--storage-overwrite",
        action="store_true",
        help=(
            "allow --storage file to discard a cluster already "
            "persisted in --storage-dir (refused by default)"
        ),
    )
    cluster.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "ingest worker threads; 1 (default) keeps the serial event "
            "loop, more shard delivery per owning node — results are "
            "bit-identical either way"
        ),
    )
    cluster.add_argument(
        "--batch",
        type=int,
        default=64,
        metavar="EVENTS",
        help="events per worker delivery batch (used with --workers > 1)",
    )
    cluster.add_argument(
        "--wal-fsync",
        type=int,
        default=None,
        metavar="EVENTS",
        help=(
            "group-commit cadence: fsync a node's write-ahead log every "
            "EVENTS appends (requires --storage file)"
        ),
    )
    from repro.cluster.pipeline import PLAN_NAMES

    cluster.add_argument(
        "--plan",
        choices=("auto", *PLAN_NAMES),
        default="auto",
        help=(
            "execution plan: the serial reference loop, thread-sharded "
            "delivery (parallel), or one OS process per node behind the "
            "checksummed wire protocol (process); auto (default) picks "
            "serial or parallel from --workers — results are "
            "bit-identical across plans"
        ),
    )

    cluster.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help=(
            "write the end-of-run telemetry snapshot to PATH: "
            "Prometheus text exposition when PATH ends in .prom, "
            "strict JSON otherwise"
        ),
    )
    cluster.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help=(
            "stream the structured lifecycle trace (event_delivered, "
            "checkpoint_fence, wal_fsync, migration, gossip_round, "
            "crash, recover, ...) to PATH as JSON lines"
        ),
    )
    cluster.add_argument(
        "--no-telemetry",
        action="store_true",
        help=(
            "disable the wall-clock telemetry layers (stage timers, "
            "duration histograms, traces); deterministic counters "
            "still run — results are bit-identical either way"
        ),
    )

    cluster.add_argument(
        "--aggregation",
        choices=("tree", "gossip"),
        default="tree",
        help=(
            "read path: central merge tree (tree) or per-node "
            "epoch-stamped digests exchanged in seeded push-pull "
            "rounds (gossip) — decentralized reads that converge to "
            "the exact central answer"
        ),
    )
    cluster.add_argument(
        "--gossip-fanout",
        type=int,
        default=1,
        metavar="PEERS",
        help="peers each node exchanges digests with per gossip round",
    )
    cluster.add_argument(
        "--gossip-every",
        type=int,
        default=None,
        metavar="EVENTS",
        help=(
            "run a gossip round every EVENTS delivered events "
            "(default with --aggregation gossip: events/8)"
        ),
    )
    cluster.add_argument(
        "--membership",
        action="store_true",
        help=(
            "self-healing membership on top of --aggregation gossip: "
            "nodes suspect peers whose digests go stale, confirm "
            "failures by quorum vote, and the cluster heals "
            "--kill-dead nodes on its own (lossless: same exact "
            "answer as a driver-healed run)"
        ),
    )
    cluster.add_argument(
        "--kill-dead",
        action="append",
        default=[],
        metavar="NODE@EVENT",
        help=(
            "crash NODE at EVENT and leave it down until the "
            "membership layer detects and heals it (repeatable; "
            "requires --membership)"
        ),
    )
    cluster.add_argument(
        "--suspect-after",
        type=int,
        default=2,
        metavar="ROUNDS",
        help=(
            "gossip rounds a node's digest entry may go without a "
            "refresh before peers suspect it (default 2)"
        ),
    )
    cluster.add_argument(
        "--membership-quorum",
        type=int,
        default=None,
        metavar="VOTES",
        help=(
            "suspicion votes needed to confirm a failure (default: "
            "every live node, the n-f bound that makes false "
            "positives impossible)"
        ),
    )
    cluster.add_argument(
        "--membership-heal",
        choices=("auto", "recover", "rebalance"),
        default="auto",
        help=(
            "what a confirmed failure triggers: replay the node's "
            "durable state (recover), migrate its keys to the "
            "survivors (rebalance), or recover iff the store holds "
            "any of its state (auto, the default)"
        ),
    )

    cluster.add_argument(
        "--serve-http",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "after the run, serve the finished cluster's counts over "
            "HTTP/SSE on 127.0.0.1:PORT until interrupted (0 picks a "
            "free port; endpoints in docs/serving.md)"
        ),
    )

    cluster_modes = cluster.add_subparsers(
        dest="cluster_command", required=False
    )
    serve = cluster_modes.add_parser(
        "serve",
        help=(
            "manage long-running worker daemons (one per node, Unix "
            "sockets under the storage dir)"
        ),
    )
    serve_modes = serve.add_subparsers(dest="serve_command", required=True)

    def _serve_dir(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--dir",
            required=True,
            metavar="DIR",
            help=(
                "cluster storage directory; the fleet lives under "
                "DIR/serve/"
            ),
        )

    serve_up = serve_modes.add_parser(
        "up", help="launch one worker daemon per node and wait for ready"
    )
    _serve_dir(serve_up)
    serve_up.add_argument("--nodes", type=int, default=4)
    serve_up.add_argument(
        "--algorithm",
        choices=(
            "exact",
            "morris",
            "morris_plus",
            "simplified_ny",
            "nelson_yu",
        ),
        default="simplified_ny",
        help="mergeable counter preset for every node",
    )
    serve_up.add_argument("--buffer", type=int, default=512)
    serve_up.add_argument(
        "--no-track-truth",
        action="store_true",
        help="skip the exact shadow counts in every worker",
    )
    serve_up.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how long to wait for every worker socket to come up",
    )
    serve_down = serve_modes.add_parser(
        "down",
        help=(
            "stop every worker (protocol shutdown, then SIGTERM, then "
            "SIGKILL) and forget the fleet"
        ),
    )
    _serve_dir(serve_down)
    serve_down.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="per-worker budget before escalating to signals",
    )
    serve_ps = serve_modes.add_parser(
        "ps", help="list launched workers and whether they are alive"
    )
    _serve_dir(serve_ps)
    serve_status = serve_modes.add_parser(
        "status", help="ping every worker over its socket"
    )
    _serve_dir(serve_status)
    serve_status.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="socket timeout per worker",
    )
    serve_query = serve_modes.add_parser(
        "query",
        help=(
            "manage the HTTP/SSE query daemon serving reads over the "
            "live worker fleet"
        ),
    )
    query_modes = serve_query.add_subparsers(
        dest="query_command", required=True
    )
    query_up = query_modes.add_parser(
        "up", help="launch the query daemon against the recorded fleet"
    )
    _serve_dir(query_up)
    query_up.add_argument(
        "--host", default="127.0.0.1", help="address to bind"
    )
    query_up.add_argument(
        "--port",
        type=int,
        default=0,
        metavar="PORT",
        help="TCP port to bind (0, the default, picks a free port)",
    )
    query_up.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how long to wait for the daemon to come up",
    )
    query_down = query_modes.add_parser(
        "down", help="stop the query daemon and forget its record"
    )
    _serve_dir(query_down)
    query_down.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="budget before escalating from SIGTERM to SIGKILL",
    )
    query_status = query_modes.add_parser(
        "status", help="probe the query daemon's /healthz"
    )
    _serve_dir(query_status)
    query_status.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="HTTP timeout for the probe",
    )

    count = subparsers.add_parser(
        "count", help="run one counter over N increments"
    )
    count.add_argument(
        "--algorithm",
        default="nelson_yu",
        help="algorithm_name from the factory registry",
    )
    count.add_argument("--n", type=int, default=1_000_000)
    count.add_argument("--epsilon", type=float, default=0.1)
    count.add_argument("--delta-exponent", type=int, default=20)
    count.add_argument("--a", type=float, default=None)

    return parser


def _run_cluster(args: argparse.Namespace) -> str:
    from repro.cluster import ClusterConfig, ClusterSimulation
    from repro.rng.bitstream import BitBudgetedRandom
    from repro.stream.workload import zipf_workload

    from repro.errors import ParameterError, StateError

    if args.serve_http is not None and not 0 <= args.serve_http <= 65535:
        raise SystemExit(
            f"--serve-http expects a port between 0 and 65535, "
            f"got {args.serve_http}"
        )
    try:
        config = ClusterConfig.from_args(args)
    except ParameterError as exc:
        raise SystemExit(str(exc))
    gossip_every = config.gossip_every
    events = zipf_workload(
        BitBudgetedRandom(args.seed),
        n_keys=args.keys,
        n_events=args.events,
        exponent=args.exponent,
    )
    from repro.obs import JsonlTraceSink, Telemetry

    if args.no_telemetry:
        telemetry = Telemetry.disabled()
    else:
        sink = (
            JsonlTraceSink(args.trace_out)
            if args.trace_out is not None
            else None
        )
        telemetry = Telemetry(sink=sink)
    try:
        simulation = ClusterSimulation(config, telemetry=telemetry)
    except StateError as exc:
        telemetry.close()
        raise SystemExit(f"cluster storage refused: {exc}")
    metrics_text = None
    try:
        result = simulation.run(events)
        if args.metrics_out is not None:
            if args.metrics_out.endswith(".prom"):
                metrics_text = simulation.render_prometheus() + "\n"
            else:
                metrics_text = json.dumps(
                    simulation.metrics_snapshot(),
                    sort_keys=True,
                    allow_nan=False,
                    indent=2,
                ) + "\n"
    except ParameterError as exc:
        raise SystemExit(f"cluster run failed: {exc}")
    finally:
        simulation.close()
        telemetry.close()
    if metrics_text is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(metrics_text)
    table = result.table()
    if args.aggregation == "gossip":
        table += (
            f"\ngossip aggregation: fanout {args.gossip_fanout}, "
            f"round every {gossip_every:,} events — every node's local "
            "view converged to the central answer"
        )
    if args.membership:
        table += (
            f"\nself-healing membership: suspect after "
            f"{args.suspect_after} stale rounds, "
            + (
                f"quorum {args.membership_quorum} votes"
                if args.membership_quorum is not None
                else "quorum every live node"
            )
            + f", heal mode {args.membership_heal}"
        )
    if args.plan == "process":
        table += (
            f"\nprocess plan: one worker process per node, "
            f"delivery batch {args.batch}"
        )
    elif args.workers > 1:
        table += (
            f"\nparallel ingest: {args.workers} workers, "
            f"delivery batch {args.batch}"
        )
    if args.storage == "file":
        table += (
            f"\npersisted to {args.storage_dir} — re-open with "
            "repro.cluster.recover_cluster()"
        )
    if args.metrics_out is not None:
        kind = (
            "Prometheus text"
            if args.metrics_out.endswith(".prom")
            else "strict JSON"
        )
        table += f"\ntelemetry snapshot ({kind}): {args.metrics_out}"
    if args.trace_out is not None:
        table += f"\nstructured trace (JSON lines): {args.trace_out}"
    if args.serve_http is None:
        return table
    return _serve_finished_run(args, simulation, table)


def _serve_finished_run(
    args: argparse.Namespace, simulation, table: str
) -> str:
    """``--serve-http``: expose the finished run over HTTP until told
    to stop.

    The table prints immediately, followed by a parseable
    ``serving: <url>`` line (with the actually-bound port — ``--serve-
    http 0`` picks a free one), so scripts can background the CLI and
    scrape the URL.  Serving only reads: the run's result is already
    computed and its fingerprint is what it would have been unserved.
    """
    import signal
    import time

    from repro.cluster.httpd import serve_http
    from repro.cluster.query import ClusterReader

    reader = ClusterReader.from_simulation(simulation)
    server = serve_http(
        reader,
        port=args.serve_http,
        metrics_render=simulation.render_prometheus,
    )
    print(table)
    print(
        f"serving: {server.url} (SIGINT or SIGTERM stops)", flush=True
    )

    def _stop(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _stop)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.close()
    return "serving stopped"


def _run_serve(args: argparse.Namespace) -> str:
    from repro.cluster import default_template
    from repro.cluster.serve import (
        fleet_down,
        fleet_ps,
        fleet_status,
        fleet_up,
    )
    from repro.errors import ReproError

    try:
        if args.serve_command == "query":
            return _run_serve_query(args)
        if args.serve_command == "up":
            workers = fleet_up(
                args.dir,
                n_nodes=args.nodes,
                template=default_template(args.algorithm),
                seed=args.seed,
                buffer_limit=args.buffer,
                track_truth=not args.no_track_truth,
                timeout=args.timeout,
            )
            lines = [
                f"node {record['node']}: pid {record['pid']} "
                f"listening on {record['socket']}"
                for record in workers
            ]
            lines.append(
                f"{len(workers)} workers up under {args.dir} "
                "(stop with 'cluster serve down')"
            )
        elif args.serve_command == "ps":
            lines = [
                f"node {row['node']}: {row['state']} "
                f"pid {row['pid']} socket {row['socket']}"
                for row in fleet_ps(args.dir)
            ]
        elif args.serve_command == "status":
            lines = []
            for row in fleet_status(args.dir, timeout=args.timeout):
                if row["state"] == "running":
                    lines.append(
                        f"node {row['node']}: running pid {row['pid']} "
                        f"keys {row['keys']} pending {row['pending']} "
                        f"ingested {row['events_ingested']}"
                    )
                else:
                    lines.append(
                        f"node {row['node']}: {row['state']} "
                        f"({row['error']})"
                    )
        else:
            lines = [
                f"node {row['node']}: {row['state']} (pid {row['pid']})"
                for row in fleet_down(args.dir, timeout=args.timeout)
            ]
    except ReproError as exc:
        raise SystemExit(f"cluster serve {args.serve_command}: {exc}")
    return "\n".join(lines)


def _run_serve_query(args: argparse.Namespace) -> str:
    from repro.cluster.serve import query_down, query_status, query_up

    if args.query_command == "up":
        record = query_up(
            args.dir,
            host=args.host,
            port=args.port,
            timeout=args.timeout,
        )
        return (
            f"query daemon: pid {record['pid']} serving "
            f"{record['url']} over the fleet under {args.dir} "
            "(stop with 'cluster serve query down')"
        )
    if args.query_command == "status":
        row = query_status(args.dir, timeout=args.timeout)
        if row["state"] == "running":
            replicas = ",".join(str(r) for r in row["replicas"])
            return (
                f"query daemon: running pid {row['pid']} at "
                f"{row['url']} replicas {replicas}"
            )
        detail = row.get("error", row["url"])
        return f"query daemon: {row['state']} ({detail})"
    row = query_down(args.dir, timeout=args.timeout)
    return f"query daemon: {row['state']} (pid {row['pid']})"


def _run_count(args: argparse.Namespace) -> str:
    params: dict = {"seed": args.seed}
    if args.algorithm in ("morris", "morris_plus"):
        from repro.core.params import morris_a_optimal

        params["a"] = (
            args.a
            if args.a is not None
            else morris_a_optimal(args.epsilon, 2.0 ** -args.delta_exponent)
        )
    elif args.algorithm == "nelson_yu":
        params["epsilon"] = args.epsilon
        params["delta_exponent"] = args.delta_exponent
    elif args.algorithm == "simplified_ny":
        params["resolution"] = 4096
    elif args.algorithm == "csuros":
        params["d"] = 12
    elif args.algorithm == "saturating":
        params["bits"] = 20
    counter = make_counter(args.algorithm, **params)
    counter.add(args.n)
    return (
        f"{args.algorithm}: N={args.n:,} estimate={counter.estimate():,.1f} "
        f"rel.err={100 * counter.relative_error():.4f}% "
        f"state={counter.state_bits()} bits "
        f"random_bits={counter.rng.bits_consumed:,}"
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    context = ExperimentContext(seed=args.seed)

    if args.command == "figure1":
        result = run_figure1(
            Figure1Config(trials=args.trials, bits=args.bits), context
        )
        print(result.plot())
        print()
        print(result.table())
        print(f"\nKS distance: {result.ks_distance():.4f}")
    elif args.command == "appendix-a":
        result = run_appendix_a(AppendixAConfig())
        print(result.table())
    elif args.command == "space":
        if args.sweep == "delta":
            result = run_delta_sweep(
                DeltaSweepConfig(trials=args.trials), context
            )
            print(result.table())
            ny, cheb = result.delta_slopes()
            print(f"\nslopes per doubling of log(1/delta): "
                  f"NelsonYu {ny:.2f}, Chebyshev {cheb:.2f}")
        elif args.sweep == "n":
            print(run_n_sweep(NSweepConfig(trials=args.trials), context).table())
        else:
            print(
                run_failure_check(
                    FailureCheckConfig(trials=max(500, args.trials)), context
                ).table()
            )
    elif args.command == "floor":
        print(run_flajolet_floor(FloorConfig()).table())
    elif args.command == "lowerbound":
        print(run_lower_bound(LowerBoundConfig(t_param=args.t)).table())
        print()
        print(run_survival_threshold().table())
    elif args.command == "merge":
        config = MergeConfig(trials=args.trials)
        if args.family == "morris":
            print(run_morris_merge(config, context=context).table())
        elif args.family == "simplified":
            print(run_simplified_merge(config, context=context).table())
        else:
            config = MergeConfig(
                n1=4000, n2=7000, trials=min(args.trials, 300)
            )
            print(run_nelson_yu_merge(config, context=context).table())
    elif args.command == "tradeoff":
        print(run_tradeoff(TradeoffConfig(trials=args.trials), context).table())
    elif args.command == "throughput":
        print(run_throughput(ThroughputConfig()).table())
    elif args.command == "bank":
        from repro.experiments.bank_exp import BankConfig, run_bank_experiment

        result = run_bank_experiment(
            BankConfig(n_counters=args.counters), context
        )
        print(result.table())
        print(f"\nexact counter: {result.exact_bits} bits")
    elif args.command == "randomness":
        from repro.experiments.randomness import (
            RandomnessConfig,
            run_randomness_budget,
        )

        print(run_randomness_budget(RandomnessConfig()).table())
    elif args.command == "ablation":
        from repro.experiments.ablations import (
            ChernoffAblationConfig,
            run_chernoff_ablation,
            run_rounding_ablation,
            run_transition_ablation,
        )

        if args.which == "chernoff":
            print(
                run_chernoff_ablation(
                    ChernoffAblationConfig(trials=args.trials), context
                ).table()
            )
        elif args.which == "rounding":
            print(
                run_rounding_ablation(
                    trials=args.trials, context=context
                ).table()
            )
        else:
            print(run_transition_ablation().table())
    elif args.command == "cluster":
        if getattr(args, "cluster_command", None) == "serve":
            print(_run_serve(args))
        else:
            print(_run_cluster(args))
    elif args.command == "count":
        print(_run_count(args))
    else:  # pragma: no cover - argparse enforces choices
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
