"""Many-counter analytics — the paper's motivating application (§1).

"An analytics system may maintain many such counters (for example, the
number of visits to each page on Wikipedia) ... if we are maintaining M
counters then it is natural to want δ ≪ 1/M so that each counter is
approximately correct with high probability."

:class:`~repro.analytics.counter_bank.CounterBank` is that system: a keyed
collection of approximate counters built from one counter template, each
with an independent derived random stream, plus exact shadow counts for
evaluation.  :class:`~repro.analytics.report.BankErrorReport` aggregates
per-key errors and total memory, which is what experiment E3's
"δ ≪ 1/M for free" story is measured with.
"""

from repro.analytics.counter_bank import CounterBank
from repro.analytics.report import BankErrorReport
from repro.analytics.sharding import ShardedCounter

__all__ = ["CounterBank", "BankErrorReport", "ShardedCounter"]
