"""Sharded counting with Remark 2.4 merging.

A :class:`ShardedCounter` models the distributed deployment the merge
remark exists for: ``n_shards`` independent counters absorb local traffic
(e.g. one per ingest node) and the aggregator merges them on demand.
Because the per-counter merge is distribution-exact, the merged view is
statistically identical to a single counter that saw the global stream —
nothing is lost in ε or δ by sharding.

``estimate()`` merges into a scratch clone so shards are never disturbed;
``collapse()`` performs the destructive end-of-window aggregation.
"""

from __future__ import annotations

from typing import Callable

from repro.core.base import ApproximateCounter
from repro.core.merge import merge_all
from repro.errors import ParameterError
from repro.memory.model import SpaceModel
from repro.rng.bitstream import BitBudgetedRandom

__all__ = ["ShardedCounter"]


class ShardedCounter:
    """One logical counter split across ``n_shards`` mergeable counters.

    Parameters
    ----------
    factory:
        Builds one shard's counter from a random source.  The counter
        type must support merging (e.g. ``mergeable=True`` NY counters,
        Morris, or the simplified counter).
    n_shards:
        Number of shards.
    seed:
        Root seed; shard streams are derived from it.
    """

    def __init__(
        self,
        factory: Callable[[BitBudgetedRandom], ApproximateCounter],
        n_shards: int,
        seed: int = 0,
    ) -> None:
        if n_shards < 1:
            raise ParameterError(f"n_shards must be >= 1, got {n_shards}")
        self._factory = factory
        self._root = BitBudgetedRandom(seed)
        self._window = 0
        self._shards = [
            factory(self._root.split(0x73686172, index))
            for index in range(n_shards)
        ]
        self._route_rng = self._root.split(0x726F757465)

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return len(self._shards)

    @property
    def shards(self) -> list[ApproximateCounter]:
        """The shard counters (live references)."""
        return list(self._shards)

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def increment(self, shard: int | None = None) -> None:
        """Record one event on ``shard`` (random shard when omitted)."""
        self._shard_for(shard).increment()

    def add(self, count: int, shard: int | None = None) -> None:
        """Record ``count`` events on ``shard`` (random when omitted)."""
        if count < 0:
            raise ParameterError(f"count must be non-negative, got {count}")
        self._shard_for(shard).add(count)

    def _shard_for(self, shard: int | None) -> ApproximateCounter:
        if shard is None:
            shard = self._route_rng.randint_below(len(self._shards))
        if not 0 <= shard < len(self._shards):
            raise ParameterError(
                f"shard {shard} out of range [0, {len(self._shards)})"
            )
        return self._shards[shard]

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    @property
    def n_increments(self) -> int:
        """Ground-truth events across all shards (bookkeeping)."""
        return sum(s.n_increments for s in self._shards)

    def estimate(self) -> float:
        """Global estimate via a non-destructive merge of all shards."""
        return merge_all(self._shards).estimate()

    def collapse(self) -> ApproximateCounter:
        """Merge all shards into one counter and return it.

        The shard counters are left intact (merging clones them), so the
        caller decides whether to :meth:`reset` or keep them.
        """
        return merge_all(self._shards)

    def reset(self) -> None:
        """Start a new counting window with fresh, empty shards.

        Every shard is rebuilt from a fresh split of the root seed keyed by
        the window index, so successive windows are deterministic yet use
        unrelated random streams — the end-of-window flow is
        ``archived = collapse(); reset()``.
        """
        self._window += 1
        self._shards = [
            self._factory(self._root.split(0x73686172, index, self._window))
            for index in range(len(self._shards))
        ]

    def total_state_bits(self, model: SpaceModel = SpaceModel.AUTOMATON) -> int:
        """Total state across shards (the price of sharding)."""
        return sum(s.state_bits(model) for s in self._shards)
