"""Aggregate error reporting for counter banks.

The §1 argument the analytics layer exists to measure: with M counters one
wants per-counter failure probability δ ≪ 1/M, and the paper's point is
that the new algorithm pays only ``log log(1/δ)`` for that.  The report
therefore surfaces exactly the quantities that argument is about: the
fraction of keys outside a (1±ε) band, worst-key error, and total memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.estimators import relative_error
from repro.errors import ParameterError

__all__ = ["KeyError_", "BankErrorReport"]


@dataclass(frozen=True, slots=True)
class KeyError_(object):
    """Truth vs estimate for one key.

    The trailing underscore avoids shadowing the builtin ``KeyError``.
    """

    key: str
    truth: int
    estimate: float

    @property
    def relative_error(self) -> float:
        """``|estimate - truth| / truth`` (0 for truth = estimate = 0)."""
        return relative_error(self.estimate, self.truth)


@dataclass(frozen=True, slots=True)
class BankErrorReport:
    """Error and memory summary across all keys of a bank."""

    n_keys: int
    total_events: int
    total_state_bits: int
    mean_relative_error: float
    rms_relative_error: float
    max_relative_error: float
    worst_key: str

    @classmethod
    def from_entries(
        cls, entries: Sequence[KeyError_], total_state_bits: int
    ) -> "BankErrorReport":
        """Aggregate per-key entries into a report."""
        if not entries:
            raise ParameterError("cannot report on an empty bank")
        errors = [(e.relative_error, e.key) for e in entries]
        worst_error, worst_key = max(errors)
        mean = math.fsum(err for err, _ in errors) / len(errors)
        rms = math.sqrt(
            math.fsum(err * err for err, _ in errors) / len(errors)
        )
        return cls(
            n_keys=len(entries),
            total_events=sum(e.truth for e in entries),
            total_state_bits=total_state_bits,
            mean_relative_error=mean,
            rms_relative_error=rms,
            max_relative_error=worst_error,
            worst_key=worst_key,
        )

    def fraction_within(
        self, entries: Sequence[KeyError_], epsilon: float
    ) -> float:
        """Fraction of keys whose estimate is within ``(1±ε)`` of truth."""
        if not entries:
            raise ParameterError("no entries given")
        within = sum(1 for e in entries if e.relative_error <= epsilon)
        return within / len(entries)

    def __str__(self) -> str:
        return (
            f"keys={self.n_keys} events={self.total_events} "
            f"memory={self.total_state_bits}b "
            f"err(mean={self.mean_relative_error:.4f}, "
            f"rms={self.rms_relative_error:.4f}, "
            f"max={self.max_relative_error:.4f} @ {self.worst_key})"
        )
