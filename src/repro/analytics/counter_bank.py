"""A bank of keyed approximate counters.

The bank instantiates one approximate counter per key, lazily, from a
*template factory*.  Each counter gets an independent random stream derived
from the bank seed and the key (via
:meth:`~repro.rng.bitstream.BitBudgetedRandom.split`), so the bank is fully
deterministic yet streams are unrelated across keys.

For evaluation the bank optionally keeps exact shadow counts (the "ground
truth" the analytics system itself would not have room for); shadow counts
are bookkeeping, never part of the reported memory.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.analytics.report import BankErrorReport, KeyError_
from repro.core.base import ApproximateCounter
from repro.errors import ParameterError
from repro.memory.model import SpaceModel
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import KeyedEvent

__all__ = ["CounterBank"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def _stable_hash(key: str) -> int:
    """64-bit FNV-1a over the key's UTF-8 bytes.

    Python's built-in ``hash`` is salted per process, which would make
    per-key random streams differ between runs; this one is stable.
    """
    h = _FNV_OFFSET
    for byte in key.encode("utf-8"):
        h = ((h ^ byte) * _FNV_PRIME) & ((1 << 64) - 1)
    return h


class CounterBank:
    """Keyed approximate counters built from a template factory.

    Parameters
    ----------
    factory:
        Callable receiving a per-key random source and returning a fresh
        counter, e.g.
        ``lambda rng: NelsonYuCounter(0.1, 20, rng=rng)``.
    seed:
        Bank seed; per-key streams derive from it.
    track_truth:
        Keep exact shadow counts for error reporting (default True).
    """

    def __init__(
        self,
        factory: Callable[[BitBudgetedRandom], ApproximateCounter],
        seed: int = 0,
        track_truth: bool = True,
    ) -> None:
        self._factory = factory
        self._root = BitBudgetedRandom(seed)
        self._track_truth = track_truth
        self._counters: dict[str, ApproximateCounter] = {}
        self._truth: dict[str, int] = {}

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def _counter_for(self, key: str) -> ApproximateCounter:
        counter = self._counters.get(key)
        if counter is None:
            key_rng = self._root.split(_stable_hash(key), len(key))
            counter = self._factory(key_rng)
            self._counters[key] = counter
        return counter

    def record(self, key: str, count: int = 1) -> None:
        """Record ``count`` events for ``key``."""
        if count < 0:
            raise ParameterError(f"count must be non-negative, got {count}")
        self._counter_for(key).add(count)
        if self._track_truth:
            self._truth[key] = self._truth.get(key, 0) + count

    def consume(self, events: Iterable[KeyedEvent]) -> int:
        """Ingest a keyed event stream; returns the number of events."""
        n = 0
        for event in events:
            self.record(event.key)
            n += 1
        return n

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._counters)

    def __contains__(self, key: str) -> bool:
        return key in self._counters

    def keys(self) -> Iterator[str]:
        """Iterate over tracked keys."""
        return iter(self._counters)

    def estimate(self, key: str) -> float:
        """Estimated count for ``key`` (0 for unseen keys)."""
        counter = self._counters.get(key)
        return counter.estimate() if counter is not None else 0.0

    def truth(self, key: str) -> int:
        """Exact count for ``key`` (requires ``track_truth=True``)."""
        if not self._track_truth:
            raise ParameterError("bank was built with track_truth=False")
        return self._truth.get(key, 0)

    def top_keys(self, k: int) -> list[tuple[str, float]]:
        """The ``k`` keys with the largest estimates, descending."""
        if k < 0:
            raise ParameterError(f"k must be non-negative, got {k}")
        ranked = sorted(
            ((key, c.estimate()) for key, c in self._counters.items()),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return ranked[:k]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def total_state_bits(
        self, model: SpaceModel = SpaceModel.AUTOMATON
    ) -> int:
        """Total approximate-counter memory across the bank, in bits."""
        return sum(c.state_bits(model) for c in self._counters.values())

    def total_exact_bits(self) -> int:
        """Memory an exact-counter bank would need for the same keys."""
        if not self._track_truth:
            raise ParameterError("bank was built with track_truth=False")
        return sum(max(1, v.bit_length()) for v in self._truth.values())

    def error_report(self) -> BankErrorReport:
        """Aggregate per-key error statistics (requires shadow counts)."""
        if not self._track_truth:
            raise ParameterError("bank was built with track_truth=False")
        entries = [
            KeyError_(
                key=key,
                truth=self._truth.get(key, 0),
                estimate=counter.estimate(),
            )
            for key, counter in self._counters.items()
        ]
        return BankErrorReport.from_entries(
            entries, total_state_bits=self.total_state_bits()
        )
