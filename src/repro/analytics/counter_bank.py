"""A bank of keyed approximate counters.

The bank instantiates one approximate counter per key, lazily, from a
*template factory*.  Each counter gets an independent random stream derived
from the bank seed and the key (via
:meth:`~repro.rng.bitstream.BitBudgetedRandom.split`), so the bank is fully
deterministic yet streams are unrelated across keys.

For evaluation the bank optionally keeps exact shadow counts (the "ground
truth" the analytics system itself would not have room for); shadow counts
are bookkeeping, never part of the reported memory.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator, Sequence

try:  # numpy accelerates batch coalescing when present; never required
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

from repro.analytics.report import BankErrorReport, KeyError_
from repro.core.base import ApproximateCounter
from repro.errors import ParameterError
from repro.memory.model import SpaceModel
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.workload import KeyedEvent

__all__ = ["CounterBank", "stable_key_hash"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def stable_key_hash(key: str) -> int:
    """64-bit FNV-1a over the key's UTF-8 bytes.

    Python's built-in ``hash`` is salted per process, which would make
    per-key random streams (and cluster key routing) differ between runs;
    this one is stable.
    """
    h = _FNV_OFFSET
    for byte in key.encode("utf-8"):
        h = ((h ^ byte) * _FNV_PRIME) & ((1 << 64) - 1)
    return h


class CounterBank:
    """Keyed approximate counters built from a template factory.

    Parameters
    ----------
    factory:
        Callable receiving a per-key random source and returning a fresh
        counter, e.g.
        ``lambda rng: NelsonYuCounter(0.1, 20, rng=rng)``.
    seed:
        Bank seed; per-key streams derive from it.
    track_truth:
        Keep exact shadow counts for error reporting (default True).
    """

    def __init__(
        self,
        factory: Callable[[BitBudgetedRandom], ApproximateCounter],
        seed: int = 0,
        track_truth: bool = True,
    ) -> None:
        self._factory = factory
        self._root = BitBudgetedRandom(seed)
        self._track_truth = track_truth
        self._counters: dict[str, ApproximateCounter] = {}
        self._truth: dict[str, int] = {}

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def _counter_for(self, key: str) -> ApproximateCounter:
        counter = self._counters.get(key)
        if counter is None:
            key_rng = self._root.split(stable_key_hash(key), len(key))
            counter = self._factory(key_rng)
            self._counters[key] = counter
        return counter

    def record(self, key: str, count: int = 1) -> None:
        """Record ``count`` events for ``key``.

        A zero count is a no-op: it does not materialize a counter, so
        no-op events never inflate key counts or state-bit accounting
        (use :meth:`materialize` to create a counter at count 0).
        """
        if count < 0:
            raise ParameterError(f"count must be non-negative, got {count}")
        if count == 0:
            return
        self._counter_for(key).add(count)
        if self._track_truth:
            self._truth[key] = self._truth.get(key, 0) + count

    def record_per_unit(self, key: str, count: int = 1) -> None:
        """Like :meth:`record` but through the per-unit reference path.

        Every unit pays its own coin flip(s)
        (:meth:`~repro.core.base.ApproximateCounter.add_per_unit`) — the
        arm benchmarks compare skip-ahead ingestion against.  Not a
        production path.
        """
        if count < 0:
            raise ParameterError(f"count must be non-negative, got {count}")
        if count == 0:
            return
        self._counter_for(key).add_per_unit(count)
        if self._track_truth:
            self._truth[key] = self._truth.get(key, 0) + count

    def consume(self, events: Iterable[KeyedEvent]) -> int:
        """Ingest a keyed event stream; returns the increments applied.

        Each event contributes ``event.count`` increments (1 for plain
        events), so coalesced/batched streams are ingested faithfully.
        """
        n = 0
        for event in events:
            self.record(event.key, event.count)
            n += event.count
        return n

    def consume_counts(
        self, items: Iterable[tuple[str, int]], per_unit: bool = False
    ) -> int:
        """Apply coalesced ``(key, count)`` pairs in one flattened pass.

        Bit-identical to calling :meth:`record` once per pair in the
        given order — this is the hot path a node's coalescing buffer
        flushes through, with the per-pair method dispatch and truth
        bookkeeping hoisted out of the loop.  Returns the increments
        applied.  ``per_unit=True`` routes through the per-unit
        reference arm instead (benchmarks only).
        """
        counters = self._counters
        counter_for = self._counter_for
        truth = self._truth if self._track_truth else None
        truth_get = truth.get if truth is not None else None
        total = 0
        for key, count in items:
            if count < 0:
                raise ParameterError(
                    f"count must be non-negative, got {count}"
                )
            if count == 0:
                continue
            counter = counters.get(key)
            if counter is None:
                counter = counter_for(key)
            if per_unit:
                counter.add_per_unit(count)
            else:
                counter.add(count)
            if truth is not None:
                truth[key] = truth_get(key, 0) + count
            total += count
        return total

    def consume_batch(
        self, keys: Sequence[str], counts: Sequence[int]
    ) -> int:
        """Coalesce a bulk batch of per-key counts, then ingest it.

        The batch is aggregated per key first (numpy-vectorized when
        numpy is installed and the batch is large; a plain dict pass
        otherwise) and applied in sorted-key order — exactly what a
        coalescing write buffer holding the same batch would flush, so
        the result is bit-identical to
        ``consume_counts(sorted(aggregated.items()))``.  Returns the
        increments applied.
        """
        if len(keys) != len(counts):
            raise ParameterError(
                f"keys and counts must align: {len(keys)} != {len(counts)}"
            )
        if not keys:
            return 0
        if _np is not None and len(keys) >= 64:
            key_array = _np.asarray(keys, dtype=object)
            count_array = _np.asarray(counts, dtype=_np.int64)
            if count_array.min() < 0:
                raise ParameterError(
                    f"count must be non-negative, got {count_array.min()}"
                )
            unique, inverse = _np.unique(key_array, return_inverse=True)
            summed = _np.bincount(
                inverse, weights=count_array, minlength=len(unique)
            ).astype(_np.int64)
            # np.unique returns keys sorted, matching the flush order.
            return self.consume_counts(
                zip(unique.tolist(), summed.tolist())
            )
        aggregated: dict[str, int] = {}
        for key, count in zip(keys, counts):
            aggregated[key] = aggregated.get(key, 0) + count
        return self.consume_counts(sorted(aggregated.items()))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def seed(self) -> int:
        """The bank seed (per-key streams derive from it)."""
        return self._root.seed

    @property
    def tracks_truth(self) -> bool:
        """Whether exact shadow counts are kept."""
        return self._track_truth

    def __len__(self) -> int:
        return len(self._counters)

    def __contains__(self, key: str) -> bool:
        return key in self._counters

    def keys(self) -> Iterator[str]:
        """Iterate over tracked keys."""
        return iter(self._counters)

    def items(self) -> Iterator[tuple[str, ApproximateCounter]]:
        """Iterate over ``(key, counter)`` pairs (live references)."""
        return iter(self._counters.items())

    def counter(self, key: str) -> ApproximateCounter | None:
        """The live counter for ``key``, or ``None`` if unseen."""
        return self._counters.get(key)

    def remove(self, key: str) -> tuple[ApproximateCounter, int | None] | None:
        """Evict ``key`` from the bank, returning its state for transfer.

        Returns ``(counter, truth)`` — the live counter plus its exact
        shadow count (``None`` when truth is untracked) — or ``None`` if
        the key was never materialized.  The cluster's rebalancer drains
        migrating keys through this so a key's state lives on exactly one
        owner at a time.

        >>> from repro.core.factory import make_counter
        >>> bank = CounterBank(lambda rng: make_counter("exact", rng=rng))
        >>> bank.record("k", 3)
        >>> counter, truth = bank.remove("k")
        >>> (counter.estimate(), truth, "k" in bank)
        (3.0, 3, False)
        >>> bank.remove("never-seen") is None
        True
        """
        counter = self._counters.pop(key, None)
        if counter is None:
            return None
        truth = self._truth.pop(key, 0) if self._track_truth else None
        return counter, truth

    def materialize(self, key: str) -> ApproximateCounter:
        """The counter for ``key``, creating it (at count 0) if unseen.

        The created counter gets the same derived random stream it would
        have received from :meth:`record`, so materializing a key before
        restoring a snapshot onto it (checkpoint recovery) reproduces the
        bank a straight run would have built.
        """
        return self._counter_for(key)

    def estimate(self, key: str) -> float:
        """Estimated count for ``key`` (0 for unseen keys)."""
        counter = self._counters.get(key)
        return counter.estimate() if counter is not None else 0.0

    def truth(self, key: str) -> int:
        """Exact count for ``key`` (requires ``track_truth=True``)."""
        if not self._track_truth:
            raise ParameterError("bank was built with track_truth=False")
        return self._truth.get(key, 0)

    def set_truth(self, key: str, count: int) -> None:
        """Install an exact shadow count (checkpoint restore only).

        Regular ingestion must go through :meth:`record`; this exists so a
        restored bank carries the shadow counts its checkpoint recorded.
        """
        if not self._track_truth:
            raise ParameterError("bank was built with track_truth=False")
        if count < 0:
            raise ParameterError(f"count must be non-negative, got {count}")
        self._truth[key] = count

    def top_keys(self, k: int) -> list[tuple[str, float]]:
        """The ``k`` keys with the largest estimates, descending.

        ``heapq`` keeps this O(n log k), so top-k over millions of keys
        does not pay for a full sort.
        """
        if k < 0:
            raise ParameterError(f"k must be non-negative, got {k}")
        return heapq.nsmallest(
            k,
            ((key, c.estimate()) for key, c in self._counters.items()),
            key=lambda pair: (-pair[1], pair[0]),
        )

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def total_state_bits(
        self, model: SpaceModel = SpaceModel.AUTOMATON
    ) -> int:
        """Total approximate-counter memory across the bank, in bits."""
        return sum(c.state_bits(model) for c in self._counters.values())

    def total_exact_bits(self) -> int:
        """Memory an exact-counter bank would need for the same keys."""
        if not self._track_truth:
            raise ParameterError("bank was built with track_truth=False")
        return sum(max(1, v.bit_length()) for v in self._truth.values())

    def error_report(self) -> BankErrorReport:
        """Aggregate per-key error statistics (requires shadow counts)."""
        if not self._track_truth:
            raise ParameterError("bank was built with track_truth=False")
        entries = [
            KeyError_(
                key=key,
                truth=self._truth.get(key, 0),
                estimate=counter.estimate(),
            )
            for key, counter in self._counters.items()
        ]
        return BankErrorReport.from_entries(
            entries, total_state_bits=self.total_state_bits()
        )
