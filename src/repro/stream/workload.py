"""Keyed workload generators for the many-counter analytics system.

The paper's practical motivation (§1) is an analytics system maintaining
one approximate counter per key — "the number of visits to each page on
Wikipedia".  These generators produce keyed event streams with the shapes
such systems see:

* :func:`zipf_workload` — heavy-tailed popularity (the realistic case; a
  few pages get most of the traffic, a long tail gets single digits).
* :func:`uniform_workload` — every key equally likely (stress for the
  "δ must shrink with the number of counters" argument of §1).
* :func:`burst_workload` — one key suddenly hot (tests that counters track
  rapid growth).
* :func:`weighted_zipf_workload` — Zipf popularity with *weighted* events
  (``count > 1``), the shape of a pre-aggregated replication feed; the
  heavy-count stream the skip-ahead ingest path is measured on.

Events are generated lazily; a workload is an iterator of
:class:`KeyedEvent` so banks of millions of events stream in O(1) memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom

__all__ = [
    "KeyedEvent",
    "zipf_workload",
    "uniform_workload",
    "burst_workload",
    "weighted_zipf_workload",
]


@dataclass(frozen=True, slots=True)
class KeyedEvent:
    """``count`` increments for one key (``count=1`` is a plain event).

    Weighted events let pre-aggregated streams — an upstream buffer that
    coalesced per-key increments, or a batched replication feed — be
    expressed without expanding back into unit increments.
    """

    key: str
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ParameterError(
                f"event count must be non-negative, got {self.count}"
            )


def _key_name(index: int) -> str:
    return f"page-{index:06d}"


def zipf_workload(
    rng: BitBudgetedRandom,
    n_keys: int,
    n_events: int,
    exponent: float = 1.1,
) -> Iterator[KeyedEvent]:
    """Zipf(``exponent``) popularity over ``n_keys`` keys.

    Sampling is by inverse CDF on the precomputed normalized weights,
    which keeps the generator exact (no rejection) and deterministic.
    """
    if n_keys < 1:
        raise ParameterError(f"n_keys must be >= 1, got {n_keys}")
    if n_events < 0:
        raise ParameterError(f"n_events must be >= 0, got {n_events}")
    if exponent <= 0.0:
        raise ParameterError(f"exponent must be positive, got {exponent}")
    weights = [1.0 / (rank ** exponent) for rank in range(1, n_keys + 1)]
    total = math.fsum(weights)
    cdf: list[float] = []
    running = 0.0
    for w in weights:
        running += w / total
        cdf.append(running)
    cdf[-1] = 1.0
    for _ in range(n_events):
        u = rng.uniform53()
        # Binary search the CDF.
        lo, hi = 0, n_keys - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if u < cdf[mid]:
                hi = mid
            else:
                lo = mid + 1
        yield KeyedEvent(_key_name(lo))


def weighted_zipf_workload(
    rng: BitBudgetedRandom,
    n_keys: int,
    n_events: int,
    exponent: float = 1.1,
    mean_count: int = 64,
) -> Iterator[KeyedEvent]:
    """Zipf popularity with weighted events: a pre-aggregated feed.

    Each event carries ``count`` increments drawn uniformly from
    ``[1, 2*mean_count - 1]`` (so the expected weight is ``mean_count``),
    modelling an upstream buffer or replication feed that already
    coalesced per-key increments.  Key popularity and weights come from
    independent :meth:`~repro.rng.bitstream.BitBudgetedRandom.split`
    streams of ``rng``, so the key sequence at a given seed matches
    :func:`zipf_workload` event for event.

    This is the heavy-count workload the throughput bench's skip-ahead
    arm is measured on: per-unit ingestion pays ``count`` coin flips per
    event, skip-ahead pays O(1) expected draws.
    """
    if mean_count < 1:
        raise ParameterError(
            f"mean_count must be >= 1, got {mean_count}"
        )
    count_rng = rng.split(0x77656967, mean_count)  # "weig"
    span = 2 * mean_count - 1
    for event in zipf_workload(rng, n_keys, n_events, exponent):
        yield KeyedEvent(event.key, 1 + count_rng.randint_below(span))


def uniform_workload(
    rng: BitBudgetedRandom, n_keys: int, n_events: int
) -> Iterator[KeyedEvent]:
    """Every key equally likely."""
    if n_keys < 1:
        raise ParameterError(f"n_keys must be >= 1, got {n_keys}")
    if n_events < 0:
        raise ParameterError(f"n_events must be >= 0, got {n_events}")
    for _ in range(n_events):
        yield KeyedEvent(_key_name(rng.randint_below(n_keys)))


def burst_workload(
    rng: BitBudgetedRandom,
    n_keys: int,
    n_events: int,
    hot_key_index: int = 0,
    hot_fraction: float = 0.5,
) -> Iterator[KeyedEvent]:
    """One hot key receiving a ``hot_fraction`` share, rest uniform."""
    if n_keys < 1:
        raise ParameterError(f"n_keys must be >= 1, got {n_keys}")
    if not 0 <= hot_key_index < n_keys:
        raise ParameterError(
            f"hot_key_index {hot_key_index} out of range for {n_keys} keys"
        )
    if not 0.0 <= hot_fraction <= 1.0:
        raise ParameterError(
            f"hot_fraction must be in [0, 1], got {hot_fraction}"
        )
    for _ in range(n_events):
        if rng.bernoulli(hot_fraction):
            yield KeyedEvent(_key_name(hot_key_index))
        else:
            yield KeyedEvent(_key_name(rng.randint_below(n_keys)))
