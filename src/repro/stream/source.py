"""Increment-stream sources.

A *stream source* decides how many increments a counter processes in one
trial and where the counter is queried.  The single entry point is
:meth:`StreamSource.plan`, which returns the sorted list of query
checkpoints (cumulative increment counts); the last checkpoint is the
stream length.  Sources are deterministic given the trial's random source,
so both algorithms in a comparison can be run on identical stream lengths
(as the Figure 1 experiment requires).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom

__all__ = [
    "StreamSource",
    "FixedLengthStream",
    "UniformLengthStream",
    "TraceStream",
]


class StreamSource(abc.ABC):
    """Describes the increment stream of one trial."""

    @abc.abstractmethod
    def plan(self, rng: BitBudgetedRandom) -> list[int]:
        """Sorted checkpoints at which the counter is queried.

        The last checkpoint is the total stream length.  Implementations
        that randomize must draw from ``rng`` only, so a trial is fully
        determined by its random source.
        """


@dataclass(frozen=True, slots=True)
class FixedLengthStream(StreamSource):
    """Exactly ``n`` increments, queried once at the end."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ParameterError(f"n must be non-negative, got {self.n}")

    def plan(self, rng: BitBudgetedRandom) -> list[int]:
        return [self.n]


@dataclass(frozen=True, slots=True)
class UniformLengthStream(StreamSource):
    """N drawn uniformly from ``[lo, hi]`` — the Figure 1 workload.

    The paper picks "a uniformly random integer N ∈ [500000, 999999]".
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo < 0 or self.hi < self.lo:
            raise ParameterError(f"invalid range [{self.lo}, {self.hi}]")

    def plan(self, rng: BitBudgetedRandom) -> list[int]:
        return [rng.randint(self.lo, self.hi)]


@dataclass(frozen=True, slots=True)
class TraceStream(StreamSource):
    """An explicit list of query checkpoints (cumulative increment counts).

    Used by trajectory experiments that watch an estimate evolve: the
    stream length is the last checkpoint.
    """

    points: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ParameterError("trace needs at least one checkpoint")
        previous = -1
        for p in self.points:
            if p <= previous:
                raise ParameterError(
                    f"checkpoints must be strictly increasing, got {self.points}"
                )
            previous = p

    @classmethod
    def geometric_grid(
        cls, n_max: int, points_per_decade: int = 4
    ) -> "TraceStream":
        """Log-spaced checkpoints from 1 to ``n_max``."""
        if n_max < 1:
            raise ParameterError(f"n_max must be >= 1, got {n_max}")
        points: list[int] = []
        value = 1.0
        ratio = 10.0 ** (1.0 / points_per_decade)
        while value < n_max:
            point = round(value)
            if not points or point > points[-1]:
                points.append(point)
            value *= ratio
        if not points or points[-1] != n_max:
            points.append(n_max)
        return cls(tuple(points))

    def plan(self, rng: BitBudgetedRandom) -> list[int]:
        return list(self.points)
