"""Plain-text persistence for increment traces.

Experiments sometimes need to replay exactly the same stream plan (the
checkpoint lists of :class:`~repro.stream.source.TraceStream`) across
processes or library versions.  The format is deliberately trivial — one
integer per line, ``#`` comments allowed — so traces are diffable and can
be produced by external tools.
"""

from __future__ import annotations

import pathlib
from typing import Iterable

from repro.errors import StateError
from repro.stream.source import TraceStream

__all__ = ["write_trace", "read_trace", "load_trace_stream"]


def write_trace(
    path: str | pathlib.Path,
    checkpoints: Iterable[int],
    comment: str | None = None,
) -> None:
    """Write checkpoints to ``path``, one per line."""
    lines: list[str] = []
    if comment is not None:
        for comment_line in comment.splitlines():
            lines.append(f"# {comment_line}")
    for point in checkpoints:
        lines.append(str(int(point)))
    pathlib.Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_trace(path: str | pathlib.Path) -> list[int]:
    """Read a checkpoint list; raises :class:`StateError` on bad content."""
    try:
        text = pathlib.Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise StateError(f"cannot read trace {path}: {exc}") from exc
    points: list[int] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            points.append(int(line))
        except ValueError as exc:
            raise StateError(
                f"{path}:{line_number}: not an integer: {line!r}"
            ) from exc
    if not points:
        raise StateError(f"trace {path} contains no checkpoints")
    return points


def load_trace_stream(path: str | pathlib.Path) -> TraceStream:
    """Read a trace file into a :class:`TraceStream`.

    Validation (strictly increasing positive checkpoints) is delegated to
    ``TraceStream``; its :class:`~repro.errors.ParameterError` is
    re-raised as :class:`StateError` with the file context.
    """
    points = read_trace(path)
    try:
        return TraceStream(tuple(points))
    except Exception as exc:
        raise StateError(f"trace {path} is not a valid plan: {exc}") from exc
