"""Streaming substrate: increment sources, workloads, and a runner.

Approximate counters consume pure increment streams; what varies between
experiments is *how many* increments each counter sees and *when* we look.
This package models that:

* :mod:`~repro.stream.source` — increment-stream descriptions: a fixed
  length, a random length (Figure 1 draws N uniformly from
  [500000, 999999]), or an explicit trace with query points.
* :mod:`~repro.stream.workload` — keyed workloads for the many-counter
  analytics system: Zipf-distributed page views, uniform traffic, bursts.
* :mod:`~repro.stream.runner` — drive a counter over a stream, recording
  estimate/space trajectories at checkpoints.
"""

from repro.stream.source import (
    FixedLengthStream,
    TraceStream,
    UniformLengthStream,
)
from repro.stream.runner import CheckpointRecord, RunResult, run_counter
from repro.stream.workload import (
    KeyedEvent,
    burst_workload,
    uniform_workload,
    zipf_workload,
)

__all__ = [
    "FixedLengthStream",
    "UniformLengthStream",
    "TraceStream",
    "run_counter",
    "RunResult",
    "CheckpointRecord",
    "KeyedEvent",
    "zipf_workload",
    "uniform_workload",
    "burst_workload",
]
