"""Drive a counter over a stream and record its trajectory.

The runner is the glue between a :class:`~repro.stream.source.StreamSource`
and an :class:`~repro.core.base.ApproximateCounter`: it plans the trial's
checkpoints, fast-forwards the counter between them with ``add``, and
records a :class:`CheckpointRecord` at each query point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import ApproximateCounter
from repro.core.estimators import relative_error
from repro.memory.model import SpaceModel
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.source import StreamSource

__all__ = ["CheckpointRecord", "RunResult", "run_counter"]


@dataclass(frozen=True, slots=True)
class CheckpointRecord:
    """The counter's answers at one query point."""

    n: int
    estimate: float
    relative_error: float
    state_bits: int


@dataclass(frozen=True, slots=True)
class RunResult:
    """Outcome of one trial.

    Attributes
    ----------
    checkpoints:
        One record per query point, in stream order.
    max_state_bits:
        Maximum state size observed anywhere in the run (not only at
        checkpoints) — the paper's space random variable.
    random_bits:
        Random bits the counter consumed during the run.
    """

    checkpoints: tuple[CheckpointRecord, ...]
    max_state_bits: int
    random_bits: int

    @property
    def final(self) -> CheckpointRecord:
        """The last checkpoint (stream end)."""
        return self.checkpoints[-1]


def run_counter(
    counter: ApproximateCounter,
    source: StreamSource,
    plan_rng: BitBudgetedRandom | None = None,
    space_model: SpaceModel = SpaceModel.AUTOMATON,
) -> RunResult:
    """Run ``counter`` over one trial of ``source`` and record checkpoints.

    Parameters
    ----------
    counter:
        A freshly-constructed counter (the runner does not reset it).
    source:
        Stream description.
    plan_rng:
        Random source for the *stream plan* (e.g. the random N of
        Figure 1).  Kept separate from the counter's own randomness so the
        same plan can be replayed against different algorithms; defaults
        to a split of the counter's source.
    """
    if plan_rng is None:
        plan_rng = counter.rng.split(0x706C616E)
    bits_before = counter.rng.bits_consumed
    records: list[CheckpointRecord] = []
    position = 0
    for checkpoint in source.plan(plan_rng):
        counter.add(checkpoint - position)
        position = checkpoint
        records.append(
            CheckpointRecord(
                n=position,
                estimate=counter.estimate(),
                relative_error=relative_error(counter.estimate(), position),
                state_bits=counter.state_bits(space_model),
            )
        )
    return RunResult(
        checkpoints=tuple(records),
        max_state_bits=counter.max_state_bits,
        random_bits=counter.rng.bits_consumed - bits_before,
    )
