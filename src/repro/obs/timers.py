"""Low-overhead per-stage timers for the delivery hot path.

The third telemetry pillar profiles where wall-clock goes on the
delivery path: ``route`` (coordinator picks the owner node) →
``deliver`` (WAL append) → ``bank_consume`` (counter-bank submit,
including auto-flush) → ``fsync`` (durability stalls inside the
file-backed WAL).

The design constraint is the parallel ingest plan: several worker
threads time their own stages concurrently, and a shared locked
accumulator would serialize exactly the path we are measuring.  So a
:class:`StageTimer` is **thread-confined** — a plain dict of
``stage -> [count, total_s, max_s]`` cells with no lock at all; the
:class:`~repro.obs.Telemetry` facade hands each thread its own timer
(via ``threading.local``) and merges them only at snapshot time, when
workers are quiescent.  One ``add`` is two dict operations and three
float ops — cheap enough to wrap single WAL appends.

Everything in here is wall clock, therefore volatile and *never*
persisted or fingerprinted: stage timings exist only in exported
snapshots.

>>> timer = StageTimer()
>>> timer.add("route", 0.25)
>>> timer.add("route", 0.75)
>>> timer.snapshot()["route"]["count"]
2
>>> timer.snapshot()["route"]["total_s"]
1.0
"""

from __future__ import annotations

from typing import Any

__all__ = ["StageTimer", "merge_stage_snapshots"]


class StageTimer:
    """Thread-confined accumulator of ``stage -> (count, total, max)``."""

    __slots__ = ("_stages",)

    def __init__(self) -> None:
        self._stages: dict[str, list[float]] = {}

    def add(self, stage: str, seconds: float) -> None:
        """Fold one timed section into the stage's cell."""
        cell = self._stages.get(stage)
        if cell is None:
            self._stages[stage] = [1, seconds, seconds]
        else:
            cell[0] += 1
            cell[1] += seconds
            if seconds > cell[2]:
                cell[2] = seconds

    def cell(self, stage: str) -> list[float]:
        """The stage's live ``[count, total_s, max_s]`` accumulator.

        Hot-loop escape hatch: per-event call sites (the serial
        delivery loop times three stages per event) resolve the cell
        once and fold sections in with three inline float ops instead
        of a method call per section — same data, same snapshot, no
        per-event name lookup.  The cell stays thread-confined with
        its timer.
        """
        cell = self._stages.get(stage)
        if cell is None:
            cell = self._stages[stage] = [0, 0.0, 0.0]
        return cell

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """JSON-safe ``{stage: {count, total_s, max_s}}``."""
        return {
            stage: {
                "count": int(cell[0]),
                "total_s": cell[1],
                "max_s": cell[2],
            }
            for stage, cell in sorted(self._stages.items())
        }


def merge_stage_snapshots(
    snapshots: list[dict[str, dict[str, Any]]],
) -> dict[str, dict[str, Any]]:
    """Combine per-thread stage snapshots into one aggregate.

    >>> a = {"route": {"count": 2, "total_s": 1.0, "max_s": 0.75}}
    >>> b = {"route": {"count": 1, "total_s": 0.5, "max_s": 0.5}}
    >>> merge_stage_snapshots([a, b])["route"]["count"]
    3
    """
    merged: dict[str, dict[str, Any]] = {}
    for snapshot in snapshots:
        for stage, cell in snapshot.items():
            into = merged.get(stage)
            if into is None:
                merged[stage] = dict(cell)
            else:
                into["count"] += cell["count"]
                into["total_s"] += cell["total_s"]
                if cell["max_s"] > into["max_s"]:
                    into["max_s"] = cell["max_s"]
    return dict(sorted(merged.items()))
