"""Cluster telemetry: metrics registry, trace log, profiling hooks.

``repro.obs`` is the observability substrate for the cluster layer
(:mod:`repro.cluster`).  One :class:`Telemetry` object travels with a
:class:`~repro.cluster.simulation.ClusterSimulation` and bundles the
three pillars:

1. a :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges,
   and windowed histograms that the simulation, pipeline, storage,
   router, and gossip layers publish into;
2. a :class:`~repro.obs.trace.TraceSink` — the structured,
   stream-position-stamped lifecycle trace log;
3. per-thread :class:`~repro.obs.timers.StageTimer` profiling of the
   delivery hot path (``route → deliver → bank_consume → fsync``).

**The inertness contract.**  Telemetry must never change what the
cluster computes.  It is engineered in two layers to make that hold by
construction:

* *Deterministic counters* are always on — they count decisions the
  simulation makes (events delivered, checkpoints taken, fsyncs
  issued), never influence them, draw no randomness, and are identical
  for the same ``(config, stream)`` whatever the execution plan.  The
  end-of-run statistics (``NodeStats``, the manifest bookkeeping) read
  *from* the registry, so these cannot be turned off.
* *Wall-clock layers* — stage timers, duration histograms, and trace
  emission — are gated by :attr:`Telemetry.enabled` (the CLI's
  ``--no-telemetry`` builds a disabled facade).  They only ever read
  the clock and write to telemetry-private state.

A property sweep pins the consequence: runs with telemetry disabled,
enabled, and file-sinked are bit-identical on ``GlobalView``
fingerprints, serially and in parallel.

>>> telemetry = Telemetry(sink=RingTraceSink(capacity=16))
>>> telemetry.registry.inc("crashes_total", node=2)
>>> telemetry.position = 41
>>> telemetry.trace("crash", node=2)
>>> telemetry.sink.records()
[{'type': 'crash', 'position': 41, 'node': 2}]
>>> disabled = Telemetry.disabled()
>>> disabled.trace_active
False
"""

from __future__ import annotations

import threading
from typing import Any

from repro.obs.registry import (
    DEFAULT_DURATION_BOUNDS,
    Histogram,
    MetricsRegistry,
    series_key,
)
from repro.obs.timers import StageTimer, merge_stage_snapshots
from repro.obs.trace import (
    JsonlTraceSink,
    NullTraceSink,
    RingTraceSink,
    TraceSink,
)

__all__ = [
    "DEFAULT_DURATION_BOUNDS",
    "Histogram",
    "JsonlTraceSink",
    "MetricsRegistry",
    "NullTraceSink",
    "RingTraceSink",
    "StageTimer",
    "Telemetry",
    "TraceSink",
    "merge_stage_snapshots",
    "series_key",
]


class Telemetry:
    """Registry + trace sink + stage timers behind one facade.

    ``enabled`` gates every wall-clock layer (timers, duration
    histograms, traces); the registry's deterministic counters are
    always live — see the module docstring for why.

    ``position`` is the coordinator-maintained stream position (events
    delivered so far); trace emitters stamp it into every record.
    Records emitted from worker threads (e.g. ``wal_fsync``) read the
    coordinator's latest stamp, which is approximate by design — the
    fsync physically happens while the coordinator is already routing
    ahead.
    """

    def __init__(
        self,
        enabled: bool = True,
        sink: TraceSink | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.enabled = bool(enabled)
        self.sink = sink if sink is not None else NullTraceSink()
        self.registry = (
            registry if registry is not None else MetricsRegistry()
        )
        self.position = 0
        self._timers: list[StageTimer] = []
        self._timers_lock = threading.Lock()
        self._local = threading.local()
        self._external_stages: list[dict[str, dict[str, Any]]] = []

    @classmethod
    def disabled(cls) -> "Telemetry":
        """A facade with every wall-clock layer off (the
        ``--no-telemetry`` configuration).  Counters still run."""
        return cls(enabled=False)

    # ------------------------------------------------------------------
    # trace log
    # ------------------------------------------------------------------
    @property
    def trace_active(self) -> bool:
        """Whether emitters should build trace records at all."""
        return self.enabled and self.sink.active

    def trace(
        self, kind: str, position: int | None = None, **fields: Any
    ) -> None:
        """Emit one lifecycle record (no-op unless
        :attr:`trace_active`)."""
        if not (self.enabled and self.sink.active):
            return
        record: dict[str, Any] = {
            "type": kind,
            "position": self.position if position is None else position,
        }
        record.update(fields)
        self.sink.emit(record)

    # ------------------------------------------------------------------
    # stage timers
    # ------------------------------------------------------------------
    def stage_timer(self) -> StageTimer:
        """This thread's private timer (created and registered on
        first use; merged at :meth:`stage_snapshot` time)."""
        timer = getattr(self._local, "timer", None)
        if timer is None:
            timer = StageTimer()
            with self._timers_lock:
                self._timers.append(timer)
            self._local.timer = timer
        return timer

    def absorb_stages(
        self, stages: dict[str, dict[str, Any]]
    ) -> None:
        """Fold in a stage snapshot produced outside this process.

        The process execution plan pulls each worker subprocess's
        :class:`StageTimer` snapshot over the wire (``metrics_pull``)
        and absorbs it here, so :meth:`stage_snapshot` covers the whole
        deployment exactly as it covers in-process worker threads.
        """
        if stages:
            with self._timers_lock:
                self._external_stages.append(dict(stages))

    def stage_snapshot(self) -> dict[str, dict[str, Any]]:
        """All threads' stage timings merged (plus any absorbed
        worker-process snapshots).  Call only when workers are
        quiescent (between runs / after ``run()`` returns)."""
        with self._timers_lock:
            snapshots = [timer.snapshot() for timer in self._timers]
            snapshots.extend(self._external_stages)
        return merge_stage_snapshots(snapshots)

    # ------------------------------------------------------------------
    # exporters
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Strict-JSON metrics document: the registry's three families
        plus the merged ``stages`` timings."""
        document = self.registry.snapshot()
        document["stages"] = self.stage_snapshot()
        return document

    def render_prometheus(self) -> str:
        """Prometheus text exposition: registry series plus the stage
        timings as ``stage_seconds_total`` / ``stage_events_total`` /
        ``stage_seconds_max`` gauges."""
        lines = [self.registry.render_prometheus()]
        stages = self.stage_snapshot()
        if stages:
            lines.append("# TYPE stage_events_total counter")
            for stage, cell in stages.items():
                lines.append(
                    'stage_events_total{stage="%s"} %s'
                    % (stage, cell["count"])
                )
            lines.append("# TYPE stage_seconds_total counter")
            for stage, cell in stages.items():
                lines.append(
                    'stage_seconds_total{stage="%s"} %s'
                    % (stage, cell["total_s"])
                )
            lines.append("# TYPE stage_seconds_max gauge")
            for stage, cell in stages.items():
                lines.append(
                    'stage_seconds_max{stage="%s"} %s'
                    % (stage, cell["max_s"])
                )
        return "\n".join(line for line in lines if line)

    def close(self) -> None:
        """Close the trace sink (idempotent)."""
        self.sink.close()
