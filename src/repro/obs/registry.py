"""Metrics primitives: counters, gauges, and windowed histograms.

The cluster's telemetry substrate is deliberately tiny: a
:class:`MetricsRegistry` holds three kinds of series, each identified by
a metric name plus a sorted label set (``node=3``, ``stage="route"``),
exactly the identity model Prometheus uses:

* **counters** — monotone integers (events delivered, checkpoints
  taken, fsyncs issued).  Counters are the *deterministic* half of
  telemetry: they count decisions the simulation makes, which are pure
  functions of ``(config, stream)``, so the same run produces the same
  counter values on every backend and execution plan.  They also
  round-trip through the cluster manifest (see
  :meth:`MetricsRegistry.export_counters`), so a counter survives
  :func:`~repro.cluster.simulation.recover_cluster` as monotone
  lifetime state rather than resetting to zero.
* **gauges** — point-in-time numbers (pending buffer sizes, traffic
  table occupancy, gossip staleness).  Volatile by design.
* **histograms** — fixed-bound bucket histograms with a bounded
  recent-value window (:class:`Histogram`), used for wall-clock
  durations (fsync stalls, checkpoint latency).  Everything in them is
  non-deterministic wall clock, which is why they are *not* persisted
  and never feed back into any decision.

Thread safety: every mutating entry point takes the registry lock, so
parallel-ingest workers may publish concurrently.  The hot delivery
path keeps out of here per event where it matters — see
:mod:`repro.obs.timers` for the lock-free per-thread accumulation the
profiling hooks use.

>>> registry = MetricsRegistry()
>>> registry.inc("events_delivered_total", 3, node=0)
>>> registry.inc("events_delivered_total", node=0)
>>> registry.counter("events_delivered_total", node=0)
4
>>> registry.set_gauge("traffic_table_size", 17)
>>> registry.snapshot()["counters"]
{'events_delivered_total{node=0}': 4}
"""

from __future__ import annotations

import bisect
import threading
from collections import deque
from typing import Any, Iterable, Mapping

from repro.errors import ParameterError

__all__ = [
    "DEFAULT_DURATION_BOUNDS",
    "Histogram",
    "MetricsRegistry",
    "series_key",
]

#: Default histogram bucket upper bounds (seconds): spans a fast
#: in-memory operation (~10 µs) to a pathological 1 s stall.
DEFAULT_DURATION_BOUNDS: tuple[float, ...] = (
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    1e-1,
    1.0,
)

_LabelKey = tuple[tuple[str, Any], ...]


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    if not labels:  # the common unlabeled series, on hot paths
        return ()
    return tuple(sorted(labels.items()))


def series_key(name: str, labels: Mapping[str, Any] | None = None) -> str:
    """Flat string identity of one series, stable across processes.

    >>> series_key("wal_fsyncs_total", {"node": 2})
    'wal_fsyncs_total{node=2}'
    >>> series_key("gossip_rounds_total")
    'gossip_rounds_total'
    """
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Histogram:
    """Fixed-bound buckets plus a bounded window of recent observations.

    ``bounds`` are ascending upper bounds; one implicit overflow bucket
    (``+Inf``) catches everything past the last bound.  The recent
    window (``window`` newest raw values) is what makes the histogram
    "windowed": exporters can show the latest behavior without keeping
    the full observation stream.

    >>> histogram = Histogram(bounds=(0.1, 1.0), window=2)
    >>> for value in (0.05, 0.5, 5.0):
    ...     histogram.observe(value)
    >>> histogram.bucket_counts
    [1, 1, 1]
    >>> histogram.recent()
    [0.5, 5.0]
    >>> histogram.snapshot()["count"]
    3
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "max", "_recent")

    def __init__(
        self,
        bounds: Iterable[float] = DEFAULT_DURATION_BOUNDS,
        window: int = 64,
    ) -> None:
        self.bounds = tuple(float(bound) for bound in bounds)
        if not self.bounds:
            raise ParameterError("histogram needs at least one bucket bound")
        if any(
            later <= earlier
            for earlier, later in zip(self.bounds, self.bounds[1:])
        ):
            raise ParameterError(
                f"bucket bounds must be strictly ascending: {self.bounds}"
            )
        if window < 1:
            raise ParameterError(f"window must be >= 1, got {window}")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._recent: deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        """Record one observation into its bucket and the window."""
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        self._recent.append(value)

    def recent(self) -> list[float]:
        """The newest observations, oldest first (at most ``window``)."""
        return list(self._recent)

    def snapshot(self) -> dict[str, Any]:
        """Strict-JSON-safe summary; bucket bounds are stringified so
        the overflow bucket's ``+Inf`` stays valid strict JSON."""
        buckets = [
            [repr(bound), count]
            for bound, count in zip(self.bounds, self.bucket_counts)
        ]
        buckets.append(["+Inf", self.bucket_counts[-1]])
        return {
            "buckets": buckets,
            "count": self.count,
            "sum": self.total,
            "max": self.max,
        }


class MetricsRegistry:
    """Three series families behind one lock, with two exporters.

    See the module docstring for the counter/gauge/histogram split.
    :meth:`snapshot` renders everything as one strict-JSON document
    (flat :func:`series_key` keys); :meth:`render_prometheus` renders
    the classic text exposition format.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, _LabelKey], int] = {}
        self._gauges: dict[tuple[str, _LabelKey], float] = {}
        self._histograms: dict[tuple[str, _LabelKey], Histogram] = {}
        self._histogram_bounds: dict[str, tuple[float, ...]] = {}

    # ------------------------------------------------------------------
    # counters (deterministic, monotone, persisted)
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int = 1, **labels: Any) -> None:
        """Add ``amount`` (>= 0) to a counter series."""
        if amount < 0:
            raise ParameterError(
                f"counter {name!r} cannot decrease (amount={amount})"
            )
        key = (name, _label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + amount

    def counter(self, name: str, **labels: Any) -> int:
        """Current value of a counter series (0 if never incremented)."""
        key = (name, _label_key(labels))
        with self._lock:
            return self._counters.get(key, 0)

    def load_counter(self, name: str, value: int, **labels: Any) -> None:
        """Restore a persisted counter value, keeping monotonicity.

        Used when a recovered cluster re-seeds its registry from the
        manifest: the counter becomes ``max(current, value)``, so a
        restore can never move a counter backwards.
        """
        if value < 0:
            raise ParameterError(
                f"counter {name!r} cannot be negative (value={value})"
            )
        key = (name, _label_key(labels))
        with self._lock:
            self._counters[key] = max(self._counters.get(key, 0), int(value))

    def export_counters(self) -> list[list[Any]]:
        """Every counter as JSON-safe ``[name, labels, value]`` rows.

        The inverse of :meth:`import_counters`; sorted for stable
        manifests.

        >>> registry = MetricsRegistry()
        >>> registry.inc("node_checkpoints", 2, node=1)
        >>> registry.export_counters()
        [['node_checkpoints', {'node': 1}, 2]]
        """
        with self._lock:
            rows = [
                [name, dict(label_key), value]
                for (name, label_key), value in self._counters.items()
            ]
        rows.sort(key=lambda row: (row[0], sorted(row[1].items())))
        return rows

    def import_counters(self, rows: Iterable[Iterable[Any]]) -> None:
        """Re-seed counters from :meth:`export_counters` rows (floors)."""
        for name, labels, value in rows:
            self.load_counter(str(name), int(value), **dict(labels))

    # ------------------------------------------------------------------
    # gauges (point-in-time, volatile)
    # ------------------------------------------------------------------
    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a gauge series to ``value``."""
        key = (name, _label_key(labels))
        with self._lock:
            self._gauges[key] = value

    def gauge(self, name: str, **labels: Any) -> float | None:
        """Current value of a gauge series (``None`` if never set)."""
        key = (name, _label_key(labels))
        with self._lock:
            return self._gauges.get(key)

    def clear_gauges(self, name: str) -> None:
        """Drop every series of one gauge (before re-publishing a
        variable label set, e.g. the top-k hot keys)."""
        with self._lock:
            for key in [k for k in self._gauges if k[0] == name]:
                del self._gauges[key]

    # ------------------------------------------------------------------
    # histograms (wall-clock durations, volatile)
    # ------------------------------------------------------------------
    def declare_histogram(
        self, name: str, bounds: Iterable[float]
    ) -> None:
        """Fix the bucket bounds used when ``name`` is first observed."""
        self._histogram_bounds[name] = tuple(float(b) for b in bounds)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one observation into a histogram series."""
        key = (name, _label_key(labels))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = Histogram(
                    self._histogram_bounds.get(
                        name, DEFAULT_DURATION_BOUNDS
                    )
                )
                self._histograms[key] = histogram
            histogram.observe(value)

    def histogram(self, name: str, **labels: Any) -> Histogram | None:
        """A histogram series (``None`` if never observed)."""
        key = (name, _label_key(labels))
        with self._lock:
            return self._histograms.get(key)

    # ------------------------------------------------------------------
    # exporters
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """One strict-JSON document of everything, sorted series keys.

        ``{"counters": {...}, "gauges": {...}, "histograms": {...}}`` —
        plain ints/floats/strings only, so ``json.dumps(...,
        allow_nan=False)`` always succeeds and the benchmark artifact
        checker can validate the schema.
        """
        with self._lock:
            counters = {
                series_key(name, dict(label_key)): value
                for (name, label_key), value in self._counters.items()
            }
            gauges = {
                series_key(name, dict(label_key)): value
                for (name, label_key), value in self._gauges.items()
            }
            histograms = {
                series_key(name, dict(label_key)): histogram.snapshot()
                for (name, label_key), histogram in self._histograms.items()
            }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }

    def render_prometheus(self) -> str:
        """Classic Prometheus text exposition of the registry.

        >>> registry = MetricsRegistry()
        >>> registry.inc("wal_fsyncs_total", 3, node=0)
        >>> print(registry.render_prometheus())
        # TYPE wal_fsyncs_total counter
        wal_fsyncs_total{node="0"} 3
        """
        with self._lock:
            counters = sorted(
                (name, label_key, value)
                for (name, label_key), value in self._counters.items()
            )
            gauges = sorted(
                (name, label_key, value)
                for (name, label_key), value in self._gauges.items()
            )
            histograms = sorted(
                (name, label_key, histogram)
                for (name, label_key), histogram in self._histograms.items()
            )
        lines: list[str] = []
        typed: set[str] = set()

        def label_text(label_key: _LabelKey, extra: str = "") -> str:
            parts = [f'{key}="{value}"' for key, value in label_key]
            if extra:
                parts.append(extra)
            return "{" + ",".join(parts) + "}" if parts else ""

        def declare(name: str, kind: str) -> None:
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for name, label_key, value in counters:
            declare(name, "counter")
            lines.append(f"{name}{label_text(label_key)} {value}")
        for name, label_key, value in gauges:
            declare(name, "gauge")
            lines.append(f"{name}{label_text(label_key)} {value}")
        for name, label_key, histogram in histograms:
            declare(name, "histogram")
            cumulative = 0
            for bound, count in zip(
                histogram.bounds, histogram.bucket_counts
            ):
                cumulative += count
                bound_label = 'le="%r"' % (bound,)
                lines.append(
                    f"{name}_bucket{label_text(label_key, bound_label)}"
                    f" {cumulative}"
                )
            inf_label = 'le="+Inf"'
            lines.append(
                f"{name}_bucket{label_text(label_key, inf_label)}"
                f" {histogram.count}"
            )
            lines.append(
                f"{name}_sum{label_text(label_key)} {histogram.total}"
            )
            lines.append(
                f"{name}_count{label_text(label_key)} {histogram.count}"
            )
        return "\n".join(lines)
