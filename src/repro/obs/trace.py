"""Structured trace log: pluggable sinks for lifecycle records.

The second telemetry pillar is a *trace log*: an ordered sequence of
small dict records, each stamped with the stream position at which the
simulation emitted it, so a whole cluster run can be replayed as a
timeline.  The record vocabulary (``type`` field) mirrors the cluster
lifecycle:

``event_delivered`` · ``checkpoint_fence`` · ``wal_fsync`` ·
``migration`` · ``retention_collapse`` · ``gossip_round`` · ``crash``
· ``recover``

Sinks are deliberately dumb — they never inspect records beyond
serializing them:

* :class:`NullTraceSink` — the default; ``active`` is ``False`` so
  emitters skip building records entirely (zero hot-path cost).
* :class:`RingTraceSink` — a bounded in-memory ring buffer; the
  newest ``capacity`` records survive.  The test and debugging sink.
* :class:`JsonlTraceSink` — one strict-JSON object per line
  (sorted keys, ``allow_nan=False``), the ``cli cluster --trace-out``
  format.

Every sink is safe to call from parallel-ingest workers (records from
worker threads interleave at line granularity, never torn).

>>> sink = RingTraceSink(capacity=2)
>>> for position in range(3):
...     sink.emit({"type": "event_delivered", "position": position})
>>> [record["position"] for record in sink.records()]
[1, 2]
"""

from __future__ import annotations

import abc
import json
import threading
from collections import deque
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ParameterError

__all__ = [
    "JsonlTraceSink",
    "NullTraceSink",
    "RingTraceSink",
    "TraceSink",
]


class TraceSink(abc.ABC):
    """Destination for trace records.

    ``active`` is a class-level fast-path flag: emitters check it
    *before* constructing a record, so an inactive sink costs one
    attribute read per potential trace point.
    """

    #: Whether emitters should bother building records for this sink.
    active: bool = True

    @abc.abstractmethod
    def emit(self, record: Mapping[str, Any]) -> None:
        """Accept one trace record (a flat, JSON-safe mapping)."""

    def close(self) -> None:
        """Release any resources held by the sink (idempotent)."""


class NullTraceSink(TraceSink):
    """Discards everything; ``active`` is ``False`` so emitters skip
    record construction.  The default sink — telemetry with a null
    sink still maintains every counter, it just keeps no timeline."""

    active = False

    def emit(self, record: Mapping[str, Any]) -> None:  # pragma: no cover
        pass


class RingTraceSink(TraceSink):
    """Keeps the newest ``capacity`` records in memory.

    >>> sink = RingTraceSink(capacity=8)
    >>> sink.emit({"type": "crash", "position": 41, "node": 1})
    >>> len(sink)
    1
    >>> sink.records()[0]["type"]
    'crash'
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ParameterError(
                f"ring capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._records: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def emit(self, record: Mapping[str, Any]) -> None:
        with self._lock:
            self._records.append(dict(record))

    def records(self) -> list[dict[str, Any]]:
        """Retained records, oldest first."""
        with self._lock:
            return [dict(record) for record in self._records]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class JsonlTraceSink(TraceSink):
    """Appends one strict-JSON object per record to a file.

    Lines use sorted keys and ``allow_nan=False`` — the same strict
    contract as the benchmark JSON artifacts — so a trace file is
    byte-stable given identical records and always machine-parseable
    line by line.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = open(self.path, "w", encoding="utf-8")
        self._lock = threading.Lock()

    def emit(self, record: Mapping[str, Any]) -> None:
        line = json.dumps(
            dict(record),
            sort_keys=True,
            allow_nan=False,
            separators=(",", ":"),
        )
        with self._lock:
            if self._handle.closed:  # late stragglers after close
                return
            self._handle.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()
