"""Exception hierarchy for the ``repro`` library.

Every error raised by library code derives from :class:`ReproError`, so
callers can catch a single base class.  Errors are deliberately specific:
parameter validation problems, state (de)serialization problems, and merge
incompatibilities are all distinct failure modes for users of approximate
counters.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ParameterError(ReproError, ValueError):
    """An algorithm parameter is out of its valid domain.

    Examples: ``epsilon`` or ``delta`` outside ``(0, 1/2)``, a non-positive
    bit budget, or a Morris base parameter ``a <= 0``.
    """


class StateError(ReproError, RuntimeError):
    """A counter's serialized state is malformed or inconsistent."""


class MergeError(ReproError, RuntimeError):
    """Two counters cannot be merged.

    Raised when the counters were built with incompatible parameters or
    when a counter was not constructed in mergeable mode (Remark 2.4 needs
    the per-epoch survivor history).
    """


class BudgetError(ReproError, RuntimeError):
    """A bit budget was exhausted or cannot be satisfied."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment harness was configured inconsistently."""
