"""Whole-bank checkpoints: crash recovery for ingest nodes.

A :class:`BankCheckpoint` captures every counter in a
:class:`~repro.analytics.counter_bank.CounterBank` (via the per-counter
codec of :mod:`repro.core.codec`), the bank seed, the
:class:`~repro.cluster.node.CounterTemplate` needed to rebuild the
counters, the exact shadow counts when tracked, and arbitrary caller
metadata (node id, incarnation, events ingested).  The whole document is a
single JSON line guarded by the library's SplitMix64 checksum, so a
truncated or corrupted checkpoint fails loudly instead of resurrecting a
silently wrong node.  Where that line *lives* — process memory or an
atomically-replaced file on disk — is the
:class:`~repro.cluster.storage.CheckpointStore`'s concern: this module
defines the record, :mod:`repro.cluster.storage` defines its durability.

Restore semantics
-----------------
``restore(seed=...)`` rebuilds the bank deterministically: counters are
materialized in sorted key order (each getting the bank's usual derived
per-key stream) and their serialized state installed.  Two restores of the
same checkpoint at the same seed are bit-identical, and feeding both the
same post-restore stream yields identical estimates — the determinism
tier-1 tests pin down.  Pass a *different* seed per incarnation (the
simulation derives one from the node's recovery count) so a restored
replica does not share future coin flips with its dead predecessor, the
same convention as :func:`repro.core.codec.restore_counter`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.analytics.counter_bank import CounterBank
from repro.cluster.node import CounterTemplate
from repro.core.base import CounterSnapshot
from repro.core.codec import (
    decode_checksummed_line,
    decode_snapshot,
    encode_checksummed_line,
    encode_snapshot,
)
from repro.errors import StateError

__all__ = ["BankCheckpoint"]

_FORMAT_VERSION = 1
_CHECKSUM_SEED = 0xC1E5CB0A75E57A11


@dataclass(frozen=True)
class BankCheckpoint:
    """A recoverable snapshot of one node's counter bank.

    Attributes
    ----------
    template:
        Recipe to rebuild each counter.
    seed:
        The captured bank's seed (default restore seed).
    snapshots:
        Per-key counter snapshots.
    truth:
        Exact shadow counts (``None`` when the bank did not track truth).
    meta:
        Caller metadata carried verbatim (node id, incarnation, ...).
    topology:
        Optional cluster-topology stamp at capture time — a mapping with
        ``epoch`` (router topology epoch), ``nodes`` (sorted live node
        ids), and ``routing`` (strategy name).  ``None`` for standalone
        bank checkpoints; the simulation always records it so a restored
        node can detect that it woke up under a stale routing view
        (its checkpoint epoch ≠ the router's current epoch).
    """

    template: CounterTemplate
    seed: int
    snapshots: Mapping[str, CounterSnapshot]
    truth: Mapping[str, int] | None = None
    meta: Mapping[str, Any] = field(default_factory=dict)
    topology: Mapping[str, Any] | None = None

    # ------------------------------------------------------------------
    # capture / restore
    # ------------------------------------------------------------------
    @classmethod
    def capture(
        cls,
        bank: CounterBank,
        template: CounterTemplate,
        meta: Mapping[str, Any] | None = None,
        topology: Mapping[str, Any] | None = None,
    ) -> "BankCheckpoint":
        """Snapshot every counter (and shadow count) in ``bank``."""
        snapshots = {
            key: counter.snapshot() for key, counter in bank.items()
        }
        truth = (
            {key: bank.truth(key) for key in snapshots}
            if bank.tracks_truth
            else None
        )
        return cls(
            template=template,
            seed=bank.seed,
            snapshots=snapshots,
            truth=truth,
            meta=dict(meta or {}),
            topology=dict(topology) if topology is not None else None,
        )

    def restore(self, seed: int | None = None) -> CounterBank:
        """Rebuild a live bank from this checkpoint.

        ``seed`` defaults to the captured bank's seed; recovery paths
        should pass an incarnation-derived seed (see module docstring).
        """
        bank = CounterBank(
            self.template.build,
            seed=self.seed if seed is None else seed,
            track_truth=self.truth is not None,
        )
        for key in sorted(self.snapshots):
            bank.materialize(key).restore(self.snapshots[key])
            if self.truth is not None:
                bank.set_truth(key, self.truth[key])
        return bank

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def encode(self) -> str:
        """Serialize to a single checksummed JSON line."""
        body = {
            "v": _FORMAT_VERSION,
            "template": self.template.to_dict(),
            "seed": self.seed,
            "counters": {
                key: encode_snapshot(snap)
                for key, snap in sorted(self.snapshots.items())
            },
            "truth": dict(self.truth) if self.truth is not None else None,
            "meta": dict(self.meta),
            "topology": (
                dict(self.topology) if self.topology is not None else None
            ),
        }
        return encode_checksummed_line(body, _CHECKSUM_SEED)

    @classmethod
    def decode(cls, line: str) -> "BankCheckpoint":
        """Parse a line produced by :meth:`encode`.

        Raises :class:`~repro.errors.StateError` on malformed input,
        version mismatch, or checksum mismatch (including corruption in
        any embedded counter record).
        """
        body = decode_checksummed_line(
            line, _CHECKSUM_SEED, kind="bank checkpoint"
        )
        if body.get("v") != _FORMAT_VERSION:
            raise StateError(
                f"unsupported bank checkpoint version {body.get('v')!r}"
            )
        try:
            template = CounterTemplate.from_dict(body["template"])
            snapshots = {
                key: decode_snapshot(record)
                for key, record in body["counters"].items()
            }
            truth = body["truth"]
            return cls(
                template=template,
                seed=int(body["seed"]),
                snapshots=snapshots,
                truth=(
                    {k: int(v) for k, v in truth.items()}
                    if truth is not None
                    else None
                ),
                meta=dict(body.get("meta", {})),
                topology=(
                    dict(body["topology"])
                    if body.get("topology") is not None
                    else None
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StateError(f"malformed bank checkpoint: {exc}") from exc

    def __len__(self) -> int:
        return len(self.snapshots)
