"""Per-node worker subprocess: one `IngestNode` behind the wire protocol.

``python -m repro.cluster.worker`` is the process-deployment unit of the
cluster: it owns exactly one :class:`~repro.cluster.node.IngestNode` and
services :mod:`repro.cluster.transport` frames until told to shut down.
Two transports are supported:

* **Pipe mode** (default) — frames arrive on stdin and replies leave on
  stdout; this is how :class:`~repro.cluster.pipeline.ProcessPlan`
  drives a short-lived fleet.  Stdout belongs to the protocol, so the
  worker never prints; diagnostics go to stderr.
* **Socket mode** (``--listen PATH``) — the worker binds a Unix socket
  and serves one coordinator connection at a time, accepting a new one
  when the previous coordinator detaches.  This is the long-running
  daemon behind ``repro.cli cluster serve``; ``--pidfile`` records the
  worker's pid once the socket is ready, which the serve lifecycle
  (``up``/``ps``/``down``) uses as its readiness and liveness marker.

The worker is deliberately *stateless with respect to durability*: the
coordinator owns the write-ahead log, the checkpoint store, and the
manifest, exactly as in the in-process plans — so `recover_cluster`
and the torn-fence protocol are untouched by where the bank lives.  A
worker holds only the live compute state (bank + coalescing buffer),
and every durable record it produces (checkpoint lines via
``checkpoint_fence``, migration batches via ``migrate_out``) travels
back to the coordinator as checksummed lines, never touching disk here.

Determinism: a worker built from the same ``init`` parameters performs
exactly the operations the serial loop would perform on that node —
same submit order (frames per node arrive in stream order), same flush
points, same migration-derived counter seeds — so on ``exact``
templates a process-deployed cluster is bit-identical to the serial
reference (pinned by ``tests/cluster/test_pipeline.py``).
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import time
from typing import Any, BinaryIO

from repro.cluster.checkpoint import BankCheckpoint
from repro.cluster.node import CounterTemplate, IngestNode
from repro.cluster.rebalance import MigrationBatch, absorb_batch
from repro.cluster.transport import read_frame, write_frame
from repro.errors import StateError
from repro.obs.timers import StageTimer

__all__ = ["NodeWorker", "main"]


class NodeWorker:
    """Frame handlers around one ingest node.

    One instance serves one worker process (either transport).  The
    node may be constructed up front (socket daemons, which must be
    ready before any coordinator attaches) or lazily by the first
    ``init`` frame (pipe fleets, where the coordinator knows the
    parameters).
    """

    def __init__(self, node: IngestNode | None = None) -> None:
        self.node = node
        #: wall-clock stage timings; ``None`` until telemetry is asked
        #: for (``init`` with ``timed=true``).  Purely observational —
        #: the timed and untimed paths mutate identical state.
        self.timer: StageTimer | None = None

    # ------------------------------------------------------------------
    # handlers (one per request frame type)
    # ------------------------------------------------------------------
    def _require_node(self) -> IngestNode:
        if self.node is None:
            raise StateError("worker received a node frame before init")
        return self.node

    def handle_init(self, body: dict[str, Any]) -> dict[str, Any]:
        """Build the node from its construction parameters.

        The parameters mirror :class:`~repro.cluster.node.IngestNode`'s
        constructor, so an initialized worker is bit-identical to the
        node the serial loop would have built — RNG state included.
        """
        self.node = IngestNode(
            int(body["node_id"]),
            CounterTemplate.from_dict(body["template"]),
            seed=int(body["seed"]),
            buffer_limit=int(body["buffer_limit"]),
            track_truth=bool(body["track_truth"]),
            consume_mode=str(body.get("consume_mode", "skip_ahead")),
        )
        self.timer = StageTimer() if body.get("timed") else None
        return {"type": "ok"}

    def handle_deliver_batch(
        self, body: dict[str, Any]
    ) -> dict[str, Any] | None:
        """Apply one routed batch in order (pipelined: no reply)."""
        node = self._require_node()
        events = body["events"]
        if self.timer is None:
            node.submit_counts(
                (str(key), int(count)) for key, count in events
            )
            return None
        started = time.perf_counter()
        node.submit_counts((str(key), int(count)) for key, count in events)
        self.timer.add("worker_consume", time.perf_counter() - started)
        return None

    def handle_drain(self, body: dict[str, Any]) -> dict[str, Any]:
        """Sync point: every prior frame has been applied."""
        node = self._require_node()
        return {
            "type": "drain_ack",
            "node": node.node_id,
            "pending": node.pending,
            "events_ingested": node.events_ingested,
        }

    def handle_checkpoint_fence(
        self, body: dict[str, Any]
    ) -> dict[str, Any]:
        """Flush and capture, exactly like the serial checkpoint path.

        The coordinator supplies the durability metadata it owns
        (node id, incarnation, the WAL fence sequence); the worker
        contributes the state only it knows — the flushed bank and the
        lifetime stats — and returns the encoded checkpoint line for
        the coordinator to save and fence.
        """
        node = self._require_node()
        node.flush()
        meta = dict(body["meta"])
        meta.update(
            events_ingested=node.events_ingested,
            events_coalesced=node.events_coalesced,
            n_flushes=node.n_flushes,
        )
        checkpoint = BankCheckpoint.capture(
            node.bank,
            node.template,
            meta=meta,
            topology=body.get("topology"),
        )
        return {"type": "checkpoint_reply", "line": checkpoint.encode()}

    def handle_snapshot_request(
        self, body: dict[str, Any]
    ) -> dict[str, Any]:
        """Ship the node's full state: checkpoint line + volatile half.

        With ``flush=true`` the bank is flushed first — the barrier
        pull, landing at exactly the stream position where the serial
        loop flushes (window collapse, migration planning, end of
        run); ``flush=false`` is a pure read (``serve status``).
        """
        node = self._require_node()
        if body.get("flush"):
            node.flush()
        checkpoint = BankCheckpoint.capture(
            node.bank, node.template, meta={"transfer": True}
        )
        return {
            "type": "snapshot_reply",
            "node": node.node_id,
            "line": checkpoint.encode(),
            "volatile": node.export_volatile(),
        }

    def handle_adopt_state(self, body: dict[str, Any]) -> dict[str, Any]:
        """Install a full node state pushed by the coordinator.

        Used after a crash (the coordinator recovers the mirror from
        checkpoint + WAL replay, then pushes the result) and after a
        window collapse (the reset, empty bank).  The restored bank
        keeps the seed captured in the line, so worker and mirror stay
        seed-aligned.
        """
        node = self._require_node()
        checkpoint = BankCheckpoint.decode(body["line"])
        node.adopt_bank(checkpoint.restore())
        node.install_volatile(body["volatile"])
        return {"type": "ok"}

    def handle_migrate_out(self, body: dict[str, Any]) -> dict[str, Any]:
        """Drain the given keys out of this node (migration source).

        Returns the worker's own encoded
        :class:`~repro.cluster.rebalance.MigrationBatch` line — on
        ``exact`` templates bit-identical to the line the coordinator
        computed from its mirror, which the tests assert; ``None`` when
        none of the keys were materialized here.
        """
        node = self._require_node()
        records = node.drain(str(key) for key in body["keys"])
        if not records:
            return {"type": "migrate_reply", "line": None}
        tracked = all(truth is not None for _, _, truth in records)
        batch = MigrationBatch(
            source=node.node_id,
            target=int(body["target"]),
            epoch=int(body["epoch"]),
            snapshots={key: snap for key, snap, _ in records},
            truth=(
                {key: truth for key, _, truth in records}
                if tracked
                else None
            ),
        )
        return {"type": "migrate_reply", "line": batch.encode()}

    def handle_absorb(self, body: dict[str, Any]) -> dict[str, Any]:
        """Merge one migration batch line in (migration target).

        Counters restore on the same ``(seed, epoch, key)``-derived
        streams as the in-process rebalance, so worker and mirror
        absorb identically.
        """
        node = self._require_node()
        batch = MigrationBatch.decode(body["line"])
        absorbed = absorb_batch(batch, node, seed=int(body["seed"]))
        return {"type": "ok", "absorbed": absorbed}

    def handle_metrics_pull(self, body: dict[str, Any]) -> dict[str, Any]:
        """This worker's stage-timing snapshot (empty when untimed)."""
        stages = self.timer.snapshot() if self.timer is not None else {}
        return {"type": "metrics_reply", "stages": stages}

    def handle_ping(self, body: dict[str, Any]) -> dict[str, Any]:
        """Liveness probe with a small status payload (serve status)."""
        node = self.node
        return {
            "type": "pong",
            "pid": os.getpid(),
            "node": node.node_id if node is not None else None,
            "keys": len(node.bank) if node is not None else 0,
            "pending": node.pending if node is not None else 0,
            "events_ingested": (
                node.events_ingested if node is not None else 0
            ),
        }

    # ------------------------------------------------------------------
    # frame service loop
    # ------------------------------------------------------------------
    def serve(self, reader: BinaryIO, writer: BinaryIO) -> str:
        """Service frames until shutdown or EOF.

        Returns ``"shutdown"`` (clean protocol exit) or ``"detached"``
        (the coordinator closed its end).  A handler exception is
        reported back as an ``error`` frame and ends the loop — the
        worker's state can no longer be trusted to match the
        coordinator's, so dying loudly beats diverging silently.
        """
        handlers = {
            "init": self.handle_init,
            "deliver_batch": self.handle_deliver_batch,
            "drain": self.handle_drain,
            "checkpoint_fence": self.handle_checkpoint_fence,
            "snapshot_request": self.handle_snapshot_request,
            "adopt_state": self.handle_adopt_state,
            "migrate_out": self.handle_migrate_out,
            "absorb": self.handle_absorb,
            "metrics_pull": self.handle_metrics_pull,
            "ping": self.handle_ping,
        }
        while True:
            body = read_frame(reader)
            if body is None:
                return "detached"
            frame_type = body["type"]
            if frame_type == "shutdown":
                write_frame(writer, "bye")
                return "shutdown"
            handler = handlers.get(frame_type)
            try:
                if handler is None:
                    raise StateError(
                        f"worker cannot service {frame_type!r} frames"
                    )
                reply = handler(body)
            except Exception as exc:
                write_frame(
                    writer,
                    "error",
                    message=f"{type(exc).__name__}: {exc}",
                )
                raise
            if reply is not None:
                fields = {
                    key: value
                    for key, value in reply.items()
                    if key != "type"
                }
                write_frame(writer, reply["type"], **fields)


def _serve_pipe(worker: NodeWorker) -> int:
    """Pipe transport: frames on stdin, replies on stdout."""
    reader = sys.stdin.buffer
    writer = sys.stdout.buffer
    try:
        worker.serve(reader, writer)
    except Exception as exc:
        print(f"repro-worker: {exc}", file=sys.stderr)
        return 1
    return 0


def _serve_socket(
    worker: NodeWorker, listen_path: str, pidfile: str | None
) -> int:
    """Unix-socket transport: accept coordinators until shutdown."""
    server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        if os.path.exists(listen_path):
            os.unlink(listen_path)
        server.bind(listen_path)
        server.listen(1)
        if pidfile is not None:
            # Written only after the socket is live, so the pidfile
            # doubles as the readiness marker `cluster serve up` polls.
            with open(pidfile, "w", encoding="utf-8") as handle:
                handle.write(f"{os.getpid()}\n")
        while True:
            conn, _ = server.accept()
            reader = conn.makefile("rb")
            writer = conn.makefile("wb")
            try:
                outcome = worker.serve(reader, writer)
            except Exception as exc:
                print(f"repro-worker: {exc}", file=sys.stderr)
                return 1
            finally:
                for stream in (writer, reader):
                    try:
                        stream.close()
                    except OSError:  # pragma: no cover - teardown race
                        pass
                conn.close()
            if outcome == "shutdown":
                return 0
    finally:
        server.close()
        for path in (listen_path, pidfile):
            if path is not None and os.path.exists(path):
                try:
                    os.unlink(path)
                except OSError:  # pragma: no cover - cleanup race
                    pass


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.worker",
        description=(
            "Per-node cluster worker: services repro.cluster.transport "
            "frames over stdin/stdout (default) or a Unix socket."
        ),
    )
    parser.add_argument(
        "--listen",
        metavar="SOCKET",
        default=None,
        help="serve a Unix socket at this path instead of stdin/stdout",
    )
    parser.add_argument(
        "--pidfile",
        metavar="PATH",
        default=None,
        help="write the worker pid here once the socket is ready",
    )
    parser.add_argument(
        "--node-id", type=int, default=None, help="node id (daemon mode)"
    )
    parser.add_argument(
        "--template-json",
        metavar="JSON",
        default=None,
        help="CounterTemplate.to_dict() JSON (daemon mode)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="bank seed (daemon mode)"
    )
    parser.add_argument(
        "--buffer-limit", type=int, default=512, help="coalescing buffer"
    )
    parser.add_argument(
        "--no-track-truth",
        action="store_true",
        help="skip exact shadow counts",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Worker entrypoint; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    node: IngestNode | None = None
    if args.node_id is not None:
        if args.template_json is None:
            print(
                "repro-worker: --node-id needs --template-json",
                file=sys.stderr,
            )
            return 2
        import json

        node = IngestNode(
            args.node_id,
            CounterTemplate.from_dict(json.loads(args.template_json)),
            seed=args.seed,
            buffer_limit=args.buffer_limit,
            track_truth=not args.no_track_truth,
        )
    worker = NodeWorker(node)
    if args.listen is not None:
        return _serve_socket(worker, args.listen, args.pidfile)
    return _serve_pipe(worker)


if __name__ == "__main__":  # pragma: no cover - subprocess entrypoint
    sys.exit(main())
